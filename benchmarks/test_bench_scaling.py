"""Scaling checks: scale-factor invariance and host-count scale-out.

Two families:

* **Methodology** — the whole evaluation runs scaled down (DESIGN.md's
  scaling rule: all sizes shrink by one factor, timing never scales).
  If the methodology is sound, the measured speedups at different scales
  must agree — the first tests run the same Figure 8 point at two scales
  and check that the speedups track each other, which is what justifies
  quoting scaled results against the paper's full-size numbers.

* **Scale-out** — the thousand-host series of
  :mod:`repro.exp.scale`, which measures simulator throughput (events
  per second, wall-clock, peak RSS) as the cluster grows.  Run as a
  script this file emits/gates the ``BENCH_scaling.json`` artifact::

      PYTHONPATH=src python benchmarks/test_bench_scaling.py \
          --out benchmarks/BENCH_scaling.json       # refresh baseline
      PYTHONPATH=src python benchmarks/test_bench_scaling.py \
          --check benchmarks/BENCH_scaling.json     # CI gate

  Like ``perf_smoke.py``, the gate compares wall-clock numbers only
  after normalizing by the machine's measured kernel throughput; the
  simulation-outcome fields (events, requests) are compared directly.
  The 1000-host point additionally has an absolute wall-clock budget so
  a pathological slowdown fails even a self-consistent run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.exp.fig8 import Fig8Point, run_point
from repro.exp.scale import HOST_COUNTS, format_scale, run_scaling


def test_bench_speedup_invariant_under_scaling(once):
    def run_both():
        out = {}
        for scale in (1 / 256, 1 / 64):
            out[scale] = run_point(
                Fig8Point("random", 8192, 1, "udp"), scale=scale,
                num_iter=3)
        return out

    results = once(run_both)
    s_small = results[1 / 256]["speedup"]
    s_big = results[1 / 64]["speedup"]
    print(f"\nrandom/8K/1GB/udp speedup: {s_small:.2f} @ 1/256, "
          f"{s_big:.2f} @ 1/64")
    assert abs(s_small - s_big) < 0.25


def test_bench_sequential_flat_at_both_scales(once):
    def run_both():
        return {scale: run_point(Fig8Point("sequential", 8192, 1, "unet"),
                                 scale=scale, num_iter=3)
                for scale in (1 / 256, 1 / 64)}

    results = once(run_both)
    for scale, r in results.items():
        print(f"\nsequential/unet @ {scale}: {r['speedup']:.2f}")
        assert 0.75 < r["speedup"] < 1.25


# -- host-count scale-out ------------------------------------------------------

#: absolute ceiling for the 1000-host point, far above a healthy run
#: (a few seconds) but low enough to catch an event-explosion regression
WALL_BUDGET_1000_S = 120.0


def collect_scaling(host_counts: tuple = HOST_COUNTS, num_iter: int = 2,
                    jobs: int = 1) -> dict:
    """The BENCH_scaling payload: the series plus kernel throughput.

    The kernel events/sec figure anchors cross-machine comparisons —
    every wall-clock gate divides by it so only work-per-event
    regressions fail, not slower CI hardware.
    """
    from perf_smoke import bench_events_per_sec
    kernel = bench_events_per_sec()
    points = run_scaling(host_counts, jobs=jobs, num_iter=num_iter)
    return {
        "kernel_events_per_sec": kernel["events_per_sec"],
        "points": points,
        "python": sys.version.split()[0],
    }


def check_scaling(metrics: dict, baseline: dict,
                  tolerance: float = 0.30) -> list[str]:
    """Gate a fresh series against a baseline; returns failure strings."""
    failures = []
    base_points = {p["hosts"]: p for p in baseline.get("points", ())}
    kernel_new = metrics["kernel_events_per_sec"]
    kernel_old = baseline.get("kernel_events_per_sec", kernel_new)
    for p in metrics["points"]:
        n = p["hosts"]
        if n == 1000 and p["wall_s"] > WALL_BUDGET_1000_S:
            failures.append(
                f"1000-host wall {p['wall_s']:.1f}s blows the "
                f"{WALL_BUDGET_1000_S:.0f}s budget")
        old = base_points.get(n)
        if old is None:
            continue
        # event count is deterministic: growth means batching regressed
        if p["events"] > old["events"] * (1 + tolerance):
            failures.append(f"{n}-host events regressed: "
                            f"{p['events']} vs {old['events']}")
        if p["requests"] != old["requests"]:
            failures.append(f"{n}-host requests changed: "
                            f"{p['requests']} vs {old['requests']}")
        # wall time in kernel-event-equivalents transfers across machines
        new_work = p["wall_s"] * kernel_new
        old_work = old["wall_s"] * kernel_old
        if new_work > old_work * (1 + tolerance):
            failures.append(
                f"{n}-host wall regressed (normalized): {new_work:.4g} "
                f"vs {old_work:.4g} kernel-event-equivalents")
    return failures


def test_bench_scale_out_series(once):
    """A scaled-down scale-out series: shape and footprint sanity."""
    results = once(collect_scaling, host_counts=(100, 300), num_iter=1)
    points = results["points"]
    assert [p["hosts"] for p in points] == [100, 300]
    for p in points:
        assert p["requests"] > 0
        assert p["events"] > p["requests"]
        assert p["fastpath"]["dgrams"] > 0
        assert p["fastpath"]["disk_batches"] > 0
    # host count buys control state, not payload bytes: tripling the
    # cluster must cost far less than 3x the memory
    rss_100, rss_300 = points[0]["peak_rss_mb"], points[1]["peak_rss_mb"]
    print(f"\nscale-out: {points[0]['events']:,} events @100 hosts, "
          f"{points[1]['events']:,} @300; RSS {rss_100:.0f} -> "
          f"{rss_300:.0f} MB")
    assert rss_300 < rss_100 * 2 + 64


def main(argv=None) -> int:
    """Emit and/or gate the BENCH_scaling artifact (see module docs)."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=None,
                    help="write the scaling metrics JSON here")
    ap.add_argument("--check", type=Path, default=None,
                    help="baseline JSON to gate against")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional regression (default 0.30)")
    ap.add_argument("--hosts", type=int, nargs="+",
                    default=list(HOST_COUNTS))
    ap.add_argument("--iters", type=int, default=2)
    ap.add_argument("--jobs", type=int, default=1)
    args = ap.parse_args(argv)

    metrics = collect_scaling(tuple(args.hosts), num_iter=args.iters,
                              jobs=args.jobs)
    print(format_scale(metrics["points"]))
    print(f"kernel: {metrics['kernel_events_per_sec']:,.0f} events/s")

    if args.out:
        args.out.write_text(json.dumps(metrics, indent=2, sort_keys=True)
                            + "\n")
        print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(args.check.read_text())
        failures = check_scaling(metrics, baseline, args.tolerance)
        if failures:
            for f in failures:
                print(f"PERF REGRESSION: {f}", file=sys.stderr)
            return 1
        print(f"scaling gate passed against {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
