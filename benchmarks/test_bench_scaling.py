"""Methodology check: speedups must be stable across the scaling factor.

The whole evaluation runs scaled down (DESIGN.md's scaling rule: all
sizes shrink by one factor, timing never scales).  If the methodology is
sound, the measured speedups at different scales must agree — this
benchmark runs the same Figure 8 point at two scales and checks that the
speedups track each other, which is what justifies quoting scaled
results against the paper's full-size numbers.
"""

from repro.exp.fig8 import Fig8Point, run_point


def test_bench_speedup_invariant_under_scaling(once):
    def run_both():
        out = {}
        for scale in (1 / 256, 1 / 64):
            out[scale] = run_point(
                Fig8Point("random", 8192, 1, "udp"), scale=scale,
                num_iter=3)
        return out

    results = once(run_both)
    s_small = results[1 / 256]["speedup"]
    s_big = results[1 / 64]["speedup"]
    print(f"\nrandom/8K/1GB/udp speedup: {s_small:.2f} @ 1/256, "
          f"{s_big:.2f} @ 1/64")
    assert abs(s_small - s_big) < 0.25


def test_bench_sequential_flat_at_both_scales(once):
    def run_both():
        return {scale: run_point(Fig8Point("sequential", 8192, 1, "unet"),
                                 scale=scale, num_iter=3)
                for scale in (1 / 256, 1 / 64)}

    results = once(run_both)
    for scale, r in results.items():
        print(f"\nsequential/unet @ {scale}: {r['speedup']:.2f}")
        assert 0.75 < r["speedup"] < 1.25
