"""Cache-bench checks: the elastic-caching ablation and its claim.

The caching ablation (:mod:`repro.exp.cache`) replays the Figure 7
and non-dedicated workloads under every eviction policy, then adds
the hotspot-migration and adaptive-selection variants on the
non-dedicated workload.  Every reported number is virtual-time-only
and byte-identical per seed, so the gate compares the baseline
exactly — no machine normalization.  See docs/CACHING.md for the
policy semantics and the migration protocol behind these numbers.

The pytest tests run the claim pair (cost-aware reclaim with and
without migration) and check the property that makes the subsystem
worth having: migrating a busy donor's hot regions instead of
dropping them saves disk refetches.  Run as a script this file
emits/gates the ``BENCH_cache.json`` artifact::

    PYTHONPATH=src python benchmarks/test_bench_cache.py \
        --out benchmarks/BENCH_cache.json         # refresh baseline
    PYTHONPATH=src python benchmarks/test_bench_cache.py \
        --check benchmarks/BENCH_cache.json       # CI gate

The gate also enforces the caching claim itself: the migration run
must finish with strictly fewer disk reads than the evict-only run,
and every migrated hit must be backed by a completed migration.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.exp.cache import format_cache, run_cache, run_cache_ablation


def collect_cache(seed: int = 9, num_iter: int = 6) -> dict:
    """The BENCH_cache payload: ablation rows plus the pinned claim.

    Everything in it is deterministic simulation outcome — the gate
    compares against the baseline exactly.
    """
    results = run_cache_ablation(seed=seed, num_iter=num_iter)
    return {
        "rows": results["rows"],
        "claim": results["claim"],
        "python": sys.version.split()[0],
    }


def _variant(row: dict) -> str:
    """Row identity within a workload: policy plus its variant flags."""
    name = row["policy"]
    if row.get("migration"):
        name += "+migrate"
    if row.get("adaptive"):
        name += "+adapt"
    return f"{row['workload']}/{name}"


#: per-row fields that must match the baseline exactly (all are
#: virtual-time simulation outcomes, not wall-clock measurements)
_EXACT = ("seed", "requests", "local_hits", "remote_hits",
          "migrated_hits", "disk_reads", "remote_lost", "evictions",
          "evicted_bytes", "entries_evicted", "switches", "elapsed_s")


def check_cache(metrics: dict, baseline: dict) -> list[str]:
    """Gate a fresh ablation against a baseline; returns failures."""
    failures = []
    base_rows = {_variant(r): r for r in baseline.get("rows", ())}
    for row in metrics["rows"]:
        old = base_rows.get(_variant(row))
        if old is None:
            continue
        for key in _EXACT:
            if row.get(key) != old.get(key):
                failures.append(
                    f"{_variant(row)} {key} changed: "
                    f"{row.get(key)!r} vs baseline {old.get(key)!r}")
        if row.get("migrations") != old.get("migrations"):
            failures.append(
                f"{_variant(row)} migrations changed: "
                f"{row.get('migrations')!r} vs baseline "
                f"{old.get('migrations')!r}")
    failures.extend(check_cache_claim(metrics["claim"]))
    return failures


def check_cache_claim(claim: dict) -> list[str]:
    """The acceptance criterion: migration saves disk refetches."""
    failures = []
    if not claim.get("migration_reduces_refetches"):
        failures.append(
            f"migration did not reduce disk refetches: "
            f"{claim.get('disk_reads_migration')} with migration vs "
            f"{claim.get('disk_reads_evict_only')} evict-only")
    if claim.get("refetches_saved", 0) <= 0:
        failures.append(
            f"refetches_saved must be positive, got "
            f"{claim.get('refetches_saved')!r}")
    if claim.get("migrated_hits", 0) <= 0:
        failures.append("migration run recorded no migrated hits")
    if claim.get("migrations_ok", 0) <= 0:
        failures.append("migration run completed no migrations")
    return failures


# -- pytest checks (claim pair only, for speed) -------------------------------

def test_bench_cache_migration_saves_refetches(once):
    """The claim pair: migration beats evict-only on disk refetches."""
    def run_pair():
        evict = run_cache(policy="cost-aware", workload="nondedicated")
        migrate = run_cache(policy="cost-aware", migration=True,
                            workload="nondedicated")
        return evict, migrate

    evict, migrate = once(run_pair)
    print(f"\n{format_cache({'rows': [evict, migrate]})}")
    assert evict["requests"] == migrate["requests"]
    assert migrate["disk_reads"] < evict["disk_reads"]
    assert migrate["migrated_hits"] > 0
    assert migrate["migrations"]["ok"] > 0
    # evict-only never migrates; the delta is all the migration's doing
    assert evict["migrated_hits"] == 0
    assert evict["migrations"]["ok"] == 0


def test_bench_cache_deterministic(once):
    """Same seed, same cell — byte-identical counters on replay."""
    def run_twice():
        kwargs = dict(policy="cost-aware", migration=True,
                      workload="nondedicated", seed=9, num_iter=4)
        return run_cache(**kwargs), run_cache(**kwargs)

    a, b = once(run_twice)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def main(argv=None) -> int:
    """Emit and/or gate the BENCH_cache artifact (see module docs)."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=None,
                    help="write the cache ablation JSON here")
    ap.add_argument("--check", type=Path, default=None,
                    help="baseline JSON to gate against")
    ap.add_argument("--seed", type=int, default=9)
    ap.add_argument("--iters", type=int, default=6)
    args = ap.parse_args(argv)

    metrics = collect_cache(seed=args.seed, num_iter=args.iters)
    print(format_cache(metrics))

    if args.out:
        args.out.write_text(json.dumps(metrics, indent=2, sort_keys=True)
                            + "\n")
        print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(args.check.read_text())
        failures = check_cache(metrics, baseline)
        if failures:
            for f in failures:
                print(f"CACHE REGRESSION: {f}", file=sys.stderr)
            return 1
        print(f"cache gate passed against {args.check}")
    else:
        for f in check_cache_claim(metrics["claim"]):
            print(f"CACHE REGRESSION: {f}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
