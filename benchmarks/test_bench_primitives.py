"""Microbenchmarks of the substrate primitives (not a paper figure).

These quantify the simulated data path itself — remote-read latency and
bulk bandwidth per transport — and the simulator's event throughput,
which bounds how large an experiment is practical.
"""

import pytest

from repro.net import recv_bulk, send_bulk
from repro.sim import Simulator

from repro.exp.platform import Platform, PlatformParams

MB = 1024 * 1024


def remote_read_latency(transport: str, size: int) -> float:
    """Virtual-time latency of one warm mread of ``size`` bytes."""
    sim = Simulator(seed=2)
    params = PlatformParams(transport=transport, store_payload=False,
                            n_memory_hosts=1,
                            imd_pool_bytes=4 * MB).scaled(1.0)
    platform = Platform(sim, params, dodo=True)
    lib = platform.runtime()
    fs = platform.app.fs
    fs.create("f", size=2 * MB)
    fd = fs.open("f", "r+").fd
    out = {}

    def proc():
        desc, err = yield from lib.mopen(1 * MB, fd, 0)
        assert err == 0
        yield from lib.mread(desc, 0, size)  # warm
        t0 = sim.now
        for _ in range(10):
            yield from lib.mread(desc, 0, size)
        out["latency"] = (sim.now - t0) / 10

    sim.run(until=sim.process(proc()))
    return out["latency"]


@pytest.mark.parametrize("transport", ["udp", "unet"])
@pytest.mark.parametrize("size", [8192, 32768, 131072])
def test_bench_mread_latency(benchmark, transport, size):
    latency = benchmark.pedantic(remote_read_latency,
                                 args=(transport, size),
                                 rounds=1, iterations=1)
    print(f"\nmread {size >> 10}K over {transport}: "
          f"{latency * 1e3:.2f} ms ({size / latency / 1e6:.1f} MB/s)")
    # remote memory must beat the 0.57 MB/s random disk by a wide margin
    assert size / latency > 3e6


@pytest.mark.parametrize("transport", ["udp", "unet"])
def test_bench_bulk_bandwidth(benchmark, transport):
    """1 MB blast-protocol transfer bandwidth per transport."""
    def run():
        sim = Simulator(seed=3)
        from repro.net import NIC, Network, TransportEndpoint, \
            transport_params
        network = Network(sim)
        eps = {}
        for host in ("a", "b"):
            nic = NIC(sim, host)
            network.attach(nic)
            eps[host] = TransportEndpoint(sim, nic, network,
                                          transport_params(transport))
        tx = eps["a"].socket()
        rx = eps["b"].socket(port=7, recvbuf=256 * 1024)

        def sender():
            yield sim.process(send_bulk(tx, ("b", 7), 1 * MB))
            return sim.now

        sim.process(recv_bulk(rx))
        t_done = sim.run(until=sim.process(sender()))
        return 1 * MB / t_done

    bw = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbulk 1 MB over {transport}: {bw / 1e6:.2f} MB/s")
    assert 6e6 < bw < 12.5e6  # below raw wire, above disk


def test_bench_simulator_event_rate(benchmark):
    """Raw DES throughput: timeout events processed per wall second."""
    def run():
        sim = Simulator()

        def ticker():
            for _ in range(200_000):
                yield sim.timeout(1.0)

        sim.run(until=sim.process(ticker()))
        return sim.events_processed

    events = benchmark(run)
    assert events >= 200_000


def test_bench_perf_smoke_artifact(once, tmp_path):
    """The perf-smoke harness: fast path >= 5x on a large lossless
    transfer, simulated time untouched, and the JSON artifact emitted."""
    import json
    import perf_smoke

    out = tmp_path / "BENCH_primitives.json"
    rc = once(perf_smoke.main, ["--out", str(out)])
    assert rc == 0
    metrics = json.loads(out.read_text())
    print(f"\nfast path: {metrics['bulk_fast_speedup_x']:.0f}x over the "
          f"packet path ({metrics['bulk_mb_per_wall_s']:,.0f} MB per wall "
          f"second, {metrics['bulk_fast_events']} events)")
    assert metrics["bulk_fast_speedup_x"] >= perf_smoke.MIN_SPEEDUP
    assert metrics["bulk_fast_events"] < 100  # O(1), not O(chunks)
    assert metrics["events_per_sec"] > 50_000
