"""Benchmark for the Section 5.3.1 non-dedicated-cluster claims."""

from repro.exp.nondedicated import (NonDedicatedParams,
                                    format_nondedicated, run_nondedicated)


def test_bench_nondedicated(once):
    """Speedups persist with owner churn; reclaim delays are tiny."""
    results = once(run_nondedicated, NonDedicatedParams(
        num_iter=4, owner_active_mean_s=40.0, owner_away_mean_s=200.0))
    print("\n" + format_nondedicated(results))
    assert results["speedup"] > 1.0
    d = results["dodo"]
    assert d["recruits"] >= 1
    if d["reclaims"]:
        # "users experience virtually no delays when reclaiming"
        assert d["max_reclaim_delay_s"] < 0.5
