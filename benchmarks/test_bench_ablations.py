"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from repro.exp.ablations import (format_allocator_ablation,
                                 format_policy_ablation,
                                 format_prefetch_ablation,
                                 format_pregrant_ablation,
                                 format_refraction_ablation,
                                 run_allocator_ablation,
                                 run_policy_ablation,
                                 run_prefetch_ablation,
                                 run_pregrant_ablation,
                                 run_refraction_ablation)


def test_bench_allocator_firstfit_vs_buddy(once):
    """Section 4.2: first-fit + periodic coalescing vs the buddy plan-B."""
    results = once(run_allocator_ablation)
    print("\n" + format_allocator_ablation(results))
    # buddy trades internal waste for eager merging; first-fit wastes none
    assert results["first-fit"]["internal_waste_bytes"] == 0
    assert results["buddy"]["internal_waste_bytes"] > 0


def test_bench_refraction_period(once):
    """Section 3.1: the refraction period sheds futile allocation RPCs."""
    results = once(run_refraction_ablation, scale=1 / 128)
    print("\n" + format_refraction_ablation(results))
    assert results[2.0]["cmd_enomem_rpcs"] \
        < results[0.0]["cmd_enomem_rpcs"] / 5
    assert results[2.0]["elapsed_s"] <= results[0.0]["elapsed_s"] * 1.05


def test_bench_policy_first_in_vs_lru(once):
    """Sections 3.3/4.5: first-in wins cyclic multi-scans, LRU thrashes."""
    results = once(run_policy_ablation, scale=1 / 128)
    print("\n" + format_policy_ablation(results))
    assert results["lru"]["local_hits"] == 0
    assert results["first-in"]["local_hits"] > 0
    assert results["first-in"]["elapsed_s"] <= results["lru"]["elapsed_s"]


def test_bench_prefetch_extension(once):
    """Extension: sequential region prefetch overlaps remote pulls with
    application compute in the steady state."""
    results = once(run_prefetch_ablation, scale=1 / 128)
    print("\n" + format_prefetch_ablation(results))
    assert results[2]["last_scan_s"] < results[0]["last_scan_s"]
    assert results[2]["prefetches"] > 0


def test_bench_window_pregrant(once):
    """Bulk-protocol setup cost: grant-on-RPC vs offer/window handshake."""
    results = once(run_pregrant_ablation, n=50)
    print("\n" + format_pregrant_ablation(results))
    assert results[True]["mean_latency_s"] < results[False]["mean_latency_s"]
