#!/usr/bin/env python
"""Perf smoke harness: measure the simulator's hot paths, emit a JSON
artifact, and optionally gate against a checked-in baseline.

Measures three things:

* ``events_per_sec`` — raw DES-kernel dispatch throughput (timeout
  ping-pong, no network);
* the bulk data path — one large lossless transfer through the blast
  protocol, once with the flow-level fast path and once forced through
  the packet-by-packet path (``bulk_fast_speedup_x`` is the wall-clock
  ratio; ``BENCH`` acceptance requires at least 5x);
* ``fig7_lu_runtime_s`` — wall time of an end-to-end experiment driver
  (lu over UDP at 1/64 scale), the realistic mixed workload.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --out benchmarks/BENCH_primitives.json            # refresh baseline
    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --check benchmarks/BENCH_primitives.json          # CI gate

The ``--check`` gate compares machine-independent metrics (fast-path
event count, fast-vs-packet speedup) directly, and wall-clock metrics
only after normalizing by the measured kernel throughput, so a slower CI
runner does not fail the gate — only a real regression in work-per-event
or event-count does.  Tolerance is 30% (``--tolerance`` to override).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

MB = 1024 * 1024

#: default transfer size; --full raises it to a full GB
BULK_BYTES = 256 * MB
BULK_BYTES_FULL = 1024 * MB


def bench_events_per_sec(n_events: int = 300_000, repeats: int = 3) -> dict:
    """Kernel dispatch throughput: a chain of bare timeouts.

    Best of ``repeats`` runs — on shared/virtualized CPUs, steal time
    can halve a single run's wall clock, and the best run is the least
    contaminated estimate of what the kernel actually costs.  The
    per-run CPU-time figure is reported alongside as a noise-immune
    cross-check (``events_per_cpu_sec``).
    """
    from repro.sim import Simulator

    best = None
    for _ in range(max(1, repeats)):
        sim = Simulator(seed=0)

        def ticker():
            for _ in range(n_events):
                yield sim.timeout(1e-7)

        sim.process(ticker())
        t0 = time.perf_counter()
        c0 = time.process_time()
        sim.run()
        wall = time.perf_counter() - t0
        cpu = time.process_time() - c0
        run = {"events_per_sec": sim.events_processed / wall,
               "events_per_cpu_sec": sim.events_processed / cpu,
               "kernel_events": sim.events_processed,
               "kernel_wall_s": wall}
        if best is None or run["events_per_sec"] > best["events_per_sec"]:
            best = run
    return best


def _bulk_once(size: int, fastpath: bool) -> dict:
    from repro.net import (NIC, Network, TransportEndpoint, recv_bulk,
                           send_bulk, transport_params)
    from repro.net.bulk import BulkParams
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    network = Network(sim)
    eps = {}
    for host in ("a", "b"):
        nic = NIC(sim, host)
        network.attach(nic)
        eps[host] = TransportEndpoint(sim, nic, network,
                                      transport_params("udp"))
    tx = eps["a"].socket()
    rx = eps["b"].socket(port=7, recvbuf=256 * 1024)
    params = BulkParams(fastpath=fastpath)

    def sender():
        yield sim.process(send_bulk(tx, ("b", 7), size, params=params))
        return sim.now

    sim.process(recv_bulk(rx, params=params))
    t0 = time.perf_counter()
    t_virtual = sim.run(until=sim.process(sender()))
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "virtual_s": t_virtual,
            "events": sim.events_processed,
            "engaged": network.stats.count("fastpath.transfers")}


def bench_bulk(size: int, repeats: int = 3) -> dict:
    """Bulk transfer walls, best of ``repeats`` runs per path.

    The fast-path wall is sub-millisecond — a single steal burst on a
    shared CPU can triple it — so, as with :func:`bench_events_per_sec`,
    the best run is the least contaminated estimate and the speedup is
    the ratio of the two bests.
    """
    runs = max(1, repeats)
    fast = min((_bulk_once(size, fastpath=True) for _ in range(runs)),
               key=lambda r: r["wall_s"])
    pkt = min((_bulk_once(size, fastpath=False) for _ in range(runs)),
              key=lambda r: r["wall_s"])
    assert fast["engaged"] == 1, "fast path failed to engage"
    assert fast["virtual_s"] == pkt["virtual_s"], \
        "fast path changed simulated time — this is a correctness bug"
    return {
        "bulk_bytes": size,
        "bulk_fast_wall_s": fast["wall_s"],
        "bulk_packet_wall_s": pkt["wall_s"],
        "bulk_fast_speedup_x": pkt["wall_s"] / fast["wall_s"],
        "bulk_fast_events": fast["events"],
        "bulk_packet_events": pkt["events"],
        "bulk_mb_per_wall_s": size / MB / fast["wall_s"],
        "bulk_virtual_s": fast["virtual_s"],
    }


def bench_fig7() -> dict:
    from repro.exp.fig7 import run_lu

    t0 = time.perf_counter()
    res = run_lu("udp", scale=1 / 64)
    wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    res_pkt = run_lu("udp", scale=1 / 64, bulk_fastpath=False)
    wall_pkt = time.perf_counter() - t0
    assert res == res_pkt, \
        "fast path changed fig7 results — this is a correctness bug"
    return {"fig7_lu_runtime_s": wall,
            "fig7_lu_packet_runtime_s": wall_pkt,
            "fig7_fastpath_speedup_x": wall_pkt / wall,
            "fig7_lu_speedup": res["speedup"]}


def collect(full: bool = False) -> dict:
    metrics = {}
    metrics.update(bench_events_per_sec())
    metrics.update(bench_bulk(BULK_BYTES_FULL if full else BULK_BYTES))
    metrics.update(bench_fig7())
    metrics["python"] = sys.version.split()[0]
    metrics["full"] = full
    return metrics


#: metrics compared directly: value, lower-is-better.  ``events_per_sec``
#: is the one machine-sensitive entry (the calendar-queue kernel's raw
#: dispatch trajectory must not slide back); best-of-N sampling plus the
#: 30% tolerance absorbs ordinary runner variance, and ``--tolerance``
#: widens it for known-slower machines.
_DIRECT_CHECKS = {
    "bulk_fast_events": True,          # event count is deterministic
    "bulk_fast_speedup_x": False,      # ratio of two walls on one machine
    "events_per_sec": False,           # kernel throughput trajectory
}
#: wall-clock metrics, normalized by kernel throughput before comparing
_NORMALIZED_CHECKS = ["bulk_fast_wall_s", "fig7_lu_runtime_s"]

#: the acceptance floor: the fast path must beat the packet path by 5x
#: on the large lossless transfer no matter what the baseline says
MIN_SPEEDUP = 5.0

#: absolute kernel-throughput floor — a backstop that catches an
#: event-dispatch regression even when the baseline file is stale
MIN_EVENTS_PER_SEC = 400_000.0


def check(metrics: dict, baseline: dict, tolerance: float) -> list[str]:
    failures = []
    if metrics["bulk_fast_speedup_x"] < MIN_SPEEDUP:
        failures.append(
            f"bulk_fast_speedup_x {metrics['bulk_fast_speedup_x']:.1f} "
            f"below the {MIN_SPEEDUP}x floor")
    if metrics["events_per_sec"] < MIN_EVENTS_PER_SEC:
        failures.append(
            f"events_per_sec {metrics['events_per_sec']:,.0f} below the "
            f"{MIN_EVENTS_PER_SEC:,.0f} floor")
    for name, lower_better in _DIRECT_CHECKS.items():
        if name not in baseline:
            continue
        new, old = metrics[name], baseline[name]
        if lower_better and new > old * (1 + tolerance):
            failures.append(f"{name} regressed: {new:.4g} vs {old:.4g}")
        if not lower_better and new < old * (1 - tolerance):
            failures.append(f"{name} regressed: {new:.4g} vs {old:.4g}")
    # normalize wall times by kernel throughput: work = wall * events/sec
    # measures "kernel-event-equivalents of work", which transfers across
    # machines of different speed
    for name in _NORMALIZED_CHECKS:
        if name not in baseline or "events_per_sec" not in baseline:
            continue
        new = metrics[name] * metrics["events_per_sec"]
        old = baseline[name] * baseline["events_per_sec"]
        if new > old * (1 + tolerance):
            failures.append(
                f"{name} regressed (normalized): {new:.4g} vs {old:.4g} "
                f"kernel-event-equivalents")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=None,
                    help="write the metrics JSON here")
    ap.add_argument("--check", type=Path, default=None,
                    help="baseline JSON to gate against")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional regression (default 0.30)")
    ap.add_argument("--full", action="store_true",
                    help="GB-scale bulk transfer instead of 256 MB")
    args = ap.parse_args(argv)

    metrics = collect(full=args.full)
    for key in ("events_per_sec", "events_per_cpu_sec",
                "bulk_fast_wall_s", "bulk_packet_wall_s",
                "bulk_fast_speedup_x", "bulk_fast_events",
                "bulk_mb_per_wall_s", "fig7_lu_runtime_s",
                "fig7_fastpath_speedup_x"):
        value = metrics[key]
        shown = f"{value:,.2f}" if isinstance(value, float) else str(value)
        print(f"{key:>24}: {shown}")

    if args.out:
        args.out.write_text(json.dumps(metrics, indent=2, sort_keys=True)
                            + "\n")
        print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(args.check.read_text())
        failures = check(metrics, baseline, args.tolerance)
        if failures:
            for f in failures:
                print(f"PERF REGRESSION: {f}", file=sys.stderr)
            return 1
        print(f"perf gate passed against {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
