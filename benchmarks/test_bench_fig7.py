"""Benchmark regenerating Figure 7: lu and dmine speedups.

Paper: lu 1.2 (U-Net) / 1.15 (UDP); dmine 3.2 / 2.6 on the second run,
~none on the first.  Shape asserted: lu modest but >1 with ~9% I/O under
Dodo; dmine's second run far above its first; U-Net above UDP.
"""

import pytest

from repro.exp.fig7 import format_fig7, run_dmine, run_fig7, run_lu


@pytest.mark.parametrize("transport", ["udp", "unet"])
def test_bench_fig7_lu(once, transport):
    res = once(run_lu, transport, scale=1 / 64)
    print(f"\nlu/{transport}: speedup {res['speedup']:.2f} "
          f"(paper {res['paper']}), dodo I/O fraction "
          f"{res['dodo_io_fraction']:.2f}")
    assert 1.02 < res["speedup"] < 1.5
    assert res["dodo_io_fraction"] < 0.15  # paper: ~9%


@pytest.mark.parametrize("transport", ["udp", "unet"])
def test_bench_fig7_dmine(once, transport):
    res = once(run_dmine, transport, scale=1 / 16)
    print(f"\ndmine/{transport}: run1 {res['speedup_run1']:.2f}, "
          f"run2 {res['speedup_run2']:.2f} (paper {res['paper']})")
    assert res["speedup_run2"] > 1.8
    assert res["speedup_run2"] > res["speedup_run1"] + 0.4


def test_bench_fig7_full(once):
    """The whole figure, including the U-Net > UDP ordering."""
    results = once(run_fig7, scale_lu=1 / 64, scale_dmine=1 / 16)
    print("\n" + format_fig7(results))
    assert results[("lu", "unet")]["speedup"] \
        >= results[("lu", "udp")]["speedup"]
    assert results[("dmine", "unet")]["speedup_run2"] \
        > results[("dmine", "udp")]["speedup_run2"]
