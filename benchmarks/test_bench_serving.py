"""Serve-bench checks: shard-count scaling of the serving tier.

The serving benchmark (:mod:`repro.exp.serving`) drives the Zipfian
open-loop workload against a directory sharded across 1/2/4/8
replicated managers.  Unlike the wall-clock benches, every reported
number here is virtual-time-only and byte-identical per seed, so the
gate compares the baseline exactly — no machine normalization.

The pytest tests run a scaled-down series and check the shape that
makes the benchmark meaningful: a saturated single shard (inflated
tail, admission rejections) that more shards relieve.  Run as a script
this file emits/gates the ``BENCH_serving.json`` artifact::

    PYTHONPATH=src python benchmarks/test_bench_serving.py \
        --out benchmarks/BENCH_serving.json       # refresh baseline
    PYTHONPATH=src python benchmarks/test_bench_serving.py \
        --check benchmarks/BENCH_serving.json     # CI gate

The gate also enforces the scaling claim itself: the widest point must
sustain at least the single-shard throughput at equal-or-better p99.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.exp.serving import SHARD_COUNTS, format_serving, run_serve_bench

#: scaled-down series knobs shared by the pytest checks (fast, but still
#: saturating one shard: ~50% descriptor-cache misses at 600 rps against
#: a 250-lookups/sec manager)
_QUICK = dict(duration_s=3.0, arrival_rate=600.0, n_keys=128,
              mgr_service_s=0.004)


def collect_serving(shard_counts: tuple = SHARD_COUNTS, jobs: int = 1,
                    **kwargs) -> dict:
    """The BENCH_serving payload: the shard-count series.

    Everything in it is deterministic simulation outcome — the gate
    compares against the baseline exactly.
    """
    return {
        "points": run_serve_bench(shard_counts, jobs=jobs, **kwargs),
        "python": sys.version.split()[0],
    }


#: per-point fields that must match the baseline exactly (all are
#: virtual-time simulation outcomes, not wall-clock measurements)
_EXACT = ("shards", "seed", "offered", "completed", "rejected", "failed",
          "writes", "disk_fallbacks", "p50_ms", "p99_ms", "p999_ms",
          "good_fraction", "audit_findings")


def check_serving(metrics: dict, baseline: dict) -> list[str]:
    """Gate a fresh series against a baseline; returns failure strings."""
    failures = []
    base_points = {p["shards"]: p for p in baseline.get("points", ())}
    for p in metrics["points"]:
        old = base_points.get(p["shards"])
        if old is None:
            continue
        for key in _EXACT:
            if p.get(key) != old.get(key):
                failures.append(
                    f"{p['shards']}-shard {key} changed: "
                    f"{p.get(key)!r} vs baseline {old.get(key)!r}")
    failures.extend(check_scaling_claim(metrics["points"]))
    return failures


def check_scaling_claim(points: list[dict]) -> list[str]:
    """The acceptance criterion: widest point beats the single shard."""
    by_shards = {p["shards"]: p for p in points}
    if 1 not in by_shards or len(by_shards) < 2:
        return ["series must include a 1-shard point and a wider one"]
    one = by_shards[1]
    wide = by_shards[max(by_shards)]
    failures = []
    if wide["throughput_rps"] < one["throughput_rps"]:
        failures.append(
            f"{wide['shards']}-shard throughput "
            f"{wide['throughput_rps']} rps below 1-shard "
            f"{one['throughput_rps']} rps")
    if wide["p99_ms"] > one["p99_ms"]:
        failures.append(
            f"{wide['shards']}-shard p99 {wide['p99_ms']} ms worse than "
            f"1-shard {one['p99_ms']} ms")
    for p in points:
        if p["audit_findings"]:
            failures.append(f"{p['shards']}-shard run ended with "
                            f"{p['audit_findings']} audit findings")
    return failures


# -- pytest checks (scaled down) ----------------------------------------------

def test_bench_serving_shard_relief(once):
    """One saturated shard vs two: the tail and rejections must drop."""
    results = once(run_serve_bench, (1, 2), **_QUICK)
    one, two = results
    print(f"\n{format_serving(results)}")
    assert one["offered"] == two["offered"]  # same arrival process
    for r in results:
        assert r["completed"] + r["rejected"] == r["offered"]
        assert r["audit_findings"] == 0
    # the single shard is saturated; the second shard relieves it
    assert two["throughput_rps"] >= one["throughput_rps"]
    assert two["p99_ms"] <= one["p99_ms"]
    assert two["good_fraction"] > one["good_fraction"]


def test_bench_serving_deterministic(once):
    """Same seed, same series — byte-identical, jobs-independent."""
    def run_twice():
        a = run_serve_bench((1,), jobs=1, duration_s=2.0,
                            arrival_rate=300.0, n_keys=64)
        b = run_serve_bench((1,), jobs=2, duration_s=2.0,
                            arrival_rate=300.0, n_keys=64)
        return a, b

    a, b = once(run_twice)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def main(argv=None) -> int:
    """Emit and/or gate the BENCH_serving artifact (see module docs)."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=None,
                    help="write the serving metrics JSON here")
    ap.add_argument("--check", type=Path, default=None,
                    help="baseline JSON to gate against")
    ap.add_argument("--shards", type=int, nargs="+",
                    default=list(SHARD_COUNTS))
    ap.add_argument("--jobs", type=int, default=1)
    args = ap.parse_args(argv)

    metrics = collect_serving(tuple(args.shards), jobs=args.jobs)
    print(format_serving(metrics["points"]))

    if args.out:
        args.out.write_text(json.dumps(metrics, indent=2, sort_keys=True)
                            + "\n")
        print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(args.check.read_text())
        failures = check_serving(metrics, baseline)
        if failures:
            for f in failures:
                print(f"SERVING REGRESSION: {f}", file=sys.stderr)
            return 1
        print(f"serving gate passed against {args.check}")
    else:
        for f in check_scaling_claim(metrics["points"]):
            print(f"SERVING REGRESSION: {f}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
