"""Benchmark regenerating Figure 8: the synthetic-benchmark speedup panels.

Four panels: (A) 8 KB/1 GB, (B) 32 KB/1 GB, (C) 8 KB/2 GB, (D) 32 KB/2 GB,
each for {sequential, hotcold, random} x {UDP, U-Net}, scaled by 1/64.

Shape asserted (the paper's Section 5.3 findings):

* sequential shows virtually no speedup anywhere;
* random and hotcold are significantly above sequential;
* growing requests 8K -> 32K lowers the random and hotcold speedups;
* growing the dataset past remote memory (2 GB) lowers random but
  raises hotcold;
* U-Net beats UDP in every cell.
"""

from repro.exp.fig8 import format_fig8, run_fig8

SCALE = 1 / 64


def _lookup(results, panel, transport, pattern):
    for r in results[panel]:
        if r["point"].transport == transport \
                and r["point"].pattern == pattern:
            return r["speedup"]
    raise KeyError((panel, transport, pattern))


def test_bench_fig8_all_panels(once):
    results = once(run_fig8, scale=SCALE)
    print("\n" + format_fig8(results))
    A, B = "A (8K, 1GB)", "B (32K, 1GB)"
    C, D = "C (8K, 2GB)", "D (32K, 2GB)"

    for transport in ("udp", "unet"):
        # sequential: virtually no speedup, everywhere
        for panel in (A, B, C, D):
            assert 0.75 < _lookup(results, panel, transport,
                                  "sequential") < 1.3
        # random / hotcold significantly above sequential at 8K/1GB
        seq = _lookup(results, A, transport, "sequential")
        assert _lookup(results, A, transport, "random") > seq + 0.25
        assert _lookup(results, A, transport, "hotcold") > seq + 0.2
        # 32 KB requests reduce random & hotcold speedups
        assert _lookup(results, B, transport, "random") \
            < _lookup(results, A, transport, "random")
        assert _lookup(results, B, transport, "hotcold") \
            < _lookup(results, A, transport, "hotcold")
        # 2 GB dataset: random drops, hotcold rises
        assert _lookup(results, C, transport, "random") \
            < _lookup(results, A, transport, "random")
        assert _lookup(results, C, transport, "hotcold") \
            > _lookup(results, A, transport, "hotcold")

    # U-Net above UDP in every cell
    for panel in (A, B, C, D):
        for pattern in ("sequential", "hotcold", "random"):
            assert _lookup(results, panel, "unet", pattern) \
                >= _lookup(results, panel, "udp", pattern) - 0.02
