"""Benchmarks regenerating the Section 2 study: Figure 1, Table 1, Figure 2."""

from repro.exp.sec2 import (format_fig1, format_fig2, format_table1,
                            run_fig1, run_fig2, run_table1)


def test_bench_fig1_cluster_availability(once):
    """Figure 1: available memory over time on clusterA and clusterB."""
    results = once(run_fig1, days=4.0)
    print("\n" + format_fig1(results))
    a = results["clusterA"]["summary"]
    b = results["clusterB"]["summary"]
    # paper: A 3549/2747 MB, B 852/742 MB; 60-68% of installed available
    assert abs(a["avg_available_all_mb"] - 3549) / 3549 < 0.25
    assert abs(b["avg_available_all_mb"] - 852) / 852 < 0.25
    assert 0.5 < a["frac_available_all"] < 0.8


def test_bench_table1_memory_by_use(once):
    """Table 1: mean (std) memory per use for each host class."""
    results = once(run_table1, days=2.0, hosts_per_class=4)
    print("\n" + format_table1(results))
    for mb, row in results["measured"].items():
        paper = results["paper"][mb]
        assert abs(row["available"][0] - paper.available_mean) \
            / paper.available_mean < 0.4


def test_bench_fig2_per_workstation_variation(once):
    """Figure 2: per-host availability is mostly high, with dips."""
    results = once(run_fig2, days=4.0)
    print("\n" + format_fig2(results))
    for res in results.values():
        assert res["median_avail_frac"] > 0.35
        assert res["min_avail_frac"] < res["median_avail_frac"] * 0.8
