"""Benchmark regenerating the Section 5.1 disk-bandwidth table."""

from repro.exp.disk_cal import format_disk_calibration, run_disk_calibration


def test_bench_disk_calibration(once):
    """Paper: 7.75 / 7.75 / 0.57 / 1.56 MB/s (seq 8K/32K, rand 8K/32K)."""
    results = once(run_disk_calibration)
    print("\n" + format_disk_calibration(results))
    for key, res in results.items():
        assert abs(res["measured"] / res["paper"] - 1) < 0.2, key
