"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run with ``-s`` to see
them inline; they are also summarized in EXPERIMENTS.md).  Simulations
are deterministic, so each benchmark runs its driver once via
``benchmark.pedantic``.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic driver exactly once and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return _run
