#!/usr/bin/env python3
"""Association-rule mining — the paper's ``dmine`` application, live.

Generates a synthetic retail dataset, serializes it into 128 KB blocks on
the application node's (aged, fragmented) disk, and runs a real Apriori
through the region-management library with the first-in policy.  Two
back-to-back "runs" demonstrate dmine's signature behaviour: run 1 pays
the disk and populates remote memory; run 2 re-finds every block in the
cluster and avoids the disk entirely.

Run:  python examples/association_mining.py
"""

import numpy as np

from repro.exp.platform import MB, Platform, PlatformParams
from repro.sim import Simulator
from repro.storage.filesystem import FsParams
from repro.workloads import (Apriori, BLOCK_SIZE, DmineParams,
                             decode_block, encode_blocks,
                             generate_transactions)

PARAMS = DmineParams(n_transactions=24000, avg_items=12, n_items=200,
                     n_patterns=12, pattern_prob=0.4, min_support=0.03)


def mine_once(platform, fh, data_len, run_label):
    """One dmine process: fresh library + region cache, mine, detach."""
    sim = platform.sim
    cache = platform.region_cache(policy="first-in",
                                  local_bytes=256 * 1024)
    apriori = Apriori(PARAMS)
    crds = {}

    def scan():
        blocks = []
        for off in range(0, data_len, BLOCK_SIZE):
            if off not in crds:
                crd, err = yield from cache.copen(BLOCK_SIZE, fh.fd, off)
                assert err == 0
                crds[off] = crd
            _, err, blk = yield from cache.cread(crds[off], 0, BLOCK_SIZE)
            assert err == 0
            blocks.append(decode_block(blk))
        return blocks

    def mine():
        t0 = sim.now
        apriori.frequent[1] = apriori.count_pass((yield from scan()), k=1)
        k = 2
        while k <= PARAMS.max_itemset_len and apriori.frequent[k - 1]:
            cands = apriori.gen_candidates(k)
            if not cands:
                break
            apriori.frequent[k] = apriori.count_pass(
                (yield from scan()), cands, k=k)
            k += 1
        elapsed = sim.now - t0
        # leave every region in remote memory for the next run
        yield from cache.detach(persist=True)
        return elapsed

    disk_before = platform.app.disk.stats.count("read.bytes")
    elapsed = sim.run(until=sim.process(mine()))
    disk_read = platform.app.disk.stats.count("read.bytes") - disk_before
    hits = cache.stats
    print(f"{run_label}: {elapsed:7.2f} s virtual, "
          f"disk read {int(disk_read) >> 10:5d} KB, "
          f"remote hits {int(hits.count('cread.remote_hits')):4d}, "
          f"local hits {int(hits.count('cread.local_hits')):4d}")
    return apriori.frequent, elapsed


def main() -> None:
    rng = np.random.default_rng(21)
    txns = generate_transactions(rng, PARAMS)
    data = encode_blocks(txns)
    print(f"dataset: {len(txns)} transactions, {len(data) >> 10} KB in "
          f"{len(data) // BLOCK_SIZE} blocks of 128 KB\n")

    sim = Simulator(seed=3)
    platform = Platform(sim, PlatformParams(
        transport="unet", store_payload=True, n_memory_hosts=4,
        imd_pool_bytes=2 * MB, local_cache_bytes=256 * 1024,
        app_fs_cache_dodo=256 * 1024, disk_capacity_bytes=256 * MB,
        fs_params=FsParams(extent_bytes=BLOCK_SIZE, scatter=True)),
        dodo=True)
    fs = platform.app.fs
    fs.create("retail", size=len(data))
    fh = fs.open("retail", "r+")

    def load():
        yield fs.write(fh, 0, len(data), data)
        yield fs.fsync(fh)

    sim.run(until=sim.process(load()))

    freq1, t1 = mine_once(platform, fh, len(data), "run 1 (cold)")
    freq2, t2 = mine_once(platform, fh, len(data), "run 2 (remote)")
    assert freq1 == freq2

    print(f"\nrun 2 speedup over run 1: {t1 / t2:.2f}x "
          "(regions persisted across runs)")
    top = sorted(freq2.get(3, freq2[2]).items(),
                 key=lambda kv: -kv[1])[:5]
    print("top frequent itemsets:")
    for items, count in top:
        print(f"  {items}: {count} transactions")


if __name__ == "__main__":
    main()
