#!/usr/bin/env python3
"""Out-of-core LU decomposition — the paper's ``lu`` application.

Factors a dense matrix too large for "application memory" by streaming
64-column-style slabs through the region-management library: the
triangle-scan re-reads hit the local region cache first, then remote
memory on the cluster, and only then the disk.  Runs the same
factorization with and without Dodo and verifies ``L @ U == A`` both
times.

Run:  python examples/out_of_core_lu.py
"""

import numpy as np

from repro.exp.platform import MB, Platform, PlatformParams
from repro.sim import Simulator
from repro.workloads import (LuParams, OutOfCoreLU, make_test_matrix,
                             unpack_lu)


def factor_once(use_dodo: bool, a: np.ndarray, params: LuParams):
    sim = Simulator(seed=2)
    platform = Platform(sim, PlatformParams(
        transport="unet", store_payload=True, n_memory_hosts=4,
        imd_pool_bytes=2 * MB, local_cache_bytes=96 * 1024,
        app_fs_cache_dodo=128 * 1024, app_fs_cache_baseline=224 * 1024,
        disk_capacity_bytes=256 * MB), dodo=True)
    ooc = OutOfCoreLU(platform, params, use_dodo=use_dodo,
                      policy="first-in")

    def proc():
        yield from ooc.load_matrix(a)
        t0 = sim.now
        lu = yield from ooc.factor()
        return lu, sim.now - t0

    lu, elapsed = sim.run(until=sim.process(proc()))
    stats = {}
    if use_dodo:
        stats = {k: int(v) for k, v in ooc.cache.stats.counters.items()
                 if k.startswith(("cread", "clone"))}
    return lu, elapsed, stats


def main() -> None:
    params = LuParams(n=192, slab_cols=16)
    rng = np.random.default_rng(11)
    a = make_test_matrix(rng, params.n)
    print(f"matrix: {params.n}x{params.n} doubles, "
          f"{params.n_slabs} slabs of {params.slab_cols} columns "
          f"({params.matrix_bytes >> 10} KB total)\n")

    for use_dodo in (False, True):
        label = "dodo" if use_dodo else "baseline"
        lu, elapsed, stats = factor_once(use_dodo, a, params)
        l, u = unpack_lu(lu)
        err = float(np.abs(l @ u - a).max())
        print(f"{label:9s} factor time {elapsed:8.3f} s (virtual), "
              f"max |LU - A| = {err:.2e}")
        if stats:
            print(f"{'':9s} region cache: {stats}")
    print("\ntriangle-scan re-reads were served by the local region cache"
          "\nand remote memory instead of the disk — that is Dodo's win.")


if __name__ == "__main__":
    main()
