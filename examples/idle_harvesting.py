#!/usr/bin/env python3
"""Idle-memory harvesting on a non-dedicated desktop cluster.

Shows the full Dodo control plane in action: resource monitors watch
console activity and load on eight desktop machines whose owners come and
go; idle machines are recruited (an idle memory daemon is forked and
registers its pool with the central manager) and reclaimed the moment
their owner returns — with the reclaim delay, the paper's headline
owner-impact metric, measured for every event.

Run:  python examples/idle_harvesting.py
"""

from repro.cluster import PreferenceRules, min_available_memory, never
from repro.cluster.cluster import Cluster, ClusterConfig, HostSpec
from repro.cluster.idleness import IdlePolicy
from repro.cluster.owner import Owner, OwnerParams
from repro.cluster.workstation import MB
from repro.core import CentralManager, DodoConfig, ResourceMonitor
from repro.sim import Simulator

N_DESKTOPS = 8
SIM_MINUTES = 30.0


def main() -> None:
    sim = Simulator(seed=7)
    hosts = [HostSpec("mgr")] + [
        HostSpec(f"desk{i}", total_mem_bytes=64 * MB)
        for i in range(N_DESKTOPS)]
    cluster = Cluster(sim, ClusterConfig(hosts=hosts))
    cfg = DodoConfig(
        store_payload=False, max_pool_bytes=16 * MB,
        idle_policy=IdlePolicy(window_s=60.0))  # 1 min for the demo

    cmd = CentralManager(sim, cluster["mgr"], cfg)
    rmds, owners = [], []
    for i in range(N_DESKTOPS):
        ws = cluster[f"desk{i}"]
        # Condor-style owner preferences: desk7's owner opted out entirely,
        # everyone else demands 8 MB of headroom beyond the idleness test.
        prefs = PreferenceRules([never()]) if i == 7 else \
            PreferenceRules([min_available_memory(8 * MB)])
        rmds.append(ResourceMonitor(sim, ws, cfg, cmd_host="mgr",
                                    preferences=prefs))
        owners.append(Owner(sim, ws, OwnerParams(
            active_mean_s=4 * 60.0, away_mean_s=8 * 60.0,
            background_job_prob=0.15), start_active=(i % 3 == 0)))

    print(f"{N_DESKTOPS} desktops, owners active ~4 min / away ~8 min, "
          f"idle window {cfg.idle_policy.window_s:.0f} s\n")
    print(f"{'time':>8s}  {'idle hosts':>10s}  {'harvested MB':>12s}")
    step = 120.0
    t = 0.0
    while t < SIM_MINUTES * 60.0:
        t += step
        sim.run(until=t)
        harvested = sum(ws.guest_memory for ws in cluster) / MB
        idle = sum(1 for r in rmds if r.recruited)
        print(f"{t / 60.0:7.1f}m  {idle:>10d}  {harvested:>12.0f}")

    recruits = sum(r.stats.count("recruits") for r in rmds)
    reclaims = sum(r.stats.count("reclaims") for r in rmds)
    delays = [d for r in rmds for d in r.stats.samples("reclaim_delay_s")]
    print(f"\nover {SIM_MINUTES:.0f} simulated minutes: "
          f"{recruits:.0f} recruitments, {reclaims:.0f} reclaims")
    if delays:
        print(f"owner reclaim delay: mean {1e3 * sum(delays) / len(delays):.2f} ms, "
              f"max {1e3 * max(delays):.2f} ms — 'virtually no delay'")
    print(f"idle-workstation directory now tracks: {sorted(cmd.iwd)}")


if __name__ == "__main__":
    main()
