#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one go.

Runs the Section 2 study (Figure 1, Table 1, Figure 2), the Section 5.1
disk microbenchmark, Figure 7 (lu + dmine), Figure 8 (all four synthetic
panels), the Section 5.3.1 non-dedicated evaluation and the design-choice
ablations, printing each in the paper's row/series format with the
paper's numbers alongside where it reports them.

Run:  python examples/reproduce_paper.py           (~4-6 minutes)
      python examples/reproduce_paper.py --quick   (smaller scales, ~1 min)
"""

import argparse
import sys
import time


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="smaller scales, ~1 minute total")
    args = parser.parse_args()
    t0 = time.time()

    from repro.exp import ablations, disk_cal, fig7, fig8, nondedicated, sec2

    days = 1.0 if args.quick else 4.0
    banner("Section 2 - Figure 1: cluster memory availability")
    print(sec2.format_fig1(sec2.run_fig1(days=days)))

    banner("Section 2 - Table 1: memory by use per host class")
    print(sec2.format_table1(sec2.run_table1(days=min(days, 2.0))))

    banner("Section 2 - Figure 2: per-workstation variation")
    print(sec2.format_fig2(sec2.run_fig2(days=days)))

    banner("Section 5.1 - disk bandwidth calibration")
    print(disk_cal.format_disk_calibration(disk_cal.run_disk_calibration()))

    banner("Section 5.3 - Figure 7: lu and dmine")
    print(fig7.format_fig7(fig7.run_fig7(
        scale_lu=1 / 256 if args.quick else 1 / 64,
        scale_dmine=1 / 64 if args.quick else 1 / 16)))

    banner("Section 5.3 - Figure 8: synthetic benchmarks")
    print(fig8.format_fig8(fig8.run_fig8(
        scale=1 / 256 if args.quick else 1 / 64,
        num_iter=3 if args.quick else 4)))

    banner("Section 5.3.1 - non-dedicated cluster")
    print(nondedicated.format_nondedicated(nondedicated.run_nondedicated(
        nondedicated.NonDedicatedParams(
            num_iter=3 if args.quick else 4,
            owner_active_mean_s=40.0, owner_away_mean_s=200.0))))

    banner("Ablations")
    print(ablations.format_allocator_ablation(
        ablations.run_allocator_ablation()))
    print()
    print(ablations.format_refraction_ablation(
        ablations.run_refraction_ablation(scale=1 / 256)))
    print()
    print(ablations.format_policy_ablation(
        ablations.run_policy_ablation(scale=1 / 256)))
    print()
    print(ablations.format_pregrant_ablation(
        ablations.run_pregrant_ablation()))

    print(f"\nall experiments regenerated in {time.time() - t0:.0f} s "
          "of wall time")
    return 0


if __name__ == "__main__":
    sys.exit(main())
