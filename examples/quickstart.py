#!/usr/bin/env python3
"""Quickstart: allocate remote memory and move real bytes through Dodo.

Builds the paper's evaluation platform (scaled down), then uses the raw
``libdodo`` API — mopen / mwrite / mread / msync / mclose — exactly as an
application written against Figure 3's interface would.  Everything runs
inside the discrete-event simulation; application code is a generator
that ``yield from``s the library calls.

Run:  python examples/quickstart.py
"""

from repro.exp.platform import MB, Platform, PlatformParams
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=1)
    # 4 memory hosts donating 4 MB each; real payload bytes end to end.
    params = PlatformParams(
        transport="udp", store_payload=True, n_memory_hosts=4,
        imd_pool_bytes=4 * MB, local_cache_bytes=1 * MB,
        app_fs_cache_dodo=1 * MB, disk_capacity_bytes=256 * MB)
    platform = Platform(sim, params, dodo=True)
    lib = platform.runtime()

    # Dodo regions are backed by a file: open it first (mopen needs a
    # writable descriptor, as in the paper).
    fs = platform.app.fs
    fs.create("dataset", size=1 * MB)
    fd = fs.open("dataset", "r+").fd

    message = b"idle memory is just a cache between RAM and disk " * 100

    def app():
        desc, err = yield from lib.mopen(len(message), fd, 0)
        print(f"[{sim.now * 1e3:8.3f} ms] mopen   -> descriptor {desc}")
        assert err == 0

        n, err = yield from lib.mwrite(desc, 0, len(message), message)
        print(f"[{sim.now * 1e3:8.3f} ms] mwrite  -> {n} bytes "
              "(remote + backing file, in parallel)")

        n, err, data = yield from lib.mread(desc, 0, len(message))
        print(f"[{sim.now * 1e3:8.3f} ms] mread   -> {n} bytes, "
              f"intact={data == message}")

        ret, err = yield from lib.msync(desc)
        print(f"[{sim.now * 1e3:8.3f} ms] msync   -> backing file durable")

        ret, err = yield from lib.mclose(desc)
        print(f"[{sim.now * 1e3:8.3f} ms] mclose  -> region freed")
        return data == message

    ok = sim.run(until=sim.process(app()))
    host_use = {imd.ws.name: imd.allocator.used_bytes
                for imd in platform.imds}
    print(f"\nround-trip intact: {ok}")
    print(f"remote pools after mclose (all zero): {host_use}")
    print(f"virtual time elapsed: {sim.now * 1e3:.3f} ms, "
          f"events processed: {sim.events_processed}")


if __name__ == "__main__":
    main()
