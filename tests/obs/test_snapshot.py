"""Tests for metrics snapshots: grouping, merging, summaries, files."""

import json

import pytest

from repro.metrics.recorder import Recorder, start_collection, \
    stop_collection
from repro.obs.snapshot import (group_name, merged_snapshot,
                                recorder_snapshot, snapshot, write_snapshot)


def test_group_name_strips_ephemeral_parts():
    assert group_name("rpc.client.ws03:5001") == "rpc.client.ws03"
    assert group_name("cmd#12") == "cmd"
    assert group_name("sock.alpha:17#3") == "sock.alpha"
    assert group_name("disk") == "disk"
    assert group_name("") == "recorder"


def test_recorder_snapshot_counters_and_summaries():
    r = Recorder("x")
    r.add("ops", 3)
    for v in (1.0, 2.0, 3.0, 4.0):
        r.sample("lat", v)
    snap = recorder_snapshot(r)
    assert snap["instances"] == 1
    assert snap["counters"] == {"ops": 3}
    lat = snap["samples"]["lat"]
    assert lat["count"] == 4
    assert lat["mean"] == pytest.approx(2.5)
    assert lat["min"] == 1.0 and lat["max"] == 4.0
    assert lat["p50"] == pytest.approx(2.5)
    assert lat["p99"] == pytest.approx(3.97)


def test_merged_snapshot_sums_counters_and_pools_samples():
    a, b = Recorder("x:1"), Recorder("x:2")
    a.add("ops", 2)
    b.add("ops", 3)
    a.sample("lat", 1.0)
    b.sample("lat", 3.0)
    snap = merged_snapshot([a, b])
    assert snap["instances"] == 2
    assert snap["counters"] == {"ops": 5}
    assert snap["samples"]["lat"]["count"] == 2
    assert snap["samples"]["lat"]["mean"] == pytest.approx(2.0)


def test_snapshot_groups_live_recorders():
    collected = start_collection()
    try:
        for port in (5001, 5002, 5003):
            Recorder(f"grouptest.sock:{port}").add("sent")
    finally:
        stop_collection(collected)
    snap = snapshot(meta={"k": "v"})
    assert snap["meta"] == {"k": "v"}
    group = snap["recorders"]["grouptest.sock"]
    assert group["instances"] == 3
    assert group["counters"]["sent"] == 3
    del collected


def test_collection_keeps_recorders_alive_for_snapshot():
    def make_and_drop():
        rec = Recorder("ephemeral.test")
        rec.add("hits", 7)
        del rec

    collected = start_collection()
    try:
        make_and_drop()
        snap = snapshot()
        assert snap["recorders"]["ephemeral.test"]["counters"]["hits"] == 7
    finally:
        stop_collection(collected)


def test_write_snapshot_is_sorted_json(tmp_path):
    collected = start_collection()
    try:
        Recorder("writetest").add("n", 1)
        path = tmp_path / "run.json"
        count = write_snapshot(str(path), meta={"exp": "unit"})
        text = path.read_text()
        parsed = json.loads(text)
        assert count == len(parsed["recorders"])
        assert "writetest" in parsed["recorders"]
        assert text.endswith("\n")
        assert json.dumps(parsed, sort_keys=True, indent=1) + "\n" == text
    finally:
        stop_collection(collected)
