"""Unit tests for the structured event log: filtering, export, run ids."""

import io
import json

import pytest

from repro.obs.eventlog import (LEVELS, NULL_EVENTLOG, EventLog,
                                default_eventlog, install_eventlog)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


def test_levels_filter_recording(sim):
    log = EventLog(level="warn")
    assert log.debug(sim, "imd", "noise") is None
    assert log.info(sim, "imd", "noise") is None
    assert log.warn(sim, "imd", "signal") is not None
    assert log.error(sim, "imd", "signal") is not None
    assert [e.level for e in log.events] == ["warn", "error"]
    with pytest.raises(ValueError):
        EventLog(level="loud")
    with pytest.raises(ValueError):
        log.emit(sim, "loud", "imd", "x")


def test_component_filter(sim):
    log = EventLog(level="debug", components={"manager"})
    log.info(sim, "manager", "region.placed", host="w0")
    log.info(sim, "imd", "imd.start", host="w0")
    assert [e.component for e in log.events] == ["manager"]


def test_select_and_counts(sim):
    log = EventLog(level="debug")
    log.debug(sim, "net", "fastpath.engage")
    log.debug(sim, "net", "fastpath.engage")
    log.warn(sim, "nic", "nic.down", host="w3")
    assert len(log.select(component="net")) == 2
    assert len(log.select(min_level="warn")) == 1
    assert len(log.select(event="nic.down")) == 1
    assert log.counts() == {"net/fastpath.engage": 2, "nic/nic.down": 1}


def test_query_filters_and_time_window(sim):
    log = EventLog(level="debug")
    log.info(sim, "rmd", "node.recruited", host="w0")
    sim.run(until=5.0)
    log.info(sim, "rmd", "node.reclaimed", host="w0")
    log.warn(sim, "manager", "region.stale", host="w1")
    sim.run(until=10.0)
    log.debug(sim, "net", "fastpath.engage", host="w1")

    assert [e.event for e in log.query(component="rmd")] == \
        ["node.recruited", "node.reclaimed"]
    assert [e.event for e in log.query(level="warn")] == ["region.stale"]
    assert [e.event for e in log.query(host="w1")] == \
        ["region.stale", "fastpath.engage"]
    assert [e.time for e in log.query(since=5.0)] == [5.0, 5.0, 10.0]
    # until is exclusive: events at t=5 survive since=0, until=5 drops them
    assert [e.event for e in log.query(until=5.0)] == ["node.recruited"]
    assert [e.event for e in log.query(since=5.0, until=10.0)] == \
        ["node.reclaimed", "region.stale"]
    assert [e.event for e in log.query(event="node.reclaimed")] == \
        ["node.reclaimed"]
    assert log.query(run=2) == []


def test_query_limit_keeps_the_tail(sim):
    log = EventLog(level="debug")
    for i in range(6):
        log.info(sim, "manager", "region.placed", host="w0", n=i)
    tail = log.query(limit=2)
    assert [e.fields["n"] for e in tail] == [4, 5]
    assert log.query(limit=0) == []
    assert len(log.query(limit=None)) == 6


def test_query_rejects_unknown_level(sim):
    log = EventLog(level="debug")
    with pytest.raises(ValueError):
        log.query(level="loud")


def test_jsonl_export_shape(sim):
    log = EventLog(level="info")
    log.info(sim, "rmd", "node.recruited", host="w1", epoch=3,
             pool_bytes=1024)
    buf = io.StringIO()
    assert log.dump_jsonl(buf) == 1
    record = json.loads(buf.getvalue())
    assert record["component"] == "rmd"
    assert record["event"] == "node.recruited"
    assert record["host"] == "w1"
    assert record["fields"] == {"epoch": 3, "pool_bytes": 1024}
    assert record["run"] == 1 and record["seq"] == 1
    assert record["t"] == sim.now


def test_format_text_tail(sim):
    log = EventLog(level="info")
    for i in range(5):
        log.info(sim, "manager", "region.placed", host="w0", offset=i)
    text = log.format_text(last=2)
    assert text.count("\n") == 1
    assert "offset=4" in text and "offset=0" not in text


def test_run_ids_without_telemetry_are_first_emission_order(sim):
    other = Simulator(seed=2)
    log = EventLog(level="info")
    log.info(other, "imd", "imd.start")
    log.info(sim, "imd", "imd.start")
    log.info(other, "imd", "imd.exit")
    assert [e.run for e in log.events] == [1, 2, 1]


def test_null_eventlog_is_inert(sim):
    assert NULL_EVENTLOG.enabled is False
    assert NULL_EVENTLOG.emit(sim, "info", "imd", "x") is None
    assert NULL_EVENTLOG.events == []


def test_install_restores_previous():
    log = EventLog()
    previous = install_eventlog(log)
    try:
        assert default_eventlog() is log
    finally:
        install_eventlog(previous)
    assert default_eventlog() is previous


def test_level_table_is_ordered():
    assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warn"] < LEVELS["error"]
