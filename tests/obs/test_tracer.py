"""Tests for the span tracer: nesting, causality, the null tracer."""

from repro.obs.tracer import NULL_TRACER, Tracer, default_tracer, install
from repro.sim import Simulator


def traced_sim(**kwargs):
    sim = Simulator()
    sim.tracer = Tracer(**kwargs)
    return sim


def test_span_records_times_and_tags():
    sim = traced_sim()

    def proc():
        span = sim.tracer.begin(sim, "work", "lib", {"a": 1})
        yield sim.timeout(2.5)
        sim.tracer.end(sim, span, {"b": 2})

    sim.run(until=sim.process(proc()))
    (span,) = sim.tracer.spans
    assert (span.start, span.end) == (0.0, 2.5)
    assert span.duration == 2.5
    assert span.tags == {"a": 1, "b": 2}
    assert span.name == "work" and span.component == "lib"


def test_same_track_spans_nest():
    sim = traced_sim()

    def proc():
        outer = sim.tracer.begin(sim, "outer", "lib")
        inner = sim.tracer.begin(sim, "inner", "lib")
        yield sim.timeout(1.0)
        sim.tracer.end(sim, inner)
        sim.tracer.end(sim, outer)

    sim.run(until=sim.process(proc()))
    outer, inner = sim.tracer.spans
    assert outer.parent_id == 0
    assert inner.parent_id == outer.span_id
    assert inner.track == outer.track


def test_spawned_process_inherits_open_span_as_parent():
    sim = traced_sim()

    def child():
        span = sim.tracer.begin(sim, "child-work", "lib")
        yield sim.timeout(1.0)
        sim.tracer.end(sim, span)

    def parent():
        span = sim.tracer.begin(sim, "parent-work", "lib")
        yield sim.process(child())
        sim.tracer.end(sim, span)

    sim.run(until=sim.process(parent()))
    parent_span, child_span = sim.tracer.spans
    assert child_span.parent_id == parent_span.span_id
    assert child_span.track != parent_span.track  # its own process


def test_sibling_processes_get_distinct_tracks():
    sim = traced_sim()
    tracks = []

    def worker():
        span = sim.tracer.begin(sim, "w", "lib")
        yield sim.timeout(0.5)
        sim.tracer.end(sim, span)
        tracks.append(span.track)

    a = sim.process(worker())
    b = sim.process(worker())
    sim.run(until=a)
    sim.run(until=b)
    assert len(set(tracks)) == 2


def test_end_is_idempotent_and_tolerates_none():
    sim = traced_sim()
    span = sim.tracer.begin(sim, "x", "lib")
    sim.tracer.end(sim, span)
    first_end = span.end
    sim.tracer.end(sim, span, {"late": True})  # no-op
    sim.tracer.end(sim, None)                  # no-op
    assert span.end == first_end
    assert not span.tags or "late" not in span.tags


def test_instant_has_zero_duration():
    sim = traced_sim()
    marker = sim.tracer.instant(sim, "mark", "kernel", {"k": 1})
    assert marker.start == marker.end == 0.0
    assert marker.duration == 0.0


def test_finished_and_components_and_clear():
    sim = traced_sim()
    sim.tracer.begin(sim, "open", "lib")
    sim.tracer.instant(sim, "done", "disk")
    assert [s.name for s in sim.tracer.finished()] == ["done"]
    assert sim.tracer.components() == {"lib", "disk"}
    sim.tracer.clear()
    assert sim.tracer.spans == []


def test_null_tracer_is_inert_and_default():
    assert default_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled
    sim = Simulator()
    assert sim.tracer is NULL_TRACER
    assert NULL_TRACER.begin(sim, "x", "lib") is None
    NULL_TRACER.end(sim, None)
    assert NULL_TRACER.instant(sim, "x", "lib") is None
    assert NULL_TRACER.spans == []


def test_install_swaps_and_restores():
    tracer = Tracer()
    previous = install(tracer)
    try:
        assert default_tracer() is tracer
        assert Simulator().tracer is tracer
    finally:
        install(previous)
    assert default_tracer() is NULL_TRACER
    assert Simulator().tracer is NULL_TRACER


def test_kernel_events_record_dispatch_and_wakeup():
    sim = traced_sim(kernel_events=True)

    def proc():
        yield sim.timeout(1.0)

    sim.run(until=sim.process(proc()))
    names = {s.name for s in sim.tracer.spans}
    assert "wakeup" in names
    assert "dispatch" in names


def test_kernel_events_off_by_default():
    sim = traced_sim()

    def proc():
        yield sim.timeout(1.0)

    sim.run(until=sim.process(proc()))
    assert sim.tracer.spans == []
