"""Invariant-audit tests: clean runs stay clean, corruption is caught.

The auditor's value rests on two promises: shipped experiments produce
zero findings, and a deliberately corrupted cross-component state (a
region-directory entry pointing at the wrong pool offset, an allocator
whose books stopped balancing, a workstation mis-counting donated
memory) is detected at the next pass.
"""

import dataclasses

import pytest

from repro.core.allocator import BuddyAllocator, FirstFitAllocator
from repro.obs.audit import AuditError, Auditor, make_auditor
from repro.obs.eventlog import EventLog
from repro.obs.timeseries import Telemetry, install_telemetry
from repro.sim import Simulator

from repro.testing import make_backing_file, make_platform, run


@pytest.fixture
def sim():
    return Simulator(seed=23)


def open_region(sim, platform, length=64 * 1024):
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        desc, err = yield from lib.mopen(length, fd, 0)
        assert err == 0
        return desc

    run(sim, proc())
    return lib


# -- clean runs --------------------------------------------------------------

def test_clean_platform_audits_clean(sim):
    platform = make_platform(sim)
    open_region(sim, platform)
    auditor = Auditor(mode="raise")
    assert platform.audit(auditor, teardown=False) == []
    assert platform.audit(auditor, teardown=True) == []
    assert auditor.passes == 2
    assert "no inconsistencies" in auditor.format_report()


def test_clean_fig7_smoke_audits_clean():
    from repro.exp.fig7 import run_lu
    auditor = Auditor(mode="raise")
    telemetry = Telemetry(interval_s=0.5, auditor=auditor)
    previous = install_telemetry(telemetry)
    try:
        results = run_lu("udp", scale=1 / 256)
        telemetry.finalize()
    finally:
        install_telemetry(previous)
    assert results["speedup"] > 1.0
    assert auditor.passes > 0 and auditor.findings == []


# -- corruption detection ----------------------------------------------------

def corrupt_rd_entry(platform, **changes):
    key, entry = next(iter(platform.cmd.rd.items()))
    entry.struct = dataclasses.replace(entry.struct, **changes)
    return key


def test_corrupted_directory_offset_is_detected(sim):
    platform = make_platform(sim)
    open_region(sim, platform)
    corrupt_rd_entry(platform, pool_offset=7_777_216)
    findings = platform.audit(Auditor(mode="warn"), teardown=False)
    assert [f.check for f in findings] == ["directory.missing_region"]


def test_corrupted_directory_length_is_detected(sim):
    platform = make_platform(sim)
    open_region(sim, platform, length=64 * 1024)
    corrupt_rd_entry(platform, length=128 * 1024)
    findings = platform.audit(Auditor(mode="warn"), teardown=False)
    assert "directory.length_mismatch" in [f.check for f in findings]


def test_raise_mode_raises_and_logs(sim):
    platform = make_platform(sim)
    open_region(sim, platform)
    corrupt_rd_entry(platform, pool_offset=7_777_216)
    log = EventLog(level="info")
    auditor = Auditor(mode="raise", eventlog=log)
    with pytest.raises(AuditError, match="directory.missing_region"):
        platform.audit(auditor, teardown=False)
    assert auditor.findings  # recorded even though the pass raised
    assert log.select(component="audit", min_level="error")


def test_donation_miscount_is_detected(sim):
    platform = make_platform(sim)
    open_region(sim, platform)
    platform.imds[0].ws.guest_memory += 4096
    findings = platform.audit(Auditor(mode="warn"), teardown=False)
    assert "donation.accounting" in [f.check for f in findings]


def test_orphan_region_is_detected_at_teardown_only(sim):
    platform = make_platform(sim)
    open_region(sim, platform)
    imd = next(i for i in platform.imds if i._regions)
    offset = imd.allocator.alloc(4096)
    imd._regions[offset] = 4096  # hosted but never entered in the RD
    assert platform.audit(Auditor(mode="warn"), teardown=False) == []
    findings = platform.audit(Auditor(mode="warn"), teardown=True)
    assert "directory.orphan_region" in [f.check for f in findings]


# -- allocator self-audit ----------------------------------------------------

@pytest.mark.parametrize("make", [
    lambda: FirstFitAllocator(1 << 20),
    lambda: BuddyAllocator(1 << 20),
])
def test_allocator_check_passes_through_a_workout(make):
    alloc = make()
    offs = [alloc.alloc(12_000) for _ in range(20)]
    for off in offs[::2]:
        alloc.free(off)
    alloc.coalesce()
    assert alloc.check() == []


def test_firstfit_check_detects_overlap_and_leak():
    alloc = FirstFitAllocator(1 << 20)
    off = alloc.alloc(8192)
    alloc._allocated[off + 4096] = 8192  # overlaps the first block
    problems = alloc.check()
    assert any("overlap" in p for p in problems)
    assert any("sum to" in p for p in problems)


def test_buddy_check_detects_misalignment():
    alloc = BuddyAllocator(1 << 20)
    off = alloc.alloc(8192)
    alloc._allocated[off + 1] = alloc._allocated.pop(off)
    assert any("aligned" in p for p in alloc.check())


def test_make_auditor_off_is_none():
    assert make_auditor("off") is None
    assert make_auditor("warn").mode == "warn"
    with pytest.raises(ValueError):
        Auditor(mode="loud")
