"""Property tests for the streaming percentile sketch.

The sketch's contract is a *proven* relative-error bound: for any
insert sequence and any quantile ``q``, the answer is within ``alpha``
relative error of the exact nearest-rank quantile.  Hypothesis drives
that bound directly against sorted-list ground truth; the remaining
tests pin mergeability, the JSON round trip, and the zero bucket.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.slo.sketch import ZERO_THRESHOLD, LatencySketch

#: strictly positive latencies spanning the simulator's realistic range
#: (nanoseconds to ~11 days of virtual time)
latencies = st.floats(min_value=1e-9, max_value=1e6,
                      allow_nan=False, allow_infinity=False)
quantiles = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)


def exact_quantile(values, q):
    """Nearest-rank quantile over the raw values (the ground truth)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@settings(max_examples=200, deadline=None)
@given(values=st.lists(latencies, min_size=1, max_size=300),
       q=quantiles,
       alpha=st.sampled_from([0.001, 0.01, 0.05, 0.1]))
def test_quantile_within_documented_error_bound(values, q, alpha):
    sketch = LatencySketch(alpha=alpha)
    sketch.extend(values)
    answer = sketch.quantile(q)
    truth = exact_quantile(values, q)
    # tiny float slack: a value exactly on a bucket boundary may round
    # into the neighbor bucket, overshooting the bound by one ulp-scale
    assert abs(answer - truth) <= alpha * truth * (1 + 1e-9) + 1e-15, \
        f"alpha={alpha} q={q}: sketch {answer} vs exact {truth}"


@settings(max_examples=100, deadline=None)
@given(values=st.lists(latencies, min_size=1, max_size=200))
def test_p99_p999_within_one_percent(values):
    """The bound at the repo's default alpha, at the tail quantiles the
    SLO layer actually reports."""
    sketch = LatencySketch()     # alpha = 0.01
    sketch.extend(values)
    for q in (0.5, 0.99, 0.999):
        truth = exact_quantile(values, q)
        assert abs(sketch.quantile(q) - truth) <= 0.01 * truth * (1 + 1e-9)


@settings(max_examples=100, deadline=None)
@given(a=st.lists(latencies, max_size=100),
       b=st.lists(latencies, max_size=100))
def test_merge_equals_extend_of_concatenation(a, b):
    merged = LatencySketch()
    merged.extend(a)
    other = LatencySketch()
    other.extend(b)
    merged.merge(other)
    direct = LatencySketch()
    direct.extend(a + b)
    doc_m, doc_d = merged.to_json(), direct.to_json()
    # `total` is a float accumulator: merge adds subtotals, extend adds
    # element-wise, so the last ulp may differ — everything else (and
    # hence every quantile answer) must be exactly equal
    assert math.isclose(doc_m.pop("total"), doc_d.pop("total"),
                        rel_tol=1e-12, abs_tol=1e-15)
    assert doc_m == doc_d


@settings(max_examples=100, deadline=None)
@given(values=st.lists(latencies, max_size=150))
def test_json_round_trip_is_exact_and_canonical(values):
    sketch = LatencySketch()
    sketch.extend(values)
    doc = sketch.to_json()
    clone = LatencySketch.from_json(json.loads(json.dumps(doc)))
    assert clone.to_json() == doc
    for q in (0.0, 0.5, 0.99, 1.0):
        assert clone.quantile(q) == sketch.quantile(q)


@settings(max_examples=50, deadline=None)
@given(values=st.lists(latencies, min_size=1, max_size=100))
def test_quantiles_are_monotone_and_clamped(values):
    sketch = LatencySketch()
    sketch.extend(values)
    answers = [sketch.quantile(q)
               for q in (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)]
    assert answers == sorted(answers)
    assert min(values) <= answers[0] and answers[-1] <= max(values)


def test_empty_and_validation():
    sketch = LatencySketch()
    assert sketch.quantile(0.5) is None
    assert sketch.mean() == 0.0
    assert len(sketch) == 0
    assert sketch.percentiles() == {"p50": None, "p90": None,
                                    "p99": None, "p999": None}
    with pytest.raises(ValueError):
        sketch.add(-1.0)
    with pytest.raises(ValueError):
        sketch.quantile(1.5)
    with pytest.raises(ValueError):
        LatencySketch(alpha=0.0)
    with pytest.raises(ValueError):
        sketch.merge(LatencySketch(alpha=0.5))


def test_zero_bucket():
    """Zeros (an instant request) land in the dedicated zero bucket and
    report as exactly 0.0 at the matching ranks."""
    sketch = LatencySketch()
    sketch.extend([0.0, ZERO_THRESHOLD, 0.010, 0.020])
    assert sketch.zero == 2
    assert sketch.quantile(0.0) == 0.0
    assert sketch.quantile(0.5) == 0.0
    assert sketch.quantile(1.0) == pytest.approx(0.020, rel=0.01)
    assert sketch.mean() == pytest.approx(0.030 / 4)


def test_mean_is_exact_not_sketched():
    sketch = LatencySketch()
    sketch.extend([0.001, 0.002, 0.003])
    assert sketch.mean() == pytest.approx(0.002, abs=1e-15)


def test_memory_is_logarithmic_in_range():
    """10^6 distinct values over six decades need only O(log range)
    buckets — the reason tails stay cheap at 2000-host scale."""
    sketch = LatencySketch()
    for i in range(100_000):
        sketch.add(1e-6 * (1 + (i * 7919) % 999_983))
    assert sketch.count == 100_000
    expected = math.log(1e6) / math.log(sketch._gamma)
    assert len(sketch.buckets) <= expected + 2
