"""SLO engine unit tests: spec validation, burn rates, alert windows.

Drives the engine with hand-built request records and a scripted clock
so the multi-window burn-rate rule is checked against arithmetic done
by hand: the alert must require *both* windows above threshold, must
emit exactly one start/stop event pair per episode, and the series it
records must flow into an ordinary ``RunTelemetry``.
"""

import pytest

from repro.obs.eventlog import EventLog
from repro.obs.fleet.model import build_slo_summary, slo_status
from repro.obs.slo import DEFAULT_SPECS, SLOSpec, SloEngine
from repro.obs.timeseries import RunTelemetry


class FakeSim:
    """A stand-in simulator: the engine and event log only read .now."""

    def __init__(self):
        self.now = 0.0


class FakeRecord:
    """The three fields SLOSpec.is_good reads off a request record."""

    def __init__(self, kind, latency=0.001, outcome="local"):
        self.kind = kind
        self.latency = latency
        self.outcome = outcome


def test_spec_validation():
    with pytest.raises(ValueError, match="objective"):
        SLOSpec("x", kind="mread", objective="throughput", target=0.9)
    with pytest.raises(ValueError, match="threshold_s"):
        SLOSpec("x", kind="mread", objective="latency", target=0.9)
    with pytest.raises(ValueError, match="target"):
        SLOSpec("x", kind="mread", objective="availability", target=1.0)
    with pytest.raises(ValueError, match="windows"):
        SLOSpec("x", kind="mread", objective="availability", target=0.9,
                fast_window_s=5.0, slow_window_s=1.0)
    with pytest.raises(ValueError, match="burn_threshold"):
        SLOSpec("x", kind="mread", objective="availability", target=0.9,
                burn_threshold=0.0)
    with pytest.raises(ValueError, match="duplicate"):
        SloEngine(specs=[DEFAULT_SPECS[0], DEFAULT_SPECS[0]])


def test_is_good_semantics():
    latency = SLOSpec("l", kind="mread", objective="latency",
                      threshold_s=0.010, target=0.9)
    avail = SLOSpec("a", kind="mread", objective="availability",
                    target=0.9)
    fast = FakeRecord("mread", latency=0.005)
    slow = FakeRecord("mread", latency=0.050)
    failed = FakeRecord("mread", latency=0.001, outcome="failed")
    assert latency.is_good(fast) and not latency.is_good(slow)
    assert not latency.is_good(failed)      # failure is never good
    assert avail.is_good(fast) and avail.is_good(slow)
    assert not avail.is_good(failed)


def feed(engine, sim, kind, n, **kwargs):
    for _ in range(n):
        engine.observe(sim, FakeRecord(kind, **kwargs))


def test_multi_window_burn_rate_alert_lifecycle():
    """Healthy traffic, then a failure cliff, then recovery: the alert
    must wait for the slow window to confirm the fast window, fire
    once, and stop once the slow window drains."""
    spec = SLOSpec("avail", kind="mread", objective="availability",
                   target=0.9, fast_window_s=2.0, slow_window_s=10.0,
                   burn_threshold=2.0)
    sim = FakeSim()
    eventlog = EventLog(level="debug")
    engine = SloEngine(specs=[spec], eventlog=eventlog)
    run = RunTelemetry(run_id=1, interval_s=1.0)

    # 20 s of healthy traffic: burn stays 0, no alert
    for t in range(20):
        sim.now = float(t)
        feed(engine, sim, "mread", 10)
        engine.sample(run, sim, sim.now)
    alerting = run.get("slo", "avail", "alerting")
    assert alerting.values == [0.0] * 20

    # a cliff: everything fails.  bad fraction 1.0 => burn 10x in both
    # windows once the fast window is saturated
    fired_at = None
    for t in range(20, 26):
        sim.now = float(t)
        feed(engine, sim, "mread", 10, outcome="failed")
        engine.sample(run, sim, sim.now)
        if fired_at is None \
                and run.get("slo", "avail", "alerting").values[-1]:
            fired_at = t
    assert fired_at is not None, "cliff never fired the alert"
    starts = eventlog.select(component="slo", event="slo.alert.start")
    assert len(starts) == 1
    assert starts[0].level == "warn"
    assert starts[0].fields["burn_fast"] >= 2.0
    assert starts[0].fields["burn_slow"] >= 2.0

    # recovery: healthy traffic again until the slow window drains
    stopped_at = None
    for t in range(26, 45):
        sim.now = float(t)
        feed(engine, sim, "mread", 10)
        engine.sample(run, sim, sim.now)
        if stopped_at is None \
                and not run.get("slo", "avail", "alerting").values[-1]:
            stopped_at = t
    assert stopped_at is not None, "alert never cleared after recovery"
    stops = eventlog.select(component="slo", event="slo.alert.stop")
    assert len(stops) == 1 and stops[0].level == "info"
    assert stops[0].time == float(stopped_at)

    # exactly one episode end to end
    summaries = engine.spec_summaries()
    assert summaries[0]["alerts"] == 1
    assert summaries[0]["alerting"] is False


def test_fast_window_blip_alone_does_not_alert():
    """A short blip saturates the fast window but not the slow one:
    the multi-window rule must suppress it."""
    spec = SLOSpec("avail", kind="mread", objective="availability",
                   target=0.9, fast_window_s=2.0, slow_window_s=10.0,
                   burn_threshold=2.0)
    sim = FakeSim()
    engine = SloEngine(specs=[spec])
    run = RunTelemetry(run_id=1, interval_s=1.0)
    for t in range(30):
        sim.now = float(t)
        # one bad second at t=20 amid heavy healthy traffic
        bad = 2 if t == 20 else 0
        feed(engine, sim, "mread", 50 - bad)
        feed(engine, sim, "mread", bad, outcome="failed")
        engine.sample(run, sim, sim.now)
    assert run.get("slo", "avail", "alerting").values == [0.0] * 30
    fast = run.get("slo", "avail", "burn_fast").values
    slow = run.get("slo", "avail", "burn_slow").values
    assert max(fast) > max(slow)       # the blip hit the fast window


def test_finalize_emits_summary_with_verdict():
    spec = SLOSpec("lat", kind="cread", objective="latency",
                   threshold_s=0.010, target=0.9)
    sim = FakeSim()
    eventlog = EventLog(level="debug")
    engine = SloEngine(specs=[spec], eventlog=eventlog)
    run = RunTelemetry(run_id=1, interval_s=1.0)
    feed(engine, sim, "cread", 8, latency=0.005)
    feed(engine, sim, "cread", 2, latency=0.050)
    engine.sample(run, sim, 0.0)
    engine.finalize(run, sim)
    (summary,) = eventlog.select(component="slo", event="slo.summary")
    assert summary.level == "warn"               # 0.8 < target 0.9
    assert summary.fields["good"] == 8
    assert summary.fields["total"] == 10
    assert summary.fields["compliance"] == pytest.approx(0.8)
    assert summary.fields["met"] is False


def test_specs_ignore_other_kinds_and_quiet_specs_record_nothing():
    sim = FakeSim()
    engine = SloEngine()          # DEFAULT_SPECS: mread + cread
    run = RunTelemetry(run_id=1, interval_s=1.0)
    feed(engine, sim, "mwrite", 5)        # matches no spec
    engine.sample(run, sim, 0.0)
    assert run.get("slo", "mread-latency", "compliance") is None
    assert run.get("slo", "cread-latency", "compliance") is None
    engine.finalize(run, sim)             # no eventlog, no traffic: no-op
    for summary in engine.spec_summaries():
        assert summary["total"] == 0
        assert summary["compliance"] is None
        assert summary["met"] is None


# ---------------------------------------------------------------------------
# The fleet model over recorded slo series (the /api/slo + repro top path)
# ---------------------------------------------------------------------------

def make_slo_run():
    run = RunTelemetry(run_id=1, interval_s=1.0)
    for t in range(3):
        run.record("slo", "mread", "requests", "count", float(t), 10 + t)
        run.record("slo", "mread", "p50", "s", float(t), 0.002)
        run.record("slo", "mread", "p99", "s", float(t), 0.015)
        run.record("slo", "mread", "p999", "s", float(t), 0.018)
        run.record("slo", "spec-a", "compliance", "ratio", float(t), 0.97)
        run.record("slo", "spec-a", "burn_fast", "x", float(t), 0.5)
        run.record("slo", "spec-a", "burn_slow", "x", float(t), 0.5)
        run.record("slo", "spec-a", "alerting", "bool", float(t), 0.0)
    return run


def test_build_slo_summary_splits_kinds_and_specs():
    kinds, specs = build_slo_summary(make_slo_run())
    assert [k["kind"] for k in kinds] == ["mread"]
    assert kinds[0]["requests"] == 12 and kinds[0]["p999"] == 0.018
    assert [s["spec"] for s in specs] == ["spec-a"]
    row = specs[0]
    assert row["compliance"] == 0.97 and row["alerting"] is False
    # no slo.summary events handed in: summary-only keys degrade to None
    assert row["target"] is None and row["met"] is None
    assert row["status"] == "ok"


def test_build_slo_summary_merges_summary_events():
    sim = FakeSim()
    sim.now = 2.0
    eventlog = EventLog(level="debug")
    eventlog.emit(sim, "warn", "slo", "slo.summary", spec="spec-a",
                  kind="mread", objective="availability", target=0.999,
                  good=97, total=100, compliance=0.97, met=False,
                  alerts=1)
    _, specs = build_slo_summary(make_slo_run(), eventlog)
    row = specs[0]
    assert row["target"] == 0.999 and row["met"] is False
    assert row["good"] == 97 and row["alerts"] == 1
    assert row["status"] == "violated"


def test_slo_status_vocabulary():
    assert slo_status({"compliance": None}) == "n/a"
    assert slo_status({"compliance": 0.5, "alerting": True}) == "burning"
    assert slo_status({"compliance": 0.5, "met": False}) == "violated"
    assert slo_status({"compliance": 0.5, "target": 0.9}) == "violated"
    assert slo_status({"compliance": 0.99, "target": 0.9}) == "ok"
    assert slo_status({"compliance": 0.99}) == "ok"


def test_run_without_slo_series_yields_empty_rows():
    run = RunTelemetry(run_id=1, interval_s=1.0)
    run.record("cluster", "cluster", "donated_bytes", "bytes", 0.0, 1.0)
    kinds, specs = build_slo_summary(run)
    assert kinds == [] and specs == []
