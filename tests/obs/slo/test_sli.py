"""Unit tests for per-request SLI collection and critical paths.

Drives a real tracer + simulator through hand-built span trees so the
attribution math is checked against arithmetic done by hand: stage
blame must sum to the request latency exactly, segments must tile the
request window contiguously, and the outcome classifier must follow
its documented precedence.
"""

import pytest

from repro.obs.slo import (OUTCOMES, STAGE_ORDER, SliCollector, attach_sli,
                           request_kind, stage_of)
from repro.obs.tracer import Tracer
from repro.sim import Simulator


def make_collector():
    sim = Simulator(seed=1)
    tracer = Tracer()
    sli = SliCollector()
    attach_sli(tracer, sli)
    return sim, tracer, sli


def run_spans(script):
    """Run ``script(sim, tracer)`` as a process; return the collector."""
    sim, tracer, sli = make_collector()
    sim.run(until=sim.process(script(sim, tracer)))
    return sli


def test_stage_mapping_covers_every_component():
    assert stage_of("lib") == "client"
    assert stage_of("regionlib") == "client"
    assert stage_of("rpc") == "rpc"
    assert stage_of("net") == "net"
    assert stage_of("imd") == "imd"
    assert stage_of("disk") == "disk"
    assert stage_of("pagecache") == "disk"
    assert stage_of("manager") == "manager"
    assert stage_of("something-new") == "client"    # unknown -> client
    assert set(STAGE_ORDER) >= set(stage_of(c) for c in
                                   ("lib", "rpc", "net", "imd", "disk",
                                    "manager"))


def test_request_kind_recognizes_roots_only():
    class FakeSpan:
        def __init__(self, name, component):
            self.name, self.component = name, component

    assert request_kind(FakeSpan("mread", "lib")) == "mread"
    assert request_kind(FakeSpan("cread", "regionlib")) == "cread"
    assert request_kind(FakeSpan("rpc.read", "rpc")) == "rpc.read"
    assert request_kind(FakeSpan("bulk.send", "net")) == "bulk.send"
    assert request_kind(FakeSpan("rpc.retry.read", "rpc")) is None
    assert request_kind(FakeSpan("mread.page", "lib")) is None
    assert request_kind(FakeSpan("disk.read", "disk")) is None
    assert request_kind(FakeSpan("transit", "net")) is None


def test_critical_path_decomposition_by_hand():
    """mread [0, 10ms]: rpc.read [0, 5] with nested net [2, 5], a 1 ms
    client gap [5, 6], then disk [6, 10].  Innermost wins, uncovered
    time belongs to the root."""
    def script(sim, tracer):
        root = tracer.begin(sim, "mread", "lib")
        rpc = tracer.begin(sim, "rpc.read", "rpc")
        yield sim.timeout(0.002)
        net = tracer.begin(sim, "transit", "net")
        yield sim.timeout(0.003)
        tracer.end(sim, net)
        tracer.end(sim, rpc)
        yield sim.timeout(0.001)
        disk = tracer.begin(sim, "disk.read", "disk")
        yield sim.timeout(0.004)
        tracer.end(sim, disk)
        tracer.end(sim, root)

    sli = run_spans(script)
    records = {r.kind: r for r in sli.iter_records()}
    assert set(records) == {"mread", "rpc.read"}

    mread = records["mread"]
    assert mread.latency == pytest.approx(0.010)
    assert mread.stages["rpc"] == pytest.approx(0.002)
    assert mread.stages["net"] == pytest.approx(0.003)
    assert mread.stages["client"] == pytest.approx(0.001)
    assert mread.stages["disk"] == pytest.approx(0.004)
    assert sum(mread.stages.values()) == pytest.approx(mread.latency)
    assert mread.dominant == "disk"
    assert mread.outcome == "disk-fallback"

    # segments tile the window contiguously, in order
    assert [s[2] for s in mread.segments] == ["rpc", "net", "client",
                                              "disk"]
    assert mread.segments[0][0] == mread.start
    assert mread.segments[-1][1] == mread.end
    for (_, hi, _s), (lo, _, _s2) in zip(mread.segments,
                                         mread.segments[1:]):
        assert hi == lo

    # the nested rpc.read request got its own, finer record
    rpc_rec = records["rpc.read"]
    assert rpc_rec.stages["rpc"] == pytest.approx(0.002)
    assert rpc_rec.stages["net"] == pytest.approx(0.003)
    assert rpc_rec.outcome == "remote-imd"


def test_outcome_precedence():
    """failed > retried > disk-fallback > remote-imd > local."""
    def script(sim, tracer):
        # local: no rpc/net/imd/disk time at all
        local = tracer.begin(sim, "cread", "regionlib")
        yield sim.timeout(0.001)
        tracer.end(sim, local)
        # failed beats everything, even with disk time inside
        failed = tracer.begin(sim, "mwrite", "lib")
        disk = tracer.begin(sim, "disk.write", "disk")
        yield sim.timeout(0.001)
        tracer.end(sim, disk)
        failed.tag("err", "eio")
        tracer.end(sim, failed)
        # retried: an rpc descendant with attempts > 1
        retried = tracer.begin(sim, "mread", "lib")
        rpc = tracer.begin(sim, "rpc.read", "rpc")
        rpc.tag("attempts", 2)
        yield sim.timeout(0.001)
        tracer.end(sim, rpc)
        tracer.end(sim, retried)

    sli = run_spans(script)
    outcomes = {r.kind: r.outcome for r in sli.iter_records()
                if r.kind in ("cread", "mwrite", "mread")}
    assert outcomes == {"cread": "local", "mwrite": "failed",
                        "mread": "retried"}
    for outcome in outcomes.values():
        assert outcome in OUTCOMES


def test_zero_duration_request_records_cleanly():
    def script(sim, tracer):
        span = tracer.begin(sim, "msync", "lib")
        tracer.end(sim, span)        # instant: nothing dirty to push
        yield sim.timeout(0.0)

    sli = run_spans(script)
    (record,) = list(sli.iter_records())
    assert record.kind == "msync"
    assert record.latency == 0.0
    assert record.outcome == "local"
    assert record.segments == []
    assert record.stages == {"client": 0.0}


def test_index_is_pruned_after_each_request_tree():
    """Memory stays bounded by the deepest in-flight tree: once a
    parentless span ends, its whole causal tree leaves the index."""
    def script(sim, tracer):
        for _ in range(50):
            root = tracer.begin(sim, "cread", "regionlib")
            inner = tracer.begin(sim, "disk.read", "disk")
            yield sim.timeout(0.001)
            tracer.end(sim, inner)
            tracer.end(sim, root)

    sli = run_spans(script)
    (run,) = sli.runs()
    assert run.requests == 50
    assert run.ended == {} and run.children == {}
    assert run.kinds["cread"].count == 50


def test_keep_records_false_keeps_only_aggregates():
    sim = Simulator(seed=1)
    tracer = Tracer()
    sli = SliCollector(keep_records=False)
    attach_sli(tracer, sli)

    def script():
        span = tracer.begin(sim, "mread", "lib")
        yield sim.timeout(0.002)
        tracer.end(sim, span)

    sim.run(until=sim.process(script()))
    assert sli.total_requests() == 1
    assert list(sli.iter_records()) == []
    stats = sli.merged_kinds()["mread"]
    assert stats.count == 1
    assert stats.sketch.quantile(0.5) == pytest.approx(0.002, rel=0.01)


def test_disabled_collector_records_nothing():
    sim = Simulator(seed=1)
    tracer = Tracer()
    sli = SliCollector()
    sli.enabled = False
    attach_sli(tracer, sli)
    span = tracer.begin(sim, "mread", "lib")
    tracer.end(sim, span)
    assert sli.total_requests() == 0
    assert sli.runs() == []


def test_attach_sli_returns_previous_sink():
    tracer = Tracer()
    first = SliCollector()
    assert attach_sli(tracer, first) is None
    second = SliCollector()
    assert attach_sli(tracer, second) is first
    assert tracer.sink is second
