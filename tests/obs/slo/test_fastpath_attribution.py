"""Fast paths must not change request-stage attribution.

PR 7's flow-level fast paths (bulk transfers, single datagrams / RPCs,
disk batches) are timing-identical optimizations.  The SLI layer reads
only spans, so each fast path must yield the *same* per-request stage
blame, outcomes and latency sketches as its packet/process equivalent:

* bulk + dgram fast paths emit the same spans at the same virtual
  times whether engaged or not — attribution must match exactly;
* the disk fast path *disengages while tracing is on* (the process
  path emits per-request ``disk.*`` spans the closed form cannot), so
  under the SLI layer both settings run the identical span-emitting
  path — also byte-identical, and the engagement counter must stay 0.
"""

from repro.net import BulkParams, RpcClient, RpcServer, recv_bulk, send_bulk
from repro.obs.slo import SliCollector, attach_sli
from repro.obs.tracer import Tracer, install
from repro.sim import Simulator
from repro.storage.disk import Disk
from repro.testing import make_net


def sli_fingerprint(sli):
    """Everything the SLO layer derives, in comparable form."""
    out = {}
    for kind, stats in sli.merged_kinds().items():
        out[kind] = {
            "count": stats.count,
            "outcomes": dict(stats.outcomes),
            "dominant": dict(stats.dominant),
            "stage_s": {k: v for k, v in sorted(stats.stage_s.items())},
            "sketch": stats.sketch.to_json(),
        }
    return out


def traced(run_fn, *args, **kwargs):
    """Run ``run_fn`` under a fresh tracer + SLI collector."""
    tracer = Tracer()
    sli = SliCollector()
    attach_sli(tracer, sli)
    prev = install(tracer)
    try:
        extra = run_fn(*args, **kwargs)
    finally:
        install(prev)
    return sli_fingerprint(sli), extra


# ---------------------------------------------------------------------------
# Bulk transfers
# ---------------------------------------------------------------------------

def run_bulk(fastpath, size=300_000, seed=7):
    sim = Simulator(seed=seed)
    net = make_net(sim)
    tx = net.udp["alpha"].socket()
    rx = net.udp["beta"].socket(port=77, recvbuf=256 * 1024)
    params = BulkParams(fastpath=fastpath)

    def sender():
        yield sim.process(send_bulk(tx, ("beta", 77), size,
                                    params=params))

    def receiver():
        yield sim.process(recv_bulk(rx, first_timeout=5.0,
                                    params=params))

    sim.process(sender())
    sim.process(receiver())
    sim.run(until=30.0)
    return net.network.stats.count("fastpath.transfers")


def test_bulk_fastpath_attribution_identical():
    fast, engaged = traced(run_bulk, True)
    pkt, not_engaged = traced(run_bulk, False)
    assert engaged == 1 and not_engaged == 0
    assert set(fast) == {"bulk.send", "bulk.recv"}
    assert fast == pkt
    # and the whole window is net time, as the stage map promises
    assert list(fast["bulk.send"]["stage_s"]) == ["net"]


def test_bulk_fastpath_attribution_identical_across_sizes():
    for size in (1, 1472, 100_000, 1_000_000):
        fast, _ = traced(run_bulk, True, size=size)
        pkt, _ = traced(run_bulk, False, size=size)
        assert fast == pkt, f"bulk attribution diverged at size {size}"


# ---------------------------------------------------------------------------
# Datagram (RPC) fast path
# ---------------------------------------------------------------------------

def run_rpc(fastpath, n_calls=5, seed=7):
    sim = Simulator(seed=seed)
    net = make_net(sim)
    net.network.dgram_fastpath = fastpath
    server_sock = net.udp["beta"].socket(port=90)
    RpcServer(server_sock, {
        "echo": lambda args, src: {"echo": args.get("x")},
    }, name="test").start()
    client = RpcClient(net.udp["alpha"].socket())

    def caller():
        for i in range(n_calls):
            yield from client.call(("beta", 90), "echo", {"x": i},
                                   size=256, timeout=0.05, retries=5)
            yield sim.timeout(0.002)

    sim.process(caller())
    sim.run(until=10.0)
    return net.network.stats.count("fastpath.dgrams")


def test_dgram_fastpath_attribution_identical():
    fast, engaged = traced(run_rpc, True)
    pkt, not_engaged = traced(run_rpc, False)
    assert engaged >= 2 and not_engaged == 0
    assert "rpc.echo" in fast
    assert fast == pkt
    assert fast["rpc.echo"]["count"] == 5
    assert fast["rpc.echo"]["outcomes"] == {"remote-imd": 5}


def test_dgram_fastpath_attribution_identical_across_seeds():
    for seed in (0, 3, 11):
        fast, _ = traced(run_rpc, True, seed=seed)
        pkt, _ = traced(run_rpc, False, seed=seed)
        assert fast == pkt, f"rpc attribution diverged at seed {seed}"


# ---------------------------------------------------------------------------
# Disk batch fast path
# ---------------------------------------------------------------------------

def run_disk(fastpath, seed=5):
    sim = Simulator(seed=seed)
    disk = Disk(sim, "d0")
    disk.fastpath = fastpath
    tracer = sim.tracer

    def workload():
        # a request-rooted span so disk spans join a request tree
        # (read/write already return a process or fast-path event)
        root = tracer.begin(sim, "cread", "regionlib")
        yield disk.read(0, 65536)
        yield disk.read_batch(((65536, 8192), (131072, 8192)))
        yield disk.write(262144, 32768)
        tracer.end(sim, root)

    sim.run(until=sim.process(workload()))
    return disk.stats.count("fastpath.batches")


def test_disk_fastpath_disengages_under_tracing_and_attributes_identically():
    """With the tracer on, PR 7's rule forces the process path either
    way — the flag must change neither engagement nor attribution."""
    fast, batches_fast = traced(run_disk, True)
    pkt, batches_pkt = traced(run_disk, False)
    assert batches_fast == batches_pkt == 0   # disengaged while traced
    assert fast == pkt
    assert fast["cread"]["count"] == 1
    (record_stage_s,) = (fast["cread"]["stage_s"],)
    assert record_stage_s.get("disk", 0.0) > 0.0
    assert fast["cread"]["outcomes"] == {"disk-fallback": 1}


def test_disk_fastpath_still_engages_untraced():
    """Sanity check on the disengage rule itself: without a tracer the
    same workload does engage the batch fast path (so the test above
    is exercising a real rule, not a dead flag)."""
    sim = Simulator(seed=5)
    disk = Disk(sim, "d0")

    def workload():
        yield disk.read(0, 65536)
        yield disk.read_batch(((65536, 8192), (131072, 8192)))

    sim.run(until=sim.process(workload()))
    assert disk.stats.count("fastpath.batches") >= 1
