"""The SLI/SLO layer must never perturb the simulation.

The collector only *reads* spans and the engine only reads records and
the clock, so a run with the full SLI + SLO stack enabled must produce
bit-identical virtual times and workload results to a run with all
observability disabled — the acceptance criterion "a run with SLI
collection disabled matches pre-PR virtual times exactly" read in both
directions.  Mirrors ``tests/obs/test_telemetry_determinism.py``.
"""

from repro.exp.platform import MB, Platform, PlatformParams
from repro.obs.eventlog import NULL_EVENTLOG, EventLog, install_eventlog
from repro.obs.slo import SliCollector, SloEngine, attach_sli
from repro.obs.timeseries import (NULL_TELEMETRY, Telemetry,
                                  install_telemetry)
from repro.obs.tracer import NULL_TRACER, Tracer, install
from repro.sim import Simulator
from repro.workloads import SyntheticParams, SyntheticRunner


def run_workload(seed, slo):
    """One small Dodo workload; returns (fingerprint, sli, engine)."""
    if slo:
        tracer = Tracer()
        telemetry = Telemetry(interval_s=0.25)
        eventlog = EventLog(level="debug", telemetry=telemetry)
        sli = SliCollector()
        attach_sli(tracer, sli)
        engine = SloEngine(sli=sli, eventlog=eventlog)
        sli.engine = engine
        telemetry.slo = engine
    else:
        tracer, telemetry, eventlog = NULL_TRACER, NULL_TELEMETRY, \
            NULL_EVENTLOG
        sli = engine = None
    prev_tr = install(tracer)
    prev_t = install_telemetry(telemetry)
    prev_e = install_eventlog(eventlog)
    try:
        sim = Simulator(seed=seed)
        params = PlatformParams(store_payload=False).scaled(1 / 256)
        platform = Platform(sim, params, dodo=True)
        sp = SyntheticParams(pattern="random", dataset_bytes=2 * MB,
                             req_size=8192, num_iter=2, compute_s=0.002)
        runner = SyntheticRunner(platform, sp, use_dodo=True)
        res = sim.run(until=runner.run())
        telemetry.finalize()
    finally:
        install(prev_tr)
        install_telemetry(prev_t)
        install_eventlog(prev_e)
    return (res.elapsed_s, tuple(res.iteration_s), sim.now), sli, engine


def test_sli_slo_collection_does_not_perturb_virtual_time():
    plain, _, _ = run_workload(seed=11, slo=False)
    sampled, sli, engine = run_workload(seed=11, slo=True)
    assert sampled == plain      # elapsed, iteration times, clock
    # and the layer actually collected something while staying inert
    assert sli.total_requests() > 0
    kinds = sli.merged_kinds()
    assert "mread" in kinds or "cread" in kinds
    assert any(s["total"] for s in engine.spec_summaries())


def test_two_enabled_runs_agree_exactly():
    """Byte-level determinism of the collected SLIs themselves."""
    def fingerprint():
        _, sli, engine = run_workload(seed=11, slo=True)
        kinds = {k: (v.count, v.outcomes, v.dominant,
                     sorted(v.stage_s.items()), v.sketch.to_json())
                 for k, v in sli.merged_kinds().items()}
        return kinds, engine.spec_summaries()

    assert fingerprint() == fingerprint()
