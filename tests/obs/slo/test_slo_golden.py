"""SLO determinism: golden report, byte-identical repeats, zero cost.

The golden file pins the full canonical-JSON ``repro slo`` report of a
seeded fig7 run (including burn-rate alert counts).  Regenerate after
an intentional behavior change with::

    REPRO_REGOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/obs/slo/test_slo_golden.py
"""

import io
import os

import pytest

from repro.obs.fleet.model import build_slo_view
from repro.obs.fleet.whatif import run_scenario
from repro.obs.slo import format_slo_report
from repro.sweep.spec import canonical_text, jsonify

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

FIXTURES = {
    # healthy run: all SLOs met, no alerts
    "slo_fig7_seed3.json": dict(scenario="fig7", seed=3),
    # chaos run: failures burn the error budget, alerts fire
    "slo_fig7_chaos_seed3.json": dict(scenario="fig7", seed=3,
                                      chaos=True),
}


@pytest.mark.parametrize("golden_name,kwargs", sorted(FIXTURES.items()))
def test_slo_report_matches_golden_files(golden_name, kwargs):
    doc = run_scenario(slo=True, **kwargs)["slo_report"]
    text = canonical_text(jsonify(doc)) + "\n"
    path = os.path.join(GOLDEN_DIR, golden_name)
    if os.environ.get("REPRO_REGOLDEN"):
        with open(path, "w") as fp:
            fp.write(text)
    with open(path) as fp:
        assert fp.read() == text, \
            f"SLO report drifted from {golden_name}; if " \
            "intentional, regenerate with REPRO_REGOLDEN=1"


def test_repeated_runs_are_byte_identical():
    """Same seed twice: report JSON, formatted tables, slo/* event
    records and the /api/slo document must all match byte for byte."""
    def one():
        res = run_scenario("fig7", seed=3, slo=True)
        report = canonical_text(jsonify(res["slo_report"])) + "\n"
        tables = format_slo_report(res["slo_report"])
        api = canonical_text(jsonify(build_slo_view(
            res["telemetry"], res["eventlog"]))) + "\n"
        buf = io.StringIO()
        res["eventlog"].dump_jsonl(buf)
        slo_lines = [line for line in buf.getvalue().splitlines()
                     if '"component": "slo"' in line
                     or '"component":"slo"' in line]
        return report, tables, api, slo_lines

    first, second = one(), one()
    assert first == second


def test_burn_rate_alerts_fire_under_chaos():
    """The chaos golden actually exercises the alert machinery: host
    failures burn the mread availability budget, the alert starts and
    stops, and the summary still carries the final verdict."""
    res = run_scenario("fig7", seed=3, chaos=True, slo=True)
    events = {e.event for e in res["eventlog"].events
              if e.component == "slo"}
    assert "slo.alert.start" in events
    assert "slo.alert.stop" in events
    assert "slo.summary" in events
    by_name = {s["name"]: s for s in res["slo"].spec_summaries()}
    assert by_name["mread-availability"]["alerts"] >= 1
    assert by_name["mread-availability"]["alerting"] is False


def test_disabled_slo_leaves_scenario_results_identical():
    """run_scenario with slo=False (the default every existing caller
    uses) must produce byte-identical telemetry with the engine absent:
    the layer costs nothing when off."""
    plain = run_scenario("fig7", seed=3)
    wired = run_scenario("fig7", seed=3, slo=True)
    assert "sli" not in plain and plain["slo"] is None \
        if "slo" in plain else True
    # non-slo series must be unaffected by the slo layer riding along
    def series_fingerprint(res):
        out = []
        for run in res["telemetry"].runs():
            for s in run.select():
                if s.kind == "slo":
                    continue
                out.append((run.run_id, s.key, tuple(s.times),
                            tuple(s.values)))
        return out

    assert series_fingerprint(plain) == series_fingerprint(wired)
