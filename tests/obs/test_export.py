"""Tests for the Chrome trace-event export."""

import io
import json

from repro.obs.export import chrome_trace, dump_chrome_trace, \
    write_chrome_trace
from repro.obs.tracer import Tracer
from repro.sim import Simulator


def build_trace():
    sim = Simulator()
    sim.tracer = Tracer()

    def proc():
        span = sim.tracer.begin(sim, "mread", "lib", {"bytes": 4096})
        yield sim.timeout(0.002)
        sim.tracer.instant(sim, "retry", "rpc")
        yield sim.timeout(0.001)
        sim.tracer.end(sim, span)
        sim.tracer.begin(sim, "dangling", "lib")  # left open on purpose

    sim.run(until=sim.process(proc()))
    return sim.tracer


def test_chrome_trace_structure():
    obj = chrome_trace(build_trace())
    assert obj["displayTimeUnit"] == "ms"
    events = obj["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} == {"lib", "rpc"}
    assert all(e["name"] == "process_name" for e in meta)

    complete = [e for e in events if e["ph"] == "X"]
    (mread,) = complete
    assert mread["name"] == "mread"
    assert mread["ts"] == 0.0
    assert mread["dur"] == 3000.0  # 0.003 s in microseconds
    assert mread["args"]["bytes"] == 4096
    assert "span_id" in mread["args"]


def test_instants_and_unfinished_spans_export_as_instants():
    obj = chrome_trace(build_trace())
    instants = {e["name"]: e for e in obj["traceEvents"] if e["ph"] == "i"}
    assert set(instants) == {"retry", "dangling"}
    assert instants["dangling"]["args"]["unfinished"] is True
    assert "unfinished" not in instants["retry"]["args"]


def test_parent_ids_exported():
    sim = Simulator()
    sim.tracer = Tracer()

    def proc():
        outer = sim.tracer.begin(sim, "outer", "lib")
        inner = sim.tracer.begin(sim, "inner", "lib")
        yield sim.timeout(1.0)
        sim.tracer.end(sim, inner)
        sim.tracer.end(sim, outer)

    sim.run(until=sim.process(proc()))
    events = [e for e in chrome_trace(sim.tracer)["traceEvents"]
              if e["ph"] == "X"]
    by_name = {e["name"]: e for e in events}
    assert "parent_id" not in by_name["outer"]["args"]  # root: omitted
    assert by_name["inner"]["args"]["parent_id"] \
        == by_name["outer"]["args"]["span_id"]


def test_dump_is_valid_json_and_repeatable():
    tracer = build_trace()
    a, b = io.StringIO(), io.StringIO()
    dump_chrome_trace(tracer, a)
    dump_chrome_trace(tracer, b)
    assert a.getvalue() == b.getvalue()
    parsed = json.loads(a.getvalue())
    assert "traceEvents" in parsed


def test_write_chrome_trace_returns_event_count(tmp_path):
    tracer = build_trace()
    path = tmp_path / "trace.json"
    n = write_chrome_trace(tracer, str(path))
    parsed = json.loads(path.read_text())
    assert n == len(parsed["traceEvents"])
    # 2 metadata (lib, rpc) + 3 spans (mread, retry, dangling)
    assert n == 5
