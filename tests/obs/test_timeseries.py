"""Unit tests for the telemetry engine, atomic writes and the dashboard."""

import os

import pytest

from repro.obs.dashboard import pick_run, render_dashboard, render_run
from repro.obs.files import atomic_write
from repro.obs.timeseries import (NULL_TELEMETRY, GaugeSeries, RunTelemetry,
                                  Telemetry, default_telemetry,
                                  install_telemetry)


# -- GaugeSeries --------------------------------------------------------------

def test_gauge_series_records_and_summarizes():
    s = GaugeSeries("imd", "w0", "pool.bytes", "bytes")
    for t, v in ((0.0, 10.0), (1.0, 30.0), (2.0, 20.0)):
        s.record(t, v)
    assert len(s) == 3
    assert s.last() == 20.0
    assert (s.minimum(), s.maximum()) == (10.0, 30.0)
    assert s.key == ("imd", "w0", "pool.bytes")


def test_gauge_series_rejects_time_travel():
    s = GaugeSeries("imd", "w0", "pool.bytes", "bytes")
    s.record(5.0, 1.0)
    with pytest.raises(ValueError):
        s.record(4.0, 2.0)


def test_window_slices_by_virtual_time():
    s = GaugeSeries("k", "n", "g", "u")
    for i in range(10):
        s.record(float(i), float(i * 10))
    assert s.window() == (s.times, s.values)
    times, values = s.window(since=3.0)
    assert times[0] == 3.0 and len(times) == 7
    times, values = s.window(until=3.0)  # until is exclusive
    assert times == [0.0, 1.0, 2.0] and values == [0.0, 10.0, 20.0]
    assert s.window(since=2.5, until=4.5) == ([3.0, 4.0], [30.0, 40.0])
    assert s.window(since=99.0) == ([], [])


def test_run_select_and_names():
    run = RunTelemetry(run_id=1, interval_s=1.0)
    run.record("imd", "w0", "pool.bytes", "bytes", 0.0, 1.0)
    run.record("imd", "w1", "pool.bytes", "bytes", 0.0, 2.0)
    run.record("imd", "w0", "up", "bool", 0.0, 1.0)
    run.record("rmd", "w0", "idle_state", "state", 0.0, 2.0)
    assert len(run.select()) == 4
    assert len(run.select(kind="imd")) == 3
    assert [s.name for s in run.select(kind="imd", gauge="pool.bytes")] == \
        ["w0", "w1"]
    assert [s.gauge for s in run.select(name="w0")] == \
        ["pool.bytes", "up", "idle_state"]
    assert run.select(kind="disk") == []
    # no component objects attached: names fall back to series keys
    assert run.names("imd") == ["w0", "w1"]
    assert run.names("rmd") == ["w0"]
    assert run.kinds() == ["imd", "rmd"]
    # with components registered, registration order wins
    run.components.append(("imd", "w9", object()))
    assert run.names("imd") == ["w9"]


def test_downsampling_bucket_averages():
    s = GaugeSeries("k", "n", "g", "u")
    for i in range(10):
        s.record(float(i), float(i))
    times, values = s.downsampled(2)
    assert times == [2.0, 7.0]  # means of 0..4 and 5..9
    assert values == [2.0, 7.0]
    assert s.downsampled(100) == (s.times, s.values)
    assert s.downsampled(None) == (s.times, s.values)
    with pytest.raises(ValueError):
        s.downsampled(0)


# -- Telemetry engine ---------------------------------------------------------

def test_telemetry_validates_parameters():
    with pytest.raises(ValueError):
        Telemetry(interval_s=0.0)
    with pytest.raises(ValueError):
        Telemetry(audit_every=0)


def test_run_ids_are_first_seen_order():
    telemetry = Telemetry()
    a, b = object(), object()
    assert telemetry.run_id(b) == 1
    assert telemetry.run_id(a) == 2
    assert telemetry.run_id(b) == 1  # stable


def test_null_telemetry_is_inert():
    assert NULL_TELEMETRY.enabled is False
    assert NULL_TELEMETRY.register(None, "imd", "w0", object()) is None
    NULL_TELEMETRY.rpc_begin(None)
    NULL_TELEMETRY.rpc_end(None)
    NULL_TELEMETRY.sample_now(None)
    assert NULL_TELEMETRY.runs() == []


def test_install_restores_previous():
    engine = Telemetry()
    previous = install_telemetry(engine)
    try:
        assert default_telemetry() is engine
    finally:
        install_telemetry(previous)
    assert default_telemetry() is previous


# -- atomic writes ------------------------------------------------------------

def test_atomic_write_creates_and_replaces(tmp_path):
    target = tmp_path / "out.csv"
    with atomic_write(str(target)) as fp:
        fp.write("first\n")
    assert target.read_text() == "first\n"
    with atomic_write(str(target)) as fp:
        fp.write("second\n")
    assert target.read_text() == "second\n"
    assert os.listdir(tmp_path) == ["out.csv"]  # no temp files left


def test_atomic_write_leaves_old_contents_on_error(tmp_path):
    target = tmp_path / "out.csv"
    target.write_text("intact\n")
    with pytest.raises(RuntimeError):
        with atomic_write(str(target)) as fp:
            fp.write("partial")
            raise RuntimeError("boom")
    assert target.read_text() == "intact\n"
    assert os.listdir(tmp_path) == ["out.csv"]


# -- dashboard ----------------------------------------------------------------

def make_run(run_id=1, samples=5, donated=100.0):
    run = RunTelemetry(run_id=run_id, interval_s=1.0)
    run.samples = samples
    for i in range(samples):
        t = float(i)
        run.record("cluster", "cluster", "donated_bytes", "bytes", t,
                   donated * (i + 1))
        run.record("cluster", "cluster", "hosted_bytes", "bytes", t,
                   donated * i / 2)
        run.record("cluster", "cluster", "idle_hosts", "count", t, float(i))
        run.record("rpc", "rpc", "outstanding", "count", t, 0.0)
    return run


def test_pick_run_prefers_the_richest_run():
    telemetry = Telemetry()
    sims = (object(), object())
    telemetry._runs[sims[0]] = make_run(run_id=1, samples=2)
    telemetry._runs[sims[1]] = make_run(run_id=2, samples=9)
    assert pick_run(telemetry).run_id == 2
    assert pick_run(Telemetry()) is None


def test_pick_run_prefers_donating_runs_over_longer_baselines():
    telemetry = Telemetry()
    telemetry._runs[object()] = make_run(run_id=1, samples=50, donated=0.0)
    telemetry._runs[object()] = make_run(run_id=2, samples=5, donated=100.0)
    assert pick_run(telemetry).run_id == 2


def test_render_run_shows_cluster_series():
    text = render_run(make_run(samples=6))
    assert "6 samples @ 1s" in text
    assert "cluster donated memory" in text
    assert "hosted bytes" in text
    assert "idle hosts" in text


def test_render_dashboard_with_and_without_runs():
    telemetry = Telemetry()
    empty = render_dashboard(telemetry, title="fig7")
    assert "repro top — fig7" in empty
    assert "no cluster telemetry recorded" in empty
    telemetry._runs[object()] = make_run()
    assert "cluster donated memory" in render_dashboard(telemetry)
