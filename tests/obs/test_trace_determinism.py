"""End-to-end tracing regressions on a small Dodo platform run.

Two properties the observability layer must never lose:

* a traced run of a seeded experiment exports a byte-identical trace
  every time (the tracer reads only virtual time);
* turning tracing on does not change the simulated world — virtual
  clocks, iteration times and results stay bit-identical to an untraced
  run.  (The raw kernel *event count* may rise under tracing: fast
  paths whose closed forms would skip per-request spans disengage so
  the trace stays complete — same virtual times, more events.)
"""

import io
import json

import pytest

from repro.exp.platform import MB, Platform, PlatformParams
from repro.obs.breakdown import fetch_breakdown
from repro.obs.export import chrome_trace, dump_chrome_trace
from repro.obs.tracer import NULL_TRACER, Tracer, install
from repro.sim import Simulator
from repro.workloads import SyntheticParams, SyntheticRunner


def run_workload(seed, traced):
    tracer = Tracer() if traced else NULL_TRACER
    previous = install(tracer)
    try:
        sim = Simulator(seed=seed)
        params = PlatformParams(store_payload=False).scaled(1 / 256)
        platform = Platform(sim, params, dodo=True)
        sp = SyntheticParams(pattern="random", dataset_bytes=2 * MB,
                             req_size=8192, num_iter=2, compute_s=0.002)
        runner = SyntheticRunner(platform, sp, use_dodo=True)
        res = sim.run(until=runner.run())
    finally:
        install(previous)
    fingerprint = (res.elapsed_s, tuple(res.iteration_s),
                   sim.events_processed, sim.now)
    return fingerprint, tracer


def export_bytes(tracer):
    buf = io.StringIO()
    dump_chrome_trace(tracer, buf)
    return buf.getvalue()


def test_same_seed_traces_are_byte_identical():
    _, tracer_a = run_workload(seed=7, traced=True)
    _, tracer_b = run_workload(seed=7, traced=True)
    a, b = export_bytes(tracer_a), export_bytes(tracer_b)
    if a != b:  # report the first mismatch; a full MB-sized diff is useless
        n = min(len(a), len(b))
        i = next((k for k in range(n) if a[k] != b[k]), n)
        pytest.fail(f"traces differ (lens {len(a)} vs {len(b)}) at byte {i}: "
                    f"{a[i:i + 80]!r} vs {b[i:i + 80]!r}")


def test_tracing_does_not_perturb_the_simulation():
    untraced, _ = run_workload(seed=7, traced=False)
    traced, tracer = run_workload(seed=7, traced=True)
    t_elapsed, t_iters, t_events, t_now = traced
    u_elapsed, u_iters, u_events, u_now = untraced
    # Observables are bit-identical; the event count is not an observable —
    # the disk fast path disengages under tracing (per-request spans must
    # keep flowing), replaying the same virtual times with more events.
    assert (t_elapsed, t_iters, t_now) == (u_elapsed, u_iters, u_now)
    assert t_events >= u_events
    assert len(tracer.spans) > 0


def test_trace_covers_the_dodo_stack():
    _, tracer = run_workload(seed=7, traced=True)
    components = tracer.components()
    for expected in ("lib", "regionlib", "rpc", "net", "manager", "imd",
                     "fs", "disk", "pagecache"):
        assert expected in components, f"missing {expected} spans"
    names = {s.name for s in tracer.spans}
    assert {"mread", "rpc.read", "serve.read", "bulk.send",
            "bulk.recv"} <= names


def test_breakdown_of_real_trace_sums_within_tolerance():
    _, tracer = run_workload(seed=7, traced=True)
    b = fetch_breakdown(tracer.spans)
    assert b["count"] > 0
    total = sum(b["layers"].values())
    assert abs(total - b["mean_s"]) <= 0.01 * b["mean_s"]


def test_export_of_real_trace_is_valid_json():
    _, tracer = run_workload(seed=7, traced=True)
    parsed = json.loads(export_bytes(tracer))
    assert parsed["traceEvents"]
    obj = chrome_trace(tracer)
    phases = {e["ph"] for e in obj["traceEvents"]}
    assert phases <= {"M", "X", "i"}
