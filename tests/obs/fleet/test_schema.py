"""The checked-in fleet API schema stays true to the live documents.

CI validates curl'd HTTP responses with tools/check_fleet_api.py; this
test exercises the same validator against in-process documents so a
shape drift fails locally, before CI."""

import importlib.util
import json
import os

import pytest

from repro.obs.fleet.insights import build_insights
from repro.obs.fleet.model import build_fleet_view, build_run_view, pick_run
from repro.obs.fleet.whatif import run_scenario
from repro.sweep.spec import jsonify

REPO = os.path.join(os.path.dirname(__file__), "..", "..", "..")
SCHEMA_PATH = os.path.join(REPO, "docs", "schemas", "fleet_api.json")
TOOL_PATH = os.path.join(REPO, "tools", "check_fleet_api.py")


def load_tool():
    spec = importlib.util.spec_from_file_location("check_fleet_api",
                                                  TOOL_PATH)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def scenario():
    return run_scenario("fig7", seed=3)


@pytest.fixture(scope="module")
def schema():
    with open(SCHEMA_PATH) as fp:
        return json.load(fp)


def test_live_documents_match_schema(scenario, schema):
    tool = load_tool()
    telemetry, eventlog = scenario["telemetry"], scenario["eventlog"]
    fleet = build_fleet_view(telemetry, eventlog)
    tool.validate(fleet, schema["endpoints"]["/api/fleet"], schema)
    insights = build_insights(telemetry, eventlog)
    tool.validate(insights, schema["endpoints"]["/api/insights"], schema)
    run = pick_run(telemetry)
    view = build_run_view(run, eventlog=eventlog)
    host = jsonify(view.hosts[0].to_json())
    tool.validate(host, schema["endpoints"]["/api/host"], schema)
    events = {"total": len(eventlog.events),
              "matched": [e.to_dict() for e in eventlog.query(limit=20)]}
    tool.validate(jsonify(events), schema["endpoints"]["/api/events"],
                  schema)


def test_validator_rejects_shape_drift(schema):
    tool = load_tool()
    with pytest.raises(tool.SchemaError, match="missing required key"):
        tool.validate({"runs": []}, schema["endpoints"]["/api/fleet"],
                      schema)
    with pytest.raises(tool.SchemaError, match="not in"):
        tool.validate(
            {"run": 1, "donors": [],
             "recommendations": [{"kind": "bogus", "host": "w1",
                                  "score": 1.0, "reason": "x"}]},
            schema["endpoints"]["/api/insights"], schema)
    with pytest.raises(tool.SchemaError, match="expected"):
        tool.validate({"total": "three", "matched": []},
                      schema["endpoints"]["/api/events"], schema)


def test_validator_cli_reports_ok_and_failures(tmp_path, scenario,
                                               schema, capsys):
    tool = load_tool()
    telemetry, eventlog = scenario["telemetry"], scenario["eventlog"]
    good = tmp_path / "fleet.json"
    good.write_text(json.dumps(build_fleet_view(telemetry, eventlog)))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"nope": 1}))
    assert tool.main(["--schema", SCHEMA_PATH,
                      f"/api/fleet={good}"]) == 0
    assert tool.main(["--schema", SCHEMA_PATH,
                      f"/api/fleet={bad}"]) == 1
    assert tool.main(["--schema", SCHEMA_PATH,
                      f"/api/nosuch={good}"]) == 2
    capsys.readouterr()
