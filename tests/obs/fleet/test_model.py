"""The shared fleet render model: views, degenerate runs, JSON shape."""

from repro.obs.dashboard import render_dashboard, render_run
from repro.obs.eventlog import EventLog
from repro.obs.fleet.model import (build_fleet_view, build_run_view,
                                   pick_run, rate_per_s)
from repro.obs.timeseries import GaugeSeries, RunTelemetry, Telemetry
from repro.sim import Simulator


def make_run(run_id=1, samples=5, donated=100.0, hosts=()):
    run = RunTelemetry(run_id=run_id, interval_s=1.0)
    run.samples = samples
    for i in range(samples):
        t = float(i)
        run.record("cluster", "cluster", "donated_bytes", "bytes", t,
                   donated * (i + 1))
        run.record("cluster", "cluster", "hosted_bytes", "bytes", t,
                   donated * i / 2)
        run.record("cluster", "cluster", "idle_hosts", "count", t, float(i))
        run.record("rpc", "rpc", "outstanding", "count", t, 0.0)
        for name in hosts:
            run.record("workstation", name, "mem.guest_bytes", "bytes",
                       t, donated * i)
            run.record("workstation", name, "up", "bool", t, 1.0)
            run.record("rmd", name, "idle_state", "state", t, 2.0)
            run.record("rmd", name, "quiet_s", "seconds", t, 60.0 + i)
            run.record("imd", name, "up", "bool", t, 1.0)
            run.record("imd", name, "pool.bytes", "bytes", t, 1000.0)
            run.record("imd", name, "regions.hosted", "count", t, 2.0)
    return run


def test_run_view_covers_cluster_hosts_and_events():
    run = make_run(hosts=("w0", "w1"))
    sim = Simulator(seed=1)
    log = EventLog(level="debug")
    log._run_ids[sim] = run.run_id
    log.info(sim, "rmd", "node.recruited", host="w0")
    log.info(sim, "rmd", "node.reclaimed", host="w0")
    view = build_run_view(run, eventlog=log)
    assert view.run_id == 1 and view.samples == 5
    assert view.cluster["donated_bytes"].maximum() == 500.0
    assert [h.name for h in view.hosts] == ["w0", "w1"]
    w0 = view.host("w0")
    assert w0.idle_state == "recruited"
    assert w0.up is True and w0.pool_bytes == 1000.0
    assert (w0.recruits, w0.reclaims) == (1, 1)
    assert view.host("w1").recruits == 0
    assert view.events_total == 2
    doc = view.to_json()
    assert doc["hosts"][0]["idle_state"] == "recruited"
    assert doc["cluster"]["hosted_regions"] is None  # never sampled


def test_degenerate_zero_donor_run_renders_without_raising():
    run = RunTelemetry(run_id=1, interval_s=1.0)
    run.samples = 3
    # no cluster series at all, one host with only an idle state
    for i in range(3):
        run.record("rmd", "w0", "idle_state", "state", float(i), 0.0)
    view = build_run_view(run)
    assert view.cluster["donated_bytes"] is None
    assert view.host("w0").idle_state == "busy"
    text = render_run(run)
    assert "n/a" in text
    assert "w0" in text


def test_empty_run_and_empty_eventlog_render_na():
    run = RunTelemetry(run_id=1, interval_s=1.0)
    view = build_run_view(run, eventlog=EventLog())
    assert view.hosts == [] and view.events == []
    text = render_run(run, eventlog=EventLog())
    assert "hosted bytes" in text and "n/a" in text


def test_pick_run_falls_back_to_richest_run_without_donation_series():
    telemetry = Telemetry()
    a = RunTelemetry(run_id=1, interval_s=1.0)
    a.samples = 2
    a.record("rmd", "w0", "idle_state", "state", 0.0, 0.0)
    b = RunTelemetry(run_id=2, interval_s=1.0)
    b.samples = 7
    b.record("rmd", "w0", "idle_state", "state", 0.0, 0.0)
    telemetry._runs[object()] = a
    telemetry._runs[object()] = b
    assert pick_run(telemetry).run_id == 2
    # full dashboard render over a donor-less telemetry must not raise
    assert "run 2" in render_dashboard(telemetry)


def test_dedicated_host_idle_state_falls_back_to_imd():
    run = RunTelemetry(run_id=1, interval_s=1.0)
    run.samples = 1
    run.record("imd", "mem00", "up", "bool", 0.0, 1.0)
    run.record("imd", "mem01", "up", "bool", 0.0, 0.0)
    view = build_run_view(run)
    assert view.host("mem00").idle_state == "recruited"
    assert view.host("mem01").idle_state == "busy"
    assert view.host("mem01").up is False


def test_rate_per_s_handles_short_and_flat_series():
    s = GaugeSeries("disk", "d0", "read.bytes", "bytes")
    s.record(0.0, 0.0)
    assert rate_per_s(s) == [0.0]
    s.record(2.0, 100.0)
    s.record(2.0, 100.0)  # same-time sample: rate guarded to 0
    assert rate_per_s(s) == [50.0, 0.0]


def test_fleet_view_document_shape():
    telemetry = Telemetry()
    telemetry._runs[object()] = make_run(run_id=1, hosts=("w0",))
    doc = build_fleet_view(telemetry)
    assert [r["run"] for r in doc["runs"]] == [1]
    assert doc["main"]["run"] == 1
    assert doc["main"]["hosts"][0]["name"] == "w0"
    empty = build_fleet_view(Telemetry())
    assert empty == {"runs": [], "main": None}
