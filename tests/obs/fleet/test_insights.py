"""Insights engine: scoring, recommendations, golden-file stability.

The golden files pin the full canonical-JSON insights document of two
fixture runs.  Regenerate after an intentional behavior change with::

    REPRO_REGOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/obs/fleet/test_insights.py
"""

import os

import pytest

from repro.obs.eventlog import EventLog
from repro.obs.fleet.insights import (build_insights, emit_insights,
                                      format_insights, score_host)
from repro.obs.fleet.whatif import run_scenario
from repro.obs.timeseries import RunTelemetry, Telemetry
from repro.sim import Simulator
from repro.sweep.spec import canonical_text

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

FIXTURES = {
    "insights_fig7_seed3.json": dict(scenario="fig7", seed=3),
    "insights_nondedicated_chaos_seed5.json":
        dict(scenario="nondedicated", seed=5, chaos=True),
}


@pytest.mark.parametrize("golden_name,kwargs", sorted(FIXTURES.items()))
def test_insights_match_golden_files(golden_name, kwargs):
    doc = run_scenario(**kwargs)["insights"]
    text = canonical_text(doc) + "\n"
    path = os.path.join(GOLDEN_DIR, golden_name)
    if os.environ.get("REPRO_REGOLDEN"):
        with open(path, "w") as fp:
            fp.write(text)
    with open(path) as fp:
        assert fp.read() == text, \
            f"insights drifted from {golden_name}; if intentional, " \
            "regenerate with REPRO_REGOLDEN=1"


def make_flappy_run():
    run = RunTelemetry(run_id=1, interval_s=1.0)
    run.samples = 10
    for i in range(10):
        t = float(i)
        # wstable: recruited throughout; wflaky: flapping every sample
        run.record("rmd", "wstable", "idle_state", "state", t, 2.0)
        run.record("rmd", "wstable", "recruited", "bool", t, 1.0)
        run.record("rmd", "wflaky", "idle_state", "state", t,
                   2.0 if i % 2 == 0 else 0.0)
        run.record("rmd", "wflaky", "recruited", "bool", t,
                   1.0 if i % 2 == 0 else 0.0)
        run.record("imd", "wflaky", "regions.hosted", "count", t, 3.0)
        # wquiet: quiet the whole run, never recruited
        run.record("rmd", "wquiet", "idle_state", "state", t, 1.0)
        run.record("rmd", "wquiet", "recruited", "bool", t, 0.0)
    return run


def make_flappy_eventlog(run_id=1):
    sim = Simulator(seed=1)
    log = EventLog(level="debug")
    log._run_ids[sim] = run_id
    for _ in range(3):
        log.info(sim, "rmd", "node.recruited", host="wflaky")
        log.info(sim, "rmd", "node.reclaimed", host="wflaky")
    log.info(sim, "imd", "imd.killed", host="wflaky", regions_lost=2)
    log.info(sim, "rmd", "node.recruited", host="wstable")
    return sim, log


def test_scoring_separates_stable_from_flaky():
    run = make_flappy_run()
    _, log = make_flappy_eventlog()
    stable = score_host(run, "wstable", log)
    flaky = score_host(run, "wflaky", log)
    assert stable["score"] > flaky["score"]
    assert stable["stability"] == 1.0 and stable["reclaims"] == 0
    assert flaky["flaps"] == 9 and flaky["reclaims"] == 4
    assert flaky["regions_lost"] == 2


def test_recommendations_cover_all_kinds():
    run = make_flappy_run()
    _, log = make_flappy_eventlog()
    telemetry = Telemetry()
    telemetry._runs[object()] = run
    doc = build_insights(telemetry, log)
    kinds = {(r["kind"], r["host"]) for r in doc["recommendations"]}
    assert ("avoid", "wflaky") in kinds
    assert ("migrate", "wflaky") in kinds
    assert ("placement", "wstable") in kinds
    assert ("recruit", "wquiet") in kinds
    migrate = next(r for r in doc["recommendations"]
                   if r["kind"] == "migrate")
    assert migrate["target"] == "wstable"
    # donors ranked by score desc, deterministic
    scores = [d["score"] for d in doc["donors"]]
    assert scores == sorted(scores, reverse=True)
    assert "wflaky" in format_insights(doc)


def test_empty_telemetry_yields_empty_insights():
    doc = build_insights(Telemetry(), EventLog())
    assert doc == {"run": None, "donors": [], "recommendations": []}
    assert "no donor telemetry" in format_insights(doc)


def test_emit_insights_writes_structured_events():
    run = make_flappy_run()
    sim, log = make_flappy_eventlog()
    telemetry = Telemetry()
    telemetry._runs[object()] = run
    doc = build_insights(telemetry, log)
    n = emit_insights(log, sim, doc)
    scored = log.query(component="insights", event="donor.scored")
    recs = log.query(component="insights", event="recommendation")
    assert n == len(scored) + len(recs) > 0
    assert len(scored) == len(doc["donors"])
    assert [e.fields["rank"] for e in recs] == \
        list(range(1, len(recs) + 1))
    # inert on a disabled log
    from repro.obs.eventlog import NULL_EVENTLOG
    assert emit_insights(NULL_EVENTLOG, sim, doc) == 0
    assert emit_insights(None, sim, doc) == 0
