"""The fleet HTTP layer: endpoints, determinism, live mode, errors."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.eventlog import EventLog
from repro.obs.fleet.server import (FleetSource, serve_live,
                                    serve_run_dir)
from repro.obs.fleet.whatif import record_run
from repro.obs.timeseries import Telemetry

ENDPOINTS = ("/api/meta", "/api/fleet", "/api/events", "/api/insights",
             "/api/timeseries")


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("runs") / "fig7")
    record_run(path, "fig7", seed=3)
    return path


@pytest.fixture()
def server(recorded):
    srv = serve_run_dir(recorded, port=0)
    srv.serve_background()
    yield srv
    srv.shutdown()
    srv.server_close()


def fetch(srv, path):
    with urllib.request.urlopen(srv.url.rstrip("/") + path) as res:
        return res.status, res.headers.get("Content-Type"), res.read()


def test_every_api_endpoint_returns_valid_json(server):
    for path in ENDPOINTS:
        status, ctype, body = fetch(server, path)
        assert status == 200, path
        assert ctype == "application/json"
        assert body.endswith(b"\n")
        json.loads(body)    # must parse


def test_root_serves_the_dashboard_page(server):
    status, ctype, body = fetch(server, "/")
    assert status == 200
    assert ctype.startswith("text/html")
    text = body.decode()
    assert "repro fleet" in text and "/api/fleet" in text


def test_fleet_and_insights_docs_have_expected_shape(server):
    _, _, body = fetch(server, "/api/fleet")
    fleet = json.loads(body)
    assert fleet["runs"] and fleet["main"] is not None
    assert [h["name"] for h in fleet["main"]["hosts"]]
    _, _, body = fetch(server, "/api/insights")
    insights = json.loads(body)
    assert insights["donors"]
    assert all(r["kind"] in ("recruit", "placement", "migrate", "avoid")
               for r in insights["recommendations"])
    _, _, body = fetch(server, "/api/meta")
    meta = json.loads(body)
    assert meta["scenario"] == "fig7" and meta["live"] is False


def test_host_endpoint_full_resolution_and_404(server):
    _, _, body = fetch(server, "/api/fleet")
    name = json.loads(body)["main"]["hosts"][0]["name"]
    status, _, body = fetch(server, "/api/host/" + name)
    assert status == 200
    host = json.loads(body)
    assert host["name"] == name
    with pytest.raises(urllib.error.HTTPError) as err:
        fetch(server, "/api/host/nosuch")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        fetch(server, "/api/nosuch")
    assert err.value.code == 404


def test_events_endpoint_filters_and_validates(server):
    _, _, body = fetch(server, "/api/events?component=insights&limit=3")
    doc = json.loads(body)
    assert doc["total"] > 0
    assert 0 < len(doc["matched"]) <= 3
    assert all(e["component"] == "insights" for e in doc["matched"])
    with pytest.raises(urllib.error.HTTPError) as err:
        fetch(server, "/api/events?since=bogus")
    assert err.value.code == 400


def test_timeseries_endpoint_selects_and_windows(server):
    _, _, body = fetch(
        server, "/api/timeseries?kind=cluster&gauge=donated_bytes")
    doc = json.loads(body)
    assert len(doc["series"]) == 1
    s = doc["series"][0]
    assert s["gauge"] == "donated_bytes" and len(s["times"]) > 2
    until = s["times"][len(s["times"]) // 2]
    _, _, body = fetch(
        server, "/api/timeseries?kind=cluster&gauge=donated_bytes"
        f"&until={until}")
    windowed = json.loads(body)["series"][0]
    assert windowed["times"] == [t for t in s["times"] if t < until]
    _, _, body = fetch(
        server, "/api/timeseries?kind=cluster&gauge=donated_bytes"
        "&max_points=5")
    assert len(json.loads(body)["series"][0]["times"]) <= 5


def test_responses_byte_identical_across_runs_and_servers(
        recorded, tmp_path):
    """The determinism acceptance: two same-seed recordings, two
    servers, every endpoint byte-identical."""
    other = str(tmp_path / "again")
    record_run(other, "fig7", seed=3)
    a = serve_run_dir(recorded, port=0)
    b = serve_run_dir(other, port=0)
    a.serve_background()
    b.serve_background()
    try:
        for path in ENDPOINTS:
            assert fetch(a, path)[2] == fetch(b, path)[2], path
        # and stable across repeated requests to the same server
        assert fetch(a, "/api/fleet")[2] == fetch(a, "/api/fleet")[2]
    finally:
        for srv in (a, b):
            srv.shutdown()
            srv.server_close()


def test_live_source_serves_during_and_after_append():
    telemetry = Telemetry(interval_s=0.25)
    eventlog = EventLog(level="debug", telemetry=telemetry)
    srv = serve_live(telemetry, eventlog, meta={"scenario": "fig7"},
                     port=0)
    srv.serve_background()
    try:
        _, _, body = fetch(srv, "/api/meta")
        assert json.loads(body)["live"] is True
        # nothing recorded yet: endpoints degrade, never 500
        assert json.loads(fetch(srv, "/api/fleet")[2])["main"] is None
        assert json.loads(fetch(srv, "/api/insights")[2])["donors"] == []
        from repro.obs.fleet.whatif import run_scenario
        run_scenario("fig7", seed=3, telemetry=telemetry,
                     eventlog=eventlog)
        fleet = json.loads(fetch(srv, "/api/fleet")[2])
        assert fleet["main"] is not None
        assert json.loads(fetch(srv, "/api/insights")[2])["donors"]
    finally:
        srv.shutdown()
        srv.server_close()


def test_source_meta_doc_counts_runs(recorded):
    source = FleetSource.from_run_dir(recorded)
    doc = source.meta_doc()
    assert doc["runs"] == len(source.telemetry.runs()) > 0
    assert doc["live"] is False and doc["scenario"] == "fig7"
