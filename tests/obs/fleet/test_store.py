"""Run directories: write, load, byte-identical round trip, errors."""

import json
import os

import pytest

from repro.obs.eventlog import EventLog
from repro.obs.fleet.model import build_fleet_view
from repro.obs.fleet.store import (EVENTS_FILE, FORMAT_VERSION, META_FILE,
                                   TELEMETRY_FILE, RunDirError,
                                   load_run_dir, write_run_dir)
from repro.obs.timeseries import RunTelemetry, Telemetry
from repro.sim import Simulator


def make_telemetry():
    telemetry = Telemetry()
    run = RunTelemetry(run_id=1, interval_s=0.5)
    run.samples = 3
    for i in range(3):
        t = float(i)
        run.record("cluster", "cluster", "donated_bytes", "bytes", t,
                   100.0 * i)
        run.record("workstation", "w0", "mem.guest_bytes", "bytes", t,
                   50.0 * i)
        run.record("imd", "w0", "up", "bool", t, 1.0)
    telemetry._runs[object()] = run
    return telemetry


def make_eventlog():
    sim = Simulator(seed=1)
    log = EventLog(level="debug")
    log.info(sim, "rmd", "node.recruited", host="w0", pool_bytes=1024)
    log.warn(sim, "manager", "region.stale", host="w0")
    return log


def dir_bytes(path):
    return {name: open(os.path.join(path, name), "rb").read()
            for name in sorted(os.listdir(path))}


def test_round_trip_preserves_everything(tmp_path):
    out = str(tmp_path / "run")
    meta = write_run_dir(out, make_telemetry(), make_eventlog(),
                         meta={"scenario": "fig7", "seed": 3,
                               "policy": {"replacement": "lru"}})
    assert meta["format"] == FORMAT_VERSION
    loaded = load_run_dir(out)
    assert loaded.scenario == "fig7" and loaded.seed == 3
    assert loaded.policy == {"replacement": "lru"}
    run = loaded.telemetry.runs()[0]
    assert run.run_id == 1 and run.samples == 3
    assert run.interval_s == 0.5
    donated = run.get("cluster", "cluster", "donated_bytes")
    assert donated.values == [0.0, 100.0, 200.0]
    assert run.names("workstation") == ["w0"]  # series-key fallback
    assert [e.event for e in loaded.eventlog.events] == \
        ["node.recruited", "region.stale"]
    assert loaded.eventlog.events[0].fields == {"pool_bytes": 1024}
    # the render model works over the rehydrated form
    doc = build_fleet_view(loaded.telemetry, loaded.eventlog)
    assert doc["main"]["hosts"][0]["name"] == "w0"


def test_rewrite_is_byte_identical(tmp_path):
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    for out in (a, b):
        write_run_dir(out, make_telemetry(), make_eventlog(),
                      meta={"scenario": "fig7", "seed": 3})
    assert dir_bytes(a) == dir_bytes(b)
    assert sorted(os.listdir(a)) == [EVENTS_FILE, META_FILE, TELEMETRY_FILE]
    # load → write again: still identical (rehydration is lossless)
    loaded = load_run_dir(a)
    c = str(tmp_path / "c")
    write_run_dir(c, loaded.telemetry, loaded.eventlog,
                  meta={k: v for k, v in loaded.meta.items()
                        if k != "format"})
    assert dir_bytes(c) == dir_bytes(a)


def test_missing_and_malformed_directories_raise(tmp_path):
    with pytest.raises(RunDirError):
        load_run_dir(str(tmp_path / "nope"))
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(RunDirError):
        load_run_dir(str(empty))
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / META_FILE).write_text("{not json")
    with pytest.raises(RunDirError):
        load_run_dir(str(bad))
    futuristic = tmp_path / "future"
    futuristic.mkdir()
    (futuristic / META_FILE).write_text(json.dumps({"format": 99}))
    with pytest.raises(RunDirError, match="format"):
        load_run_dir(str(futuristic))


def test_eventlog_is_optional(tmp_path):
    out = str(tmp_path / "run")
    write_run_dir(out, make_telemetry(), eventlog=None,
                  meta={"scenario": "x", "seed": 1})
    loaded = load_run_dir(out)
    assert loaded.eventlog.events == []
