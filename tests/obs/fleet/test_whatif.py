"""What-if replay: identity reproduction, policy deltas, placement knob."""

import pytest

from repro.obs.fleet.whatif import (WhatIfPolicy, format_whatif,
                                    record_run, run_scenario, run_whatif)
from repro.sweep.spec import canonical_text


def test_same_seed_metrics_are_identical():
    a = run_scenario("fig7", seed=3)["metrics"]
    b = run_scenario("fig7", seed=3)["metrics"]
    assert canonical_text(a) == canonical_text(b)
    assert a["requests"] > 0 and a["fetches"] > 0
    assert a["local_reads"] + a["remote_reads"] + a["disk_reads"] \
        == a["requests"] - a["degraded"]


def test_identity_replay_reproduces_recorded_metrics(tmp_path):
    out = str(tmp_path / "run")
    meta = record_run(out, "fig7", seed=3)
    doc = run_whatif(out)
    assert doc["changed"] is False
    assert doc["replay"]["metrics"] == meta["metrics"]
    assert all(v == 0 for v in doc["delta"].values()), doc["delta"]
    assert "identity replay reproduced the baseline" in format_whatif(doc)


def test_changed_replacement_policy_reports_nonzero_delta(tmp_path):
    out = str(tmp_path / "run")
    record_run(out, "fig7", seed=3)
    doc = run_whatif(out, replacement="mru")
    assert doc["changed"] is True
    assert doc["replay"]["policy"]["replacement"] == "mru"
    assert doc["baseline"]["policy"]["replacement"] == "lru"
    # hotcold under MRU thrashes the hot set: refetches must move
    assert doc["delta"]["refetches"] != 0
    assert "lru" in format_whatif(doc) and "mru" in format_whatif(doc)


def test_placement_policies_run_and_validate():
    for placement in ("most-free", "round-robin"):
        m = run_scenario("fig7", seed=3,
                         policy=WhatIfPolicy(placement=placement))["metrics"]
        assert m["requests"] > 0 and m["degraded"] == 0
    with pytest.raises(ValueError, match="placement"):
        run_scenario("fig7", seed=3,
                     policy=WhatIfPolicy(placement="bogus"))


def test_measuring_runner_does_not_perturb_the_workload():
    """The what-if measurement wrapper reads virtual time and counter
    deltas only — workload results stay bit-identical to the plain
    runner's."""
    from repro.exp.platform import MB, Platform, PlatformParams
    from repro.obs.fleet.whatif import MeasuringRunner
    from repro.sim import Simulator
    from repro.workloads import SyntheticParams, SyntheticRunner

    def run(cls):
        sim = Simulator(seed=7)
        platform = Platform(
            sim, PlatformParams(store_payload=False).scaled(1 / 256),
            dodo=True)
        sp = SyntheticParams(pattern="hotcold", dataset_bytes=2 * MB,
                             req_size=8192, num_iter=2, compute_s=0.002)
        runner = cls(platform, sp, use_dodo=True)
        res = sim.run(until=runner.run())
        return (res.elapsed_s, tuple(res.iteration_s), sim.now), runner

    plain, _ = run(SyntheticRunner)
    measured, mr = run(MeasuringRunner)
    assert measured == plain
    assert mr.latencies_s and mr.fetches > 0


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("fig9", seed=1)


def test_chaos_scenario_with_insights_passes_audit_raise():
    """The acceptance bar: a chaos run in audit raise mode completes —
    including the insight emission at the end — with zero findings."""
    out = run_scenario("nondedicated", seed=5, chaos=True, audit="raise")
    auditor = out["auditor"]
    assert auditor.passes > 0 and not auditor.findings
    assert out["insights"]["donors"]
    recs = out["eventlog"].query(component="insights",
                                 event="recommendation")
    assert recs


def test_policy_meta_round_trip_and_override():
    p = WhatIfPolicy(replacement="mru", placement="round-robin",
                     idle_window_s=2.5)
    assert WhatIfPolicy.from_meta(p.to_meta()) == p
    q = p.override(replacement="lru", placement=None)
    assert q.replacement == "lru"
    assert q.placement == "round-robin"  # None means "keep"
    assert q.idle_window_s == 2.5


def test_recorded_run_dir_carries_insights_events(tmp_path):
    from repro.obs.fleet.store import load_run_dir
    out = str(tmp_path / "run")
    record_run(out, "fig7", seed=3)
    loaded = load_run_dir(out)
    recs = loaded.eventlog.query(component="insights",
                                 event="recommendation")
    assert recs and all(e.fields["kind"] in
                        ("recruit", "placement", "migrate", "avoid")
                        for e in recs)
    assert loaded.meta["metrics"]["requests"] > 0
    assert loaded.meta["policy"]["replacement"] == "lru"
