"""Telemetry / event-log regressions on a small Dodo platform run.

Mirrors ``test_trace_determinism.py`` for the sampling side of the
observability stack:

* two seeded runs export byte-identical time-series CSV and event-log
  JSONL (probes read only virtual time and simulated state);
* turning telemetry on does not perturb the simulated results — virtual
  clocks and workload numbers stay bit-identical (the sampler adds heap
  events, so ``events_processed`` legitimately differs).
"""

import io

import pytest

from repro.exp.platform import MB, Platform, PlatformParams
from repro.obs.eventlog import NULL_EVENTLOG, EventLog, install_eventlog
from repro.obs.timeseries import NULL_TELEMETRY, Telemetry, install_telemetry
from repro.sim import Simulator
from repro.workloads import SyntheticParams, SyntheticRunner


def run_workload(seed, telemetered, interval_s=0.25):
    if telemetered:
        telemetry = Telemetry(interval_s=interval_s)
        eventlog = EventLog(level="debug", telemetry=telemetry)
    else:
        telemetry, eventlog = NULL_TELEMETRY, NULL_EVENTLOG
    prev_t = install_telemetry(telemetry)
    prev_e = install_eventlog(eventlog)
    try:
        sim = Simulator(seed=seed)
        params = PlatformParams(store_payload=False).scaled(1 / 256)
        platform = Platform(sim, params, dodo=True)
        sp = SyntheticParams(pattern="random", dataset_bytes=2 * MB,
                             req_size=8192, num_iter=2, compute_s=0.002)
        runner = SyntheticRunner(platform, sp, use_dodo=True)
        res = sim.run(until=runner.run())
        telemetry.finalize()
    finally:
        install_telemetry(prev_t)
        install_eventlog(prev_e)
    fingerprint = (res.elapsed_s, tuple(res.iteration_s), sim.now)
    return fingerprint, telemetry, eventlog


def csv_bytes(telemetry):
    buf = io.StringIO()
    telemetry.dump_csv(buf)
    return buf.getvalue()


def jsonl_bytes(eventlog):
    buf = io.StringIO()
    eventlog.dump_jsonl(buf)
    return buf.getvalue()


def assert_identical(a, b, what):
    if a != b:  # report the first mismatch; a full MB-sized diff is useless
        n = min(len(a), len(b))
        i = next((k for k in range(n) if a[k] != b[k]), n)
        pytest.fail(f"{what} differ (lens {len(a)} vs {len(b)}) at byte {i}: "
                    f"{a[i:i + 80]!r} vs {b[i:i + 80]!r}")


def test_same_seed_telemetry_is_byte_identical():
    _, tel_a, log_a = run_workload(seed=11, telemetered=True)
    _, tel_b, log_b = run_workload(seed=11, telemetered=True)
    assert_identical(csv_bytes(tel_a), csv_bytes(tel_b), "time-series CSVs")
    assert_identical(jsonl_bytes(log_a), jsonl_bytes(log_b), "event logs")


def test_telemetry_does_not_perturb_the_simulation():
    plain, _, _ = run_workload(seed=11, telemetered=False)
    sampled, telemetry, eventlog = run_workload(seed=11, telemetered=True)
    assert sampled == plain  # elapsed, iteration times, virtual clock
    assert telemetry.runs() and eventlog.events


def test_telemetry_covers_the_cluster():
    _, telemetry, eventlog = run_workload(seed=11, telemetered=True)
    run = max(telemetry.runs(), key=lambda r: len(r.components))
    kinds = {k for k, _n, _o in run.components}
    # (no "rmd": a dedicated platform spawns its imds directly; rmd
    # registration is covered by the nondedicated experiment)
    for expected in ("workstation", "nic", "network", "disk", "pagecache",
                     "manager", "imd", "regionlib"):
        assert expected in kinds, f"no {expected} registered"
    assert run.get("cluster", "cluster", "donated_bytes") is not None
    assert run.get("rpc", "rpc", "outstanding") is not None
    assert run.samples > 1
    events = {f"{e.component}/{e.event}" for e in eventlog.events}
    assert {"imd/imd.start", "manager/region.placed"} <= events


def test_fleet_layer_is_read_only_and_inert_when_disabled():
    """Deriving fleet views/insights is post-processing: it must not
    mutate the recorded data, and emission into disabled engines is a
    no-op — the fleet layer adds zero overhead when observability is
    off."""
    from repro.obs.fleet import build_fleet_view
    from repro.obs.fleet.insights import build_insights, emit_insights
    plain, _, _ = run_workload(seed=11, telemetered=False)
    sampled, telemetry, eventlog = run_workload(seed=11, telemetered=True)
    assert sampled == plain
    before_csv = csv_bytes(telemetry)
    before_jsonl = jsonl_bytes(eventlog)
    fleet = build_fleet_view(telemetry, eventlog)
    insights = build_insights(telemetry, eventlog)
    assert fleet["main"] is not None and insights["donors"]
    assert_identical(csv_bytes(telemetry), before_csv,
                     "CSVs before/after view building")
    assert_identical(jsonl_bytes(eventlog), before_jsonl,
                     "event logs before/after view building")
    assert emit_insights(NULL_EVENTLOG, None, insights) == 0
    assert not NULL_EVENTLOG.events


def test_csv_shape_and_downsampling():
    _, telemetry, _ = run_workload(seed=11, telemetered=True)
    lines = csv_bytes(telemetry).splitlines()
    assert lines[0] == "run,time,kind,name,gauge,unit,value"
    assert all(line.count(",") == 6 for line in lines[1:])
    run = max(telemetry.runs(), key=lambda r: r.samples)
    series = run.get("cluster", "cluster", "donated_bytes")
    times, values = series.downsampled(5)
    assert len(times) == len(values) == 5
    assert times == sorted(times)
    full_t, full_v = series.downsampled(None)
    assert (full_t, full_v) == (series.times, series.values)
