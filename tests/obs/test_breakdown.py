"""Tests for the fetch-path latency breakdown (Tables 3/4 shape)."""

import pytest

from repro.obs.breakdown import (fetch_breakdown, format_fetch_breakdown,
                                 layer_of)
from repro.obs.tracer import Span


def make_span(span_id, parent_id, name, component, start, end, track=1):
    s = Span(span_id, parent_id, name, component, track, start)
    s.end = end
    return s


def test_layer_mapping():
    assert layer_of("lib") == "library"
    assert layer_of("regionlib") == "library"
    assert layer_of("rpc") == "network"
    assert layer_of("net") == "network"
    assert layer_of("cmd") == "manager"
    assert layer_of("imd") == "daemon"
    assert layer_of("fs") == "disk"
    assert layer_of("pagecache") == "disk"
    assert layer_of("something-new") == "something-new"  # passes through


def test_simple_decomposition_sums_to_total():
    spans = [
        make_span(1, 0, "mread", "lib", 0.0, 10.0),
        make_span(2, 1, "rpc.read", "rpc", 1.0, 9.0),
        make_span(3, 2, "serve.read", "imd", 3.0, 5.0, track=2),
    ]
    b = fetch_breakdown(spans)
    assert b["count"] == 1
    assert b["mean_s"] == pytest.approx(10.0)
    assert b["layers"]["library"] == pytest.approx(2.0)  # [0,1) + [9,10]
    assert b["layers"]["network"] == pytest.approx(6.0)  # [1,3) + [5,9)
    assert b["layers"]["daemon"] == pytest.approx(2.0)   # [3,5)
    assert sum(b["layers"].values()) == pytest.approx(b["mean_s"])


def test_innermost_span_wins_with_shorter_tiebreak():
    spans = [
        make_span(1, 0, "mread", "lib", 0.0, 10.0),
        make_span(2, 1, "rpc.read", "rpc", 0.0, 10.0),
        make_span(3, 1, "serve.read", "imd", 0.0, 4.0, track=2),
    ]
    b = fetch_breakdown(spans)
    # Both children start with the root; the shorter one is innermost.
    assert b["layers"]["daemon"] == pytest.approx(4.0)
    assert b["layers"]["network"] == pytest.approx(6.0)
    assert "library" not in b["layers"]


def test_only_causal_descendants_are_attributed():
    spans = [
        make_span(1, 0, "mread", "lib", 0.0, 10.0),
        make_span(2, 1, "rpc.read", "rpc", 2.0, 8.0),
        # overlaps in time but belongs to an unrelated causal tree
        make_span(3, 0, "disk.read", "disk", 1.0, 9.0, track=9),
    ]
    b = fetch_breakdown(spans)
    assert "disk" not in b["layers"]
    assert b["layers"]["network"] == pytest.approx(6.0)
    assert b["layers"]["library"] == pytest.approx(4.0)


def test_descendants_found_across_generations():
    spans = [
        make_span(1, 0, "mread", "lib", 0.0, 8.0),
        make_span(2, 1, "rpc.read", "rpc", 1.0, 7.0),
        make_span(3, 2, "serve.read", "imd", 2.0, 6.0, track=2),
        make_span(4, 3, "disk.read", "disk", 3.0, 5.0, track=3),
    ]
    b = fetch_breakdown(spans)
    assert b["layers"]["disk"] == pytest.approx(2.0)
    assert b["layers"]["daemon"] == pytest.approx(2.0)
    assert b["layers"]["network"] == pytest.approx(2.0)
    assert b["layers"]["library"] == pytest.approx(2.0)


def test_mean_over_multiple_roots():
    spans = [
        make_span(1, 0, "mread", "lib", 0.0, 4.0),
        make_span(2, 0, "mread", "lib", 10.0, 16.0),
        make_span(3, 2, "rpc.read", "rpc", 11.0, 15.0),
    ]
    b = fetch_breakdown(spans)
    assert b["count"] == 2
    assert b["mean_s"] == pytest.approx(5.0)
    assert b["layers"]["network"] == pytest.approx(2.0)
    assert b["layers"]["library"] == pytest.approx(3.0)
    assert sum(b["layers"].values()) == pytest.approx(b["mean_s"])


def test_unfinished_and_missing_roots():
    open_span = Span(1, 0, "mread", "lib", 1, 0.0)  # never ended
    b = fetch_breakdown([open_span])
    assert b["count"] == 0
    assert b["mean_s"] == 0.0
    assert b["layers"] == {}


def test_alternate_root_name():
    spans = [
        make_span(1, 0, "mwrite", "lib", 0.0, 2.0),
        make_span(2, 1, "rpc.write", "rpc", 0.5, 1.5),
    ]
    b = fetch_breakdown(spans, root_name="mwrite")
    assert b["count"] == 1
    assert b["layers"]["network"] == pytest.approx(1.0)


def test_format_has_layer_rows_and_total():
    spans = [
        make_span(1, 0, "mread", "lib", 0.0, 10.0),
        make_span(2, 1, "rpc.read", "rpc", 1.0, 9.0),
    ]
    out = format_fetch_breakdown(fetch_breakdown(spans))
    assert "library" in out and "network" in out
    assert "total" in out
    assert "100.0%" in out
    # library 2 ms of 10 ms = 20%
    assert "20.0%" in out
