"""Differential tests: batched owner sessions and lazy trace replay.

Both batched background-load paths must be observationally identical to
their one-event-per-step counterparts: the same signal values at every
probe instant, the same RNG stream positions, the same stats — with far
fewer simulator events.  These tests run the same seeded scenario in
both modes and compare everything a resource monitor could see.
"""

import random

import numpy as np
import pytest

from repro.cluster import (MB, Owner, OwnerParams, TABLE1, TraceParams,
                           TraceReplayer, Workstation, generate_host_trace)
from repro.cluster.cluster import Cluster, ClusterConfig, HostSpec
from repro.cluster.idleness import IdlePolicy
from repro.core import CentralManager, DodoConfig, ResourceMonitor
from repro.net import Network
from repro.sim import Simulator


def probe_series(sim, ws, horizon, out, probe_seed=99):
    """Sample every observable owner signal at reproducible instants."""
    rng = random.Random(probe_seed)
    t = 0.0
    while t < horizon:
        dt = rng.uniform(0.5, 37.0)
        t += dt
        yield sim.timeout(dt)
        out.append((sim.now, ws.console_idle_seconds(), ws.owner_load,
                    ws.load, ws.mem.process, ws.mem.kernel,
                    ws.console_last_activity))


# -- owner sessions -----------------------------------------------------------

def run_owner(batched, seed=3, horizon=4 * 3600.0, stop_at=None,
              params=None):
    sim = Simulator(seed=seed)
    ws = Workstation(sim, "w0", Network(sim))
    owner = Owner(sim, ws, params=params, start_active=True,
                  batched=batched)
    series = []
    sim.process(probe_series(sim, ws, horizon, series))
    if stop_at is not None:
        def stopper():
            yield sim.timeout(stop_at)
            owner.stop()
        sim.process(stopper())
    sim.run(until=horizon)
    return {
        "series": series,
        "sessions": ws.stats.count("owner.sessions"),
        "background": ws.stats.count("owner.background_jobs"),
        "active": owner.active,
        "events": sim.events_processed,
        # the RNG stream must be at the same position in both modes
        "rng_next": float(owner.rng.random()),
    }


@pytest.mark.parametrize("seed", range(6))
def test_owner_batched_identical(seed):
    fast = run_owner(True, seed=seed)
    slow = run_owner(False, seed=seed)
    assert fast["series"] == slow["series"]
    assert fast["sessions"] == slow["sessions"]
    assert fast["background"] == slow["background"]
    assert fast["active"] == slow["active"]
    assert fast["rng_next"] == slow["rng_next"]


def test_owner_batched_event_count_shrinks():
    def bare(batched):
        sim = Simulator(seed=1)
        ws = Workstation(sim, "w0", Network(sim))
        Owner(sim, ws, start_active=True, batched=batched)
        sim.run(until=4 * 3600.0)
        return ws.stats.count("owner.sessions"), sim.events_processed

    sessions, fast_events = bare(True)
    _, slow_events = bare(False)
    assert sessions >= 1
    # a 20-minute-mean session at 5 s keystroke bursts is ~240 events on
    # the stepping path and exactly one on the batched path
    assert fast_events < slow_events / 20


def test_owner_stop_mid_session_identical():
    """An interrupt mid-session must leave identical state at the same
    instant in both modes (console script materialized up to the stop)."""
    for stop_at in (60.0, 601.5, 47.3):
        fast = run_owner(True, seed=2, horizon=1200.0, stop_at=stop_at)
        slow = run_owner(False, seed=2, horizon=1200.0, stop_at=stop_at)
        assert fast["series"] == slow["series"]
        assert fast["active"] == slow["active"] is False


def test_owner_short_sessions_identical():
    """Sessions shorter than one keystroke interval exercise the partial
    final step of the accumulation."""
    params = OwnerParams(active_mean_s=3.0, away_mean_s=10.0,
                         console_interval_s=5.0)
    fast = run_owner(True, seed=5, horizon=600.0, params=params)
    slow = run_owner(False, seed=5, horizon=600.0, params=params)
    assert fast["series"] == slow["series"]
    assert fast["rng_next"] == slow["rng_next"]


# -- trace replay --------------------------------------------------------------

@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(55)
    return generate_host_trace(
        rng, "h", TABLE1[64], TraceParams(duration_s=2 * 3600.0))


def run_replay(lazy, trace, loop=False, stop_at=None, speedup=60.0,
               horizon=150.0, hog_at=None):
    sim = Simulator(seed=7)
    ws = Workstation(sim, "w0", Network(sim), total_mem_bytes=64 * MB)
    rep = TraceReplayer(sim, ws, trace, speedup=speedup, loop=loop,
                        lazy=lazy)
    series = []

    def probe():
        rng = random.Random(17)
        t = 0.0
        while t < horizon:
            dt = rng.uniform(0.3, 9.7)
            t += dt
            yield sim.timeout(dt)
            series.append((sim.now, ws.mem.kernel, ws.mem.process,
                           ws.mem.filecache, ws.owner_load,
                           ws.console_last_activity,
                           rep.samples_applied))
    sim.process(probe())
    if stop_at is not None:
        def stopper():
            yield sim.timeout(stop_at)
            rep.stop()
        sim.process(stopper())
    if hog_at is not None:
        def hog():
            # a nemesis-style direct mutation on top of the replay feed
            yield sim.timeout(hog_at)
            ws.touch_console()
            ws.owner_load += 1.0
            yield sim.timeout(2.5)
            ws.owner_load = max(0.0, ws.owner_load - 1.0)
        sim.process(hog())
    sim.run(until=horizon)
    return {"series": series, "applied": rep.samples_applied,
            "final": (ws.mem.kernel, ws.mem.process, ws.owner_load,
                      ws.console_last_activity),
            "events": sim.events_processed}


def test_replay_lazy_identical(trace):
    lazy = run_replay(True, trace)
    eager = run_replay(False, trace)
    assert lazy["series"] == eager["series"]
    assert lazy["applied"] == eager["applied"]
    assert lazy["final"] == eager["final"]


def test_replay_lazy_full_pass_settles_tail(trace):
    """After the trace ends, unobserved tail samples must still have been
    applied (the per-pass wake-up), leaving identical final state."""
    lazy = run_replay(True, trace, speedup=60.0, horizon=130.0)
    eager = run_replay(False, trace, speedup=60.0, horizon=130.0)
    assert lazy["applied"] == eager["applied"] == len(trace.load)
    assert lazy["final"] == eager["final"]


def test_replay_lazy_loop_identical(trace):
    lazy = run_replay(True, trace, loop=True, horizon=300.0)
    eager = run_replay(False, trace, loop=True, horizon=300.0)
    assert lazy["series"] == eager["series"]
    assert lazy["applied"] == eager["applied"]
    assert lazy["applied"] > len(trace.load) * 2


def test_replay_lazy_stop_identical(trace):
    lazy = run_replay(True, trace, stop_at=61.7)
    eager = run_replay(False, trace, stop_at=61.7)
    assert lazy["series"] == eager["series"]
    assert lazy["applied"] == eager["applied"]


def test_replay_lazy_with_direct_mutations(trace):
    """Nemesis-style direct writes (console touch, load bump) interleave
    with the feed identically in both modes."""
    lazy = run_replay(True, trace, hog_at=33.33)
    eager = run_replay(False, trace, hog_at=33.33)
    assert lazy["series"] == eager["series"]


def test_replay_lazy_event_count_shrinks(trace):
    lazy = run_replay(True, trace, speedup=60.0, horizon=130.0)
    eager = run_replay(False, trace, speedup=60.0, horizon=130.0)
    # eager: one event per sample (120 samples); lazy: one per pass
    assert lazy["events"] < eager["events"] - len(trace.load) // 2


def test_recruitment_identical_under_lazy_replay(trace):
    """End to end: an rmd watching a replayed desktop recruits and
    reclaims at the same instants in both modes."""
    def run(lazy):
        sim = Simulator(seed=131)
        hosts = [HostSpec("mgr"), HostSpec("w0", total_mem_bytes=128 * MB)]
        cluster = Cluster(sim, ClusterConfig(hosts=hosts))
        cfg = DodoConfig(store_payload=False, max_pool_bytes=8 * MB,
                         idle_policy=IdlePolicy(window_s=10.0))
        CentralManager(sim, cluster["mgr"], cfg)
        rmd = ResourceMonitor(sim, cluster["w0"], cfg, cmd_host="mgr")
        TraceReplayer(sim, cluster["w0"], trace, speedup=60.0, lazy=lazy)
        sim.run(until=130.0)
        return dict(rmd.stats.counters)

    assert run(True) == run(False)
