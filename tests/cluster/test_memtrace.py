"""Tests for the Section-2 trace generator and its analysis functions."""

import numpy as np
import pytest

from repro.cluster import (CLUSTER_A_MIX, CLUSTER_B_MIX, TABLE1, IdlePolicy,
                           TraceParams, available_series_mb, cluster_summary,
                           generate_cluster, generate_host_trace, idle_mask,
                           table1_from_traces)

SHORT = TraceParams(duration_s=86400.0)  # one day is enough for unit tests


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="module")
def host128(rng):
    return generate_host_trace(rng, "h", TABLE1[128], SHORT)


def test_trace_length_and_nonnegativity(host128):
    n = int(SHORT.duration_s / SHORT.dt_s)
    assert len(host128.kernel) == n
    for comp in (host128.kernel, host128.filecache, host128.process,
                 host128.available):
        assert (comp >= 0).all()


def test_components_never_exceed_total(host128):
    used = host128.kernel + host128.filecache + host128.process
    assert (used <= host128.total_kb * 1.0001).all()


def test_kernel_mean_matches_table1(host128):
    stats = TABLE1[128]
    assert host128.kernel.mean() == pytest.approx(stats.kernel_mean,
                                                  rel=0.25)


def test_available_mostly_high_with_dips(host128):
    """Figure 2's qualitative claim: large fractions available most of the
    time, but with noticeable dips."""
    avail_frac = host128.available / host128.total_kb
    assert np.median(avail_frac) > 0.4
    assert avail_frac.min() < np.median(avail_frac) * 0.6


def test_idle_mask_requires_full_window():
    console = np.zeros(10, dtype=bool)
    load = np.zeros(10)
    mask = idle_mask(console, load, dt_s=60.0,
                     policy=IdlePolicy(window_s=300.0))
    assert not mask[:4].any()  # first 4 samples can't have a full window
    assert mask[4:].all()


def test_idle_mask_broken_by_activity():
    console = np.zeros(20, dtype=bool)
    console[10] = True
    load = np.zeros(20)
    mask = idle_mask(console, load, dt_s=60.0)
    assert mask[9]
    assert not mask[10:14].any()  # activity poisons the trailing window
    assert mask[15:].all()


def test_idle_mask_broken_by_load():
    console = np.zeros(20, dtype=bool)
    load = np.zeros(20)
    load[5:8] = 1.0
    mask = idle_mask(console, load, dt_s=60.0)
    assert not mask[5:12].any()
    assert mask[12:].all()


def test_idle_mask_shape_mismatch():
    with pytest.raises(ValueError):
        idle_mask(np.zeros(5, dtype=bool), np.zeros(6), 60.0)


def test_cluster_generation_counts(rng):
    traces = generate_cluster(rng, CLUSTER_A_MIX, SHORT, name="A")
    assert len(traces) == 29
    traces_b = generate_cluster(rng, CLUSTER_B_MIX, SHORT, name="B")
    assert len(traces_b) == 23


def test_cluster_a_summary_matches_paper(rng):
    """Figure 1 headline numbers: 3549 MB (all) / 2747 MB (idle hosts)."""
    traces = generate_cluster(rng, CLUSTER_A_MIX, SHORT, name="A")
    s = cluster_summary(traces)
    assert s["avg_available_all_mb"] == pytest.approx(3549, rel=0.2)
    assert s["avg_available_idle_mb"] == pytest.approx(2747, rel=0.3)
    assert 0.5 < s["frac_available_all"] < 0.8  # paper: 60-68%
    assert s["avg_available_idle_mb"] < s["avg_available_all_mb"]


def test_cluster_b_summary_matches_paper(rng):
    """Figure 1: clusterB averages 852 MB (all) / 742 MB (idle hosts)."""
    traces = generate_cluster(rng, CLUSTER_B_MIX, SHORT, name="B")
    s = cluster_summary(traces)
    assert s["avg_available_all_mb"] == pytest.approx(852, rel=0.2)
    assert s["avg_available_idle_mb"] == pytest.approx(742, rel=0.35)


def test_table1_reproduction(rng):
    """Per-class component means must track Table 1 within tolerance."""
    mix = {32: 4, 64: 4, 128: 4, 256: 4}
    traces = generate_cluster(rng, mix, SHORT)
    got = table1_from_traces(traces)
    for mb, stats in TABLE1.items():
        row = got[mb]
        assert row["kernel"][0] == pytest.approx(stats.kernel_mean, rel=0.3)
        assert row["available"][0] == pytest.approx(stats.available_mean,
                                                    rel=0.35)


def test_available_series_structure(rng):
    traces = generate_cluster(rng, {64: 3}, SHORT)
    series = available_series_mb(traces)
    n = int(SHORT.duration_s / SHORT.dt_s)
    assert len(series["times_s"]) == n
    assert (series["idle_hosts_mb"] <= series["all_hosts_mb"] + 1e-9).all()


def test_available_series_empty_rejected():
    with pytest.raises(ValueError):
        available_series_mb([])


def test_diurnal_busy_pattern(rng):
    """Owners must be at the console more during the day than at night."""
    tr = generate_host_trace(rng, "h", TABLE1[64],
                             TraceParams(duration_s=4 * 86400.0))
    hour = (tr.times / 3600.0) % 24
    day = (hour >= 8) & (hour < 20)
    assert tr.console_active[day].mean() > tr.console_active[~day].mean() * 2


def test_weekend_quieter_than_weekdays(rng):
    """Weekly structure: weekend console activity far below weekdays."""
    tr = generate_host_trace(rng, "h", TABLE1[128],
                             TraceParams(duration_s=14 * 86400.0))
    weekday = (tr.times // 86400).astype(int) % 7
    weekend = weekday >= 5
    assert tr.console_active[weekend].mean() \
        < tr.console_active[~weekend].mean() * 0.7
