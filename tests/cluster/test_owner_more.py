"""Additional owner-model behaviour tests."""

import pytest

from repro.cluster import MB, Owner, OwnerParams, Workstation
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=161)


@pytest.fixture
def ws(sim):
    return Workstation(sim, "w0", Network(sim), total_mem_bytes=64 * MB)


def test_sessions_alternate_with_away(sim, ws):
    Owner(sim, ws, OwnerParams(active_mean_s=30.0, away_mean_s=30.0,
                               background_job_prob=0.0), start_active=True)
    sim.run(until=1800.0)
    # over 30 minutes with ~30 s phases, many sessions happen
    assert ws.stats.count("owner.sessions") >= 5


def test_background_jobs_raise_load_without_console(sim, ws):
    params = OwnerParams(active_mean_s=1.0, away_mean_s=10_000.0,
                         background_job_prob=1.0, background_load=1.0)
    Owner(sim, ws, params, start_active=False)
    sim.run(until=5.0)
    assert ws.owner_load == pytest.approx(1.0)
    # console untouched: the machine is CPU-busy but input-idle
    assert ws.console_last_activity == float("-inf")
    assert ws.stats.count("owner.background_jobs") == 1


def test_session_memory_returned_after_session(sim, ws):
    base = ws.mem.process
    params = OwnerParams(active_mean_s=10.0, away_mean_s=10_000.0,
                         background_job_prob=0.0)
    Owner(sim, ws, params, start_active=True)
    sim.run(until=300.0)  # session long over
    assert ws.mem.process == base
    assert ws.owner_load == pytest.approx(params.idle_load)


def test_stop_idempotent_after_natural_reference(sim, ws):
    owner = Owner(sim, ws, OwnerParams(active_mean_s=5.0, away_mean_s=5.0))
    sim.run(until=3.0)
    owner.stop()
    sim.run(until=4.0)
    assert not owner.proc.is_alive
