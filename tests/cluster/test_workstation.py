"""Tests for the workstation model, cluster builder and owner process."""

import pytest

from repro.cluster import (Cluster, ClusterConfig, MB, Owner, OwnerParams,
                           Workstation, is_idle_now)
from repro.cluster.cluster import HostSpec
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=4)


def make_ws(sim, **kw):
    net = Network(sim)
    return Workstation(sim, "w0", net, **kw)


def test_memory_accounting_defaults(sim):
    ws = make_ws(sim, total_mem_bytes=128 * MB)
    assert ws.mem.kernel == 128 * MB // 5
    assert ws.available_memory() == 128 * MB - ws.mem.kernel - ws.mem.process


def test_recruitable_subtracts_headroom(sim):
    ws = make_ws(sim, total_mem_bytes=128 * MB)
    expected = ws.available_memory() - int(0.15 * 128 * MB)
    assert ws.recruitable_memory() == expected


def test_recruitable_never_negative(sim):
    ws = make_ws(sim, total_mem_bytes=32 * MB, process_mem_bytes=30 * MB)
    assert ws.recruitable_memory() == 0


def test_guest_memory_reduces_availability(sim):
    ws = make_ws(sim)
    before = ws.available_memory()
    ws.guest_memory = 10 * MB
    assert ws.available_memory() == before - 10 * MB


def test_filecache_tracked_by_local_fs(sim):
    ws = make_ws(sim, fs_cache_bytes=4 * MB)
    assert ws.fs is not None
    ws.fs.create("f", size=1 * MB)
    fh = ws.fs.open("f")

    def proc():
        yield ws.fs.read(fh, 0, 1 * MB)

    p = sim.process(proc())
    sim.run(until=p)
    assert ws.filecache_bytes == pytest.approx(1 * MB, abs=8192)
    assert ws.available_memory() < ws.mem.total - ws.mem.kernel - 1 * MB + 8192


def test_console_idle_seconds(sim):
    ws = make_ws(sim)
    assert ws.console_idle_seconds() == float("inf")
    ws.touch_console()

    def proc():
        yield sim.timeout(42.0)

    p = sim.process(proc())
    sim.run(until=p)
    assert ws.console_idle_seconds() == pytest.approx(42.0)


def test_load_excludes_daemons(sim):
    ws = make_ws(sim)
    ws.owner_load = 0.1
    ws.daemon_load = 0.9
    assert ws.load == pytest.approx(1.0)
    assert ws.load_excluding_daemons() == pytest.approx(0.1)
    # daemon load alone must not make the host look busy
    assert is_idle_now(ws)


def test_is_idle_now_respects_console_window(sim):
    ws = make_ws(sim)
    ws.touch_console()
    assert not is_idle_now(ws)

    def proc():
        yield sim.timeout(301.0)

    p = sim.process(proc())
    sim.run(until=p)
    assert is_idle_now(ws)
    ws.owner_load = 0.5
    assert not is_idle_now(ws)


def test_crash_downs_nic(sim):
    ws = make_ws(sim)
    ws.crash()
    assert ws.nic.down and ws.crashed
    ws.recover()
    assert not ws.nic.down


def test_endpoint_lookup(sim):
    ws = make_ws(sim)
    assert ws.endpoint("udp") is ws.udp
    assert ws.endpoint("unet") is ws.unet
    with pytest.raises(ValueError):
        ws.endpoint("tcp")


def test_cluster_uniform_build(sim):
    cfg = ClusterConfig.uniform(5, total_mem_bytes=64 * MB)
    cluster = Cluster(sim, cfg)
    assert len(cluster) == 5
    assert cluster["ws00"].mem.total == 64 * MB
    assert sorted(cluster.names) == [f"ws0{i}" for i in range(5)]


def test_cluster_duplicate_names_rejected(sim):
    cfg = ClusterConfig(hosts=[HostSpec("a"), HostSpec("a")])
    with pytest.raises(ValueError):
        Cluster(sim, cfg)


def test_cluster_host_with_disk(sim):
    cfg = ClusterConfig(hosts=[HostSpec("app", has_disk=True,
                                        fs_cache_bytes=2 * MB)])
    cluster = Cluster(sim, cfg)
    assert cluster["app"].fs is not None
    assert cluster["app"].disk is not None


def test_owner_session_touches_console_and_load(sim):
    ws = make_ws(sim)
    Owner(sim, ws, OwnerParams(active_mean_s=100, away_mean_s=100,
                               console_interval_s=5), start_active=True)
    sim.run(until=50.0)
    # at least one session ran and the console was touched during it
    assert ws.stats.count("owner.sessions") >= 1
    assert ws.console_last_activity > float("-inf")


def test_owner_away_period_quiet(sim):
    ws = make_ws(sim)
    params = OwnerParams(active_mean_s=10, away_mean_s=10_000,
                         background_job_prob=0.0)
    Owner(sim, ws, params, start_active=False)
    sim.run(until=5.0)
    assert ws.owner_load == pytest.approx(params.idle_load)


def test_owner_stop_releases_memory(sim):
    ws = make_ws(sim)
    base_proc = ws.mem.process
    owner = Owner(sim, ws, OwnerParams(active_mean_s=1e6, away_mean_s=1.0),
                  start_active=True)
    sim.run(until=10.0)
    assert ws.mem.process > base_proc  # active session pins memory
    owner.stop()
    sim.run(until=11.0)
    assert ws.mem.process == base_proc
