"""Tests for owner preference rules and trace-driven replay."""

import numpy as np
import pytest

from repro.cluster import (MB, PreferenceRules, TABLE1, TraceParams,
                           TraceReplayer, Workstation, console_idle_at_least,
                           custom, generate_host_trace, max_load,
                           min_available_memory, never, time_window)
from repro.cluster.idleness import IdlePolicy
from repro.cluster.cluster import Cluster, ClusterConfig, HostSpec
from repro.core import CentralManager, DodoConfig, ResourceMonitor
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=131)


@pytest.fixture
def ws(sim):
    return Workstation(sim, "w0", Network(sim), total_mem_bytes=64 * MB)


# -- rule constructors ---------------------------------------------------------

def test_never_blocks(ws):
    rules = PreferenceRules([never()])
    assert not rules.allows(ws, 0.0)
    assert rules.blocking_rule(ws, 0.0).name == "never"


def test_empty_rules_allow(ws):
    assert PreferenceRules().allows(ws, 123.0)


def test_time_window_plain(ws):
    rule = time_window(9, 17)
    assert rule(ws, 10 * 3600.0)
    assert not rule(ws, 18 * 3600.0)
    assert not rule(ws, 8.99 * 3600.0)


def test_time_window_wraps_midnight(ws):
    rule = time_window(19, 7)  # overnight harvesting
    assert rule(ws, 23 * 3600.0)
    assert rule(ws, 3 * 3600.0)
    assert not rule(ws, 12 * 3600.0)
    # second day too
    assert rule(ws, 86400.0 + 23 * 3600.0)


def test_time_window_validation():
    with pytest.raises(ValueError):
        time_window(25, 3)


def test_min_available_memory(ws):
    rule = min_available_memory(16 * MB)
    assert rule(ws, 0.0)
    ws.mem.process = 60 * MB
    assert not rule(ws, 0.0)


def test_console_idle_at_least(sim, ws):
    rule = console_idle_at_least(600.0)
    assert rule(ws, 0.0)  # never touched: idle since -inf
    ws.touch_console()
    assert not rule(ws, 0.0)


def test_max_load_excludes_daemons(ws):
    rule = max_load(0.1)
    ws.daemon_load = 5.0
    ws.owner_load = 0.05
    assert rule(ws, 0.0)
    ws.owner_load = 0.2
    assert not rule(ws, 0.0)


def test_custom_rule(ws):
    rule = custom("only-even-seconds", lambda w, now: int(now) % 2 == 0)
    assert rule(ws, 4.0) and not rule(ws, 5.0)


def test_conjunction_semantics(ws):
    rules = PreferenceRules([max_load(1.0), min_available_memory(1)])
    assert rules.allows(ws, 0.0)
    rules.add(never())
    assert not rules.allows(ws, 0.0)


# -- rmd integration ------------------------------------------------------------

def build_monitored(sim, preferences, window_s=5.0):
    hosts = [HostSpec("mgr"), HostSpec("w0", total_mem_bytes=64 * MB)]
    cluster = Cluster(sim, ClusterConfig(hosts=hosts))
    cfg = DodoConfig(store_payload=False, max_pool_bytes=4 * MB,
                     idle_policy=IdlePolicy(window_s=window_s))
    CentralManager(sim, cluster["mgr"], cfg)
    rmd = ResourceMonitor(sim, cluster["w0"], cfg, cmd_host="mgr",
                          preferences=preferences)
    return cluster, rmd


def test_rmd_respects_veto(sim):
    cluster, rmd = build_monitored(sim, PreferenceRules([never()]))
    sim.run(until=30.0)
    assert not rmd.recruited
    assert rmd.stats.count("preference_vetoes") > 0


def test_rmd_reclaims_when_window_closes(sim):
    # allowed only for the first simulated "hour-equivalent": use a
    # custom rule keyed on sim time for determinism
    rules = PreferenceRules([custom("before-t30", lambda w, t: t < 30.0)])
    cluster, rmd = build_monitored(sim, rules)
    sim.run(until=20.0)
    assert rmd.recruited
    sim.run(until=40.0)
    assert not rmd.recruited  # window closed: imd reclaimed
    assert rmd.stats.count("reclaims") == 1


# -- trace replay ------------------------------------------------------------------

@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(55)
    return generate_host_trace(
        rng, "h", TABLE1[64], TraceParams(duration_s=4 * 3600.0))


def test_replayer_drives_signals(sim, ws, trace):
    replayer = TraceReplayer(sim, ws, trace, speedup=60.0)
    sim.run(until=60.0)  # one simulated minute = one trace hour
    assert replayer.samples_applied > 10
    assert ws.mem.kernel == int(trace.kernel[
        replayer.samples_applied - 1]) * 1024


def test_replayer_console_matches_trace(sim, ws, trace):
    TraceReplayer(sim, ws, trace, speedup=1.0)
    # run until just past the first active sample (if any in first 50)
    active_idx = next((i for i in range(50) if trace.console_active[i]),
                      None)
    if active_idx is None:
        pytest.skip("no console activity in trace head")
    sim.run(until=(active_idx + 0.5) * trace.dt_s)
    assert ws.console_last_activity >= active_idx * trace.dt_s


def test_replayer_stop(sim, ws, trace):
    replayer = TraceReplayer(sim, ws, trace, speedup=60.0)
    sim.run(until=5.0)
    replayer.stop()
    sim.run(until=6.0)
    applied = replayer.samples_applied
    sim.run(until=30.0)
    assert replayer.samples_applied == applied


def test_replayer_loop_wraps(sim, ws):
    rng = np.random.default_rng(56)
    short = generate_host_trace(rng, "h", TABLE1[32],
                                TraceParams(duration_s=600.0))
    replayer = TraceReplayer(sim, ws, short, speedup=1.0, loop=True)
    sim.run(until=1500.0)  # 2.5x the trace length
    assert replayer.samples_applied > len(short.load) * 2


def test_replayer_validation(sim, ws, trace):
    with pytest.raises(ValueError):
        TraceReplayer(sim, ws, trace, speedup=0.0)


def test_trace_driven_recruitment_end_to_end(sim):
    """The full Section 5.3.1 setup: a Section-2 trace drives a desktop
    whose rmd recruits and reclaims accordingly."""
    hosts = [HostSpec("mgr"), HostSpec("w0", total_mem_bytes=128 * MB)]
    cluster = Cluster(sim, ClusterConfig(hosts=hosts))
    cfg = DodoConfig(store_payload=False, max_pool_bytes=8 * MB,
                     idle_policy=IdlePolicy(window_s=10.0))
    CentralManager(sim, cluster["mgr"], cfg)
    rmd = ResourceMonitor(sim, cluster["w0"], cfg, cmd_host="mgr")
    rng = np.random.default_rng(57)
    trace = generate_host_trace(
        rng, "h", TABLE1[128],
        TraceParams(duration_s=8 * 3600.0, busy_frac_day=0.5,
                    busy_frac_night=0.5, session_mean_s=1200.0))
    TraceReplayer(sim, cluster["w0"], trace, speedup=60.0)
    sim.run(until=8 * 60.0)  # whole trace at 60x
    assert rmd.stats.count("recruits") >= 1
    assert rmd.stats.count("reclaims") >= 1
