"""Property tests: the vectorized idleness predicate vs a naive reference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.idleness import IdlePolicy, idle_mask


def naive_idle_mask(console_active, load, dt_s, policy):
    """Direct, obviously-correct implementation of the Section 2 rule."""
    n = len(load)
    w = max(1, int(round(policy.window_s / dt_s)))
    out = np.zeros(n, dtype=bool)
    for t in range(n):
        if t < w - 1:
            continue
        window = range(t - w + 1, t + 1)
        out[t] = all(not console_active[i]
                     and load[i] < policy.load_threshold for i in window)
    return out


@given(
    n=st.integers(1, 120),
    seed=st.integers(0, 1000),
    window_steps=st.integers(1, 10),
    activity_rate=st.floats(0.0, 0.5),
)
@settings(max_examples=80, deadline=None)
def test_idle_mask_matches_naive(n, seed, window_steps, activity_rate):
    rng = np.random.default_rng(seed)
    console = rng.random(n) < activity_rate
    load = rng.random(n) * 0.6  # straddles the 0.3 threshold
    dt = 60.0
    policy = IdlePolicy(window_s=window_steps * dt)
    fast = idle_mask(console, load, dt, policy)
    slow = naive_idle_mask(console, load, dt, policy)
    assert (fast == slow).all()


@given(n=st.integers(1, 60), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_idle_mask_monotone_in_quietness(n, seed):
    """Silencing the console can only add idle samples, never remove."""
    rng = np.random.default_rng(seed)
    console = rng.random(n) < 0.3
    load = rng.random(n) * 0.25  # always under threshold
    base = idle_mask(console, load, 60.0)
    quiet = idle_mask(np.zeros(n, dtype=bool), load, 60.0)
    assert (quiet | ~base).all()  # base => quiet


def test_all_quiet_is_idle_after_window():
    n = 10
    mask = idle_mask(np.zeros(n, dtype=bool), np.zeros(n), 60.0,
                     IdlePolicy(window_s=300.0))
    assert not mask[:4].any() and mask[4:].all()
