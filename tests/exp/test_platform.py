"""Tests for the Section 5.1 platform builder and its scaling rule."""

import pytest

from repro.exp.platform import MB, Platform, PlatformParams, build_platform
from repro.sim import Simulator


def test_default_platform_matches_paper():
    p = PlatformParams()
    assert p.n_memory_hosts == 12
    assert p.imd_pool_bytes == 100 * MB          # "100 MB on startup"
    assert p.local_cache_bytes == 80 * MB        # "local cache of 80 MB"
    assert p.n_memory_hosts * p.imd_pool_bytes == 1200 * MB  # "1200 MB"


def test_scaling_preserves_ratios():
    base = PlatformParams()
    scaled = base.scaled(1 / 16)
    assert scaled.imd_pool_bytes == base.imd_pool_bytes // 16
    assert scaled.local_cache_bytes == base.local_cache_bytes // 16
    # the ratios the results depend on are unchanged
    assert scaled.imd_pool_bytes / scaled.local_cache_bytes == \
        pytest.approx(base.imd_pool_bytes / base.local_cache_bytes)
    assert scaled.disk_capacity_bytes / scaled.imd_pool_bytes == \
        pytest.approx(base.disk_capacity_bytes / base.imd_pool_bytes)


def test_scale_one_is_identity():
    p = PlatformParams()
    assert p.scaled(1.0) is p


def test_build_with_dodo_registers_imds():
    sim = Simulator(seed=121)
    platform = build_platform(sim, scale=1 / 128)
    assert platform.cmd is not None
    assert len(platform.imds) == 12
    assert len(platform.cmd.iwd) == 12
    assert platform.remote_pool_total == 12 * platform.params.imd_pool_bytes
    # every memory host pinned its pool
    for imd in platform.imds:
        assert imd.ws.guest_memory == platform.params.imd_pool_bytes


def test_build_without_dodo_has_no_daemons():
    sim = Simulator(seed=122)
    platform = build_platform(sim, scale=1 / 128, dodo=False)
    assert platform.cmd is None
    assert platform.imds == []
    with pytest.raises(RuntimeError):
        platform.runtime()


def test_baseline_gets_bigger_file_cache():
    sim1 = Simulator(seed=123)
    with_dodo = build_platform(sim1, scale=1 / 64, dodo=True)
    sim2 = Simulator(seed=124)
    baseline = build_platform(sim2, scale=1 / 64, dodo=False)
    # the region cache's memory belongs to the OS file cache instead
    assert baseline.app.fs.cache.capacity_pages \
        > with_dodo.app.fs.cache.capacity_pages


def test_region_cache_uses_platform_defaults():
    sim = Simulator(seed=125)
    platform = build_platform(sim, scale=1 / 128)
    cache = platform.region_cache(policy="first-in")
    assert cache.local_bytes == platform.params.local_cache_bytes
    assert cache.policy.name == "first-in"


def test_app_node_has_disk_and_fs():
    sim = Simulator(seed=126)
    platform = build_platform(sim, scale=1 / 128)
    assert platform.app.disk is not None
    assert platform.app.fs is not None
    assert platform.mgr.disk is None  # the manager node needs none
