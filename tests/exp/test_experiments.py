"""Shape tests for the experiment drivers (small scales; the full
parameter grids live in benchmarks/)."""

import pytest

from repro.exp.ablations import (run_allocator_ablation,
                                 run_policy_ablation,
                                 run_pregrant_ablation,
                                 run_refraction_ablation)
from repro.exp.disk_cal import PAPER, measure, run_disk_calibration
from repro.exp.fig7 import lu_params_for_scale, run_dmine, run_lu
from repro.exp.fig8 import Fig8Point, run_point
from repro.exp.nondedicated import NonDedicatedParams, run_nondedicated
from repro.exp.sec2 import run_fig1, run_fig2, run_table1

SCALE = 1 / 256  # tiny but ratio-preserving


# -- Section 2 ----------------------------------------------------------------

def test_fig1_clusters_match_paper_band():
    results = run_fig1(days=1.0)
    a = results["clusterA"]["summary"]
    assert a["avg_available_all_mb"] == pytest.approx(3549, rel=0.25)
    assert a["avg_available_idle_mb"] < a["avg_available_all_mb"]
    b = results["clusterB"]["summary"]
    assert b["avg_available_all_mb"] == pytest.approx(852, rel=0.25)


def test_table1_within_tolerance():
    results = run_table1(days=1.0, hosts_per_class=3)
    for mb, row in results["measured"].items():
        paper = results["paper"][mb]
        assert row["available"][0] == pytest.approx(paper.available_mean,
                                                    rel=0.4)


def test_fig2_dips_but_mostly_available():
    results = run_fig2(days=2.0)
    for mb, res in results.items():
        assert res["median_avail_frac"] > 0.35
        assert res["min_avail_frac"] < res["median_avail_frac"]


# -- disk calibration ----------------------------------------------------------

def test_disk_calibration_all_points_within_20pct():
    results = run_disk_calibration()
    for key, res in results.items():
        assert res["measured"] == pytest.approx(res["paper"], rel=0.2), key


def test_disk_calibration_ordering():
    r8 = measure("rand", 8192, total_mb=2)
    s8 = measure("seq", 8192, total_mb=8)
    assert r8 < s8 / 5  # random is many times slower than sequential


# -- Figure 8 (single representative points at tiny scale) ---------------------

@pytest.mark.slow
def test_fig8_random_beats_sequential():
    seq = run_point(Fig8Point("sequential", 8192, 1, "udp"), scale=SCALE,
                    num_iter=3)
    rand = run_point(Fig8Point("random", 8192, 1, "udp"), scale=SCALE,
                     num_iter=3)
    assert rand["speedup"] > seq["speedup"] + 0.2
    assert 0.7 < seq["speedup"] < 1.25  # "virtually no speedup"
    assert rand["speedup"] > 1.2


@pytest.mark.slow
def test_fig8_unet_beats_udp():
    udp = run_point(Fig8Point("random", 8192, 1, "udp"), scale=SCALE,
                    num_iter=3)
    unet = run_point(Fig8Point("random", 8192, 1, "unet"), scale=SCALE,
                     num_iter=3)
    assert unet["speedup"] > udp["speedup"]


@pytest.mark.slow
def test_fig8_hotcold_gains_from_bigger_dataset():
    small = run_point(Fig8Point("hotcold", 8192, 1, "udp"), scale=SCALE,
                      num_iter=3)
    big = run_point(Fig8Point("hotcold", 8192, 2, "udp"), scale=SCALE,
                    num_iter=3)
    assert big["speedup"] > small["speedup"]


# -- Figure 7 ------------------------------------------------------------------

def test_lu_params_scaling_preserves_slab_count():
    for scale in (1 / 16, 1 / 64, 1 / 256):
        p = lu_params_for_scale(scale)
        assert p.n_slabs == 128


@pytest.mark.slow
def test_fig7_lu_modest_speedup():
    res = run_lu("unet", scale=1 / 256)
    assert 1.02 < res["speedup"] < 1.5  # paper: 1.2
    # lu is compute-bound: I/O fraction under Dodo is small
    assert res["dodo_io_fraction"] < 0.2


@pytest.mark.slow
def test_fig7_dmine_second_run_much_faster():
    res = run_dmine("unet", scale=1 / 64)
    assert res["speedup_run2"] > res["speedup_run1"] + 0.5
    assert res["speedup_run2"] > 1.8  # paper: 3.2


# -- non-dedicated -----------------------------------------------------------------

@pytest.mark.slow
def test_nondedicated_speedup_and_tiny_reclaim_delay():
    res = run_nondedicated(NonDedicatedParams(
        num_iter=3, owner_active_mean_s=40.0, owner_away_mean_s=150.0))
    assert res["speedup"] > 1.0
    assert res["dodo"]["reclaims"] >= 1
    # "virtually no delays": well under a second
    assert res["dodo"]["max_reclaim_delay_s"] < 0.5


# -- ablations -----------------------------------------------------------------------

def test_allocator_ablation_buddy_wastes_memory():
    res = run_allocator_ablation(pool_mb=16, n_ops=1500)
    assert res["buddy"]["internal_waste_bytes"] > 0
    assert res["first-fit"]["internal_waste_bytes"] == 0


@pytest.mark.slow
def test_refraction_suppresses_manager_load():
    res = run_refraction_ablation(scale=1 / 256)
    with_r, without = res[2.0], res[0.0]
    assert with_r["cmd_enomem_rpcs"] < without["cmd_enomem_rpcs"] / 5
    assert with_r["refraction_skips"] > 0
    # and it does not slow the application down
    assert with_r["elapsed_s"] < without["elapsed_s"] * 1.1


@pytest.mark.slow
def test_policy_ablation_first_in_beats_lru_on_cyclic_scan():
    res = run_policy_ablation(scale=1 / 256)
    assert res["lru"]["local_hits"] == 0
    assert res["first-in"]["local_hits"] > 0
    assert res["first-in"]["elapsed_s"] < res["lru"]["elapsed_s"]


def test_pregrant_cuts_latency():
    res = run_pregrant_ablation(n=20)
    assert res[True]["mean_latency_s"] < res[False]["mean_latency_s"]
