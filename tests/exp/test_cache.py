"""Unit tests for the elastic-caching ablation driver."""

import json

import pytest

from repro.exp.cache import (ABLATION_POLICIES, CACHE_WORKLOADS,
                             run_cache)


def test_rejects_unknown_workload():
    with pytest.raises(ValueError, match="unknown cache workload"):
        run_cache(workload="bogus")


def test_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown cache policy"):
        run_cache(policy="bogus", workload="fig7")


def test_migration_requires_an_active_policy():
    with pytest.raises(ValueError,
                       match="migration needs an eviction policy"):
        run_cache(policy="none", migration=True)


def test_adaptive_requires_an_active_policy():
    with pytest.raises(ValueError):
        run_cache(policy="none", adaptive=True)


def test_constants_cover_the_ablation_axes():
    assert set(CACHE_WORKLOADS) == {"nondedicated", "fig7"}
    assert "none" in ABLATION_POLICIES
    assert "cost-aware" in ABLATION_POLICIES


def test_fig7_cell_deterministic_and_complete():
    a = run_cache(policy="clock", workload="fig7", num_iter=2)
    b = run_cache(policy="clock", workload="fig7", num_iter=2)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["requests"] > 0
    assert (a["local_hits"] + a["remote_hits"] + a["migrated_hits"]
            + a["disk_reads"] == a["requests"])
    assert a["evictions"] > 0  # the constrained fig7 pool forces them
    assert a["reclaims"] == 0  # dedicated donors: nobody comes back


def test_policy_none_never_evicts():
    r = run_cache(policy="none", workload="fig7", num_iter=1)
    assert r["evictions"] == 0
    assert r["migrations"]["attempted"] == 0
    assert r["switches"] == 0
