"""Smoke tests for experiment formatters (canned inputs, no simulation)."""

from repro.exp.ablations import (format_allocator_ablation,
                                 format_policy_ablation,
                                 format_prefetch_ablation,
                                 format_pregrant_ablation,
                                 format_refraction_ablation)
from repro.exp.fig7 import format_fig7
from repro.exp.fig8 import Fig8Point, format_fig8
from repro.exp.nondedicated import format_nondedicated


def test_format_fig7():
    results = {
        ("lu", "udp"): {"speedup": 1.18, "paper": 1.15,
                        "dodo_io_fraction": 0.09},
        ("dmine", "udp"): {"speedup_run1": 1.2, "speedup_run2": 2.1,
                           "paper": 2.6},
    }
    out = format_fig7(results)
    assert "lu" in out and "dmine" in out
    assert "1.18" in out and "2.10" in out
    assert "run1: 1.20" in out


def test_format_fig8():
    point = Fig8Point("random", 8192, 1, "udp")
    results = {"A (8K, 1GB)": [
        {"point": point, "speedup": 1.44, "steady_speedup": 1.65,
         "baseline_s": 10.0, "dodo_s": 7.0}]}
    out = format_fig8(results)
    assert "Figure 8A" in out
    assert "random" in out and "1.44" in out


def test_format_nondedicated():
    results = {
        "baseline": {"elapsed_s": 76.6},
        "dodo": {"elapsed_s": 64.8, "recruits": 7, "reclaims": 3,
                 "mean_reclaim_delay_s": 0.0004,
                 "max_reclaim_delay_s": 0.0004},
        "speedup": 1.18,
    }
    out = format_nondedicated(results)
    assert "1.18" in out
    assert "0.4 ms" in out


def test_format_ablations():
    assert "first-fit" in format_allocator_ablation({
        "first-fit": {"failures": 1, "mean_fragmentation": 0.5,
                      "internal_waste_bytes": 0, "live_bytes": 100},
        "buddy": {"failures": 2, "mean_fragmentation": 0.4,
                  "internal_waste_bytes": 1 << 20, "live_bytes": 100}})
    assert "refraction" in format_refraction_ablation({
        0.0: {"elapsed_s": 10.0, "cmd_enomem_rpcs": 100,
              "refraction_skips": 0},
        2.0: {"elapsed_s": 9.9, "cmd_enomem_rpcs": 5,
              "refraction_skips": 95}})
    assert "lru" in format_policy_ablation({
        "lru": {"elapsed_s": 5.0, "local_hits": 0, "remote_hits": 10}})
    assert "prefetch" in format_prefetch_ablation({
        0: {"last_scan_s": 3.6, "elapsed_s": 11.0, "prefetches": 0,
            "local_hits": 100},
        2: {"last_scan_s": 3.2, "elapsed_s": 10.0, "prefetches": 50,
            "local_hits": 200}})
    assert "pre-granted" in format_pregrant_ablation({
        False: {"mean_latency_s": 0.002}, True: {"mean_latency_s": 0.0016}})
