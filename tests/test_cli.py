"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, _scale, build_parser, main


def test_scale_parsing():
    assert _scale("1/64") == pytest.approx(1 / 64)
    assert _scale("0.25") == 0.25
    assert _scale("1") == 1.0


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "fig8" in capsys.readouterr().out


def test_parser_accepts_all_commands():
    parser = build_parser()
    for argv in (["fig1", "--days", "1"],
                 ["fig7", "--scale-lu", "1/256"],
                 ["fig8", "--scale", "1/256", "--iters", "2"],
                 ["ablations", "--scale", "1/256"],
                 ["nondedicated", "--iters", "2"],
                 ["all", "--quick"]):
        args = parser.parse_args(argv)
        assert args.command == argv[0]


def test_disk_command_runs(capsys):
    assert main(["disk"]) == 0
    out = capsys.readouterr().out
    assert "disk bandwidth" in out
    assert "seq 8K" in out


def test_table1_command_runs(capsys):
    assert main(["table1", "--days", "0.25"]) == 0
    assert "Table 1" in capsys.readouterr().out
