"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, _scale, build_parser, main


def test_scale_parsing():
    assert _scale("1/64") == pytest.approx(1 / 64)
    assert _scale("0.25") == 0.25
    assert _scale("1") == 1.0


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "fig8" in capsys.readouterr().out


def test_parser_accepts_all_commands():
    parser = build_parser()
    for argv in (["fig1", "--days", "1"],
                 ["fig7", "--scale-lu", "1/256"],
                 ["fig8", "--scale", "1/256", "--iters", "2"],
                 ["ablations", "--scale", "1/256"],
                 ["nondedicated", "--iters", "2"],
                 ["all", "--quick"]):
        args = parser.parse_args(argv)
        assert args.command == argv[0]


def test_disk_command_runs(capsys):
    assert main(["disk"]) == 0
    out = capsys.readouterr().out
    assert "disk bandwidth" in out
    assert "seq 8K" in out


def test_table1_command_runs(capsys):
    assert main(["table1", "--days", "0.25"]) == 0
    assert "Table 1" in capsys.readouterr().out


# -- observability options ----------------------------------------------------

def test_parser_accepts_observability_flags():
    parser = build_parser()
    args = parser.parse_args(["fig7", "--trace-out", "t.json",
                              "--metrics-out", "m.json", "--kernel-events"])
    assert args.trace_out == "t.json"
    assert args.metrics_out == "m.json"
    assert args.kernel_events is True
    # default: disabled
    args = parser.parse_args(["fig7"])
    assert args.trace_out is None and args.metrics_out is None
    assert args.kernel_events is False


def test_parser_accepts_trace_shorthand():
    parser = build_parser()
    args = parser.parse_args(["trace", "fig8", "--out", "f8.json"])
    assert args.command == "trace"
    assert args.experiment == "fig8"
    assert args.out == "f8.json"
    args = parser.parse_args(["trace", "disk"])
    assert args.out == "trace.json"


def test_trace_rejects_untraceable_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["trace", "all"])  # shells out: cannot trace


def test_traced_run_writes_trace_and_metrics(tmp_path, capsys):
    import json
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.json"
    assert main(["disk",
                 "--trace-out", str(trace_path),
                 "--metrics-out", str(metrics_path)]) == 0
    assert "disk bandwidth" in capsys.readouterr().out
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    assert any(e.get("ph") == "X" and e["name"].startswith("disk.")
               for e in events)
    metrics = json.loads(metrics_path.read_text())
    assert metrics["meta"]["command"] == "disk"
    assert metrics["recorders"]


def test_untraced_run_leaves_default_tracer(capsys):
    from repro.obs.tracer import NULL_TRACER, default_tracer
    assert main(["table1", "--days", "0.25"]) == 0
    capsys.readouterr()
    assert default_tracer() is NULL_TRACER


# -- telemetry / event log / audit options ------------------------------------

def test_parser_accepts_telemetry_flags():
    parser = build_parser()
    args = parser.parse_args(["fig8", "--telemetry-out", "t.csv",
                              "--telemetry-interval", "0.5",
                              "--events-out", "e.jsonl",
                              "--events-level", "debug",
                              "--audit", "raise"])
    assert args.telemetry_out == "t.csv"
    assert args.telemetry_interval == 0.5
    assert args.events_out == "e.jsonl"
    assert args.events_level == "debug"
    assert args.audit_mode == "raise"
    # default: all disabled
    args = parser.parse_args(["fig8"])
    assert args.telemetry_out is None and args.events_out is None
    assert args.audit_mode == "off"


def test_parser_accepts_top_shorthand():
    parser = build_parser()
    args = parser.parse_args(["top", "disk"])
    assert args.command == "top"
    assert args.experiment == "disk"
    with pytest.raises(SystemExit):
        parser.parse_args(["top", "all"])  # shells out: cannot sample


def test_telemetered_run_writes_csv_events_and_audits(tmp_path, capsys):
    csv_path = tmp_path / "t.csv"
    events_path = tmp_path / "e.jsonl"
    assert main(["disk", "--telemetry-out", str(csv_path),
                 "--events-out", str(events_path), "--audit", "raise"]) == 0
    err = capsys.readouterr().err
    assert "time-series rows" in err
    assert "no inconsistencies" in err
    lines = csv_path.read_text().splitlines()
    assert lines[0] == "run,time,kind,name,gauge,unit,value"
    assert any(",disk," in line for line in lines[1:])
    assert events_path.exists()


def test_top_renders_dashboard(capsys):
    assert main(["top", "disk"]) == 0
    out = capsys.readouterr().out
    assert "samples @" in out  # the dashboard header rendered


def test_untelemetered_run_leaves_default_telemetry(capsys):
    from repro.obs.eventlog import NULL_EVENTLOG, default_eventlog
    from repro.obs.timeseries import NULL_TELEMETRY, default_telemetry
    assert main(["table1", "--days", "0.25"]) == 0
    capsys.readouterr()
    assert default_telemetry() is NULL_TELEMETRY
    assert default_eventlog() is NULL_EVENTLOG


# -- chaos (nemesis) command --------------------------------------------------

def test_parser_accepts_chaos_flags(tmp_path):
    parser = build_parser()
    args = parser.parse_args(["chaos", "fig7", "--seed", "9",
                              "--plan-out", "p.json",
                              "--events-out", "e.jsonl",
                              "--audit", "warn"])
    assert args.command == "chaos"
    assert args.experiment == "fig7"
    assert args.seed == 9
    assert args.plan_out == "p.json"
    assert args.events_out == "e.jsonl"
    assert args.chaos_audit == "warn"
    # defaults: audit raise, no artifacts
    args = parser.parse_args(["chaos", "nondedicated"])
    assert args.chaos_audit == "raise"
    assert args.plan_out is None and args.plan_in is None


def test_chaos_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["chaos", "fig8"])


def test_chaos_missing_plan_in_is_one_line_error(tmp_path, capsys):
    """An unreadable --plan-in must exit non-zero with a single
    'repro: ...' line, never a traceback."""
    assert main(["chaos", "fig7",
                 "--plan-in", str(tmp_path / "absent.json")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: cannot read fault plan")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err


def test_chaos_corrupt_plan_in_is_one_line_error(tmp_path, capsys):
    bad = tmp_path / "plan.json"
    bad.write_text("{not json at all")
    assert main(["chaos", "fig7", "--plan-in", str(bad)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: cannot read fault plan")
    assert "Traceback" not in err


def test_chaos_run_exports_plan_and_replays_identically(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    events_path = tmp_path / "events.jsonl"
    assert main(["chaos", "fig7", "--seed", "3",
                 "--plan-out", str(plan_path),
                 "--events-out", str(events_path)]) == 0
    out = capsys.readouterr().out
    assert "injected" in out and "no inconsistencies" in out
    first = events_path.read_bytes()
    assert first  # chaos events were persisted, not clobbered by the CLI

    replay_path = tmp_path / "replay.jsonl"
    assert main(["chaos", "fig7", "--plan-in", str(plan_path),
                 "--events-out", str(replay_path)]) == 0
    capsys.readouterr()
    assert replay_path.read_bytes() == first


# -- sweep command ------------------------------------------------------------

def _write_selftest_spec(tmp_path, **extra):
    import json
    spec = {"name": "cli-test", "experiment": "selftest",
            "grid": {"seed": [0, 1, 2], "x": [1]}, **extra}
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


def test_parser_accepts_sweep_flags():
    parser = build_parser()
    args = parser.parse_args(["sweep", "ci-grid", "--jobs", "4",
                              "--cache-dir", "c", "--resume",
                              "--out", "r.json", "--quiet"])
    assert args.command == "sweep"
    assert args.spec == "ci-grid"
    assert args.jobs == 4
    assert args.cache_dir == "c"
    assert args.resume is True
    assert args.out == "r.json"
    assert args.quiet is True
    # defaults
    args = parser.parse_args(["sweep", "ci-grid"])
    assert args.jobs == 1 and args.resume is False
    assert args.cache_dir == ".sweep-cache"


def test_sweep_lists_in_repro_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sweep" in out
    assert "ci-grid" in out  # builtin specs advertised


def test_sweep_runs_and_resumes_from_cache(tmp_path, capsys):
    spec = _write_selftest_spec(tmp_path)
    cache = str(tmp_path / "cache")
    out = str(tmp_path / "results.json")
    assert main(["sweep", spec, "--cache-dir", cache, "--out", out,
                 "--quiet"]) == 0
    stdout = capsys.readouterr().out
    assert "3 points" in stdout and "3 ran" in stdout
    import json
    record = json.loads(open(out).read())
    assert record["summary"]["ran"] == 3

    assert main(["sweep", spec, "--cache-dir", cache, "--resume",
                 "--quiet"]) == 0
    assert "3 cached" in capsys.readouterr().out


def test_sweep_failed_point_exits_nonzero(tmp_path, capsys):
    spec = _write_selftest_spec(tmp_path,
                                overrides={"fail_seeds": [1]})
    assert main(["sweep", spec, "--cache-dir", "", "--quiet"]) == 1
    captured = capsys.readouterr()
    assert "1 failed" in captured.out
    assert "injected failure" in captured.err


def test_sweep_unknown_builtin_is_one_line_error(capsys):
    assert main(["sweep", "no-such-sweep"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: unknown sweep spec")
    assert "Traceback" not in err


def test_sweep_unreadable_spec_is_one_line_error(tmp_path, capsys):
    assert main(["sweep", str(tmp_path / "absent.json")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: cannot read sweep spec")
    assert len(err.strip().splitlines()) == 1


def test_sweep_unknown_experiment_is_one_line_error(tmp_path, capsys):
    import json
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "name": "bad", "experiment": "fig99",
        "grid": {"seed": [0]}}))
    assert main(["sweep", str(path)]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment(s) fig99" in err
    assert "Traceback" not in err
