"""Tests for libmanage: states, policies, grimReaper, coherence."""

import pytest

from repro.core import EINVAL
from repro.sim import Simulator

from repro.testing import make_backing_file, make_platform, run

KB = 1024


@pytest.fixture
def sim():
    return Simulator(seed=31)


@pytest.fixture
def platform(sim):
    return make_platform(sim, local_cache_kb=256)


@pytest.fixture
def cache(platform):
    return platform.region_cache(policy="lru")


def fill_file(sim, platform, name, blob):
    fs = platform.app.fs
    fs.create(name, size=len(blob))
    fh = fs.open(name, "r+")

    def proc():
        yield fs.write(fh, 0, len(blob), blob)
        yield fs.fsync(fh)

    run(sim, proc())
    return fh.fd


def test_copen_validations(sim, platform, cache):
    fd = make_backing_file(platform)

    def proc():
        good = yield from cache.copen(1024, fd, 0)
        bad_len = yield from cache.copen(0, fd, 0)
        bad_off = yield from cache.copen(1024, fd, -1)
        bad_fd = yield from cache.copen(1024, 999, 0)
        return good, bad_len, bad_off, bad_fd

    good, bad_len, bad_off, bad_fd = run(sim, proc())
    assert good[1] == 0 and good[0] >= 0
    for ret, err in (bad_len, bad_off, bad_fd):
        assert ret == -1 and err == EINVAL


def test_region_starts_on_disk_then_loads_local(sim, platform, cache):
    blob = bytes(range(256)) * 16  # 4 KB
    fd = fill_file(sim, platform, "f", blob)

    def proc():
        crd, _ = yield from cache.copen(len(blob), fd, 0)
        assert cache.state(crd) == "disk"
        n, err, data = yield from cache.cread(crd, 0, len(blob))
        return crd, n, err, data

    crd, n, err, data = run(sim, proc())
    assert (n, err) == (len(blob), 0)
    assert data == blob
    assert cache.state(crd) == "local"


def test_local_hit_faster_than_disk_load(sim, platform, cache):
    blob = b"x" * (64 * KB)
    fd = fill_file(sim, platform, "f", blob)
    # Evict "f" from the OS page cache by streaming a bigger filler file,
    # so the first cread truly hits the disk.
    fs = platform.app.fs
    fs.create("filler", size=2 * 1024 * KB)
    filler = fs.open("filler")

    def proc():
        for off in range(0, 2 * 1024 * KB, 64 * KB):
            yield fs.read(filler, off, 64 * KB)
        crd, _ = yield from cache.copen(len(blob), fd, 0)
        t0 = sim.now
        yield from cache.cread(crd, 0, len(blob))
        cold = sim.now - t0
        t0 = sim.now
        yield from cache.cread(crd, 0, len(blob))
        warm = sim.now - t0
        return cold, warm

    cold, warm = run(sim, proc())
    assert warm < cold / 5
    assert cache.stats.count("cread.local_hits") == 1


def test_eviction_migrates_to_remote_then_served_remotely(sim, platform,
                                                          cache):
    """Filling the 256 KB local cache with 64 KB regions forces the LRU
    victim into remote memory; the next read of it is a remote hit."""
    blob = bytes(i % 256 for i in range(64 * KB))
    fds = [fill_file(sim, platform, f"f{i}", blob) for i in range(6)]

    def proc():
        crds = []
        for fd in fds:
            crd, err = yield from cache.copen(len(blob), fd, 0)
            assert err == 0
            crds.append(crd)
            yield from cache.cread(crd, 0, 1024)
        # 6 x 64 KB > 256 KB local: the first regions were evicted
        assert cache.state(crds[0]) == "remote"
        assert cache.state(crds[-1]) == "local"
        n, err, data = yield from cache.cread(crds[0], 0, len(blob))
        return n, err, data

    n, err, data = run(sim, proc())
    assert (n, err) == (len(blob), 0)
    assert data == blob
    assert cache.stats.count("clone.ok") >= 1
    assert cache.stats.count("cread.remote_hits") >= 1


def test_dirty_eviction_reaches_disk(sim, platform, cache):
    """A dirty region evicted to remote memory must also land on disk
    (remote memory is a read-only cache; disk has the truth)."""
    blob = b"\x00" * (64 * KB)
    fds = [fill_file(sim, platform, f"f{i}", blob) for i in range(6)]

    def proc():
        crd0, _ = yield from cache.copen(64 * KB, fds[0], 0)
        payload = b"dirty!" * 100
        yield from cache.cwrite(crd0, 0, len(payload), payload)
        assert cache.directory[crd0].dirty
        for fd in fds[1:]:
            crd, _ = yield from cache.copen(64 * KB, fd, 0)
            yield from cache.cread(crd, 0, 1024)
        assert cache.state(crd0) in ("remote", "disk")
        fh = platform.app.fs.handle(fds[0])
        _, data = yield platform.app.fs.read(fh, 0, len(payload))
        return payload, data

    payload, data = run(sim, proc())
    assert data == payload


def test_cwrite_invalidates_stale_remote_copy(sim, platform, cache):
    blob = bytes(range(256)) * 256  # 64 KB
    fds = [fill_file(sim, platform, f"f{i}", blob) for i in range(6)]

    def proc():
        crds = []
        for fd in fds:
            crd, _ = yield from cache.copen(len(blob), fd, 0)
            crds.append(crd)
            yield from cache.cread(crd, 0, 1024)
        assert cache.state(crds[0]) == "remote"
        # write to the remotely cached region: it comes back local-dirty
        new = b"NEW" * 100
        n, err = yield from cache.cwrite(crds[0], 0, len(new), new)
        assert err == 0
        assert cache.state(crds[0]) == "local"
        n, err, data = yield from cache.cread(crds[0], 0, len(new))
        return new, data

    new, data = run(sim, proc())
    assert data == new
    assert cache.stats.count("cwrite.remote_invalidated") >= 1


def test_csync_pushes_to_remote_and_disk(sim, platform, cache):
    blob = b"\x00" * (32 * KB)
    fd = fill_file(sim, platform, "f", blob)

    def proc():
        crd, _ = yield from cache.copen(len(blob), fd, 0)
        payload = b"sync-me" * 64
        yield from cache.cwrite(crd, 0, len(payload), payload)
        ret, err = yield from cache.csync(crd)
        assert (ret, err) == (0, 0)
        assert not cache.directory[crd].dirty
        assert cache.state(crd) == "both"
        fh = platform.app.fs.handle(fd)
        _, data = yield platform.app.fs.read(fh, 0, len(payload))
        return payload, data

    payload, data = run(sim, proc())
    assert data == payload


def test_cclose_flushes_and_frees_remote(sim, platform, cache):
    blob = b"\x00" * (32 * KB)
    fd = fill_file(sim, platform, "f", blob)

    def proc():
        crd, _ = yield from cache.copen(len(blob), fd, 0)
        yield from cache.cwrite(crd, 0, 100, b"c" * 100)
        ret, err = yield from cache.cclose(crd)
        assert (ret, err) == (0, 0)
        again = yield from cache.cclose(crd)
        assert again == (-1, EINVAL)
        fh = platform.app.fs.handle(fd)
        _, data = yield platform.app.fs.read(fh, 0, 100)
        return data

    assert run(sim, proc()) == b"c" * 100
    assert cache.local_free == cache.local_bytes


def test_first_in_policy_never_replaces(sim, platform):
    cache = platform.region_cache(policy="first-in")
    blob = b"z" * (64 * KB)
    fds = [fill_file(sim, platform, f"f{i}", blob) for i in range(6)]

    def proc():
        crds = []
        for fd in fds:
            crd, _ = yield from cache.copen(len(blob), fd, 0)
            crds.append(crd)
            yield from cache.cread(crd, 0, 1024)
        return crds

    crds = run(sim, proc())
    # the first 4 x 64 KB fit in 256 KB and stay; later ones bypass
    states = [cache.state(c) for c in crds]
    assert states[:4] == ["local"] * 4
    assert all(s != "local" for s in states[4:])
    assert cache.stats.count("admission_bypass") >= 1


def test_oversized_region_bypasses_local_cache(sim, platform, cache):
    """A region bigger than the local cache is never cached locally; it
    is served from disk and cloned straight into remote memory."""
    blob = b"big" * (200 * KB // 3 + 1)
    fd = fill_file(sim, platform, "big", blob)

    def proc():
        crd, _ = yield from cache.copen(500 * KB, fd, 0)
        n, err, data = yield from cache.cread(crd, 0, 1000)
        state_after_first = cache.state(crd)
        # second read is served from the remote clone, not the disk
        ops_before = platform.app.disk.stats.count("read.ops")
        n2, err2, data2 = yield from cache.cread(crd, 0, 1000)
        ops_after = platform.app.disk.stats.count("read.ops")
        return n, err, data, state_after_first, data2, ops_before, ops_after

    n, err, data, state, data2, ops_before, ops_after = run(sim, proc())
    assert (n, err) == (1000, 0)
    assert data == blob[:1000]
    assert state == "remote"
    assert data2 == blob[:1000]
    assert ops_after == ops_before  # remote hit: no disk I/O


def test_csetpolicy_switch(sim, platform, cache):
    assert cache.csetPolicy("mru") == 0
    assert cache.policy.name == "mru"
    assert cache.csetPolicy("bogus") == -1
    assert cache.policy.name == "mru"


def test_cread_invalid_args(sim, platform, cache):
    fd = make_backing_file(platform)

    def proc():
        crd, _ = yield from cache.copen(1024, fd, 0)
        bad = yield from cache.cread(crd, 2000, 10)
        missing = yield from cache.cread(999, 0, 10)
        return bad, missing

    bad, missing = run(sim, proc())
    assert bad[:2] == (-1, EINVAL)
    assert missing[:2] == (-1, EINVAL)


def test_remote_loss_self_heals_to_disk(sim, platform, cache):
    """If the hosting imd dies, cread falls back to the backing file."""
    blob = bytes(i % 256 for i in range(64 * KB))
    fds = [fill_file(sim, platform, f"f{i}", blob) for i in range(6)]

    def proc():
        crds = []
        for fd in fds:
            crd, _ = yield from cache.copen(len(blob), fd, 0)
            crds.append(crd)
            yield from cache.cread(crd, 0, 1024)
        assert cache.state(crds[0]) == "remote"
        host = cache.runtime._regions[
            cache.directory[crds[0]].remote_desc].remote.host
        imd = next(i for i in platform.imds if i.ws.name == host)
        yield imd.shutdown()
        n, err, data = yield from cache.cread(crds[0], 0, len(blob))
        return n, err, data

    n, err, data = run(sim, proc())
    assert (n, err) == (len(blob), 0)
    assert data == blob
    assert cache.stats.count("cread.remote_lost") == 1
