"""Unit + property tests for the imd pool allocators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BuddyAllocator, FirstFitAllocator, make_allocator

POOL = 1 << 20  # 1 MB


def test_firstfit_basic_alloc_free():
    a = FirstFitAllocator(POOL)
    off = a.alloc(1000)
    assert off == 0
    assert a.used_bytes == 1000
    assert a.free(off) == 1000
    assert a.used_bytes == 0


def test_firstfit_allocations_disjoint():
    a = FirstFitAllocator(POOL)
    spans = []
    for size in (100, 5000, 42, 8192, 1):
        off = a.alloc(size)
        assert off is not None
        spans.append((off, size))
    spans.sort()
    for (o1, s1), (o2, _) in zip(spans, spans[1:]):
        assert o1 + s1 <= o2


def test_firstfit_exhaustion_returns_none():
    a = FirstFitAllocator(1000)
    assert a.alloc(600) is not None
    assert a.alloc(600) is None
    assert a.stats.count("alloc_failures") == 1


def test_firstfit_reuses_freed_space_without_coalesce():
    a = FirstFitAllocator(1000)
    x = a.alloc(400)
    a.alloc(400)
    a.free(x)
    assert a.alloc(400) == x  # first fit finds the hole


def test_firstfit_fragmentation_requires_coalesce():
    a = FirstFitAllocator(1000)
    offs = [a.alloc(250) for _ in range(4)]
    for off in offs:
        a.free(off)
    # four adjacent 250-byte holes; without coalescing no 1000-byte fit
    assert a.largest_free() == 250
    assert a.fragmentation() > 0.7
    a.coalesce()
    assert a.largest_free() == 1000
    assert a.fragmentation() == 0.0
    assert a.alloc(1000) == 0


def test_firstfit_double_free_rejected():
    a = FirstFitAllocator(1000)
    off = a.alloc(10)
    a.free(off)
    with pytest.raises(KeyError):
        a.free(off)


def test_firstfit_bad_sizes():
    with pytest.raises(ValueError):
        FirstFitAllocator(0)
    a = FirstFitAllocator(1000)
    with pytest.raises(ValueError):
        a.alloc(0)


def test_buddy_rounds_to_power_of_two():
    b = BuddyAllocator(1 << 16)
    b.alloc(5000)  # rounds to 8192
    assert b.used_bytes == 8192


def test_buddy_merges_on_free():
    b = BuddyAllocator(1 << 16)
    offs = [b.alloc(4096) for _ in range(16)]
    assert b.alloc(4096) is None
    for off in offs:
        b.free(off)
    assert b.largest_free() == 1 << 16  # fully merged back


def test_buddy_pool_must_be_power_of_two():
    with pytest.raises(ValueError):
        BuddyAllocator(1000)


def test_buddy_oversized_alloc_fails():
    b = BuddyAllocator(1 << 16)
    assert b.alloc((1 << 16) + 1) is None


def test_make_allocator_factory():
    assert isinstance(make_allocator("first-fit", POOL), FirstFitAllocator)
    buddy = make_allocator("buddy", 100_000)
    assert isinstance(buddy, BuddyAllocator)
    assert buddy.pool_size == 1 << 16  # rounded down to a power of two
    with pytest.raises(ValueError):
        make_allocator("slab", POOL)


# -- property-based invariants ---------------------------------------------------

@st.composite
def alloc_free_script(draw):
    """A random interleaving of alloc/free operations."""
    ops = []
    n = draw(st.integers(1, 60))
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(("alloc", draw(st.integers(1, POOL // 4))))
        else:
            ops.append(("free", draw(st.integers(0, 30))))
    return ops


def _run_script(alloc, ops, coalesce_every=0):
    live = []  # (offset, size)
    step = 0
    for op, arg in ops:
        step += 1
        if op == "alloc":
            off = alloc.alloc(arg)
            if off is not None:
                live.append((off, arg))
        elif live:
            off, _ = live.pop(arg % len(live))
            alloc.free(off)
        if coalesce_every and step % coalesce_every == 0:
            alloc.coalesce()
    return live


@given(alloc_free_script())
@settings(max_examples=60, deadline=None)
def test_firstfit_invariants_hold(ops):
    a = FirstFitAllocator(POOL)
    live = _run_script(a, ops, coalesce_every=7)
    # accounting matches the live set exactly
    assert a.used_bytes == sum(s for _, s in live)
    assert 0 <= a.free_bytes <= POOL
    assert a.largest_free() <= a.free_bytes
    # live allocations are pairwise disjoint and in bounds
    spans = sorted(live)
    for (o1, s1), (o2, _) in zip(spans, spans[1:]):
        assert o1 + s1 <= o2
    for off, size in spans:
        assert 0 <= off and off + size <= POOL


@given(alloc_free_script())
@settings(max_examples=60, deadline=None)
def test_buddy_invariants_hold(ops):
    b = BuddyAllocator(POOL)
    live = _run_script(b, ops)
    # buddy accounting covers at least the requested bytes
    assert b.used_bytes >= sum(s for _, s in live) if live else True
    assert 0 <= b.free_bytes <= POOL
    spans = sorted(live)
    for (o1, s1), (o2, _) in zip(spans, spans[1:]):
        assert o1 + s1 <= o2


@given(st.lists(st.integers(1, 4096), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_firstfit_full_free_restores_pool(sizes):
    a = FirstFitAllocator(POOL)
    offs = [a.alloc(s) for s in sizes]
    for off in offs:
        if off is not None:
            a.free(off)
    a.coalesce()
    assert a.free_bytes == POOL
    assert a.largest_free() == POOL
