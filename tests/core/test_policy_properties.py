"""Property tests: replacement policies vs reference models."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import FirstInPolicy, LruPolicy, MruPolicy


@st.composite
def policy_ops(draw):
    n = draw(st.integers(1, 100))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["insert", "read", "write", "remove",
                                     "evict"]))
        ops.append((kind, draw(st.integers(0, 9))))
    return ops


def drive(policy, model_update, model_victim, ops):
    """Run ops against the policy and an OrderedDict recency model."""
    model: OrderedDict[int, None] = OrderedDict()
    for kind, crd in ops:
        if kind == "insert":
            policy.on_insert(crd)
            model_update(model, "insert", crd)
        elif kind == "read":
            policy.on_read(crd)
            model_update(model, "touch", crd)
        elif kind == "write":
            policy.on_write(crd)
            model_update(model, "touch", crd)
        elif kind == "remove":
            policy.on_remove(crd)
            model.pop(crd, None)
        else:  # evict: ask for a victim and compare with the model's
            got = policy.select_victim({})
            assert got == model_victim(model)
            if got is not None:
                policy.on_remove(got)
                model.pop(got, None)


@given(policy_ops())
@settings(max_examples=100, deadline=None)
def test_lru_matches_recency_model(ops):
    def update(model, kind, crd):
        if kind == "insert":
            model[crd] = None
            model.move_to_end(crd)
        elif crd in model:
            model.move_to_end(crd)

    def victim(model):
        return next(iter(model), None)

    drive(LruPolicy(), update, victim, ops)


@given(policy_ops())
@settings(max_examples=100, deadline=None)
def test_mru_matches_recency_model(ops):
    def update(model, kind, crd):
        if kind == "insert":
            model[crd] = None
            model.move_to_end(crd)
        elif crd in model:
            model.move_to_end(crd)

    def victim(model):
        return next(reversed(model), None)

    drive(MruPolicy(), update, victim, ops)


@given(policy_ops())
@settings(max_examples=100, deadline=None)
def test_first_in_never_selects_and_keeps_order(ops):
    policy = FirstInPolicy()
    inserted: OrderedDict[int, None] = OrderedDict()
    for kind, crd in ops:
        if kind == "insert":
            policy.on_insert(crd)
            inserted.setdefault(crd, None)  # first insertion order sticks
        elif kind == "read":
            policy.on_read(crd)
        elif kind == "write":
            policy.on_write(crd)
        elif kind == "remove":
            policy.on_remove(crd)
            inserted.pop(crd, None)
        else:
            assert policy.select_victim({}) is None
        assert list(policy._order) == list(inserted)
