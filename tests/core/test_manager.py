"""Direct unit tests for the central manager's directories and handlers."""

import pytest

from repro.core import CentralManager, DodoConfig
from repro.core.manager import IwdEntry, _unwire_key, _wire_key
from repro.core.descriptors import RegionKey, RegionStruct
from repro.cluster.workstation import MB, Workstation
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=111)


@pytest.fixture
def cmd(sim):
    net = Network(sim)
    ws = Workstation(sim, "mgr", net)
    return CentralManager(sim, ws, DodoConfig(store_payload=False))


SRC = ("app", 12345)


def test_key_wire_roundtrip():
    for key in (RegionKey(7, 0), RegionKey(9, 4096, client="a#1")):
        assert _unwire_key(_wire_key(key)) == key


def test_imd_register_updates_iwd(cmd):
    r = cmd._h_imd_register({"host": "w0", "pool_bytes": 4 * MB,
                             "epoch": 3, "largest_free": 4 * MB,
                             "port": 6001}, SRC)
    assert r["ok"]
    assert cmd.iwd["w0"].epoch == 3
    assert cmd.iwd["w0"].largest_free == 4 * MB


def test_notify_busy_removes_from_iwd(cmd):
    cmd._h_imd_register({"host": "w0", "pool_bytes": 1, "epoch": 1,
                         "largest_free": 1, "port": 6001}, SRC)
    cmd._h_notify_busy({"host": "w0"}, SRC)
    assert "w0" not in cmd.iwd
    # unknown host: harmless
    cmd._h_notify_busy({"host": "nope"}, SRC)


def test_check_alloc_miss(cmd):
    r = cmd._h_check_alloc({"key": [1, 0, None]}, SRC)
    assert not r["ok"]
    assert cmd.stats.count("check.miss") == 1


def seed_region(cmd, host="w0", epoch=1, inode=5, offset=0, length=4096,
                owner="app#1"):
    from repro.core.manager import RdEntry
    cmd.iwd[host] = IwdEntry(host=host, epoch=epoch, largest_free=1 * MB,
                             port=6001)
    key = RegionKey(inode, offset)
    cmd.rd[key] = RdEntry(struct=RegionStruct(
        host=host, pool_offset=0, length=length, epoch=epoch), owner=owner)
    return key


def test_check_alloc_hit(cmd):
    key = seed_region(cmd)
    r = cmd._h_check_alloc({"key": [key.inode, key.offset, None]}, SRC)
    assert r["ok"]
    assert r["region"]["host"] == "w0"
    assert cmd.stats.count("check.hit") == 1


def test_check_alloc_stale_epoch_deletes(cmd):
    key = seed_region(cmd, epoch=1)
    cmd.iwd["w0"].epoch = 2  # imd restarted since the allocation
    r = cmd._h_check_alloc({"key": [key.inode, key.offset, None]}, SRC)
    assert not r["ok"]
    assert key not in cmd.rd
    assert cmd.stats.count("check.stale") == 1


def test_check_alloc_host_gone_deletes(cmd):
    key = seed_region(cmd)
    del cmd.iwd["w0"]
    r = cmd._h_check_alloc({"key": [key.inode, key.offset, None]}, SRC)
    assert not r["ok"]
    assert key not in cmd.rd


def test_client_tracking_on_calls(cmd):
    cmd._h_check_alloc({"key": [1, 0, None], "client": "app#9",
                        "echo_port": 9}, SRC)
    assert "app#9" in cmd.clients
    assert cmd.clients["app#9"].addr == "app"
    assert cmd.clients["app#9"].echo_port == 9


def test_alloc_with_no_candidates_is_enomem(sim, cmd):
    def proc():
        reply = yield sim.process(
            cmd._h_alloc({"key": [1, 0, None], "length": 4096}, SRC))
        return reply

    p = sim.process(proc())
    reply = sim.run(until=p)
    assert not reply["ok"]
    assert cmd.stats.count("alloc.enomem") == 1


def test_alloc_skips_hosts_with_small_blocks(sim, cmd):
    cmd.iwd["tiny"] = IwdEntry(host="tiny", epoch=1, largest_free=100,
                               port=6001)

    def proc():
        return (yield sim.process(
            cmd._h_alloc({"key": [1, 0, None], "length": 4096}, SRC)))

    reply = sim.run(until=sim.process(proc()))
    assert not reply["ok"]  # only candidate cannot fit the request


def test_alloc_reuses_existing_valid_region(sim, cmd):
    key = seed_region(cmd, length=8192)

    def proc():
        return (yield sim.process(cmd._h_alloc(
            {"key": [key.inode, key.offset, None], "length": 4096,
             "client": "app#2", "echo_port": 2}, SRC)))

    reply = sim.run(until=sim.process(proc()))
    assert reply["ok"]
    assert reply["region"]["length"] == 8192  # the existing region
    assert cmd.stats.count("alloc.reused") == 1
    assert cmd.rd[key].owner == "app#2"  # ownership follows the caller


def test_free_missing_region(sim, cmd):
    def proc():
        return (yield sim.process(
            cmd._h_free({"key": [1, 0, None]}, SRC)))

    reply = sim.run(until=sim.process(proc()))
    assert not reply["ok"]
    assert cmd.stats.count("free.miss") == 1


def test_detach_persist_orphans_regions(sim, cmd):
    key = seed_region(cmd, owner="app#1")

    def proc():
        return (yield sim.process(cmd._h_client_detach(
            {"client": "app#1", "persist": True}, SRC)))

    reply = sim.run(until=sim.process(proc()))
    assert reply["ok"] and reply["freed"] == 0
    assert cmd.rd[key].owner is None  # orphaned, exempt from keep-alive
    assert "app#1" not in cmd.clients


def test_stop_halts_keepalive_and_server(sim, cmd):
    cmd.stop()
    sim.run(until=sim.now + 1.0)
    assert not cmd._keepalive.is_alive
