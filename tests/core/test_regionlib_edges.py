"""Edge cases of the region-management library not covered elsewhere."""

import pytest

from repro.core import EINVAL
from repro.sim import Simulator

from repro.testing import make_backing_file, make_platform, run

KB = 1024


@pytest.fixture
def sim():
    return Simulator(seed=141)


def make_cache(sim, policy="first-in", local_kb=128, **kw):
    platform = make_platform(sim, local_cache_kb=local_kb, **kw)
    return platform, platform.region_cache(policy=policy,
                                           local_bytes=local_kb * KB)


def fill_local_cache(sim, platform, cache, n=2, size_kb=64):
    """Open and touch n regions so a first-in cache is full."""
    fd = make_backing_file(platform, "filler", size=n * size_kb * KB)
    crds = []

    def proc():
        for i in range(n):
            crd, err = yield from cache.copen(size_kb * KB, fd,
                                              i * size_kb * KB)
            assert err == 0
            yield from cache.cread(crd, 0, 1024)
            crds.append(crd)

    run(sim, proc())
    return crds


def test_cwrite_writes_through_when_cache_refuses(sim):
    """first-in + full cache: cwrite bypasses to disk (+ remote)."""
    platform, cache = make_cache(sim)
    fill_local_cache(sim, platform, cache)
    fd = make_backing_file(platform, "target", size=256 * KB)

    def proc():
        crd, _ = yield from cache.copen(64 * KB, fd, 0)
        n, err = yield from cache.cwrite(crd, 0, 500, b"w" * 500)
        assert (n, err) == (500, 0)
        assert cache.state(crd) != "local"
        fh = platform.app.fs.handle(fd)
        _, data = yield platform.app.fs.read(fh, 0, 500)
        return data

    assert run(sim, proc()) == b"w" * 500
    assert cache.stats.count("cwrite.disk_writethrough") \
        + cache.stats.count("cread.remote_hits") >= 1


def test_cwrite_through_remote_keeps_remote_current(sim):
    """Write-through via mwrite updates both the remote copy and disk."""
    platform, cache = make_cache(sim)
    fill_local_cache(sim, platform, cache)
    fd = make_backing_file(platform, "target", size=256 * KB)

    def proc():
        crd, _ = yield from cache.copen(64 * KB, fd, 0)
        # first read pushes it remote (bypass-clone)
        yield from cache.cread(crd, 0, 1024)
        assert cache.state(crd) == "remote"
        n, err = yield from cache.cwrite(crd, 0, 300, b"r" * 300)
        assert (n, err) == (300, 0)
        # still remote, and the remote copy serves the new bytes
        assert cache.state(crd) == "remote"
        n, err, data = yield from cache.cread(crd, 0, 300)
        return data

    assert run(sim, proc()) == b"r" * 300


def test_cwrite_clamps_at_region_end(sim):
    platform, cache = make_cache(sim, local_kb=512)
    fd = make_backing_file(platform)

    def proc():
        crd, _ = yield from cache.copen(1000, fd, 0)
        n, err = yield from cache.cwrite(crd, 900, 500, b"z" * 500)
        return n, err

    assert run(sim, proc()) == (100, 0)  # short write at region end


def test_cwrite_data_shorter_than_length_rejected(sim):
    platform, cache = make_cache(sim, local_kb=512)
    fd = make_backing_file(platform)

    def proc():
        crd, _ = yield from cache.copen(1000, fd, 0)
        return (yield from cache.cwrite(crd, 0, 100, b"short"))

    assert run(sim, proc()) == (-1, EINVAL)


def test_csync_on_clean_region_only_fsyncs(sim):
    platform, cache = make_cache(sim, local_kb=512)
    fd = make_backing_file(platform)

    def proc():
        crd, _ = yield from cache.copen(4096, fd, 0)
        ret, err = yield from cache.csync(crd)
        return ret, err

    assert run(sim, proc()) == (0, 0)
    assert cache.stats.count("clone.ok") == 0  # nothing to push


def test_csync_invalid_crd(sim):
    platform, cache = make_cache(sim)

    def proc():
        return (yield from cache.csync(999))

    assert run(sim, proc()) == (-1, EINVAL)


def test_grim_reaper_empty_cache_refuses(sim):
    platform, cache = make_cache(sim, policy="lru")

    def proc():
        return (yield from cache.grim_reaper(64 * KB))

    # empty cache: nothing to evict, but the space IS free
    assert run(sim, proc()) is True

    def proc2():
        return (yield from cache.grim_reaper(10 * 1024 * KB))

    # impossible demand: no victims can ever satisfy it
    assert run(sim, proc2()) is False


def test_detach_persist_clones_local_regions(sim):
    platform, cache = make_cache(sim, policy="lru", local_kb=512)
    fd = make_backing_file(platform, "d", size=256 * KB)

    def proc():
        crd, _ = yield from cache.copen(64 * KB, fd, 0)
        yield from cache.cwrite(crd, 0, 100, b"p" * 100)
        assert cache.state(crd) == "local"
        yield from cache.detach(persist=True)

    run(sim, proc())
    # the dirty local region was flushed and cloned out before detach
    assert sum(i.allocator.used_bytes for i in platform.imds) == 64 * KB

    # a second run's cache can find it remotely
    cache2 = platform.region_cache(policy="lru", local_bytes=512 * KB)

    def proc2():
        crd, _ = yield from cache2.copen(64 * KB, fd, 0)
        n, err, data = yield from cache2.cread(crd, 0, 100)
        return data, cache2.stats.count("cread.remote_hits") \
            + cache2.stats.count("cread.local_hits")

    data, hits = run(sim, proc2())
    assert data == b"p" * 100


def test_nonpersistent_detach_frees_everything(sim):
    platform, cache = make_cache(sim, policy="lru", local_kb=512)
    fd = make_backing_file(platform, "d", size=256 * KB)

    def proc():
        crd, _ = yield from cache.copen(64 * KB, fd, 0)
        yield from cache.cread(crd, 0, 1024)
        yield from cache.detach(persist=False)

    run(sim, proc())
    assert sum(i.allocator.used_bytes for i in platform.imds) == 0


def test_mpush_validations(sim):
    platform = make_platform(sim)
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        desc, _ = yield from lib.mopen(1000, fd, 0)
        bad_desc = yield from lib.mpush(77, 0, 10, b"x" * 10)
        bad_off = yield from lib.mpush(desc, 5000, 10, b"x" * 10)
        zero = yield from lib.mpush(desc, 0, 0, b"")
        clamp = yield from lib.mpush(desc, 990, 100, b"y" * 100)
        return bad_desc, bad_off, zero, clamp

    bad_desc, bad_off, zero, clamp = run(sim, proc())
    assert bad_desc[1] != 0
    assert bad_off == (-1, EINVAL)
    assert zero == (0, 0)
    assert clamp == (10, 0)
