"""Unit tests for the consistent-hash shard ring and routing table."""

import pytest

from repro.core.descriptors import RegionKey
from repro.core.shard import (HashRing, ShardInfo, ShardMap, default_shard_map,
                              key_text, stable_hash)


def keys(n, client=None):
    return [RegionKey(inode=7, offset=i * 4096, client=client)
            for i in range(n)]


# -- stable_hash --------------------------------------------------------------

def test_stable_hash_is_cross_process_stable():
    # fixed value: sha1("shard:0:vnode:0") prefix — changing the hash
    # function silently would re-own every region in every saved artifact
    assert stable_hash("shard:0:vnode:0") == 0x435DFE8A4A293A0A
    assert stable_hash("") == int.from_bytes(
        bytes.fromhex("da39a3ee5e6b4b0d"), "big")


def test_stable_hash_is_64_bit():
    for text in ("", "a", "shard:3:vnode:9", "x" * 1000):
        assert 0 <= stable_hash(text) < 2 ** 64


def test_key_text_distinguishes_client_regions():
    shared = RegionKey(inode=1, offset=0, client=None)
    private = RegionKey(inode=1, offset=0, client="app")
    assert key_text(shared) != key_text(private)


# -- HashRing -----------------------------------------------------------------

def test_ring_owner_is_deterministic_and_in_set():
    ring = HashRing([0, 1, 2])
    for key in keys(100):
        owner = ring.owner_of_key(key)
        assert owner in (0, 1, 2)
        assert owner == ring.owner_of_key(key)


def test_single_shard_ring_owns_everything():
    ring = HashRing([0])
    assert all(ring.owner_of_key(k) == 0 for k in keys(50))


def test_ring_wraps_past_the_top():
    # a hash above the highest ring point must wrap to the lowest point
    ring = HashRing([0, 1], vnodes=4)
    top = max(ring._points)
    wrapped_owner = ring._owners[0]
    for text in (f"probe:{i}" for i in range(10000)):
        if stable_hash(text) > top:
            assert ring.owner(text) == wrapped_owner
            break
    else:  # pragma: no cover - astronomically unlikely with 8 points
        pytest.fail("found no hash above the top ring point")


def test_ring_rejects_empty_and_duplicate_shards():
    with pytest.raises(ValueError, match="at least one shard"):
        HashRing([])
    with pytest.raises(ValueError, match="duplicate"):
        HashRing([0, 1, 1])


def test_with_and_without_shard():
    ring = HashRing([0, 1])
    assert ring.with_shard(2).shard_ids == (0, 1, 2)
    assert ring.without_shard(1).shard_ids == (0,)


# -- ShardMap -----------------------------------------------------------------

def test_default_shard_map_layout():
    m = default_shard_map(2, replication=True)
    assert m.version == 1
    assert m.n_shards == 2
    assert m.primary(0) == "mgr00" and m.backup(0) == "bak00"
    assert m.primary(1) == "mgr01" and m.backup(1) == "bak01"
    assert default_shard_map(1).backup(0) is None


def test_promoted_bumps_version_and_repoints_one_shard():
    m = default_shard_map(2, replication=True)
    m2 = m.promoted(0, "bak00", None)
    assert m2.version == m.version + 1
    assert m2.primary(0) == "bak00" and m2.backup(0) is None
    # the other shard is untouched, and the original map is unchanged
    assert m2.primary(1) == "mgr01" and m2.backup(1) == "bak01"
    assert m.primary(0) == "mgr00"


def test_promotion_preserves_key_ownership():
    m = default_shard_map(4)
    m2 = m.promoted(2, "bak02")
    assert all(m.owner_of(k) == m2.owner_of(k) for k in keys(200))


def test_wire_round_trip():
    m = default_shard_map(3, replication=True).promoted(1, "bak01")
    assert ShardMap.from_wire(m.to_wire()) == m
    assert ShardMap.from_json(m.to_json()) == m
    assert m.to_json() == ShardMap.from_json(m.to_json()).to_json()


def test_shard_map_rejects_duplicate_ids():
    with pytest.raises(ValueError, match="duplicate"):
        ShardMap([ShardInfo(0, "a"), ShardInfo(0, "b")])


def test_shard_info_wire_omits_absent_backup():
    assert "backup" not in ShardInfo(0, "mgr00").to_wire()
    assert ShardInfo.from_wire({"shard_id": 0, "primary": "m"}).backup is None
