"""Integration tests: the sharded directory end to end.

A real (scaled-down) platform with the directory split across two
replicated shard managers: regions land on the shard the ring assigns,
clients route by their shard map and chase promotions, the backup takes
over on a primary crash without losing a region, and the cross-shard
auditor stays green throughout.
"""

import pytest

from repro.core.config import DodoConfig
from repro.exp.platform import MB, Platform, PlatformParams
from repro.testing import make_backing_file

REGION = 64 * 1024


def make_sharded(sim, shards=2, replication=True, n_hosts=4):
    params = PlatformParams(
        transport="udp", store_payload=True, n_memory_hosts=n_hosts,
        imd_pool_bytes=2 * MB, local_cache_bytes=256 * 1024,
        app_fs_cache_dodo=1 * MB, disk_capacity_bytes=256 * MB,
        shards=shards, replication=replication)
    cfg = DodoConfig(transport="udp", store_payload=True, dedicated=True,
                     max_pool_bytes=2 * MB, shards=shards,
                     replication=replication, rpc_backoff_s=0.02,
                     imd_reregister_s=2.0)
    return Platform(sim, params, dodo=True, config=cfg)


def open_regions(rt, fd, n, base=0):
    descs = []
    for i in range(n):
        d, err = yield from rt.mopen(REGION, fd, (base + i) * REGION)
        assert err == 0, f"mopen {base + i} failed: errno {err}"
        n_, e = yield from rt.mwrite(d, 0, 512, bytes([i % 251]) * 512)
        assert e == 0
        descs.append(d)
    return descs


def test_platform_is_sharded_only_when_asked(sim):
    assert make_sharded(sim, shards=2).sharded
    assert make_sharded(sim, shards=1, replication=True).sharded
    classic = make_sharded(sim, shards=1, replication=False)
    assert not classic.sharded  # default knobs keep the classic path
    assert classic.shard_managers is None


def test_regions_spread_across_both_shards(sim):
    plat = make_sharded(sim)
    rt = plat.runtime()
    fd = make_backing_file(plat, size=2 * MB)

    def driver():
        yield from open_regions(rt, fd, 16)

    sim.run(until=sim.process(driver()))
    per_shard = [len(cmd.rd) for cmd in plat.cmds]
    assert sum(per_shard) == 16
    assert all(n > 0 for n in per_shard), per_shard
    # every entry sits on the shard the ring says owns it
    for cmd in plat.cmds:
        for key in cmd.rd:
            assert plat.shard_map.owner_of(key) == cmd.shard_id
    assert not plat.audit(teardown=True)


def test_backup_promotion_keeps_serving(sim):
    plat = make_sharded(sim)
    rt = plat.runtime()
    fd = make_backing_file(plat, size=2 * MB)

    def driver():
        yield from open_regions(rt, fd, 8)
        assert not plat.audit(teardown=False)
        victim = plat.cmds[0]
        incarnation = victim.incarnation
        victim.stop()
        yield sim.timeout(3.0)  # heartbeat misses -> promotion
        promoted = plat.live_primary(0)
        assert promoted is plat.backup_cmds[0]
        assert promoted.role == "primary"
        # same incarnation: clients keep their cached descriptors
        assert promoted.incarnation == incarnation
        yield from open_regions(rt, fd, 8, base=8)
        d, err = yield from rt.mopen(REGION, fd, 0)  # pre-crash region
        assert err == 0
        n, e, data = yield from rt.mread(d, 0, 512)
        assert e == 0 and data == bytes([0]) * 512

    sim.run(until=sim.process(driver()))
    sim.run(until=sim.now + 12.0)  # scrub interval + settle
    assert not plat.audit(teardown=True)
    # the client timed out against the dead primary at least once, then
    # settled on the promoted backup as its preferred endpoint
    assert rt.stats.counters.get("shard.retry", 0) >= 1
    assert rt._shard_pref[0] == "bak00"


def test_unreplicated_shard_restart_bumps_incarnation(sim):
    from repro.core.manager import CentralManager
    plat = make_sharded(sim, replication=False)
    rt = plat.runtime()
    fd = make_backing_file(plat, size=2 * MB)

    def driver():
        yield from open_regions(rt, fd, 8)
        victim = plat.cmds[0]
        victim.stop()
        reborn = CentralManager(
            sim, victim.ws, plat.config,
            incarnation=victim.incarnation + 1,
            shard_id=0, shard_map=plat.shard_map)
        plat.shard_managers[0].append(reborn)
        yield sim.timeout(8.0)  # imds re-register with the new incarnation
        # the reborn shard serves fresh opens (its old state is gone;
        # the other shard's regions survive untouched)
        yield from open_regions(rt, fd, 8, base=8)

    sim.run(until=sim.process(driver()))
    sim.run(until=sim.now + 12.0)
    assert not plat.audit(teardown=True)


def test_replication_ships_every_mutation(sim):
    plat = make_sharded(sim)
    rt = plat.runtime()
    fd = make_backing_file(plat, size=2 * MB)

    def driver():
        yield from open_regions(rt, fd, 12)
        yield sim.timeout(1.0)

    sim.run(until=sim.process(driver()))
    for primary, backup in zip(plat.cmds, plat.backup_cmds):
        assert not primary._repl_pending
        assert backup.repl_seq == primary.repl_seq
        assert set(backup.rd) == set(primary.rd)
    assert not plat.audit(teardown=True)


def test_single_shard_map_routes_everything_to_shard_zero(sim):
    plat = make_sharded(sim, shards=1)
    rt = plat.runtime()
    fd = make_backing_file(plat, size=2 * MB)

    def driver():
        yield from open_regions(rt, fd, 8)

    sim.run(until=sim.process(driver()))
    assert len(plat.cmds) == 1
    assert len(plat.cmds[0].rd) == 8
    assert not plat.audit(teardown=True)
