"""Direct unit tests for the idle memory daemon's handlers and lifecycle."""

import pytest

from repro.core import DodoConfig, IdleMemoryDaemon
from repro.cluster.workstation import MB, Workstation
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=101)


def make_imd(sim, pool_mb=4, store_payload=True, **kw):
    net = Network(sim)
    ws = Workstation(sim, "host", net, total_mem_bytes=128 * MB)
    cfg = DodoConfig(store_payload=store_payload)
    imd = IdleMemoryDaemon(sim, ws, cfg, epoch=1, pool_bytes=pool_mb * MB,
                           **kw)
    return ws, imd


def test_pool_pinned_on_start(sim):
    ws, imd = make_imd(sim)
    assert ws.guest_memory == 4 * MB
    assert imd.pool is not None and len(imd.pool) == imd.allocator.pool_size


def test_pool_sized_from_recruitable_memory(sim):
    net = Network(sim)
    ws = Workstation(sim, "h", net, total_mem_bytes=64 * MB)
    cfg = DodoConfig(max_pool_bytes=1024 * MB)  # cap far above recruitable
    before = ws.recruitable_memory(cfg.headroom_fraction)
    imd = IdleMemoryDaemon(sim, ws, cfg, epoch=1)
    assert imd.pool_bytes == before  # pinned exactly the idle memory
    # after pinning, nothing further is recruitable (headroom preserved)
    assert ws.recruitable_memory(cfg.headroom_fraction) == 0
    assert ws.available_memory() >= 0


def test_no_recruitable_memory_rejected(sim):
    net = Network(sim)
    ws = Workstation(sim, "h", net, total_mem_bytes=32 * MB,
                     process_mem_bytes=30 * MB)
    with pytest.raises(ValueError):
        IdleMemoryDaemon(sim, ws, DodoConfig(), epoch=1)


def test_alloc_handler_tracks_regions(sim):
    ws, imd = make_imd(sim)
    r = imd._h_alloc({"size": 1024}, ("client", 1))
    assert r["ok"] and r["epoch"] == 1
    assert "largest_free" in r
    assert imd._regions[r["region_id"]] == 1024


def test_alloc_handler_no_space(sim):
    ws, imd = make_imd(sim, pool_mb=1)
    r = imd._h_alloc({"size": 2 * MB}, ("c", 1))
    assert not r["ok"]
    assert imd.stats.count("alloc_rejects") == 1


def test_free_handler(sim):
    ws, imd = make_imd(sim)
    r = imd._h_alloc({"size": 4096}, ("c", 1))
    f = imd._h_free({"region_id": r["region_id"]}, ("c", 1))
    assert f["ok"] and f["freed"] == 4096
    again = imd._h_free({"region_id": r["region_id"]}, ("c", 1))
    assert not again["ok"]


def test_region_span_validation(sim):
    ws, imd = make_imd(sim)
    r = imd._h_alloc({"size": 1000}, ("c", 1))
    rid = r["region_id"]
    # clamp at region end
    assert imd._region_span({"region_id": rid, "offset": 900,
                             "length": 500}) == (rid, 900, 100)
    with pytest.raises(KeyError):
        imd._region_span({"region_id": 999999, "offset": 0, "length": 1})
    with pytest.raises(ValueError):
        imd._region_span({"region_id": rid, "offset": -1, "length": 1})
    with pytest.raises(ValueError):
        imd._region_span({"region_id": rid, "offset": 2000, "length": 1})


def test_ping_reflects_state(sim):
    ws, imd = make_imd(sim)
    assert imd._h_ping({}, ("c", 1))["ok"]
    imd.stopping = True
    assert not imd._h_ping({}, ("c", 1))["ok"]


def test_alloc_rejected_while_stopping(sim):
    ws, imd = make_imd(sim)
    imd.stopping = True
    assert not imd._h_alloc({"size": 10}, ("c", 1))["ok"]


def test_shutdown_releases_memory_and_is_idempotent(sim):
    ws, imd = make_imd(sim)

    def proc():
        yield imd.shutdown()
        yield imd.shutdown()  # second call is a no-op

    p = sim.process(proc())
    sim.run(until=p)
    assert imd.exited
    assert ws.guest_memory == 0
    assert imd.pool is None
    assert imd.stats.count("shutdowns") == 1


def test_coalescer_runs_periodically(sim):
    ws, imd = make_imd(sim)
    # fragment the pool, then let the sweep interval pass
    offs = [imd.allocator.alloc(1024) for _ in range(4)]
    for off in offs:
        imd.allocator.free(off)
    assert imd.allocator.largest_free() < imd.allocator.pool_size
    sim.run(until=imd.config.coalesce_interval_s + 1.0)
    assert imd.allocator.largest_free() == imd.allocator.pool_size


def test_metadata_mode_has_no_pool_bytes(sim):
    ws, imd = make_imd(sim, store_payload=False)
    assert imd.pool is None
    r = imd._h_alloc({"size": 4096}, ("c", 1))
    assert r["ok"]  # allocation bookkeeping still works
