"""Property tests: the consistent-hash ring's load-balance guarantees.

Hypothesis drives the three claims PR 9's sharded directory rests on:

* **uniform spread** — with :data:`~repro.core.shard.VNODES` virtual
  nodes per shard, no shard owns a pathological share of a large key
  population (the docstring's ~1.4x arc bound plus sampling noise);
* **minimal movement** — adding a shard re-owns keys *only to the new
  shard*; removing one re-owns *only its own* keys.  Every other
  key→shard assignment is untouched, which is what lets a resharding
  migrate a bounded fraction of the directory;
* **stable serialization** — a :class:`~repro.core.shard.ShardMap`
  survives the JSON round trip exactly, and its text form is
  byte-stable (sorted keys), the property byte-identical replay and
  the content-addressed sweep cache both assume.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.descriptors import RegionKey
from repro.core.shard import HashRing, ShardInfo, ShardMap

#: a fixed large key population (hypothesis varies the ring, not the
#: keys: the spread bound is a property of the ring geometry)
KEYS = [RegionKey(inode=i % 17 + 1, offset=i * 4096,
                  client=None if i % 3 else f"cl{i % 5}")
        for i in range(2000)]

shard_sets = st.sets(st.integers(0, 31), min_size=2, max_size=8)


def spread(ring):
    counts = {sid: 0 for sid in ring.shard_ids}
    for key in KEYS:
        counts[ring.owner_of_key(key)] += 1
    return counts


@settings(max_examples=25, deadline=None)
@given(shard_sets)
def test_spread_is_near_uniform(sids):
    ring = HashRing(sorted(sids))
    counts = spread(ring)
    fair = len(KEYS) / len(sids)
    # every shard gets a meaningful share: no shard starves (< fair/3)
    # or hogs (> 2.5x fair) — loose enough for 2000-key sampling noise,
    # tight enough to catch a broken ring (one shard owning everything)
    assert min(counts.values()) > fair / 3.0
    assert max(counts.values()) < fair * 2.5


@settings(max_examples=40, deadline=None)
@given(shard_sets, st.integers(0, 31))
def test_adding_a_shard_moves_keys_only_to_it(sids, new_sid):
    ring = HashRing(sorted(sids))
    if new_sid in sids:
        return
    grown = ring.with_shard(new_sid)
    moved = 0
    for key in KEYS:
        before, after = ring.owner_of_key(key), grown.owner_of_key(key)
        if before != after:
            assert after == new_sid  # movement only toward the newcomer
            moved += 1
    # the newcomer takes roughly its fair share, never a majority
    assert moved < len(KEYS) * 2.5 / (len(sids) + 1)


@settings(max_examples=40, deadline=None)
@given(shard_sets)
def test_removing_a_shard_moves_only_its_keys(sids):
    ring = HashRing(sorted(sids))
    victim = min(sids)
    shrunk = ring.without_shard(victim)
    for key in KEYS:
        before, after = ring.owner_of_key(key), shrunk.owner_of_key(key)
        if before != victim:
            assert after == before  # survivors keep everything they had
        else:
            assert after != victim


@settings(max_examples=40, deadline=None)
@given(shard_sets)
def test_add_then_remove_is_identity(sids):
    ring = HashRing(sorted(sids))
    new_sid = max(sids) + 1
    roundtrip = ring.with_shard(new_sid).without_shard(new_sid)
    assert roundtrip.shard_ids == ring.shard_ids
    assert all(roundtrip.owner_of_key(k) == ring.owner_of_key(k)
               for k in KEYS[:200])


shard_maps = st.builds(
    ShardMap,
    st.lists(st.integers(0, 15), min_size=1, max_size=8, unique=True).map(
        lambda sids: [ShardInfo(s, f"mgr{s:02d}",
                                f"bak{s:02d}" if s % 2 else None)
                      for s in sorted(sids)]),
    version=st.integers(1, 1000))


@settings(max_examples=50, deadline=None)
@given(shard_maps)
def test_shard_map_json_round_trip_is_exact_and_stable(m):
    text = m.to_json()
    back = ShardMap.from_json(text)
    assert back == m
    assert back.version == m.version
    assert back.to_json() == text  # byte-stable re-serialization
    assert ShardMap.from_wire(m.to_wire()) == m


@settings(max_examples=30, deadline=None)
@given(shard_maps, st.integers(0, 15))
def test_promotion_chain_keeps_routing_stable(m, sid):
    if sid not in m.shards:
        return
    m2 = m.promoted(sid, f"bak{sid:02d}").promoted(sid, f"mgr{sid:02d}")
    assert m2.version == m.version + 2
    assert all(m2.owner_of(k) == m.owner_of(k) for k in KEYS[:200])
