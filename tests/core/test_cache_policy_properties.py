"""Property tests: donor-side cache policies under randomized streams.

Hypothesis drives each :mod:`repro.core.policy` eviction policy through
arbitrary insert/access/remove/evict interleavings and checks the
invariants the imd relies on:

* a victim is always a currently-held, never-pinned key (in-flight
  migration sources stay put no matter the policy);
* LRU evicts exactly what an ``OrderedDict`` recency model predicts;
* CLOCK honours second chance — while any eligible region's reference
  bit is clear, a referenced region is never the victim;
* :class:`ShadowCache` never exceeds its byte capacity and its books
  (``used`` vs held sizes) always balance, for every policy;
* :class:`PolicySelector` only recommends a switch when the regret
  bound is met, and the recommendation is the window's best shadow.

Distinct from test_policy_properties.py, which models the *client-side*
regionlib replacement policies of Figure 5.
"""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import (CACHE_POLICIES, PolicySelector, ShadowCache,
                               make_cache_policy)

REGION = 64 * 1024  # one logical region; sizes vary around it below

POLICY_NAMES = sorted(CACHE_POLICIES)


@st.composite
def policy_ops(draw):
    """(kind, key, size) ops over a small key space; ``evict`` asks for
    a victim with a randomly drawn pinned set and removes it."""
    n = draw(st.integers(1, 80))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["insert", "access", "access", "remove", "evict"]))
        key = draw(st.integers(0, 9))
        size = draw(st.sampled_from([REGION // 4, REGION, 4 * REGION]))
        ops.append((kind, key, size))
    return ops


def drive(policy, ops, on_evict=None):
    """Run ops against a policy, tracking the live-key ground truth."""
    live: dict[int, int] = {}
    for kind, key, size in ops:
        if kind == "insert":
            if key not in live:
                policy.on_insert(key, size)
                live[key] = size
        elif kind == "access":
            policy.on_access(key)
        elif kind == "remove":
            policy.on_remove(key)
            live.pop(key, None)
        else:  # evict
            pinned = {k for k in live if k % 3 == key % 3}
            victim = policy.victim(pinned)
            eligible = set(live) - pinned
            if eligible:
                assert victim in eligible, \
                    f"victim {victim} not a live unpinned key {eligible}"
            else:
                assert victim is None
            if on_evict is not None:
                on_evict(victim, pinned)
            if victim is not None:
                policy.on_remove(victim)
                live.pop(victim)
    return live


@pytest.mark.parametrize("name", POLICY_NAMES)
@given(ops=policy_ops())
@settings(max_examples=60, deadline=None)
def test_victim_is_live_and_never_pinned(name, ops):
    """Every policy: victims are held keys, pinned keys are immune,
    and the size books track the live set exactly."""
    policy = make_cache_policy(name)
    live = drive(policy, ops)
    assert sorted(policy.keys()) == sorted(live)
    for key, size in live.items():
        assert policy.size_of(key) == size


@given(ops=policy_ops())
@settings(max_examples=60, deadline=None)
def test_lru_matches_recency_model(ops):
    """LRU's victim is the recency model's least-recent eligible key."""
    policy = make_cache_policy("lru")
    model: OrderedDict[int, None] = OrderedDict()

    def check(victim, pinned):
        expected = next((k for k in model if k not in pinned), None)
        assert victim == expected
        if victim is not None:
            model.pop(victim)
            policy.on_remove(victim)

    for kind, key, size in ops:
        if kind == "insert":
            if key not in model:
                policy.on_insert(key, size)
                model[key] = None
        elif kind == "access":
            policy.on_access(key)
            if key in model:
                model.move_to_end(key)
        elif kind == "remove":
            policy.on_remove(key)
            model.pop(key, None)
        else:
            pinned = {k for k in model if k % 3 == key % 3}
            check(policy.victim(pinned), pinned)
    assert sorted(policy.keys()) == sorted(model)


@given(ops=policy_ops())
@settings(max_examples=60, deadline=None)
def test_clock_second_chance(ops):
    """CLOCK: while some eligible bit is clear, a referenced region is
    never evicted — an access really does buy one more lap."""
    policy = make_cache_policy("clock")

    def check(victim, pinned):
        if victim is not None and any(not bits[k] for k in eligible):
            assert not bits[victim], \
                f"evicted referenced {victim} over unreferenced regions"

    for kind, key, size in ops:
        if kind == "evict":
            bits = dict(policy._ref)  # pre-sweep snapshot
            pinned = {k for k in bits if k % 3 == key % 3}
            eligible = set(bits) - pinned
            victim = policy.victim(pinned)
            check(victim, pinned)
            if victim is not None:
                policy.on_remove(victim)
        elif kind == "insert":
            if key not in policy:
                policy.on_insert(key, size)
        elif kind == "access":
            policy.on_access(key)
        else:
            policy.on_remove(key)


@pytest.mark.parametrize("name", POLICY_NAMES)
@given(ops=policy_ops(), capacity=st.sampled_from(
    [2 * REGION, 5 * REGION, 16 * REGION]))
@settings(max_examples=40, deadline=None)
def test_shadow_cache_capacity(name, ops, capacity):
    """ShadowCache: ``used`` never exceeds capacity and always equals
    the sum of the held regions' sizes, for every policy."""
    shadow = ShadowCache(name, capacity)
    for kind, key, size in ops:
        if kind == "remove":
            shadow.remove(key)
        else:
            shadow.access(key, size)
        assert 0 <= shadow.used <= capacity
        assert shadow.used == sum(shadow.policy.size_of(k)
                                  for k in shadow.policy.keys())
    assert shadow.hits + shadow.misses == sum(
        1 for kind, _, _ in ops if kind != "remove")


@given(ops=policy_ops(), min_regret=st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_selector_switches_only_on_regret(ops, min_regret):
    """PolicySelector: a recommendation appears iff the active policy
    trails the best shadow by >= min_regret, names the best policy, and
    resets the window either way."""
    selector = PolicySelector("lru", POLICY_NAMES, 4 * REGION,
                              min_regret=min_regret)
    for i, (kind, key, size) in enumerate(ops):
        if kind == "remove":
            selector.remove(key)
        else:
            selector.access(key, size)
        if i % 7 == 6:  # an adaptation point
            hits = selector.window_hits()
            regret = selector.regret()
            assert regret == max(hits.values()) - hits[selector.active]
            choice = selector.recommend()
            if regret >= min_regret:
                assert choice is not None
                assert hits[choice] == max(hits.values())
                assert selector.active == choice
            else:
                assert choice is None
            assert all(s.hits == 0 and s.misses == 0
                       for s in selector.shadows.values())


def test_cost_aware_keeps_pinned_under_pressure():
    """The in-flight migration source is pinned: repeated evictions
    drain everything else but never touch it."""
    policy = make_cache_policy("cost-aware")
    for key in range(6):
        policy.on_insert(key, REGION)
    policy.on_access(3)  # hot, but pinned matters more
    pinned = {3}
    evicted = []
    while True:
        victim = policy.victim(pinned)
        if victim is None:
            break
        assert victim != 3
        evicted.append(victim)
        policy.on_remove(victim)
    assert sorted(evicted) == [0, 1, 2, 4, 5]
    assert 3 in policy
