"""Property tests: both pool allocators under randomized op sequences.

Hypothesis drives first-fit and buddy through arbitrary interleavings of
``alloc`` / ``free`` / ``coalesce`` while a shadow interval model tracks
what must be live.  After *every* operation the allocator's own
:meth:`PoolAllocator.check` self-audit must report zero problems — the
same oracle the invariant auditor runs against live imds — plus the
model invariants: returned blocks lie inside the pool, never overlap,
and the books (``used_bytes`` / ``free_bytes`` / ``allocated_size``)
balance.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import make_allocator

POOL = 1 << 20  # 1 MB; power of two so both schemes accept it


@st.composite
def op_sequences(draw):
    """(kind, operand) ops; frees index into whatever is live then."""
    n = draw(st.integers(1, 60))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["alloc", "alloc", "free", "coalesce"]))
        if kind == "alloc":
            ops.append(("alloc", draw(st.integers(1, POOL // 2))))
        elif kind == "free":
            ops.append(("free", draw(st.integers(0, 10 ** 6))))
        else:
            ops.append(("coalesce", 0))
    return ops


def assert_consistent(alloc, live):
    problems = alloc.check()
    assert problems == [], problems
    assert alloc.used_bytes + alloc.free_bytes == alloc.pool_size
    assert alloc.largest_free() <= alloc.free_bytes
    # every live block: in bounds, correct recorded size
    spans = []
    for off, asked in live.items():
        got = alloc.allocated_size(off)
        assert got is not None and got >= asked
        assert 0 <= off and off + got <= alloc.pool_size
        spans.append((off, got))
    # no two live blocks overlap
    spans.sort()
    for (a_off, a_sz), (b_off, _) in zip(spans, spans[1:]):
        assert a_off + a_sz <= b_off, f"overlap at {a_off}+{a_sz} > {b_off}"
    # the books cover exactly the live blocks (buddy rounds sizes up)
    assert alloc.used_bytes == sum(sz for _, sz in spans)
    assert alloc.used_bytes >= sum(live.values())


def drive(kind, ops):
    alloc = make_allocator(kind, POOL)
    live: dict[int, int] = {}  # offset -> requested size
    for op, arg in ops:
        if op == "alloc":
            off = alloc.alloc(arg)
            if off is not None:
                assert off not in live
                live[off] = arg
        elif op == "free":
            if live:
                victim = sorted(live)[arg % len(live)]
                size = alloc.free(victim)
                assert size >= live.pop(victim)
        else:
            alloc.coalesce()
        assert_consistent(alloc, live)
    # tearing everything down must return the pool to one whole block
    for off in sorted(live):
        alloc.free(off)
        assert alloc.check() == []
    alloc.coalesce()
    assert alloc.used_bytes == 0
    assert alloc.largest_free() == POOL


@settings(max_examples=80, deadline=None)
@given(ops=op_sequences())
def test_first_fit_stays_consistent_under_random_ops(ops):
    drive("first-fit", ops)


@settings(max_examples=80, deadline=None)
@given(ops=op_sequences())
def test_buddy_stays_consistent_under_random_ops(ops):
    drive("buddy", ops)


@pytest.mark.parametrize("kind", ["first-fit", "buddy"])
def test_double_free_is_rejected(kind):
    alloc = make_allocator(kind, POOL)
    off = alloc.alloc(8192)
    alloc.free(off)
    with pytest.raises(KeyError):
        alloc.free(off)
    assert alloc.check() == []


@pytest.mark.parametrize("kind", ["first-fit", "buddy"])
def test_exhaustion_returns_none_and_stays_consistent(kind):
    alloc = make_allocator(kind, POOL)
    live = []
    while True:
        off = alloc.alloc(POOL // 4)
        if off is None:
            break
        live.append(off)
    assert len(live) == 4
    assert alloc.check() == []
    for off in live:
        alloc.free(off)
    alloc.coalesce()
    assert alloc.largest_free() == POOL
