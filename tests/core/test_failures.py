"""Failure-injection tests: crashes, partitions and mid-transfer deaths."""

import pytest

from repro.core import ENOMEM, EINVAL
from repro.sim import Simulator

from repro.testing import make_backing_file, make_platform, run


@pytest.fixture
def sim():
    return Simulator(seed=91)


def test_manager_crash_makes_mopen_fail_gracefully(sim):
    platform = make_platform(sim)
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        platform.mgr.crash()
        desc, err = yield from lib.mopen(64 * 1024, fd, 0)
        return desc, err

    desc, err = run(sim, proc())
    assert (desc, err) == (-1, ENOMEM)


def test_mclose_with_manager_down_returns_einval(sim):
    platform = make_platform(sim)
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        desc, err = yield from lib.mopen(64 * 1024, fd, 0)
        assert err == 0
        platform.mgr.crash()
        ret, err = yield from lib.mclose(desc)
        return ret, err

    ret, err = run(sim, proc())
    assert (ret, err) == (-1, EINVAL)  # paper: cannot contact the cmd


def test_manager_recovery_allows_new_allocations(sim):
    platform = make_platform(sim)
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        platform.mgr.crash()
        desc, err = yield from lib.mopen(64 * 1024, fd, 0)
        assert err == ENOMEM
        platform.mgr.recover()
        yield sim.timeout(lib.config.refraction_period_s + 0.1)
        desc, err = yield from lib.mopen(64 * 1024, fd, 0)
        return err

    assert run(sim, proc()) == 0


def test_host_crash_mid_transfer_times_out_to_enomem(sim):
    """Crash the hosting workstation *while* an mread is in flight."""
    platform = make_platform(sim, pool_mb=2)
    lib = platform.runtime()
    fd = make_backing_file(platform, size=4 * 1024 * 1024)

    def proc():
        desc, err = yield from lib.mopen(1024 * 1024, fd, 0)
        assert err == 0
        yield from lib.mwrite(desc, 0, 1024 * 1024, b"x" * (1024 * 1024))
        host = lib._regions[desc].remote.host

        def killer():
            yield sim.timeout(0.02)  # mid-transfer (1 MB takes ~100 ms)
            platform.cluster[host].crash()

        sim.process(killer())
        n, err, _ = yield from lib.mread(desc, 0, 1024 * 1024)
        return n, err

    n, err = run(sim, proc())
    assert (n, err) == (-1, ENOMEM)
    assert lib.open_regions == 0  # all descriptors on that host dropped


def test_write_during_host_crash_still_reaches_disk(sim):
    """mwrite's disk leg must survive the remote leg's failure."""
    platform = make_platform(sim)
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        desc, err = yield from lib.mopen(256 * 1024, fd, 0)
        assert err == 0
        host = lib._regions[desc].remote.host
        platform.cluster[host].crash()
        n, err = yield from lib.mwrite(desc, 0, 1000, b"d" * 1000)
        assert (n, err) == (-1, ENOMEM)  # remote leg failed
        fh = platform.app.fs.handle(fd)
        _, data = yield platform.app.fs.read(fh, 0, 1000)
        return data

    assert run(sim, proc()) == b"d" * 1000


def test_imd_drain_completes_inflight_read(sim):
    """Graceful shutdown: a transfer racing the reclaim still completes
    (the imd 'completes the ongoing transfers and exits')."""
    platform = make_platform(sim, pool_mb=4)
    lib = platform.runtime()
    fd = make_backing_file(platform, size=4 * 1024 * 1024)
    blob = bytes(i % 256 for i in range(2 * 1024 * 1024))

    def proc():
        desc, err = yield from lib.mopen(len(blob), fd, 0)
        assert err == 0
        yield from lib.mwrite(desc, 0, len(blob), blob)
        host = lib._regions[desc].remote.host
        imd = next(i for i in platform.imds if i.ws.name == host)

        def reclaimer():
            yield sim.timeout(0.01)  # transfer started, not finished
            yield imd.shutdown()

        rp = sim.process(reclaimer())
        n, err, data = yield from lib.mread(desc, 0, len(blob))
        yield rp
        return n, err, data, imd

    n, err, data, imd = run(sim, proc())
    assert (n, err) == (len(blob), 0)
    assert data == blob
    assert imd.exited
    # the drain waited for the in-flight transfer
    assert imd.stats.samples("drain_s")[0] > 0.0


def test_read_after_drain_rejected(sim):
    platform = make_platform(sim)
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        desc, err = yield from lib.mopen(64 * 1024, fd, 0)
        host = lib._regions[desc].remote.host
        imd = next(i for i in platform.imds if i.ws.name == host)
        yield imd.shutdown()
        n, err, _ = yield from lib.mread(desc, 0, 1024)
        return n, err

    assert run(sim, proc()) == (-1, ENOMEM)


def test_allocation_skips_crashed_host(sim):
    """The cmd tries another host when its random pick is dead."""
    platform = make_platform(sim, n_hosts=3)
    lib = platform.runtime()
    fd = make_backing_file(platform, size=16 * 1024 * 1024)
    platform.cluster["mem01"].crash()

    def proc():
        descs = []
        for i in range(4):
            desc, err = yield from lib.mopen(256 * 1024, fd,
                                             i * 256 * 1024)
            assert err == 0
            descs.append(desc)
        hosts = {lib._regions[d].remote.host for d in descs}
        return hosts

    hosts = run(sim, proc())
    assert "mem01" not in hosts
    assert hosts <= {"mem00", "mem02"}
    # the dead host was dropped from the IWD after the first timeout
    assert "mem01" not in platform.cmd.iwd


def test_lossy_network_end_to_end(sim):
    """5% frame loss: everything still works, just slower.

    Uses U-Net: its messages are single frames, so 5% loss means 5% of
    chunks retransmitted.  (Over UDP the same loss rate is amplified by
    IP fragmentation — one lost fragment kills a 45-frame datagram — and
    genuinely defeats the blast protocol's retry budget.)
    """
    platform = make_platform(sim, transport="unet", loss=0.05)
    lib = platform.runtime()
    fd = make_backing_file(platform)
    blob = bytes((7 * i) % 256 for i in range(300_000))

    def proc():
        desc, err = yield from lib.mopen(len(blob), fd, 0)
        assert err == 0
        n, err = yield from lib.mwrite(desc, 0, len(blob), blob)
        assert err == 0
        n, err, data = yield from lib.mread(desc, 0, len(blob))
        return n, err, data

    n, err, data = run(sim, proc())
    assert (n, err) == (len(blob), 0)
    assert data == blob
