"""Additional runtime-library edge cases."""

import pytest

from repro.core import EINVAL, EIO, ENOMEM
from repro.sim import Simulator

from repro.testing import make_backing_file, make_platform, run


@pytest.fixture
def sim():
    return Simulator(seed=151)


@pytest.fixture
def platform(sim):
    return make_platform(sim)


@pytest.fixture
def lib(platform):
    return platform.runtime()


def test_mwrite_backing_fd_closed_is_eio(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        desc, err = yield from lib.mopen(64 * 1024, fd, 0)
        assert err == 0
        fh = platform.app.fs.handle(fd)
        platform.app.fs.close(fh)  # app closed the backing file
        return (yield from lib.mwrite(desc, 0, 10, b"x" * 10))

    assert run(sim, proc()) == (-1, EIO)


def test_msync_backing_fd_closed_is_einval(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        desc, err = yield from lib.mopen(64 * 1024, fd, 0)
        platform.app.fs.close(platform.app.fs.handle(fd))
        return (yield from lib.msync(desc))

    assert run(sim, proc()) == (-1, EINVAL)


def test_mread_data_none_in_metadata_mode(sim):
    platform = make_platform(sim, store_payload=False)
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        desc, err = yield from lib.mopen(64 * 1024, fd, 0)
        assert err == 0
        n, err, data = yield from lib.mread(desc, 0, 8192)
        return n, err, data

    n, err, data = run(sim, proc())
    assert (n, err) == (8192, 0)
    assert data is None  # sizes only, no payload


def test_mwrite_negative_length_einval(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        desc, _ = yield from lib.mopen(4096, fd, 0)
        return (yield from lib.mwrite(desc, 0, -5, None))

    assert run(sim, proc()) == (-1, EINVAL)


def test_fresh_region_reads_zeros(sim, platform, lib):
    """An mopen'd region never written reads as zero fill (the imd pool
    is zero-initialized)."""
    fd = make_backing_file(platform)

    def proc():
        desc, _ = yield from lib.mopen(4096, fd, 0)
        n, err, data = yield from lib.mread(desc, 0, 100)
        return n, err, data

    n, err, data = run(sim, proc())
    assert (n, err) == (100, 0)
    assert data == b"\x00" * 100


def test_two_regions_same_file_different_offsets(sim, platform, lib):
    fd = make_backing_file(platform, size=1024 * 1024)

    def proc():
        d1, _ = yield from lib.mopen(64 * 1024, fd, 0)
        d2, _ = yield from lib.mopen(64 * 1024, fd, 64 * 1024)
        assert d1 != d2
        yield from lib.mwrite(d1, 0, 3, b"one")
        yield from lib.mwrite(d2, 0, 3, b"two")
        _, _, a = yield from lib.mread(d1, 0, 3)
        _, _, b = yield from lib.mread(d2, 0, 3)
        return a, b

    a, b = run(sim, proc())
    assert (a, b) == (b"one", b"two")


def test_regions_spread_across_hosts(sim):
    """Random placement: enough regions land on more than one imd."""
    platform = make_platform(sim, n_hosts=3, pool_mb=4)
    lib = platform.runtime()
    fd = make_backing_file(platform, size=16 * 1024 * 1024)

    def proc():
        hosts = set()
        for i in range(10):
            desc, err = yield from lib.mopen(256 * 1024, fd,
                                             i * 256 * 1024)
            assert err == 0
            hosts.add(lib._regions[desc].remote.host)
        return hosts

    assert len(run(sim, proc())) >= 2


def test_mlookup_does_not_allocate(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        d, err = yield from lib.mlookup(4096, fd, 0)
        return d, err, platform.cmd.stats.count("alloc.placed")

    d, err, placed = run(sim, proc())
    assert (d, err) == (-1, ENOMEM)
    assert placed == 0


def test_mlookup_validations(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        bad_fd = yield from lib.mlookup(10, 9999, 0)
        bad_len = yield from lib.mlookup(0, fd, 0)
        return bad_fd, bad_len

    bad_fd, bad_len = run(sim, proc())
    assert bad_fd == (-1, EINVAL)
    assert bad_len == (-1, EINVAL)


def test_detach_is_idempotent_and_final(sim, platform):
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        yield from lib.mopen(4096, fd, 0)
        yield from lib.detach(persist=False)
        yield from lib.detach(persist=False)  # harmless second call
        return lib.detached, lib.open_regions

    detached, open_regions = run(sim, proc())
    assert detached and open_regions == 0
