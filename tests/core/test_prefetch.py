"""Tests for the prefetching extension of the region-management library."""

import pytest

from repro.core.regionlib import RegionCache
from repro.sim import Simulator

from repro.testing import make_platform, run

KB = 1024


@pytest.fixture
def sim():
    return Simulator(seed=61)


def build(sim, prefetch):
    platform = make_platform(sim, pool_mb=2, local_cache_kb=512)
    runtime = platform.runtime()
    cache = RegionCache(runtime, 512 * KB, policy="lru",
                        prefetch_regions=prefetch)
    fs = platform.app.fs
    fs.create("data", size=2048 * KB)
    fh = fs.open("data", "r+")

    def fill():
        yield fs.write(fh, 0, 2048 * KB, b"\xab" * (2048 * KB))
        yield fs.fsync(fh)

    run(sim, fill())
    return platform, cache, fh


def scan(sim, cache, fh, n_regions, region_kb=64, compute_s=0.01):
    """Sequential region scan with compute gaps; returns elapsed time."""
    def proc():
        crds = []
        for i in range(n_regions):
            existing = cache._by_backing.get((fh.fd, i * region_kb * KB))
            if existing is not None:
                crds.append(existing)
                continue
            crd, err = yield from cache.copen(region_kb * KB, fh.fd,
                                              i * region_kb * KB)
            assert err == 0
            crds.append(crd)
        t0 = sim.now
        for crd in crds:
            yield sim.timeout(compute_s)
            n, err, _ = yield from cache.cread(crd, 0, region_kb * KB)
            assert err == 0
        return sim.now - t0

    return run(sim, proc())


def test_prefetch_issues_and_loads(sim):
    platform, cache, fh = build(sim, prefetch=2)
    scan(sim, cache, fh, n_regions=8)
    assert cache.stats.count("prefetch.issued") > 0
    assert cache.stats.count("prefetch.loaded") > 0


def steady_rescan_time(prefetch):
    """Three cyclic scans: scan 1 populates remote memory, scan 2 settles
    promotion, scan 3 is the steady state where prefetching overlaps
    remote pulls with the application's 10 ms compute."""
    sim = Simulator(seed=62)
    platform = make_platform(sim, pool_mb=2, local_cache_kb=512)
    runtime = platform.runtime()
    cache = RegionCache(runtime, 512 * KB, policy="lru",
                        prefetch_regions=prefetch)
    fs = platform.app.fs
    fs.create("data", size=1024 * KB)
    fh = fs.open("data", "r+")

    def fill():
        yield fs.write(fh, 0, 1024 * KB, b"\xcd" * (1024 * KB))
        yield fs.fsync(fh)

    run(sim, fill())
    scan(sim, cache, fh, n_regions=16)            # populate remote
    scan(sim, cache, fh, n_regions=16)            # settle promotions
    t3 = scan(sim, cache, fh, n_regions=16)       # timed steady scan
    return t3, cache


def test_prefetch_turns_remote_misses_into_local_hits():
    t3, cache = steady_rescan_time(prefetch=2)
    assert cache.stats.count("prefetch.loaded") > 0
    assert cache.stats.count("cread.local_hits") > 8


def test_prefetch_speeds_up_steady_rescan():
    t_off, _ = steady_rescan_time(prefetch=0)
    t_on, _ = steady_rescan_time(prefetch=2)
    # remote pulls overlap the 10 ms compute: a clear win
    assert t_on < t_off * 0.85


def test_prefetch_join_avoids_duplicate_transfers():
    _, cache = steady_rescan_time(prefetch=2)
    # demand reads that raced a prefetch waited for it instead of
    # re-transferring
    assert cache.stats.count("cread.joined_prefetch") > 0


def test_prefetch_disabled_by_default(sim):
    platform = make_platform(sim)
    cache = platform.region_cache()
    assert cache.prefetch_regions == 0


def test_prefetch_not_triggered_by_random_access(sim):
    platform, cache, fh = build(sim, prefetch=2)

    def proc():
        crds = []
        for i in range(8):
            crd, _ = yield from cache.copen(64 * KB, fh.fd, i * 64 * KB)
            crds.append(crd)
        for crd in (crds[5], crds[1], crds[6], crds[3]):
            yield from cache.cread(crd, 0, 64 * KB)

    run(sim, proc())
    assert cache.stats.count("prefetch.issued") == 0


def test_prefetch_data_integrity(sim):
    """Prefetched regions must serve the same bytes as direct reads."""
    platform, cache, fh = build(sim, prefetch=2)

    def proc():
        crds = []
        for i in range(6):
            crd, _ = yield from cache.copen(64 * KB, fh.fd, i * 64 * KB)
            crds.append(crd)
        datas = []
        for crd in crds:
            yield sim.timeout(0.01)
            n, err, data = yield from cache.cread(crd, 0, 64 * KB)
            assert err == 0
            datas.append(data)
        return datas

    for data in run(sim, proc()):
        assert data == b"\xab" * (64 * KB)
