"""Unit tests for the replacement-policy modules."""

import pytest

from repro.core.policies import (FirstInPolicy, LruPolicy, MruPolicy,
                                 make_policy)


def test_lru_evicts_least_recent():
    p = LruPolicy()
    for crd in (1, 2, 3):
        p.on_insert(crd)
    p.on_read(1)  # 2 is now the oldest
    assert p.select_victim({}) == 2


def test_lru_write_also_refreshes():
    p = LruPolicy()
    for crd in (1, 2):
        p.on_insert(crd)
    p.on_write(1)
    assert p.select_victim({}) == 2


def test_lru_remove_clears_entry():
    p = LruPolicy()
    p.on_insert(1)
    p.on_remove(1)
    assert p.select_victim({}) is None
    p.on_remove(1)  # idempotent


def test_mru_evicts_most_recent():
    p = MruPolicy()
    for crd in (1, 2, 3):
        p.on_insert(crd)
    p.on_read(1)
    assert p.select_victim({}) == 1


def test_first_in_never_evicts():
    p = FirstInPolicy()
    for crd in (1, 2, 3):
        p.on_insert(crd)
    p.on_read(3)
    p.on_write(2)
    assert p.select_victim({}) is None


def test_first_in_reinsert_keeps_original_order():
    p = FirstInPolicy()
    p.on_insert(1)
    p.on_insert(2)
    p.on_insert(1)  # no-op
    assert list(p._order) == [1, 2]


def test_touch_of_unknown_crd_is_noop():
    p = LruPolicy()
    p.on_read(99)  # never inserted: must not appear in the order
    assert p.select_victim({}) is None


def test_make_policy_factory():
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("mru"), MruPolicy)
    assert isinstance(make_policy("first-in"), FirstInPolicy)
    with pytest.raises(ValueError):
        make_policy("random")
