"""Shared fixtures for core (Dodo) tests.

The platform helpers themselves live in :mod:`repro.testing` so the
chaos harness and benchmarks can use them too; this file only binds
them to pytest fixtures (and re-exports them for older imports).
"""

import pytest

from repro.testing import make_backing_file, make_platform, run  # noqa: F401

from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=11)


@pytest.fixture
def platform(sim):
    return make_platform(sim)
