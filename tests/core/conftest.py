"""Shared fixtures for core (Dodo) tests: a small functional platform."""

import pytest

from repro.exp.platform import MB, Platform, PlatformParams
from repro.sim import Simulator


def make_platform(sim, *, transport="udp", n_hosts=3, pool_mb=2,
                  local_cache_kb=256, store_payload=True, loss=0.0,
                  dodo=True, allocator="first-fit"):
    """A tiny functional platform: 3 memory hosts x 2 MB pools."""
    params = PlatformParams(
        transport=transport, store_payload=store_payload,
        n_memory_hosts=n_hosts, imd_pool_bytes=pool_mb * MB,
        local_cache_bytes=local_cache_kb * 1024,
        app_fs_cache_dodo=1 * MB, app_fs_cache_baseline=4 * MB,
        disk_capacity_bytes=256 * MB, frame_loss_prob=loss)
    return Platform(sim, params, dodo=dodo)


@pytest.fixture
def sim():
    return Simulator(seed=11)


@pytest.fixture
def platform(sim):
    return make_platform(sim)


def run(sim, gen):
    """Run a generator as a process to completion and return its value."""
    p = sim.process(gen)
    return sim.run(until=p)


def make_backing_file(platform, name="data", size=1 * MB):
    """Create + open a backing file on the app node; returns its fd."""
    fs = platform.app.fs
    if not fs.exists(name):
        fs.create(name, size=size)
    return fs.open(name, "r+").fd
