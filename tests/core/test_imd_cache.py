"""Direct imd tests for elastic caching: eviction and generation tokens.

The aliasing regression this file pins down: with eviction on, a pool
offset can be freed and re-allocated *within one imd epoch*, so a
client descriptor minted for the old tenant would silently read the
new tenant's bytes.  Generation tokens close the hole — every
cache-enabled allocation stamps a fresh ``gen``, and a request carrying
a stale one fails like a lost region (docs/CACHING.md).
"""

import pytest

from repro.cluster.workstation import MB, Workstation
from repro.core import DodoConfig, IdleMemoryDaemon
from repro.core.config import CacheConfig
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=202)


def make_imd(sim, pool_mb=1, policy="lru"):
    net = Network(sim)
    ws = Workstation(sim, "host", net, total_mem_bytes=128 * MB)
    cfg = DodoConfig(store_payload=True,
                     cache=CacheConfig(policy=policy))
    imd = IdleMemoryDaemon(sim, ws, cfg, epoch=1,
                           pool_bytes=pool_mb * MB)
    return ws, imd


def alloc(imd, size):
    reply = imd._h_alloc({"size": size}, ("client", 1))
    assert reply["ok"], reply
    return reply


def test_alloc_stamps_monotone_generations(sim):
    _, imd = make_imd(sim)
    gens = [alloc(imd, 64 * 1024)["gen"] for _ in range(3)]
    assert gens == sorted(set(gens))  # strictly increasing


def test_default_config_alloc_has_no_gen_field(sim):
    """Wire compatibility: with caching off the reply is byte-identical
    to the original protocol — no ``gen`` key at all."""
    net = Network(sim)
    ws = Workstation(sim, "host", net, total_mem_bytes=128 * MB)
    imd = IdleMemoryDaemon(sim, ws, DodoConfig(store_payload=True),
                           epoch=1, pool_bytes=MB)
    reply = imd._h_alloc({"size": 64 * 1024}, ("client", 1))
    assert reply["ok"]
    assert "gen" not in reply


def test_full_pool_evicts_instead_of_rejecting(sim):
    _, imd = make_imd(sim, pool_mb=1)
    half = 512 * 1024
    a = alloc(imd, half)
    b = alloc(imd, half)
    c = alloc(imd, half)  # pool full: must evict the LRU region (a)
    assert imd.stats.count("cache.evictions") == 1
    # region ids are pool offsets: c re-minted a's slot under a new gen
    assert c["region_id"] == a["region_id"]
    assert imd._region_gen[a["region_id"]] == c["gen"] != a["gen"]
    assert {b["region_id"], c["region_id"]} == set(imd._regions)


def test_stale_generation_rejected_not_aliased(sim):
    """The regression: a re-used offset must not serve the old
    descriptor's reads/writes."""
    _, imd = make_imd(sim, pool_mb=1)
    half = 512 * 1024
    a = alloc(imd, half)
    alloc(imd, half)
    c = alloc(imd, half)  # evicts a; first-fit re-uses a's offset
    assert c["region_id"] == a["region_id"]  # the aliasing setup
    assert c["gen"] != a["gen"]
    stale = {"region_id": a["region_id"], "offset": 0,
             "length": 1024, "gen": a["gen"]}
    with pytest.raises(KeyError, match="stale generation"):
        imd._region_span(stale)
    # the new tenant's token is honoured
    fresh = dict(stale, gen=c["gen"])
    assert imd._region_span(fresh) == (c["region_id"], 0, 1024)
    # legacy requests without a token keep working (old clients)
    no_gen = {"region_id": c["region_id"], "offset": 0, "length": 1024}
    assert imd._region_span(no_gen) == (c["region_id"], 0, 1024)


def test_read_handler_rejects_stale_generation(sim):
    """End to end through the handler: the reply is a definitive
    ``ok=False`` (counted as a reject), not a stranger's bytes."""
    _, imd = make_imd(sim, pool_mb=1)
    half = 512 * 1024
    a = alloc(imd, half)
    alloc(imd, half)
    alloc(imd, half)  # evicts a, re-mints its offset
    handler = imd._h_read({"region_id": a["region_id"], "offset": 0,
                           "length": 1024, "gen": a["gen"],
                           "reply_port": 9}, ("client", 1))
    # generator handler: the rejection happens before any yield
    with pytest.raises(StopIteration) as stop:
        next(handler)
    reply = stop.value.value
    assert reply["ok"] is False
    assert "stale generation" in reply["reason"]
    assert imd.stats.count("read_rejects") == 1


def test_pinned_region_never_evicted(sim):
    _, imd = make_imd(sim, pool_mb=1)
    half = 512 * 1024
    a = alloc(imd, half)
    alloc(imd, half)
    imd._pin(a["region_id"])  # in-flight transfer on the LRU victim
    c = alloc(imd, half)
    assert c["ok"]
    assert a["region_id"] in imd._regions  # survived: the other went
