"""End-to-end tests of libdodo: the mopen/mread/mwrite/mclose/msync API."""

import pytest

from repro.core import EINVAL, ENOMEM
from repro.sim import Simulator

from repro.testing import make_backing_file, make_platform, run


@pytest.fixture
def sim():
    return Simulator(seed=21)


@pytest.fixture
def platform(sim):
    return make_platform(sim)


@pytest.fixture
def lib(platform):
    return platform.runtime()


def test_mopen_returns_descriptor(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        return (yield from lib.mopen(64 * 1024, fd, 0))

    desc, err = run(sim, proc())
    assert err == 0 and desc >= 0
    assert lib.open_regions == 1


def test_mopen_invalid_args(sim, platform, lib):
    fd = make_backing_file(platform)
    ro_fd = platform.app.fs.open("data", "r").fd

    def proc():
        results = []
        results.append((yield from lib.mopen(0, fd, 0)))        # len < 1
        results.append((yield from lib.mopen(1024, fd, -4)))    # offset < 0
        results.append((yield from lib.mopen(1024, 999, 0)))    # bad fd
        results.append((yield from lib.mopen(1024, ro_fd, 0)))  # read-only
        return results

    for ret, err in run(sim, proc()):
        assert ret == -1 and err == EINVAL


def test_mwrite_then_mread_roundtrip(sim, platform, lib):
    fd = make_backing_file(platform)
    blob = bytes(range(256)) * 256  # 64 KB

    def proc():
        desc, err = yield from lib.mopen(len(blob), fd, 0)
        assert err == 0
        n, err = yield from lib.mwrite(desc, 0, len(blob), blob)
        assert (n, err) == (len(blob), 0)
        n, err, data = yield from lib.mread(desc, 0, len(blob))
        return n, err, data

    n, err, data = run(sim, proc())
    assert (n, err) == (len(blob), 0)
    assert data == blob


def test_mwrite_also_updates_backing_file(sim, platform, lib):
    """Writes propagate to disk in parallel with the remote copy."""
    fd = make_backing_file(platform)
    blob = b"dodo-was-here" * 100

    def proc():
        desc, _ = yield from lib.mopen(len(blob), fd, 4096)
        yield from lib.mwrite(desc, 0, len(blob), blob)
        fh = platform.app.fs.handle(fd)
        _, data = yield platform.app.fs.read(fh, 4096, len(blob))
        return data

    assert run(sim, proc()) == blob


def test_mread_at_offset_and_short_read(sim, platform, lib):
    fd = make_backing_file(platform)
    blob = bytes(i % 251 for i in range(10_000))

    def proc():
        desc, _ = yield from lib.mopen(len(blob), fd, 0)
        yield from lib.mwrite(desc, 0, len(blob), blob)
        n1, _, d1 = yield from lib.mread(desc, 5000, 1000)
        # short read: only 2,000 bytes exist past offset 8,000
        n2, _, d2 = yield from lib.mread(desc, 8000, 99_999)
        return n1, d1, n2, d2

    n1, d1, n2, d2 = run(sim, proc())
    assert n1 == 1000 and d1 == blob[5000:6000]
    assert n2 == 2000 and d2 == blob[8000:]


def test_mread_invalid_args(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        desc, _ = yield from lib.mopen(4096, fd, 0)
        bad_offset = yield from lib.mread(desc, 5000, 10)
        neg_offset = yield from lib.mread(desc, -1, 10)
        bad_desc = yield from lib.mread(12345, 0, 10)
        return bad_offset, neg_offset, bad_desc

    bad_offset, neg_offset, bad_desc = run(sim, proc())
    assert bad_offset[:2] == (-1, EINVAL)
    assert neg_offset[:2] == (-1, EINVAL)
    assert bad_desc[:2] == (-1, ENOMEM)  # paper: invalid desc -> ENOMEM


def test_mclose_frees_region(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        desc, _ = yield from lib.mopen(32 * 1024, fd, 0)
        ret, err = yield from lib.mclose(desc)
        again = yield from lib.mclose(desc)
        return (ret, err), again

    first, again = run(sim, proc())
    assert first == (0, 0)
    assert again == (-1, EINVAL)
    assert lib.open_regions == 0
    # the imd got its memory back
    assert sum(i.allocator.used_bytes for i in platform.imds) == 0


def test_msync_flushes_backing_file(sim, platform, lib):
    fd = make_backing_file(platform)
    disk = platform.app.disk

    def proc():
        desc, _ = yield from lib.mopen(64 * 1024, fd, 0)
        yield from lib.mwrite(desc, 0, 64 * 1024, b"z" * 64 * 1024)
        before = disk.stats.count("write.bytes")
        ret, err = yield from lib.msync(desc)
        return ret, err, before, disk.stats.count("write.bytes")

    ret, err, before, after = run(sim, proc())
    assert (ret, err) == (0, 0)
    assert after > before  # dirty cache pages hit the disk


def test_alloc_failure_sets_refraction(sim, platform, lib):
    """Exhausting remote memory -> ENOMEM, then allocation attempts are
    suppressed for the refraction period without contacting the cmd."""
    fd = make_backing_file(platform, size=32 * 1024 * 1024)
    pool_total = platform.remote_pool_total

    def proc():
        descs = []
        off = 0
        # fill all of remote memory with 1 MB regions
        while True:
            desc, err = yield from lib.mopen(1024 * 1024, fd, off)
            if err != 0:
                break
            descs.append(desc)
            off += 1024 * 1024
        assert len(descs) == pool_total // (1024 * 1024)
        assert lib.in_refraction()
        calls_before = platform.cmd.stats.count("alloc.enomem")
        desc, err = yield from lib.mopen(1024 * 1024, fd, off + 2 ** 24)
        assert (desc, err) == (-1, ENOMEM)
        # the refraction skip never reached the manager
        assert platform.cmd.stats.count("alloc.enomem") == calls_before
        yield sim.timeout(lib.config.refraction_period_s + 0.1)
        assert not lib.in_refraction()
        return True

    assert run(sim, proc()) is True


def test_region_reuse_across_runtime_instances(sim, platform):
    """The dmine pattern: a second 'run' re-finds regions left behind by
    a first run that detached with persist=True."""
    fd = make_backing_file(platform)
    blob = b"persistent!" * 1000

    def run1():
        lib1 = platform.runtime()
        desc, err = yield from lib1.mopen(len(blob), fd, 0)
        assert err == 0
        yield from lib1.mwrite(desc, 0, len(blob), blob)
        yield from lib1.detach(persist=True)

    def run2():
        lib2 = platform.runtime()
        desc, err = yield from lib2.mopen(len(blob), fd, 0)
        assert err == 0
        n, err, data = yield from lib2.mread(desc, 0, len(blob))
        return n, err, data

    run(sim, run1())
    n, err, data = run(sim, run2())
    assert (n, err) == (len(blob), 0)
    assert data == blob
    # no new allocation happened on the second run: the region was reused
    assert platform.cmd.stats.count("alloc.reused") \
        + platform.cmd.stats.count("check.hit") >= 1


def test_nonpersistent_detach_frees_regions(sim, platform):
    fd = make_backing_file(platform)

    def proc():
        lib1 = platform.runtime()
        yield from lib1.mopen(64 * 1024, fd, 0)
        yield from lib1.detach(persist=False)

    run(sim, proc())
    assert sum(i.allocator.used_bytes for i in platform.imds) == 0


def test_host_crash_drops_all_descriptors_on_that_node(sim, platform, lib):
    """Section 3.1: one failed access drops every descriptor on the node."""
    fd = make_backing_file(platform, size=32 * 1024 * 1024)

    def proc():
        descs = []
        off = 0
        while len(descs) < 6:  # spread over the 3 imd hosts
            desc, err = yield from lib.mopen(512 * 1024, fd, off)
            assert err == 0
            descs.append(desc)
            off += 512 * 1024
        # find which host each region landed on, crash one of them
        by_host = {}
        for d in descs:
            by_host.setdefault(lib._regions[d].remote.host, []).append(d)
        victim_host, victims = max(by_host.items(), key=lambda kv: len(kv[1]))
        platform.cluster[victim_host].crash()
        n, err, _ = yield from lib.mread(victims[0], 0, 1024)
        assert (n, err) == (-1, ENOMEM)
        # every descriptor on the crashed host is gone, others survive
        for d in victims:
            assert d not in lib._regions
        survivors = [d for d in descs if d not in victims]
        for d in survivors:
            assert d in lib._regions
        if survivors:
            n, err, _ = yield from lib.mread(survivors[0], 0, 1024)
            assert err == 0
        return True

    assert run(sim, proc()) is True


def test_mread_after_imd_shutdown_returns_enomem(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        desc, _ = yield from lib.mopen(64 * 1024, fd, 0)
        host = lib._regions[desc].remote.host
        imd = next(i for i in platform.imds if i.ws.name == host)
        yield imd.shutdown()
        n, err, _ = yield from lib.mread(desc, 0, 1024)
        return n, err

    n, err = run(sim, proc())
    assert (n, err) == (-1, ENOMEM)


def test_keepalive_reclaims_crashed_client(sim, platform):
    """A client that stops echoing keep-alives loses its regions."""
    fd = make_backing_file(platform)

    def proc():
        lib1 = platform.runtime()
        desc, err = yield from lib1.mopen(256 * 1024, fd, 0)
        assert err == 0
        # simulate a client crash: the echo server goes away, no detach
        lib1._echo.stop()
        return desc

    run(sim, proc())
    assert sum(i.allocator.used_bytes for i in platform.imds) > 0
    cfg = platform.config
    sim.run(until=sim.now + cfg.keepalive_threshold_s
            + 4 * cfg.keepalive_interval_s)
    assert sum(i.allocator.used_bytes for i in platform.imds) == 0
    assert platform.cmd.stats.count("clients_expired") == 1


def test_mwrite_invalid_descriptor(sim, platform, lib):
    def proc():
        return (yield from lib.mwrite(777, 0, 10, b"x" * 10))

    assert run(sim, proc()) == (-1, ENOMEM)


def test_zero_length_ops(sim, platform, lib):
    fd = make_backing_file(platform)

    def proc():
        desc, _ = yield from lib.mopen(4096, fd, 0)
        w = yield from lib.mwrite(desc, 0, 0, b"")
        r = yield from lib.mread(desc, 4096, 100)  # at end: short read of 0
        return w, r

    w, r = run(sim, proc())
    assert w == (0, 0)
    assert r[0] == 0 and r[1] == 0


def test_unet_transport_roundtrip(sim):
    platform = make_platform(sim, transport="unet")
    lib = platform.runtime()
    fd = make_backing_file(platform)
    blob = bytes(i % 256 for i in range(100_000))

    def proc():
        desc, err = yield from lib.mopen(len(blob), fd, 0)
        assert err == 0
        yield from lib.mwrite(desc, 0, len(blob), blob)
        n, err, data = yield from lib.mread(desc, 0, len(blob))
        return n, err, data

    n, err, data = run(sim, proc())
    assert (n, err) == (len(blob), 0)
    assert data == blob


def test_roundtrip_under_packet_loss(sim):
    platform = make_platform(sim, loss=0.01)
    lib = platform.runtime()
    fd = make_backing_file(platform)
    blob = bytes((i * 13) % 256 for i in range(200_000))

    def proc():
        desc, err = yield from lib.mopen(len(blob), fd, 0)
        assert err == 0
        n, err = yield from lib.mwrite(desc, 0, len(blob), blob)
        assert err == 0
        n, err, data = yield from lib.mread(desc, 0, len(blob))
        return n, err, data

    n, err, data = run(sim, proc())
    assert (n, err) == (len(blob), 0)
    assert data == blob
