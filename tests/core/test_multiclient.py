"""Tests for the multi-client extension (paper Section 4.3 footnote).

With ``multi_client_keys=True`` region keys include the client identity,
so two applications using the same backing file get *separate* regions;
with the paper's default single-client keys they share one.
"""

import pytest

from repro.core import DodoConfig, DodoRuntime
from repro.exp.platform import MB, Platform, PlatformParams
from repro.sim import Simulator

from repro.testing import make_backing_file, run


def build(sim, multi_client):
    params = PlatformParams(
        transport="udp", store_payload=True, n_memory_hosts=3,
        imd_pool_bytes=2 * MB, local_cache_bytes=256 * 1024,
        app_fs_cache_dodo=1 * MB, disk_capacity_bytes=256 * MB)
    platform = Platform(sim, params, dodo=True)
    object.__setattr__(platform.config, "multi_client_keys", multi_client)
    return platform


def test_single_client_keys_share_regions():
    sim = Simulator(seed=81)
    platform = build(sim, multi_client=False)
    fd = make_backing_file(platform)
    lib1, lib2 = platform.runtime(), platform.runtime()

    def proc():
        d1, err = yield from lib1.mopen(64 * 1024, fd, 0)
        assert err == 0
        yield from lib1.mwrite(d1, 0, 11, b"from-client")
        d2, err = yield from lib2.mopen(64 * 1024, fd, 0)
        assert err == 0
        n, err, data = yield from lib2.mread(d2, 0, 11)
        return data

    # same (inode, offset) key: client 2 sees client 1's bytes
    assert run(sim, proc()) == b"from-client"
    assert platform.cmd.stats.count("alloc.placed") == 1


def test_multi_client_keys_isolate_regions():
    sim = Simulator(seed=82)
    platform = build(sim, multi_client=True)
    fd = make_backing_file(platform)
    lib1, lib2 = platform.runtime(), platform.runtime()

    def proc():
        d1, err = yield from lib1.mopen(64 * 1024, fd, 0)
        assert err == 0
        yield from lib1.mwrite(d1, 0, 7, b"private")
        d2, err = yield from lib2.mopen(64 * 1024, fd, 0)
        assert err == 0
        n, err, data = yield from lib2.mread(d2, 0, 7)
        return data

    data = run(sim, proc())
    # client 2's region is fresh (zero-filled), not client 1's bytes
    assert data == b"\x00" * 7
    assert platform.cmd.stats.count("alloc.placed") == 2


def test_multi_client_detach_only_reclaims_own_regions():
    sim = Simulator(seed=83)
    platform = build(sim, multi_client=True)
    fd = make_backing_file(platform)
    lib1, lib2 = platform.runtime(), platform.runtime()

    def proc():
        d1, _ = yield from lib1.mopen(64 * 1024, fd, 0)
        d2, _ = yield from lib2.mopen(64 * 1024, fd, 0)
        yield from lib2.mwrite(d2, 0, 4, b"keep")
        yield from lib1.detach(persist=False)  # frees only lib1's region
        n, err, data = yield from lib2.mread(d2, 0, 4)
        return n, err, data

    n, err, data = run(sim, proc())
    assert (n, err) == (4, 0)
    assert data == b"keep"
    used = sum(i.allocator.used_bytes for i in platform.imds)
    assert used == 64 * 1024  # lib2's region survives alone


def test_multi_client_persistence_is_per_client():
    sim = Simulator(seed=84)
    platform = build(sim, multi_client=True)
    fd = make_backing_file(platform)

    def writer():
        lib = platform.runtime()
        client_id = lib.client_id
        d, _ = yield from lib.mopen(32 * 1024, fd, 0)
        yield from lib.mwrite(d, 0, 9, b"persisted")
        yield from lib.detach(persist=True)
        return client_id

    run(sim, writer())
    # a *different* client cannot see the persisted region under
    # multi-client keys (its key includes the original client id)
    def reader():
        lib = platform.runtime()
        d, err = yield from lib.mlookup(32 * 1024, fd, 0)
        return d, err

    d, err = run(sim, reader())
    assert d == -1  # not found under the new client's key
