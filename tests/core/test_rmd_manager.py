"""Tests for the resource monitor + central manager recruitment dance."""

import pytest

from repro.cluster import MB, Owner, OwnerParams
from repro.cluster.idleness import IdlePolicy
from repro.core import CentralManager, DodoConfig, ResourceMonitor
from repro.cluster.cluster import Cluster, ClusterConfig, HostSpec
from repro.sim import Simulator

FAST_IDLE = IdlePolicy(window_s=10.0, load_threshold=0.3,
                       sample_interval_s=1.0)


def build(sim, n_hosts=2, dedicated=False, store_payload=False):
    cfg = DodoConfig(transport="udp", store_payload=store_payload,
                     idle_policy=FAST_IDLE, dedicated=dedicated,
                     max_pool_bytes=8 * MB)
    hosts = [HostSpec("mgr")] + [HostSpec(f"w{i}") for i in range(n_hosts)]
    cluster = Cluster(sim, ClusterConfig(hosts=hosts))
    cmd = CentralManager(sim, cluster["mgr"], cfg)
    rmds = [ResourceMonitor(sim, cluster[f"w{i}"], cfg, cmd_host="mgr")
            for i in range(n_hosts)]
    return cluster, cfg, cmd, rmds


def test_idle_host_recruited_after_window():
    sim = Simulator(seed=41)
    cluster, cfg, cmd, rmds = build(sim, n_hosts=1)
    sim.run(until=FAST_IDLE.window_s + 5.0)
    assert rmds[0].recruited
    assert rmds[0].imd is not None
    assert "w0" in cmd.iwd
    assert cluster["w0"].guest_memory > 0


def test_busy_host_not_recruited():
    sim = Simulator(seed=42)
    cluster, cfg, cmd, rmds = build(sim, n_hosts=1)
    cluster["w0"].owner_load = 1.0  # a compute job keeps the host busy
    sim.run(until=60.0)
    assert not rmds[0].recruited
    assert "w0" not in cmd.iwd


def test_console_activity_resets_idle_clock():
    sim = Simulator(seed=43)
    cluster, cfg, cmd, rmds = build(sim, n_hosts=1)
    ws = cluster["w0"]

    def typer():
        # touch the console every 5 s: idleness (10 s window) never reached
        for _ in range(10):
            ws.touch_console()
            yield sim.timeout(5.0)

    sim.process(typer())
    sim.run(until=49.0)
    assert not rmds[0].recruited


def test_owner_return_triggers_reclaim():
    sim = Simulator(seed=44)
    cluster, cfg, cmd, rmds = build(sim, n_hosts=1)
    ws = cluster["w0"]
    sim.run(until=20.0)
    assert rmds[0].recruited
    imd = rmds[0].imd

    def owner_returns():
        yield sim.timeout(1.0)
        ws.touch_console()
        ws.owner_load = 0.9

    sim.process(owner_returns())
    sim.run(until=30.0)
    assert not rmds[0].recruited
    assert imd.exited
    assert ws.guest_memory == 0
    assert "w0" not in cmd.iwd
    assert rmds[0].stats.count("reclaims") == 1
    # reclaim delay was sampled and is small (no transfers in flight)
    assert rmds[0].stats.samples("reclaim_delay_s")[0] < 1.0


def test_epoch_increments_across_incarnations():
    sim = Simulator(seed=45)
    cluster, cfg, cmd, rmds = build(sim, n_hosts=1)
    ws = cluster["w0"]
    sim.run(until=15.0)
    first_epoch = rmds[0].imd.epoch

    ws.touch_console()  # reclaim
    sim.run(until=18.0)
    assert not rmds[0].recruited
    sim.run(until=40.0)  # re-recruited after the window passes again
    assert rmds[0].recruited
    assert rmds[0].imd.epoch == first_epoch + 1
    assert cmd.iwd["w0"].epoch == first_epoch + 1


def test_stale_region_detected_by_epoch(tmp_path):
    """A region allocated in incarnation N is invalidated by checkAlloc
    once incarnation N+1 has registered (Section 4.3)."""
    sim = Simulator(seed=46)
    cfg = DodoConfig(transport="udp", store_payload=False,
                     idle_policy=FAST_IDLE, max_pool_bytes=8 * MB)
    hosts = [HostSpec("mgr"),
             HostSpec("app", has_disk=True, fs_cache_bytes=1 * MB),
             HostSpec("w0")]
    cluster = Cluster(sim, ClusterConfig(hosts=hosts))
    cmd = CentralManager(sim, cluster["mgr"], cfg)
    rmd = ResourceMonitor(sim, cluster["w0"], cfg, cmd_host="mgr")
    sim.run(until=15.0)
    assert rmd.recruited

    from repro.core import DodoRuntime, ENOMEM
    lib = DodoRuntime(sim, cluster["app"], cfg, cmd_host="mgr")
    fs = cluster["app"].fs
    fs.create("data", size=1 * MB)
    fd = fs.open("data", "r+").fd

    def proc():
        desc, err = yield from lib.mopen(256 * 1024, fd, 0)
        assert err == 0
        # owner comes back, then leaves again -> new imd incarnation
        cluster["w0"].touch_console()
        yield sim.timeout(3.0)
        assert not rmd.recruited
        yield sim.timeout(20.0)
        assert rmd.recruited and rmd.imd.epoch == 2
        # old descriptor's remote data is gone: access fails over
        n, err, _ = yield from lib.mread(desc, 0, 1024)
        assert (n, err) == (-1, ENOMEM)
        # the RD entry is stale; a fresh mopen gets a NEW region in the
        # new incarnation rather than the stale one
        desc2, err = yield from lib.mopen(256 * 1024, fd, 0)
        assert err == 0
        assert lib._regions[desc2].remote.epoch == 2
        return True

    p = sim.process(proc())
    assert sim.run(until=p) is True
    assert cmd.stats.count("check.stale") >= 1


def test_dedicated_mode_recruits_quickly():
    sim = Simulator(seed=47)
    cluster, cfg, cmd, rmds = build(sim, n_hosts=2, dedicated=True)
    sim.run(until=3.0)
    assert all(r.recruited for r in rmds)


def test_rmd_stop_shuts_down_imd():
    sim = Simulator(seed=48)
    cluster, cfg, cmd, rmds = build(sim, n_hosts=1)
    sim.run(until=15.0)
    imd = rmds[0].imd
    rmds[0].stop()
    sim.run(until=16.0)
    assert imd.exited
