"""Documentation hygiene: docstring coverage and markdown links.

These mirror the CI ``docs`` job so a doc regression fails locally
first.  Both linters live in ``tools/`` and are plain scripts; the
tests import them by path so no packaging is needed.
"""

import importlib.util
import os

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load(name):
    path = os.path.join(ROOT, "tools", f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_public_api_has_a_docstring():
    missing, stale = _load("check_docstrings").check()
    assert missing == [], f"undocumented public APIs: {missing}"
    assert stale == [], f"stale allowlist entries: {stale}"


def test_markdown_links_resolve():
    broken = _load("check_links").check()
    assert broken == [], "\n".join(broken)


def test_api_doc_covers_new_subsystems():
    api = open(os.path.join(ROOT, "docs", "API.md")).read()
    for needle in ("repro.faults", "repro.sweep", "obs.timeseries",
                   "net.bulk"):
        assert needle in api, f"docs/API.md missing section for {needle}"


def test_experiments_doc_mentions_sweep_commands():
    text = open(os.path.join(ROOT, "EXPERIMENTS.md")).read()
    assert "repro sweep" in text


def test_bench_baselines_pass_schema_check():
    """The checked-in BENCH files must carry every field the gates read."""
    mod = _load("check_bench_schema")
    problems = []
    for path in mod.DEFAULTS:
        problems.extend(mod.check_file(path))
    assert problems == [], "\n".join(problems)


def test_bench_schema_check_catches_corruption():
    import json

    mod = _load("check_bench_schema")
    prims = json.load(open(os.path.join(
        ROOT, "benchmarks", "BENCH_primitives.json")))
    del prims["events_per_sec"]
    assert any("events_per_sec" in p
               for p in mod.check_primitives(prims, "prims"))

    scaling = json.load(open(os.path.join(
        ROOT, "benchmarks", "BENCH_scaling.json")))
    scaling["points"][0]["wall_s"] = -1.0
    scaling["points"].reverse()
    problems = mod.check_scaling(scaling, "scaling")
    assert any("wall_s" in p for p in problems)
    assert any("increasing" in p for p in problems)
