"""Documentation hygiene: docstring coverage and markdown links.

These mirror the CI ``docs`` job so a doc regression fails locally
first.  Both linters live in ``tools/`` and are plain scripts; the
tests import them by path so no packaging is needed.
"""

import importlib.util
import os

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load(name):
    path = os.path.join(ROOT, "tools", f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_public_api_has_a_docstring():
    missing, stale = _load("check_docstrings").check()
    assert missing == [], f"undocumented public APIs: {missing}"
    assert stale == [], f"stale allowlist entries: {stale}"


def test_markdown_links_resolve():
    broken = _load("check_links").check()
    assert broken == [], "\n".join(broken)


def test_api_doc_covers_new_subsystems():
    api = open(os.path.join(ROOT, "docs", "API.md")).read()
    for needle in ("repro.faults", "repro.sweep", "obs.timeseries",
                   "net.bulk"):
        assert needle in api, f"docs/API.md missing section for {needle}"


def test_experiments_doc_mentions_sweep_commands():
    text = open(os.path.join(ROOT, "EXPERIMENTS.md")).read()
    assert "repro sweep" in text
