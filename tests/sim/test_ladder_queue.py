"""Differential tests for the ladder event queue.

The kernel's contract is a *total order*: events dispatch by
``(time, insertion counter)``, exactly what the old global binary heap
produced.  These tests drive the ladder through its structural paths —
front-only, calendar placement, fence refill, grow/shrink re-fit, the
full-rotation far-future jump, and the Timeout free pool — and assert the
dispatch sequence is byte-identical to the sorted reference.
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.kernel import _MIN_BUCKETS, _POOL_MAX, Timeout


def _record(log, tag):
    """A callback that appends (virtual time, tag) to log at dispatch."""
    def cb(evt):
        log.append((evt.sim.now, tag))
    return cb


def _run_and_check(sim, scheduled, log):
    """Run the sim and assert dispatch order == sorted (when, seq) order."""
    sim.run()
    expected = [(when, seq) for when, seq in
                sorted(scheduled, key=lambda e: (e[0], e[1]))]
    assert log == expected


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_dispatch_order_multi_scale(seed):
    """Random delays spanning nine orders of magnitude, with deliberate
    timestamp collisions, dispatch in exact (time, insertion) order."""
    rng = random.Random(seed)
    sim = Simulator()
    scales = [0.0, 1e-9, 1e-6, 1e-3, 1.0, 60.0, 3600.0, 1e6]
    log, scheduled = [], []
    for i in range(800):
        delay = rng.choice(scales) * rng.choice([1, 1, 1, rng.random()])
        evt = sim.timeout(delay)
        evt.callbacks.append(_record(log, i))
        scheduled.append((delay, i))
    _run_and_check(sim, scheduled, log)


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_nested_scheduling(seed):
    """Callbacks scheduling further events mid-dispatch keep exact order."""
    rng = random.Random(seed)
    sim = Simulator()
    log = []
    order = []
    counter = [0]

    def spawn(depth):
        def cb(evt):
            now = evt.sim.now
            log.append((now, id(cb)))
            order.append((now, id(cb)))
            if depth > 0:
                for _ in range(rng.randrange(3)):
                    child = sim.timeout(rng.choice([0.0, 1e-4, 2.5]))
                    child.callbacks.append(spawn(depth - 1))
                    counter[0] += 1
        return cb

    for _ in range(50):
        evt = sim.timeout(rng.uniform(0, 10))
        evt.callbacks.append(spawn(3))
    sim.run()
    # Times must be globally non-decreasing (ties resolved by insertion,
    # which the log preserves by construction of the dispatch loop).
    times = [t for t, _ in log]
    assert times == sorted(times)


def test_grow_refit_keeps_order():
    """Tens of thousands of pending timers cross the grow trigger."""
    sim = Simulator()
    log, scheduled = [], []
    rng = random.Random(99)
    for i in range(20000):
        delay = rng.uniform(0, 500.0)
        evt = sim.timeout(delay)
        evt.callbacks.append(_record(log, i))
        scheduled.append((delay, i))
    _run_and_check(sim, scheduled, log)


def test_shrink_refit_keeps_order():
    """Drain a large queue down so the fence refill triggers a shrink."""
    sim = Simulator()
    log, scheduled = [], []
    rng = random.Random(7)
    # dense burst then a sparse tail: the tail forces shrink re-fits
    for i in range(8000):
        delay = rng.uniform(0, 1.0)
        evt = sim.timeout(delay)
        evt.callbacks.append(_record(log, i))
        scheduled.append((delay, i))
    for j in range(40):
        delay = 10.0 + j * 1000.0
        evt = sim.timeout(delay)
        evt.callbacks.append(_record(log, 8000 + j))
        scheduled.append((delay, 8000 + j))
    _run_and_check(sim, scheduled, log)


def test_far_future_rotation_jump():
    """Events farther apart than a full calendar rotation exercise the
    global-minimum jump in the refill path."""
    sim = Simulator()
    log, scheduled = [], []
    # cluster at t~0 to pin a small width, then lone events years apart
    rng = random.Random(3)
    for i in range(200):
        delay = rng.uniform(0, 0.01)
        evt = sim.timeout(delay)
        evt.callbacks.append(_record(log, i))
        scheduled.append((delay, i))
    for j, delay in enumerate([50.0, 5000.0, 5.0e5, 5.0e7]):
        evt = sim.timeout(delay)
        evt.callbacks.append(_record(log, 200 + j))
        scheduled.append((delay, 200 + j))
    _run_and_check(sim, scheduled, log)


def test_ties_preserve_insertion_order_across_structures():
    """Identical timestamps inserted before and after a re-fit dispatch
    strictly in insertion order."""
    sim = Simulator()
    log = []
    n = 5000  # enough to cross the front-growth trigger mid-insertion
    for i in range(n):
        evt = sim.timeout(1.0)
        evt.callbacks.append(_record(log, i))
    sim.run()
    assert log == [(1.0, i) for i in range(n)]


def test_horizon_pushback_resumes_exactly():
    """run(until=t) stops mid-window; the deferred event is not lost and
    dispatches at its exact time on the next run."""
    sim = Simulator()
    log = []
    for i, d in enumerate([0.5, 1.5, 2.5]):
        evt = sim.timeout(d)
        evt.callbacks.append(_record(log, i))
    sim.run(until=1.0)
    assert sim.now == 1.0
    assert log == [(0.5, 0)]
    sim.run(until=2.0)
    assert log == [(0.5, 0), (1.5, 1)]
    sim.run()
    assert log == [(0.5, 0), (1.5, 1), (2.5, 2)]


def test_peek_and_step_against_run():
    """peek()/step() single-stepping matches run()'s order and clock."""
    def build():
        sim = Simulator()
        log = []
        rng = random.Random(11)
        for i in range(300):
            evt = sim.timeout(rng.choice([0.0, 0.25, 0.25, 7.0, 900.0]))
            evt.callbacks.append(_record(log, i))
        return sim, log

    sim_a, log_a = build()
    sim_a.run()

    sim_b, log_b = build()
    while True:
        nxt = sim_b.peek()
        if nxt == float("inf"):
            break
        sim_b.step()
        assert sim_b.now == nxt
    assert log_b == log_a


def test_timeout_pool_never_recycles_observed_events():
    """A Timeout someone still references keeps its value; the pool only
    recycles provably unobservable events."""
    sim = Simulator()
    held = sim.timeout(1.0, value="keep")
    for _ in range(10):
        sim.timeout(0.5, value="churn")
    sim.run()
    assert held.value == "keep"
    assert held.processed
    # pooled objects are reused: drive enough churn to prove reuse works
    sim2 = Simulator()
    seen = []

    def churn():
        for i in range(500):
            t = sim2.timeout(0.001, value=i)
            got = yield t
            seen.append(got)

    sim2.process(churn())
    sim2.run()
    assert seen == list(range(500))
    assert len(sim2._tpool) <= _POOL_MAX


def test_pool_not_fed_by_subclasses_or_condition_children():
    """AnyOf/AllOf keep child references, so their values survive."""
    sim = Simulator()
    results = {}

    def waiter():
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")
        got = yield sim.all_of([t1, t2])
        results["all"] = got
        # both children remain readable after being processed
        results["vals"] = (t1.value, t2.value)

    sim.process(waiter())
    sim.run()
    assert results["all"] == ["a", "b"]
    assert results["vals"] == ("a", "b")


def test_structure_invariants_after_fuzz():
    """Internal bookkeeping stays consistent after heavy churn."""
    sim = Simulator()
    rng = random.Random(42)
    for _ in range(3000):
        sim.timeout(rng.uniform(0, 1e4))
    sim.run()
    assert sim._qcount == 0
    assert not sim._front
    assert all(not b for b in sim._buckets)
    assert sim._nbuckets >= _MIN_BUCKETS
    # a fresh event still schedules fine after everything drained
    log = []
    evt = sim.timeout(5.0)
    evt.callbacks.append(_record(log, "tail"))
    sim.run()
    assert log and log[0][1] == "tail"


def test_cold_timeout_constructor_still_works():
    """Direct Timeout(...) construction (bypassing the pool) matches
    Simulator.timeout semantics."""
    sim = Simulator()
    t = Timeout(sim, 3.0, value=7)
    assert t.triggered and t.ok
    got = []

    def waiter():
        got.append((yield t))

    sim.process(waiter())
    sim.run()
    assert got == [7] and sim.now == 3.0
    with pytest.raises(ValueError):
        Timeout(sim, -1.0)
