"""Unit tests for the named RNG registry."""

from repro.sim import RngRegistry, Simulator


def test_same_name_same_stream_object():
    reg = RngRegistry(7)
    assert reg.stream("disk0") is reg.stream("disk0")


def test_streams_reproducible_across_registries():
    a = RngRegistry(42).stream("owner").random(8)
    b = RngRegistry(42).stream("owner").random(8)
    assert (a == b).all()


def test_different_names_give_different_sequences():
    reg = RngRegistry(42)
    a = reg.stream("x").random(8)
    b = reg.stream("y").random(8)
    assert not (a == b).all()


def test_different_seeds_give_different_sequences():
    a = RngRegistry(1).stream("x").random(8)
    b = RngRegistry(2).stream("x").random(8)
    assert not (a == b).all()


def test_stream_independent_of_creation_order():
    r1 = RngRegistry(5)
    r1.stream("a")
    seq_b_after_a = r1.stream("b").random(4)
    r2 = RngRegistry(5)
    seq_b_alone = r2.stream("b").random(4)
    assert (seq_b_after_a == seq_b_alone).all()


def test_reset_rederives_identical_stream():
    reg = RngRegistry(9)
    first = reg.stream("z").random(4)
    reg.reset()
    again = reg.stream("z").random(4)
    assert (first == again).all()


def test_simulator_exposes_registry():
    sim = Simulator(seed=11)
    assert sim.rng("anything") is sim.rng.stream("anything")
