"""Unit tests for Resource, Store and PriorityStore."""

import pytest

from repro.sim import PriorityStore, Resource, SimulationError, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    a, b, c = res.acquire(), res.acquire(), res.acquire()
    assert a.triggered and b.triggered and not c.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_grants_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()
    waiter = res.acquire()
    assert not waiter.triggered
    res.release()
    assert waiter.triggered
    assert res.in_use == 1  # the waiter now holds it


def test_resource_release_without_acquire_is_error():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_serializes_processes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(name, hold):
        yield res.acquire()
        log.append((name, "in", sim.now))
        yield sim.timeout(hold)
        log.append((name, "out", sim.now))
        res.release()

    sim.process(worker("a", 2.0))
    sim.process(worker("b", 3.0))
    sim.run()
    assert log == [("a", "in", 0.0), ("a", "out", 2.0),
                   ("b", "in", 2.0), ("b", "out", 5.0)]


def test_resource_cancel_pending_acquire():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()
    waiter = res.acquire()
    assert res.cancel(waiter)
    res.release()
    assert not waiter.triggered
    assert res.in_use == 0


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    assert got.triggered and got.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = store.get()
    assert not got.triggered
    store.put("late")
    assert got.triggered and got.value == "late"


def test_store_is_fifo():
    sim = Simulator()
    store = Store(sim)
    for item in ("a", "b", "c"):
        store.put(item)
    assert [store.get().value for _ in range(3)] == ["a", "b", "c"]


def test_store_bounded_put_blocks():
    sim = Simulator()
    store = Store(sim, capacity=1)
    p1 = store.put("first")
    p2 = store.put("second")
    assert p1.triggered and not p2.triggered
    got = store.get()
    assert got.value == "first"
    assert p2.triggered
    assert store.get().value == "second"


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_cancel_pending_get():
    sim = Simulator()
    store = Store(sim)
    pending = store.get()
    assert store.cancel(pending)
    store.put("item")
    assert len(store) == 1  # not delivered to the cancelled getter
    assert not pending.triggered


def test_store_producer_consumer_processes():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for i in range(5):
            yield sim.timeout(1.0)
            yield store.put(i)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            received.append((item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert [i for i, _ in received] == [0, 1, 2, 3, 4]
    assert received[-1][1] == 5.0


def test_store_items_snapshot():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.items == (1, 2)
    assert len(store) == 2


def test_priority_store_orders_items():
    sim = Simulator()
    ps = PriorityStore(sim)
    for item in (5, 1, 3):
        ps.put(item)
    assert [ps.get().value for _ in range(3)] == [1, 3, 5]


def test_priority_store_fifo_on_ties():
    sim = Simulator()
    ps = PriorityStore(sim)
    a = (1, "a")
    b = (1, "a")  # equal priority tuples
    ps.put(a)
    ps.put(b)
    assert ps.get().value is a
    assert ps.get().value is b


def test_priority_store_blocking_get():
    sim = Simulator()
    ps = PriorityStore(sim)
    got = ps.get()
    assert not got.triggered
    ps.put(7)
    assert got.triggered and got.value == 7
    assert len(ps) == 0
