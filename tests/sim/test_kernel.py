"""Unit tests for the DES kernel: events, timeouts, scheduler ordering."""

import pytest

from repro.sim import Event, SimulationError, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=3.0)
    assert sim.now == 3.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_time_is_error():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []

    def track(tag):
        return lambda evt: fired.append((sim.now, tag))

    sim.timeout(2.0).callbacks.append(track("b"))
    sim.timeout(1.0).callbacks.append(track("a"))
    sim.timeout(3.0).callbacks.append(track("c"))
    sim.run()
    assert fired == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_simultaneous_events_fifo_by_insertion():
    sim = Simulator()
    fired = []
    for tag in ("first", "second", "third"):
        sim.timeout(1.0).callbacks.append(
            lambda evt, t=tag: fired.append(t))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_manual_event_succeed_value():
    sim = Simulator()
    evt = sim.event()
    assert not evt.triggered
    evt.succeed(42)
    assert evt.triggered and evt.ok and evt.value == 42
    sim.run()
    assert evt.processed


def test_event_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)
    with pytest.raises(SimulationError):
        evt.fail(RuntimeError("nope"))


def test_fail_requires_exception_instance():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(TypeError):
        evt.fail("not an exception")


def test_unhandled_failed_event_raises_from_run():
    sim = Simulator()
    sim.event().fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_defused_failed_event_is_silent():
    sim = Simulator()
    evt = sim.event()
    evt.fail(RuntimeError("boom"))
    evt.defused = True
    sim.run()  # no raise


def test_value_before_trigger_is_error():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value
    with pytest.raises(SimulationError):
        _ = evt.ok


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return "done"

    p = sim.process(proc())
    assert sim.run(until=p) == "done"
    assert sim.now == 2.0


def test_run_until_event_already_processed():
    sim = Simulator()
    evt = sim.event()
    evt.succeed("early")
    sim.run()
    assert sim.run(until=evt) == "early"


def test_run_until_event_never_fires_is_error():
    sim = Simulator()
    evt = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SimulationError, match="never fired"):
        sim.run(until=evt)


def test_run_until_failed_event_raises():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise ValueError("process died")

    p = sim.process(proc())
    with pytest.raises(ValueError, match="process died"):
        sim.run(until=p)


def test_step_on_empty_queue_is_error():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.5)
    assert sim.peek() == 7.5


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.timeout(1.0)
    sim.run()
    assert sim.events_processed == 5


def test_callbacks_after_processing_is_none():
    sim = Simulator()
    evt = sim.timeout(1.0)
    sim.run()
    assert evt.callbacks is None
