"""Additional edge cases for kernel primitives discovered during use."""

import pytest

from repro.sim import (AllOf, AnyOf, Interrupt, PriorityStore, Resource,
                       Simulator, Store)


def test_bounded_store_putter_admitted_after_cancel():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("a")
    blocked = store.put("b")
    assert not blocked.triggered
    got = store.get()
    assert got.value == "a"
    assert blocked.triggered          # "b" admitted when space opened
    assert store.items == ("b",)


def test_store_put_wakes_getter_directly_bypassing_queue():
    sim = Simulator()
    store = Store(sim, capacity=1)
    getter = store.get()
    store.put("x")
    assert getter.value == "x"
    assert len(store) == 0  # handed over, never queued


def test_priority_store_put_with_waiting_getter_respects_order():
    sim = Simulator()
    ps = PriorityStore(sim)
    ps.put(5)
    getter = ps.get()  # takes 5 immediately
    assert getter.value == 5
    g2 = ps.get()
    ps.put(9)
    assert g2.value == 9


def test_resource_fifo_across_cancel():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()
    w1 = res.acquire()
    w2 = res.acquire()
    res.cancel(w1)
    res.release()
    assert not w1.triggered
    assert w2.triggered  # next live waiter wins


def test_anyof_child_failure_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("anyof child")

    def waiter():
        try:
            yield AnyOf(sim, [sim.process(bad()), sim.timeout(10.0)])
        except ValueError:
            return "caught"

    assert sim.run(until=sim.process(waiter())) == "caught"
    assert sim.now == 1.0


def test_allof_duplicate_event_counts_once_each():
    sim = Simulator()
    t = sim.timeout(1.0, value="v")

    def waiter():
        vals = yield AllOf(sim, [t, t])
        return vals

    assert sim.run(until=sim.process(waiter())) == ["v", "v"]


def test_interrupt_cause_is_accessible():
    sim = Simulator()
    seen = {}

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            seen["cause"] = intr.cause

    p = sim.process(sleeper())

    def killer():
        yield sim.timeout(1.0)
        p.interrupt({"reason": "owner-return", "grace": 0})

    sim.process(killer())
    sim.run()
    assert seen["cause"] == {"reason": "owner-return", "grace": 0}


def test_double_interrupt_same_timestep_safe():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            return "interrupted"

    p = sim.process(sleeper())

    def killer():
        yield sim.timeout(1.0)
        p.interrupt("first")
        p.interrupt("second")  # delivered after termination: ignored

    sim.process(killer())
    assert sim.run(until=p) == "interrupted"


def test_process_return_none_by_default():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    assert sim.run(until=sim.process(proc())) is None


class _Payload:
    """Deliberately non-comparable (no __lt__, default object identity)."""

    def __init__(self, tag):
        self.tag = tag


def test_priority_store_key_non_comparable_items_stay_fifo():
    """Regression: heap entries are (key, seq, item), so equal-priority
    non-comparable items must never be compared — ties stay FIFO."""
    sim = Simulator()
    ps = PriorityStore(sim, key=lambda m: m[0])
    a, b, c = _Payload("a"), _Payload("b"), _Payload("c")
    ps.put((2, a))
    ps.put((1, b))
    ps.put((2, c))          # same priority as a: would raise pre-fix
    assert [ps.get().value[1] for _ in range(3)] == [b, a, c]


def test_priority_store_key_items_snapshot_and_putter_admission():
    sim = Simulator()
    ps = PriorityStore(sim, capacity=2, key=lambda m: m[0])
    a, b, c = _Payload("a"), _Payload("b"), _Payload("c")
    ps.put((1, a))
    ps.put((1, b))
    blocked = ps.put((0, c))           # over capacity: queued as putter
    assert not blocked.triggered
    assert ps.items == ((1, a), (1, b))
    got = ps.get()
    assert got.value == (1, a)
    assert blocked.triggered           # admitted through the keyed push
    assert ps.items == ((0, c), (1, b))


def test_priority_store_key_with_waiting_getter():
    sim = Simulator()
    ps = PriorityStore(sim, key=lambda m: m[0])
    a, b = _Payload("a"), _Payload("b")
    ps.put((3, a))
    assert ps.get().value == (3, a)
    waiting = ps.get()
    ps.put((3, b))                     # direct hand-off, empty heap
    assert waiting.value == (3, b)
