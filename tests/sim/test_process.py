"""Unit tests for processes, interrupts and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, SimulationError, Simulator


def test_process_runs_and_returns():
    sim = Simulator()
    log = []

    def worker():
        log.append(("start", sim.now))
        yield sim.timeout(3.0)
        log.append(("end", sim.now))
        return "result"

    p = sim.process(worker())
    out = sim.run(until=p)
    assert out == "result"
    assert log == [("start", 0.0), ("end", 3.0)]


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_process_receives_event_value():
    sim = Simulator()

    def worker():
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run(until=sim.process(worker())) == "payload"


def test_process_waits_on_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 99

    def parent():
        val = yield sim.process(child())
        return val + 1

    assert sim.run(until=sim.process(parent())) == 100


def test_waiting_on_already_finished_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "early"

    c = sim.process(child())

    def parent():
        yield sim.timeout(5.0)
        val = yield c  # already processed by now
        return val

    assert sim.run(until=sim.process(parent())) == "early"
    assert sim.now == 5.0


def test_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise KeyError("inner")

    def parent():
        try:
            yield sim.process(child())
        except KeyError:
            return "caught"
        return "missed"

    assert sim.run(until=sim.process(parent())) == "caught"


def test_unwaited_crashed_process_raises_at_run():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise RuntimeError("unobserved crash")

    sim.process(crasher())
    with pytest.raises(RuntimeError, match="unobserved crash"):
        sim.run()


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    p = sim.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run(until=p)


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("overslept")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    p = sim.process(sleeper())

    def killer():
        yield sim.timeout(5.0)
        p.interrupt("wake up")

    sim.process(killer())
    sim.run()
    assert log == [("interrupted", 5.0, "wake up")]


def test_interrupted_process_not_resumed_by_stale_event():
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
            resumes.append("timeout")
        except Interrupt:
            resumes.append("interrupt")
            yield sim.timeout(50.0)
            resumes.append("second sleep done")

    p = sim.process(sleeper())

    def killer():
        yield sim.timeout(1.0)
        p.interrupt()

    sim.process(killer())
    sim.run()
    # The original timeout at t=10 must NOT resume the process again.
    assert resumes == ["interrupt", "second sleep done"]
    assert sim.now == 51.0


def test_interrupt_terminated_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupt_before_first_resume():
    sim = Simulator()
    log = []

    def proc():
        try:
            yield sim.timeout(10.0)
        except Interrupt:
            log.append("early interrupt")

    p = sim.process(proc())
    p.interrupt()  # before the process has even started
    sim.run()
    assert log == ["early interrupt"] or log == []
    assert not p.is_alive


def test_is_alive_lifecycle():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)

    p = sim.process(proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_allof_collects_values_in_order():
    sim = Simulator()

    def make(delay, val):
        def proc():
            yield sim.timeout(delay)
            return val
        return sim.process(proc())

    # Deliberately finish out of order.
    procs = [make(3.0, "a"), make(1.0, "b"), make(2.0, "c")]

    def waiter():
        vals = yield AllOf(sim, procs)
        return vals

    assert sim.run(until=sim.process(waiter())) == ["a", "b", "c"]
    assert sim.now == 3.0


def test_allof_empty_fires_immediately():
    sim = Simulator()

    def waiter():
        vals = yield AllOf(sim, [])
        return vals

    assert sim.run(until=sim.process(waiter())) == []


def test_allof_fails_if_any_child_fails():
    sim = Simulator()

    def good():
        yield sim.timeout(5.0)

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("child failed")

    def waiter():
        try:
            yield AllOf(sim, [sim.process(good()), sim.process(bad())])
        except ValueError:
            return "failed fast"
        return "no failure"

    assert sim.run(until=sim.process(waiter())) == "failed fast"
    assert sim.now == 1.0


def test_anyof_returns_first_index_and_value():
    sim = Simulator()

    def make(delay, val):
        def proc():
            yield sim.timeout(delay)
            return val
        return sim.process(proc())

    def waiter():
        idx, val = yield AnyOf(sim, [make(9.0, "slow"), make(2.0, "fast")])
        return idx, val

    assert sim.run(until=sim.process(waiter())) == (1, "fast")
    assert sim.now == 2.0


def test_anyof_with_already_done_child():
    sim = Simulator()
    done = sim.event()
    done.succeed("instant")
    sim.run()  # process it

    def waiter():
        idx, val = yield AnyOf(sim, [done, sim.timeout(10.0)])
        return idx, val

    assert sim.run(until=sim.process(waiter())) == (0, "instant")


def test_nested_processes_deep_chain():
    sim = Simulator()

    def level(n):
        if n == 0:
            yield sim.timeout(1.0)
            return 0
        val = yield sim.process(level(n - 1))
        return val + 1

    assert sim.run(until=sim.process(level(20))) == 20
