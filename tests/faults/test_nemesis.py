"""Nemesis execution tests: each fault kind against a live platform.

Each test drives a hand-written :class:`FaultPlan` through a tiny
dedicated platform and asserts the injected state, the heal, and —
where the fault interacts with Dodo's bookkeeping — that the invariant
auditor stays clean through the whole episode.
"""

import pytest

from repro.core.config import DodoConfig
from repro.faults import FaultPlan, FaultSpec
from repro.obs.audit import Auditor
from repro.sim import Simulator
from repro.testing import MB, make_backing_file, make_platform, run


@pytest.fixture
def sim():
    return Simulator(seed=17)


def chaos_config(**kw):
    base = dict(transport="udp", store_payload=True, dedicated=True,
                max_pool_bytes=2 * MB, rpc_backoff_s=0.02,
                rpc_backoff_jitter=0.25, imd_reregister_s=1.0)
    base.update(kw)
    return DodoConfig(**base)


def plan_of(*events):
    return FaultPlan(events=tuple(events))


# -- host crash (and the guest-memory accounting regression) ------------------

def test_host_crash_releases_guest_memory_immediately(sim):
    """Regression: ``Workstation.crash()`` used to leave ``guest_memory``
    pinned (and the manager's donation view stale) until keep-alive
    expiry; the imd now dies with its host and releases it at once."""
    auditor = Auditor(mode="raise")
    platform = make_platform(sim, faults=plan_of(
        FaultSpec(time=1.0, kind="host_crash", target="mem00",
                  duration_s=2.0)))
    ws = platform.cluster["mem00"]
    imd = next(i for i in platform.imds if i.ws is ws)
    assert ws.guest_memory == imd.pool_bytes

    sim.run(until=1.5)
    assert ws.crashed and ws.nic.down
    assert ws.guest_memory == 0, "crash left guest memory pinned"
    assert imd.exited and imd.killed
    # the manager has not noticed yet -- the crash-aware donation and
    # directory checks must tolerate exactly that window
    platform.audit(auditor, teardown=False)

    sim.run(until=4.0)
    assert not ws.crashed and not ws.nic.down
    # dedicated platform: the nemesis models the reboot's fresh imd
    fresh = [i for i in platform.imds if i.ws is ws and not i.exited]
    assert len(fresh) == 1
    assert fresh[0].epoch == imd.epoch + 1
    assert ws.guest_memory == fresh[0].pool_bytes
    platform.audit(auditor, teardown=False)
    assert auditor.findings == []


def test_donation_check_still_catches_real_divergence(sim):
    """Crash-awareness must not blind the auditor: a wrong donation count
    on a *healthy* host is still a finding."""
    platform = make_platform(sim)
    sim.run(until=1.0)
    platform.cluster["mem01"].guest_memory += 4096
    found = platform.audit(Auditor(mode="warn"), teardown=False)
    assert any(f.check == "donation.accounting" for f in found)


def test_crashed_host_with_stale_accounting_is_not_reported(sim):
    """While a host is down its memory state is unobservable: the
    donation check skips it instead of reporting phantom divergence."""
    platform = make_platform(sim)
    sim.run(until=1.0)
    ws = platform.cluster["mem01"]
    ws.crash()
    ws.guest_memory += 4096  # garbage: nobody can read it anyway
    found = platform.audit(Auditor(mode="warn"), teardown=False)
    assert not any(f.subject == "mem01" for f in found)


def test_workstation_crash_runs_listeners_once_per_crash(sim):
    platform = make_platform(sim)
    ws = platform.cluster["mem00"]
    calls = []
    ws.on_crash(lambda: calls.append(sim.now))
    ws.crash()
    assert calls == [sim.now]


# -- NIC flap ----------------------------------------------------------------

def test_nic_flap_and_heal(sim):
    platform = make_platform(sim, faults=plan_of(
        FaultSpec(time=1.0, kind="nic_flap", target="mem01",
                  duration_s=0.5)))
    nic = platform.cluster["mem01"].nic
    sim.run(until=1.2)
    assert nic.down
    sim.run(until=2.0)
    assert not nic.down


# -- loss bursts -------------------------------------------------------------

def test_loss_bursts_stack_by_max_and_clear(sim):
    platform = make_platform(sim, faults=plan_of(
        FaultSpec(time=1.0, kind="loss_burst", duration_s=2.0, value=0.1),
        FaultSpec(time=1.5, kind="loss_burst", duration_s=0.4, value=0.3)))
    net = platform.cluster.network
    sim.run(until=1.2)
    assert net.extra_loss_prob == 0.1
    sim.run(until=1.7)
    assert net.extra_loss_prob == 0.3   # overlapping bursts: max, not sum
    sim.run(until=2.5)
    assert net.extra_loss_prob == 0.1   # the short burst healed
    sim.run(until=3.5)
    assert net.extra_loss_prob == 0.0


# -- partitions --------------------------------------------------------------

def test_partition_blocks_and_heals(sim):
    platform = make_platform(sim, faults=plan_of(
        FaultSpec(time=1.0, kind="partition", duration_s=1.0,
                  group=("mem00",))))
    net = platform.cluster.network
    sim.run(until=1.5)
    assert net.partitioned
    assert not net.reachable("app", "mem00")
    assert not net.reachable("mem00", "app")
    assert net.reachable("app", "mem01")
    assert net.reachable("mem00", "mem00")
    sim.run(until=2.5)
    assert not net.partitioned
    assert net.reachable("app", "mem00")


def test_stale_partition_healer_does_not_clear_newer_cut(sim):
    platform = make_platform(sim, faults=plan_of(
        FaultSpec(time=1.0, kind="partition", duration_s=1.0,
                  group=("mem00",)),
        FaultSpec(time=1.5, kind="partition", duration_s=2.0,
                  group=("mem01",))))
    net = platform.cluster.network
    sim.run(until=2.2)  # first cut's healer fired at t=2.0
    assert net.partitioned, "stale healer cleared the newer cut"
    assert not net.reachable("app", "mem01")
    sim.run(until=4.0)
    assert not net.partitioned


# -- disk slowdown -----------------------------------------------------------

def test_disk_slowdown_scales_service_time_and_heals(sim):
    platform = make_platform(sim, faults=plan_of(
        FaultSpec(time=1.0, kind="disk_slowdown", target="app",
                  duration_s=1.0, value=4.0)))
    disk = platform.cluster["app"].disk
    healthy = disk.service_time(0, 8192, write=False)
    sim.run(until=1.5)
    assert disk.slowdown == 4.0
    assert disk.service_time(0, 8192,
                             write=False) == pytest.approx(4.0 * healthy)
    sim.run(until=2.5)
    assert disk.slowdown == 1.0


def test_disk_slowdown_on_diskless_host_is_a_noop(sim):
    platform = make_platform(sim, faults=plan_of(
        FaultSpec(time=1.0, kind="disk_slowdown", target="mem00",
                  duration_s=1.0, value=4.0)))
    sim.run(until=2.5)
    assert platform.nemesis.injected == 1  # counted, but nothing to do


# -- manager crash / restart -------------------------------------------------

def test_manager_restart_bumps_incarnation_and_imds_reregister(sim):
    platform = make_platform(
        sim, config=chaos_config(),
        faults=plan_of(FaultSpec(time=1.0, kind="manager_crash",
                                 duration_s=0.5)))
    old = platform.cmd
    sim.run(until=1.2)
    assert platform.cmd is old          # still the dead one, not replaced
    sim.run(until=4.0)                  # heal + a couple of heartbeats
    assert platform.cmd is not old
    assert platform.cmd.incarnation == old.incarnation + 1
    # the imd heartbeat repopulated the restarted manager's empty IWD
    assert set(platform.cmd.iwd) == {i.ws.name for i in platform.imds
                                     if not i.exited}


def test_client_reregisters_after_manager_restart(sim):
    """The hardening the explorer surfaced: a restarted manager has an
    empty region directory, so the runtime must notice the incarnation
    change, drop its stale descriptors, and keep working."""
    platform = make_platform(
        sim, config=chaos_config(),
        faults=plan_of(FaultSpec(time=5.0, kind="manager_crash",
                                 duration_s=0.5)))
    lib = platform.runtime()
    fd = make_backing_file(platform)

    def proc():
        desc, err = yield from lib.mopen(256 * 1024, fd, 0)
        assert err == 0
        yield sim.timeout(8.0 - sim.now)  # ride through crash + restart
        # next call carries the new incarnation: stale descriptors drop
        desc2, err2 = yield from lib.mopen(256 * 1024, fd, 256 * 1024)
        return desc, desc2, err2

    desc, desc2, err2 = run(sim, proc())
    assert err2 == 0
    assert lib.stats.count("manager_restarts") == 1
    assert lib._entry(desc) is None, "stale descriptor survived restart"
    assert lib._entry(desc2) is not None


# -- reclaim storm -----------------------------------------------------------

def test_reclaim_storm_drains_imd_and_respawns_on_heal(sim):
    platform = make_platform(sim, faults=plan_of(
        FaultSpec(time=1.0, kind="reclaim_storm", target="mem00",
                  duration_s=2.0)))
    ws = platform.cluster["mem00"]
    imd = next(i for i in platform.imds if i.ws is ws)
    sim.run(until=2.0)
    assert ws.owner_load > 0.0
    assert imd.exited and not imd.killed        # graceful drain, not a kill
    assert "mem00" not in platform.cmd.iwd      # manager told: host is busy
    sim.run(until=4.0)
    assert ws.owner_load == 0.0
    fresh = [i for i in platform.imds if i.ws is ws and not i.exited]
    assert len(fresh) == 1 and fresh[0].epoch == imd.epoch + 1


# -- bookkeeping -------------------------------------------------------------

def test_nemesis_counts_and_audits_every_injection(sim):
    auditor = Auditor(mode="raise")
    platform = make_platform(sim, faults=plan_of(
        FaultSpec(time=1.0, kind="nic_flap", target="mem00",
                  duration_s=0.3),
        FaultSpec(time=2.0, kind="loss_burst", duration_s=0.3, value=0.1)),
        nemesis_auditor=auditor)
    sim.run(until=3.0)
    nem = platform.nemesis
    assert nem.injected == 2 and nem.healed == 2
    assert auditor.passes == 4          # one pass per injection and heal
    assert auditor.findings == []


def test_nemesis_logs_every_injection_and_heal(sim):
    from repro.obs.eventlog import EventLog, install_eventlog
    log = EventLog(level="debug")
    previous = install_eventlog(log)
    try:
        local = Simulator(seed=17)
        make_platform(local, faults=plan_of(
            FaultSpec(time=1.0, kind="host_crash", target="mem00",
                      duration_s=1.0)))
        local.run(until=3.0)
    finally:
        install_eventlog(previous)
    assert len(log.select("nemesis", "inject.host_crash")) == 1
    assert len(log.select("nemesis", "heal.host_crash")) == 1
    # the crash itself also leaves its own component-level trail
    assert len(log.select("imd", "imd.killed")) == 1


def test_faults_require_dodo_platform(sim):
    with pytest.raises(ValueError, match="dodo=True"):
        make_platform(sim, dodo=False, faults=plan_of(
            FaultSpec(time=1.0, kind="nic_flap", target="mem00",
                      duration_s=0.5)))
