"""Chaos coverage for sharded-directory failover (the PR 9 scenario).

The broad 10-seed raise-mode sweep over every scenario — ``failover``
included — lives in ``test_chaos.py``.  This file pins the properties
specific to shard failover:

* a crafted plan that crashes *every* shard primary mid-workload ends
  with zero lost or duplicated regions (raise-mode audit + replication
  divergence checks) and the run still completes its requests;
* a recorded failover plan replays byte-identically, shard targets and
  all;
* retry storms stay bounded: a serving workload riding through a
  primary crash issues a bounded number of shard retries and never
  reports an unreachable shard;
* plan-format compatibility: ``shard`` round-trips through JSON when
  present, is omitted when absent, and pre-sharding generation
  (``shards=None``) emits byte-identical plans with no shard field.
"""

import io
import json

from repro.faults.chaos import run_chaos
from repro.faults.generate import random_plan
from repro.faults.plan import FaultPlan, FaultSpec

FAILOVER_HOSTS = ["app", "mgr00", "bak00", "mgr01", "bak01",
                  "mem00", "mem01", "mem02", "mem03"]


def jsonl_bytes(eventlog) -> str:
    buf = io.StringIO()
    eventlog.dump_jsonl(buf)
    return buf.getvalue()


# -- every primary dies -------------------------------------------------------

def test_crashing_every_shard_primary_loses_nothing():
    plan = FaultPlan(events=(
        FaultSpec(4.0, "manager_crash", shard=0, duration_s=3.0),
        FaultSpec(8.0, "manager_crash", shard=1, duration_s=3.0),
    ), seed=12, experiment="failover", description="kill both primaries")
    run = run_chaos("failover", plan=plan, audit="raise")
    assert run["injected"] == 2
    assert run["healed"] == 2
    assert run["result"].requests > 0
    assert run["auditor"].passes > 0
    assert not run["auditor"].findings
    # both backups were promoted and kept their shard's directory
    platform = run["platform"]
    for sid in (0, 1):
        primary = platform.live_primary(sid)
        assert primary is not None and primary.role == "primary"


def test_failover_plan_replays_byte_identically(tmp_path):
    first = run_chaos("failover", seed=5, audit="raise")
    assert any(ev.kind == "manager_crash" and ev.shard is not None
               for ev in first["plan"])
    path = tmp_path / "failover-plan.json"
    first["plan"].write(str(path))
    replay = run_chaos("failover", plan=FaultPlan.read(str(path)),
                       audit="raise")
    assert jsonl_bytes(replay["eventlog"]) == jsonl_bytes(first["eventlog"])


def test_random_failover_plans_cover_both_shards():
    """Across the sweep's seeds the generator must target each shard —
    otherwise the 10-seed sweep silently stops testing one of them."""
    shards_hit = set()
    for seed in range(10):
        plan = random_plan(seed, FAILOVER_HOSTS, horizon_s=20.0,
                           protected=("app", "mgr00", "bak00", "mgr01",
                                      "bak01"),
                           kinds=("host_crash", "nic_flap", "loss_burst",
                                  "manager_crash"),
                           shards=2, experiment="failover")
        shards_hit |= {ev.shard for ev in plan
                       if ev.kind == "manager_crash"}
    assert shards_hit == {0, 1}


# -- bounded retry storms -----------------------------------------------------

def test_serving_rides_through_failover_with_bounded_retries():
    from repro.core.config import DodoConfig
    from repro.exp.platform import MB, Platform, PlatformParams
    from repro.sim import Simulator
    from repro.workloads.serving import ServingParams, ServingTier

    sim = Simulator(seed=17)
    params = PlatformParams(
        transport="udp", store_payload=False, n_memory_hosts=4,
        imd_pool_bytes=2 * MB, local_cache_bytes=256 * 1024,
        app_fs_cache_dodo=1 * MB, disk_capacity_bytes=256 * MB,
        shards=2, replication=True)
    cfg = DodoConfig(transport="udp", store_payload=False, dedicated=True,
                     max_pool_bytes=2 * MB, shards=2, replication=True,
                     rpc_backoff_s=0.02)
    platform = Platform(sim, params, dodo=True, config=cfg)
    tier = ServingTier(platform, ServingParams(
        n_keys=64, value_bytes=16 * 1024, arrival_rate=300.0,
        duration_s=4.0, n_workers=8, desc_cache=8))

    def crash():
        yield sim.timeout(1.5)  # mid-stream, after the load phase
        platform.cmds[0].stop()

    sim.process(crash())
    sim.run(until=sim.process(tier.run()))
    sim.run(until=sim.now + 12.0)

    assert tier.completed + tier.rejected == tier.offered
    assert tier.completed > 0
    routing = tier.shard_routing()
    # the storm is bounded: a handful of timeouts against the dead
    # primary while its backup promotes, never an exhausted shard, and
    # far fewer retries than requests
    assert routing.get("shard.unreachable", 0) == 0
    assert routing.get("shard.retry", 0) <= tier.offered
    assert not platform.audit(teardown=True)


# -- plan-format compatibility ------------------------------------------------

def test_shard_field_round_trips_when_present():
    spec = FaultSpec(3.0, "manager_crash", shard=1)
    d = spec.to_dict()
    assert d["shard"] == 1
    assert FaultSpec.from_dict(d) == spec
    plan = FaultPlan(events=(spec,), seed=1, experiment="failover")
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_shard_field_is_omitted_when_absent():
    d = FaultSpec(3.0, "manager_crash").to_dict()
    assert "shard" not in d  # pre-sharding plan JSON stays byte-stable
    assert FaultSpec.from_dict(d).shard is None


def test_unsharded_generation_emits_no_shard_fields():
    plan = random_plan(3, ["app", "mgr", "mem00", "mem01"],
                       horizon_s=20.0, experiment="fig7")
    assert all(ev.shard is None for ev in plan)
    assert "shard" not in json.dumps(plan.to_dict())
    # regeneration is byte-identical: the shards=None path must not
    # perturb the rng draw sequence old plans were generated with
    again = random_plan(3, ["app", "mgr", "mem00", "mem01"],
                        horizon_s=20.0, experiment="fig7")
    assert plan.to_json() == again.to_json()
