"""Tests for the declarative fault schedule (FaultSpec / FaultPlan)."""

import pytest

from repro.faults.plan import KINDS, FaultPlan, FaultSpec


def spec(**kw):
    defaults = dict(time=1.0, kind="host_crash", target="mem00",
                    duration_s=2.0)
    defaults.update(kw)
    return FaultSpec(**defaults)


# -- validation ---------------------------------------------------------------

def test_valid_spec_passes():
    spec().validate()


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        spec(kind="meteor_strike").validate()


def test_negative_time_rejected():
    with pytest.raises(ValueError, match="negative trigger time"):
        spec(time=-0.5).validate()


def test_non_positive_duration_rejected():
    with pytest.raises(ValueError, match="non-positive duration"):
        spec(duration_s=0.0).validate()


@pytest.mark.parametrize("kind", ["host_crash", "nic_flap",
                                  "reclaim_storm", "disk_slowdown"])
def test_target_required(kind):
    with pytest.raises(ValueError, match="needs a target host"):
        FaultSpec(time=0.0, kind=kind, value=2.0).validate()


@pytest.mark.parametrize("kind,bad", [("loss_burst", None),
                                      ("loss_burst", 1.5),
                                      ("disk_slowdown", 0.5)])
def test_value_range_enforced(kind, bad):
    with pytest.raises(ValueError, match="outside"):
        FaultSpec(time=0.0, kind=kind, target="mem00",
                  value=bad).validate()


def test_partition_needs_group():
    with pytest.raises(ValueError, match="non-empty group"):
        FaultSpec(time=0.0, kind="partition").validate()


def test_plan_validate_checks_target_existence():
    plan = FaultPlan(events=(spec(target="ghost"),))
    plan.validate()  # without a host set: fine
    with pytest.raises(ValueError, match="unknown target"):
        plan.validate(hosts={"mem00", "app"})


def test_every_kind_is_constructible():
    for kind in KINDS:
        d = {"time": 0.0, "kind": kind}
        if kind in ("host_crash", "nic_flap", "reclaim_storm",
                    "disk_slowdown"):
            d["target"] = "w0"
        if kind == "loss_burst":
            d["value"] = 0.1
        if kind == "disk_slowdown":
            d["value"] = 2.0
        if kind == "partition":
            d["group"] = ["w0"]
        FaultSpec.from_dict(d)


# -- ordering -----------------------------------------------------------------

def test_plan_sorts_events_by_time():
    plan = FaultPlan(events=(spec(time=5.0), spec(time=1.0),
                             spec(time=3.0, kind="nic_flap")))
    assert [e.time for e in plan] == [1.0, 3.0, 5.0]


def test_plan_len_and_iter():
    plan = FaultPlan(events=(spec(), spec(time=2.0)))
    assert len(plan) == 2
    assert all(isinstance(e, FaultSpec) for e in plan)


# -- serialization ------------------------------------------------------------

def test_json_round_trip_is_identity():
    plan = FaultPlan(
        events=(spec(),
                FaultSpec(time=2.0, kind="loss_burst", duration_s=1.0,
                          value=0.2),
                FaultSpec(time=3.0, kind="partition", duration_s=0.5,
                          group=("mem00", "mem01")),
                FaultSpec(time=4.0, kind="manager_crash", duration_s=1.0)),
        seed=42, experiment="fig7", description="hand-written")
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert again.seed == 42
    assert again.to_json() == plan.to_json()


def test_json_is_stable_and_diffable():
    plan = FaultPlan(events=(spec(),), seed=7)
    text = plan.to_json()
    assert text == FaultPlan.from_json(text).to_json()
    assert '"seed": 7' in text


def test_unsupported_version_rejected():
    with pytest.raises(ValueError, match="version"):
        FaultPlan.from_dict({"version": 99, "events": []})


def test_write_and_read(tmp_path):
    plan = FaultPlan(events=(spec(),), seed=3, experiment="fig7")
    path = tmp_path / "plan.json"
    plan.write(str(path))
    assert FaultPlan.read(str(path)) == plan


def test_from_dict_validates_events():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.from_dict(
            {"events": [{"time": 0.0, "kind": "nope"}]})
