"""Tests for the seed-deterministic random schedule generator."""

import pytest

from repro.faults.generate import random_plan
from repro.faults.plan import FaultPlan

HOSTS = ["app", "mgr"] + [f"mem{i:02d}" for i in range(4)]


def test_same_seed_same_plan():
    a = random_plan(7, HOSTS)
    b = random_plan(7, HOSTS)
    assert a == b
    assert a.to_json() == b.to_json()


def test_different_seeds_differ():
    plans = {random_plan(s, HOSTS).to_json() for s in range(8)}
    assert len(plans) > 1


def test_plan_embeds_seed_and_replays_from_json():
    plan = random_plan(13, HOSTS, experiment="fig7")
    again = FaultPlan.from_json(plan.to_json())
    assert again.seed == 13
    assert again == plan


def test_protected_hosts_never_targeted():
    for seed in range(20):
        plan = random_plan(seed, HOSTS, protected=("app", "mgr"))
        for ev in plan:
            if ev.kind in ("host_crash", "nic_flap", "reclaim_storm"):
                assert ev.target not in ("app", "mgr")
            if ev.kind == "partition":
                assert "app" not in ev.group and "mgr" not in ev.group


def test_per_resource_faults_do_not_overlap():
    """The busy-until map must keep contradictory faults apart: no host
    is crashed/flapped/stormed again before its current fault heals, the
    network carries one burst-or-partition at a time, etc."""
    for seed in range(20):
        plan = random_plan(seed, HOSTS, horizon_s=60.0, mean_gap_s=0.5)
        busy: dict[str, float] = {}
        for ev in plan:  # plan iterates in time order
            if ev.kind in ("host_crash", "nic_flap", "reclaim_storm"):
                key = ev.target
            elif ev.kind in ("loss_burst", "partition"):
                key = "network"
            elif ev.kind == "disk_slowdown":
                key = f"disk:{ev.target}"
            else:
                key = "manager"
            assert ev.time >= busy.get(key, 0.0), \
                f"seed {seed}: {ev.kind} at {ev.time} overlaps on {key}"
            busy[key] = ev.time + ev.duration_s


def test_kinds_filter_restricts_schedule():
    plan = random_plan(3, HOSTS, horizon_s=60.0, mean_gap_s=0.5,
                      kinds=("nic_flap",))
    assert len(plan) > 0
    assert {ev.kind for ev in plan} == {"nic_flap"}


def test_events_respect_horizon_and_start():
    plan = random_plan(5, HOSTS, horizon_s=30.0, start_s=10.0)
    for ev in plan:
        assert 10.0 <= ev.time < 30.0


def test_all_hosts_protected_leaves_global_kinds_only():
    plan = random_plan(11, ["app"], horizon_s=60.0, mean_gap_s=0.5,
                      protected=("app",))
    assert {ev.kind for ev in plan} <= {"loss_burst", "disk_slowdown",
                                        "manager_crash"}


def test_no_applicable_kinds_raises():
    with pytest.raises(ValueError, match="no applicable"):
        random_plan(1, ["app"], protected=("app",), disk_hosts=(),
                    kinds=("host_crash", "disk_slowdown"))


def test_generated_plans_validate_against_host_set():
    for seed in range(10):
        random_plan(seed, HOSTS).validate(hosts=set(HOSTS))
