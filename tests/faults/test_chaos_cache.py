"""Chaos x elastic caching: migration under reclaim storms replays.

The differential bar for the caching subsystem (docs/CACHING.md): a
non-dedicated chaos run with cost-aware eviction *and* hotspot
migration on, driven by a storm-only nemesis plan, must

* replay byte-identically per seed (event log JSONL compared), with
  the invariant auditor in ``raise`` mode — migration RPCs land inside
  the same conservation envelope as everything else;
* actually exercise the machinery (the storms force reclaims, so the
  runs record evictions and/or migrations — a vacuous pass would hide
  a silently-disabled subsystem);
* leave default runs untouched: the same plan with ``cache=None``
  produces a *different* event stream than the caching run (the
  subsystem is really on), while two ``cache=None`` runs still agree.
"""

import io

import pytest

from repro.core.config import CacheConfig
from repro.faults.chaos import run_chaos
from repro.faults.generate import random_plan

#: the nondedicated chaos scenario's topology (see chaos._run_nondedicated)
HOSTS = ["app", "mgr"] + [f"w{i}" for i in range(6)]
WARMUP = 10.0  # idle_window_s + 5.0, when the desktops are recruited


def storm_plan(seed: int):
    """A reclaim-storm-only schedule over the desktop donors."""
    return random_plan(seed, HOSTS, horizon_s=WARMUP + 20.0,
                       start_s=WARMUP, protected=("app", "mgr"),
                       kinds=("reclaim_storm",),
                       experiment="nondedicated")


def jsonl_bytes(eventlog) -> str:
    buf = io.StringIO()
    eventlog.dump_jsonl(buf)
    return buf.getvalue()


def run_storm(seed: int, cache):
    return run_chaos("nondedicated", plan=storm_plan(seed),
                     audit="raise", cache=cache)


@pytest.mark.parametrize("seed", [2, 5])
def test_migration_replays_byte_identically(seed):
    cache = CacheConfig(policy="cost-aware", migration=True)
    a = run_storm(seed, cache)
    b = run_storm(seed, cache)
    text = jsonl_bytes(a["eventlog"])
    assert text == jsonl_bytes(b["eventlog"])
    assert text.count("\n") == len(a["eventlog"].events) > 0
    assert a["result"].elapsed_s == b["result"].elapsed_s
    # the storms hit recruited donors: the cache subsystem did real work
    events = {e.event for e in a["eventlog"].events}
    assert events & {"cache.evict", "cache.migrate"}, sorted(events)[:30]
    assert a["injected"] > 0


def test_caching_run_diverges_from_default():
    """Same plan, cache on vs off: different streams (the knob bites),
    but each mode agrees with itself."""
    cache = CacheConfig(policy="cost-aware", migration=True)
    on = run_storm(3, cache)
    off_a = run_storm(3, None)
    off_b = run_storm(3, None)
    assert jsonl_bytes(off_a["eventlog"]) == jsonl_bytes(off_b["eventlog"])
    assert jsonl_bytes(on["eventlog"]) != jsonl_bytes(off_a["eventlog"])
