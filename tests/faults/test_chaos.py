"""End-to-end chaos-run tests: replayability and the nemesis sweep.

The acceptance bar for the fault subsystem:

* same seed + same plan => byte-identical event-log JSONL across runs;
* a plan exported to JSON replays the run bit-for-bit on its own;
* a 10-seed randomized sweep over both scenarios passes with the
  invariant auditor in ``raise`` mode;
* a deliberately corrupted run *fails* the audit (the oracle bites).
"""

import io

import pytest

from repro.faults.chaos import EXPERIMENTS, format_chaos, run_chaos
from repro.faults.plan import FaultPlan
from repro.obs.audit import AuditError, Auditor
from repro.sweep import SweepPoint, SweepSpec, run_sweep

SWEEP_SEEDS = range(10)


def jsonl_bytes(eventlog) -> str:
    buf = io.StringIO()
    eventlog.dump_jsonl(buf)
    return buf.getvalue()


# -- determinism --------------------------------------------------------------

@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_same_seed_gives_byte_identical_eventlog(experiment):
    a = run_chaos(experiment, seed=4)
    b = run_chaos(experiment, seed=4)
    text = jsonl_bytes(a["eventlog"])
    assert text == jsonl_bytes(b["eventlog"])
    assert text.count("\n") == len(a["eventlog"].events) > 0
    assert a["plan"] == b["plan"]
    assert a["result"].elapsed_s == b["result"].elapsed_s


def test_exported_plan_replays_bit_for_bit(tmp_path):
    first = run_chaos("fig7", seed=6)
    path = tmp_path / "plan.json"
    first["plan"].write(str(path))
    # the JSON artifact alone (its embedded seed included) replays the run
    replay = run_chaos("fig7", plan=FaultPlan.read(str(path)))
    assert replay["seed"] == 6
    assert jsonl_bytes(replay["eventlog"]) == jsonl_bytes(first["eventlog"])


def test_different_seeds_give_different_runs():
    logs = {jsonl_bytes(run_chaos("fig7", seed=s)["eventlog"])
            for s in (0, 1)}
    assert len(logs) == 2


# -- the sweep ---------------------------------------------------------------
# The multi-seed sweeps route through the parallel sweep engine
# (repro.sweep): each seed is one cacheable point, executed with the
# invariant auditor in raise mode inside the worker, so an audit
# violation surfaces as a failed point.

def _chaos_sweep(scenario):
    spec = SweepSpec(f"chaos-{scenario}", [
        SweepPoint("chaos", seed=seed, overrides={"scenario": scenario})
        for seed in SWEEP_SEEDS])
    return run_sweep(spec, jobs=2)


@pytest.mark.parametrize("scenario", EXPERIMENTS)
def test_nemesis_sweep_passes_audit(scenario):
    result = _chaos_sweep(scenario)
    failures = [f"{r.point.label()}: {r.error}"
                for r in result.runs if r.status == "failed"]
    assert not failures, failures
    for run in result.runs:
        assert run.result["audit_findings"] == 0
        assert run.result["audit_passes"] > 0
        assert run.result["injected"] == run.result["scheduled"]
        assert run.result["requests"] > 0


def test_sweep_actually_injects_faults():
    """Guard against a vacuous sweep: across the seeds the nemesis must
    exercise every fault kind at least once."""
    kinds = set()
    for run in _chaos_sweep("fig7").runs:
        kinds |= set(run.result["fault_kinds"])
    assert kinds == {"host_crash", "nic_flap", "loss_burst", "partition",
                     "reclaim_storm", "disk_slowdown", "manager_crash"}


# -- the oracle must bite -----------------------------------------------------

def test_corrupted_run_fails_the_audit():
    """A clean run whose state is then corrupted must fail: this is the
    canary proving the sweep above could ever catch anything."""
    run = run_chaos("fig7", seed=2, audit="raise")
    platform = run["platform"]
    healthy = next(ws for ws in platform.cluster.workstations.values()
                   if not ws.crashed and ws.guest_memory > 0)
    healthy.guest_memory -= 1
    with pytest.raises(AuditError, match="donation.accounting"):
        platform.audit(Auditor(mode="raise"), teardown=False)


def test_corrupted_directory_fails_the_audit():
    run = run_chaos("fig7", seed=2, audit="raise")
    platform = run["platform"]
    imd = next(i for i in platform.imds if not i.exited)
    imd._regions[999999999] = object()  # hosted but not in any directory
    with pytest.raises(AuditError):
        platform.audit(Auditor(mode="raise"), teardown=True)


# -- ergonomics ---------------------------------------------------------------

def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="unknown chaos experiment"):
        run_chaos("fig9", seed=0)


def test_format_chaos_summarizes_the_run():
    run = run_chaos("fig7", seed=1)
    text = format_chaos(run)
    assert "seed=1" in text
    assert "injected" in text and "healed" in text
    assert "audit" in text
