"""Determinism: identical seeds must reproduce identical simulations.

The evaluation methodology rests on exact A/B comparisons (baseline vs
Dodo, UDP vs U-Net, policy vs policy) where only the factor under test
differs.  That only holds if a seeded run is bit-for-bit repeatable in
virtual time and event order.
"""

import pytest

from repro.exp.platform import MB, Platform, PlatformParams
from repro.sim import Simulator
from repro.workloads import SyntheticParams, SyntheticRunner


def run_workload(seed):
    sim = Simulator(seed=seed)
    params = PlatformParams(store_payload=False).scaled(1 / 256)
    platform = Platform(sim, params, dodo=True)
    sp = SyntheticParams(pattern="random", dataset_bytes=2 * MB,
                         req_size=8192, num_iter=2, compute_s=0.002)
    runner = SyntheticRunner(platform, sp, use_dodo=True)
    res = sim.run(until=runner.run())
    return res.elapsed_s, res.iteration_s, sim.events_processed, sim.now


def test_same_seed_bitwise_identical():
    a = run_workload(seed=7)
    b = run_workload(seed=7)
    assert a == b  # elapsed, per-iteration times, event count, clock


def test_different_seed_differs():
    a = run_workload(seed=7)
    b = run_workload(seed=8)
    # random offsets differ, so the timing cannot coincide exactly
    assert a[0] != b[0]


def test_component_rng_isolation():
    """Consuming one component's stream must not shift another's."""
    sim1 = Simulator(seed=3)
    sim1.rng("owner.w0").random(1000)  # burn a foreign stream
    seq1 = sim1.rng("net.loss").random(5)

    sim2 = Simulator(seed=3)
    seq2 = sim2.rng("net.loss").random(5)
    assert (seq1 == seq2).all()


def test_run_result_steady_state_single_iteration():
    from repro.workloads import RunResult
    r = RunResult(elapsed_s=5.0, iteration_s=[5.0])
    assert r.steady_state_s == 5.0
    r2 = RunResult(elapsed_s=9.0, iteration_s=[5.0, 2.0, 2.0])
    assert r2.steady_state_s == pytest.approx(2.0)
