"""Property test: the file system's data path vs an in-memory model.

For any interleaving of writes, reads, fsyncs and layout choices, the
bytes read back must exactly match a plain ``bytearray`` model.  This
pins the whole extent/page-cache/read-modify-write machinery.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.storage import Disk, FileSystem, FsParams

FILE_SPAN = 200_000


@st.composite
def fs_script(draw):
    n = draw(st.integers(1, 25))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["write", "write", "read", "fsync"]))
        if kind == "write":
            off = draw(st.integers(0, FILE_SPAN - 1))
            length = draw(st.integers(0, 9000))
            fill = draw(st.integers(1, 255))
            ops.append(("write", off, min(length, FILE_SPAN - off), fill))
        elif kind == "read":
            off = draw(st.integers(0, FILE_SPAN + 5000))
            ops.append(("read", off, draw(st.integers(0, 9000))))
        else:
            ops.append(("fsync",))
    return ops


LAYOUTS = [
    None,
    FsParams(extent_bytes=8192, extent_gap=100_000),
    FsParams(extent_bytes=16384, scatter=True),
]


@given(ops=fs_script(), layout=st.integers(0, len(LAYOUTS) - 1),
       cache_kb=st.sampled_from([8, 64, 1024]))
@settings(max_examples=40, deadline=None)
def test_fs_matches_bytearray_model(ops, layout, cache_kb):
    sim = Simulator(seed=7)
    fs = FileSystem(sim, Disk(sim), cache_bytes=cache_kb * 1024,
                    params=LAYOUTS[layout], store_data=True)
    fh = fs.open("f", "r+")
    model = bytearray()

    def proc():
        for op in ops:
            if op[0] == "write":
                _, off, length, fill = op
                data = bytes([fill]) * length
                n = yield fs.write(fh, off, length, data)
                assert n == length
                if length > 0:  # POSIX: zero-length pwrite never extends
                    if off + length > len(model):
                        model.extend(b"\x00" * (off + length - len(model)))
                    model[off:off + length] = data
            elif op[0] == "read":
                _, off, length = op
                n, data = yield fs.read(fh, off, length)
                expect = bytes(model[off:off + length])
                assert n == len(expect)
                assert data == expect
            else:
                yield fs.fsync(fh)
        assert fh.file.size == len(model)

    p = sim.process(proc())
    sim.run(until=p)


@given(ops=fs_script())
@settings(max_examples=20, deadline=None)
def test_fs_time_always_advances_monotonically(ops):
    """Every operation takes non-negative time and the sim never stalls."""
    sim = Simulator(seed=9)
    fs = FileSystem(sim, Disk(sim), cache_bytes=64 * 1024, store_data=False)
    fh = fs.open("f", "r+")

    def proc():
        last = sim.now
        for op in ops:
            if op[0] == "write":
                yield fs.write(fh, op[1], op[2], None)
            elif op[0] == "read":
                yield fs.read(fh, op[1], op[2])
            else:
                yield fs.fsync(fh)
            assert sim.now >= last
            last = sim.now

    p = sim.process(proc())
    sim.run(until=p)
