"""Differential tests: the disk flow-level fast path vs the per-request path.

The fast path (``Disk._fast_access``) must be *byte-identical* in virtual
time to the per-request process path for every workload: same completion
instants, same service values, same stats (modulo its own ``fastpath.*``
counters), including under mid-batch contention, nemesis slowdown changes
and page-cache eviction storms.  These tests run the same seeded workload
with ``disk.fastpath`` on and off and compare everything observable.
"""

import random

import pytest

from repro.sim import Simulator
from repro.storage import Disk, FileSystem
from repro.storage.pagecache import PageCache

KB = 1024
MB = 1024 * KB


def _strip_fastpath(stats: dict) -> dict:
    return {k: v for k, v in stats.items() if not k.startswith("fastpath.")}


def make_ops(seed: int, n_ops: int, capacity: int) -> list:
    """A reproducible mixed workload: (gap_s, kind, offset, nbytes)."""
    rng = random.Random(seed * 7919 + 13)
    ops = []
    last_end = 0
    for _ in range(n_ops):
        gap = rng.choice([0.0, 0.0, 0.001, 0.02])
        kind = rng.choice(["r", "r", "w"])
        if rng.random() < 0.4:
            offset = last_end  # streaming: exercise the sequential branch
        else:
            offset = rng.randrange(0, capacity - 64 * KB)
        nbytes = rng.choice([4 * KB, 8 * KB, 32 * KB, 64 * KB])
        ops.append((gap, kind, offset, nbytes))
        last_end = offset + nbytes
    return ops


def run_disk_ops(fastpath: bool, ops, seed: int = 0, n_procs: int = 1,
                 slowdown_at=None):
    """Drive ``ops`` (round-robin over ``n_procs`` serial issuers) and
    return everything the two worlds must agree on."""
    sim = Simulator(seed=seed)
    disk = Disk(sim, "d0")
    disk.fastpath = fastpath
    completions = []

    def issuer(pid, my_ops):
        for i, (gap, kind, offset, nbytes) in my_ops:
            if gap:
                yield sim.timeout(gap)
            op = disk.read(offset, nbytes) if kind == "r" \
                else disk.write(offset, nbytes)
            service = yield op
            completions.append((i, pid, sim.now, service))

    for pid in range(n_procs):
        sim.process(issuer(pid, list(enumerate(ops))[pid::n_procs]))
    if slowdown_at is not None:
        when, factor = slowdown_at

        def degrade():
            yield sim.timeout(when)
            disk.slowdown = factor
        sim.process(degrade())
    sim.run()
    completions.sort()
    return {
        "completions": completions,
        "stats": dict(disk.stats.counters),
        "head": (disk._head, disk._last_end),
        "events": sim.events_processed,
        "fast": disk.stats.count("fastpath.batches"),
        "fallbacks": disk.stats.count("fastpath.fallbacks"),
    }


def assert_equivalent(fast, slow):
    assert fast["completions"] == slow["completions"]
    assert fast["head"] == slow["head"]
    assert _strip_fastpath(fast["stats"]) == _strip_fastpath(slow["stats"])


# -- single-request differential ---------------------------------------------

@pytest.mark.parametrize("seed", range(10))
def test_mixed_workload_identical(seed):
    """One serial issuer: every request should take the fast path, with
    completion instants and service values bit-identical."""
    ops = make_ops(seed, 40, Disk(Simulator(seed=0)).params.capacity_bytes)
    fast = run_disk_ops(True, ops, seed=seed)
    slow = run_disk_ops(False, ops, seed=seed)
    assert_equivalent(fast, slow)
    assert fast["fast"] == len(ops)  # serial issuer: arm always idle
    assert slow["fast"] == 0


@pytest.mark.parametrize("seed", range(10))
def test_contended_workload_identical(seed):
    """Three concurrent issuers: the fast path engages only on an idle
    arm and queued requests serialize exactly as before."""
    ops = make_ops(seed + 100, 45, 3_000_000_000)
    fast = run_disk_ops(True, ops, seed=seed, n_procs=3)
    slow = run_disk_ops(False, ops, seed=seed, n_procs=3)
    assert_equivalent(fast, slow)


def test_slowdown_change_identical():
    """A nemesis-style slowdown change mid-run lands on the same requests
    in both worlds (service is computed at each request's start instant)."""
    ops = make_ops(3, 30, 3_000_000_000)
    for factor in (4.0, 0.5):
        fast = run_disk_ops(True, ops, slowdown_at=(0.05, factor))
        slow = run_disk_ops(False, ops, slowdown_at=(0.05, factor))
        assert_equivalent(fast, slow)


def test_fast_path_event_count_shrinks():
    """The point of the fast path: far fewer simulator events."""
    ops = make_ops(1, 50, 3_000_000_000)
    fast = run_disk_ops(True, ops)
    slow = run_disk_ops(False, ops)
    # a process-path request costs at least one extra event (bootstrap /
    # acquire / timeout vs one boundary event) — in practice about two
    assert fast["events"] < slow["events"] - 50


# -- batch API ----------------------------------------------------------------

def _run_batch(mode: str, runs, write=False, interloper_at=None):
    """mode: 'fast' (read_batch, fastpath on), 'slow-batch' (read_batch,
    fastpath off) or 'sequential' (per-run requests, fastpath off)."""
    sim = Simulator(seed=0)
    disk = Disk(sim, "d0")
    disk.fastpath = mode == "fast"
    out = {}

    def batched():
        op = disk.write_batch(runs) if write else disk.read_batch(runs)
        out["total"] = yield op
        out["t_done"] = sim.now

    def sequential():
        total = 0.0
        for off, n in runs:
            total += yield (disk.write(off, n) if write
                            else disk.read(off, n))
        out["total"] = total
        out["t_done"] = sim.now

    sim.process(sequential() if mode == "sequential" else batched())
    if interloper_at is not None:
        def interlope():
            yield sim.timeout(interloper_at)
            service = yield disk.read(1_000_000_000, 8 * KB)
            out["interloper"] = (sim.now, service)
        sim.process(interlope())
    sim.run()
    out["stats"] = _strip_fastpath(dict(disk.stats.counters))
    out["fallbacks"] = disk.stats.count("fastpath.fallbacks")
    return out


def test_batch_matches_sequential_requests():
    """read_batch == the same runs issued one by one, to the bit."""
    rng = random.Random(42)
    runs = [(rng.randrange(0, 3_000_000_000 - MB), rng.choice([8 * KB, 64 * KB]))
            for _ in range(12)]
    # make a couple of members stream from their predecessor
    runs[3] = (runs[2][0] + runs[2][1], 8 * KB)
    runs[4] = (runs[3][0] + runs[3][1], 64 * KB)
    for write in (False, True):
        fast = _run_batch("fast", runs, write=write)
        slow = _run_batch("slow-batch", runs, write=write)
        seq = _run_batch("sequential", runs, write=write)
        assert fast["t_done"] == seq["t_done"] == slow["t_done"]
        assert fast["total"] == seq["total"] == slow["total"]
        assert fast["stats"] == seq["stats"] == slow["stats"]


def test_batch_hands_arm_to_mid_batch_waiter():
    """A request queuing mid-batch is granted the arm between members,
    exactly as on the per-request path — and the batch falls back."""
    runs = [(i * 10 * MB, 64 * KB) for i in range(10)]
    t = 0.05  # inside the batch's span
    fast = _run_batch("fast", runs, interloper_at=t)
    seq = _run_batch("sequential", runs, interloper_at=t)
    assert fast["interloper"] == seq["interloper"]
    assert fast["t_done"] == seq["t_done"]
    assert fast["stats"] == seq["stats"]
    assert fast["fallbacks"] >= 1


def test_batch_on_busy_arm_runs_as_process():
    """A batch issued while the arm is held must queue FIFO, not engage."""
    sim = Simulator(seed=0)
    disk = Disk(sim, "d0")
    order = []

    def holder():
        yield disk.read(2_000_000_000, 64 * KB)
        order.append("holder")

    def batcher():
        yield sim.timeout(0.001)  # arm already busy
        yield disk.read_batch([(0, 8 * KB), (8 * KB, 8 * KB)])
        order.append("batch")

    sim.process(holder())
    sim.process(batcher())
    sim.run()
    assert order == ["holder", "batch"]
    assert disk.stats.count("fastpath.batches") == 1  # only the holder's


def test_empty_batch_is_a_noop():
    sim = Simulator(seed=0)
    disk = Disk(sim, "d0")

    def proc():
        total = yield disk.read_batch([])
        assert total == 0.0
    p = sim.process(proc())
    sim.run(until=p)
    assert disk.stats.count("read.ops") == 0


# -- clearance ----------------------------------------------------------------

def test_tracer_disables_fast_path():
    """The process path emits per-request spans; with tracing on the fast
    path must stand down so traces stay complete."""
    from repro.obs.tracer import Tracer
    sim = Simulator(seed=0)
    sim.tracer = Tracer()
    disk = Disk(sim, "d0")

    def proc():
        yield disk.read(0, 8 * KB)
    p = sim.process(proc())
    sim.run(until=p)
    assert disk.stats.count("fastpath.batches") == 0
    assert disk.stats.count("read.ops") == 1


def test_invalid_requests_still_raise_through_process():
    sim = Simulator(seed=0)
    disk = Disk(sim, "d0")

    def proc():
        yield disk.read(disk.params.capacity_bytes - 100, 8 * KB)
    p = sim.process(proc())
    with pytest.raises(ValueError):
        sim.run(until=p)
    assert disk.stats.count("fastpath.batches") == 0


def test_fastpath_flag_disables_engagement():
    sim = Simulator(seed=0)
    disk = Disk(sim, "d0")
    disk.fastpath = False

    def proc():
        yield disk.read(0, 8 * KB)
    p = sim.process(proc())
    sim.run(until=p)
    assert disk.stats.count("fastpath.batches") == 0


# -- page cache batch insert ---------------------------------------------------

def test_insert_many_equals_sequential_inserts():
    rng = random.Random(7)
    keys = [(1, rng.randrange(0, 40)) for _ in range(200)]
    a = PageCache(capacity_bytes=16 * 4096)
    b = PageCache(capacity_bytes=16 * 4096)
    wb_a = []
    for i in range(0, len(keys), 10):
        wb_a.extend(a.insert_many(keys[i:i + 10], dirty=True))
    wb_b = []
    for key in keys:
        wb_b.extend(b.insert(key, dirty=True))
    assert wb_a == wb_b
    assert list(a._pages.items()) == list(b._pages.items())
    assert dict(a.stats.counters) == dict(b.stats.counters)


# -- file-system level differential -------------------------------------------

def run_fs_workload(fastpath: bool, seed: int):
    """A paging workload with readahead, RMW writes, eviction storms
    (tiny cache) and fsyncs — every disk access route in one run."""
    sim = Simulator(seed=seed)
    disk = Disk(sim, "d0")
    disk.fastpath = fastpath
    fs = FileSystem(sim, disk, cache_bytes=96 * KB, store_data=False)
    fs.create("data", size=2 * MB)
    rng = random.Random(seed * 31 + 5)
    marks = []

    def app():
        fh = fs.open("data", "r+")
        # sequential scan primes readahead, then random mixed I/O forces
        # eviction write-back storms through the 96 KB cache
        pos = 0
        for _ in range(20):
            n, _data = yield fs.read(fh, pos, 16 * KB)
            pos += n
            marks.append(("scan", sim.now))
        for _ in range(40):
            off = rng.randrange(0, 2 * MB - 64 * KB)
            if rng.random() < 0.5:
                yield fs.read(fh, off, rng.choice([4 * KB, 48 * KB]))
                marks.append(("read", sim.now))
            else:
                yield fs.write(fh, off + 100, rng.choice([3 * KB, 20 * KB]))
                marks.append(("write", sim.now))
            if rng.random() < 0.15:
                yield fs.fsync(fh)
                marks.append(("fsync", sim.now))
        fs.close(fh)

    p = sim.process(app())
    sim.run(until=p)
    return {
        "marks": marks,
        "t_end": sim.now,
        "fs_stats": dict(fs.stats.counters),
        "disk_stats": _strip_fastpath(dict(disk.stats.counters)),
        "cache_stats": dict(fs.cache.stats.counters),
        "events": sim.events_processed,
        "fast": disk.stats.count("fastpath.batches"),
    }


@pytest.mark.parametrize("seed", range(5))
def test_filesystem_differential(seed):
    fast = run_fs_workload(True, seed)
    slow = run_fs_workload(False, seed)
    assert fast["marks"] == slow["marks"]
    assert fast["t_end"] == slow["t_end"]
    assert fast["fs_stats"] == slow["fs_stats"]
    assert fast["disk_stats"] == slow["disk_stats"]
    assert fast["cache_stats"] == slow["cache_stats"]
    assert fast["fast"] > 0  # the fast path actually carried the run
    assert fast["events"] < slow["events"]
