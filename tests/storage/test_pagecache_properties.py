"""Unit + property tests for the page cache (LRU + dirty tracking)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import PageCache

PAGE = 4096


def test_touch_miss_then_hit():
    c = PageCache(4 * PAGE, PAGE)
    assert not c.touch((1, 0))
    c.insert((1, 0))
    assert c.touch((1, 0))
    assert c.hit_ratio() == 0.5


def test_capacity_enforced_lru_order():
    c = PageCache(2 * PAGE, PAGE)
    c.insert((1, 0))
    c.insert((1, 1))
    c.touch((1, 0))        # 1 is now LRU
    c.insert((1, 2))       # evicts (1,1)
    assert (1, 0) in c and (1, 2) in c and (1, 1) not in c


def test_dirty_eviction_reported():
    c = PageCache(1 * PAGE, PAGE)
    c.insert((1, 0), dirty=True)
    writeback = c.insert((1, 1))
    assert writeback == [(1, 0)]


def test_clean_eviction_silent():
    c = PageCache(1 * PAGE, PAGE)
    c.insert((1, 0), dirty=False)
    assert c.insert((1, 1)) == []


def test_dirty_bit_sticky_on_reinsert():
    c = PageCache(4 * PAGE, PAGE)
    c.insert((1, 0), dirty=True)
    c.insert((1, 0), dirty=False)  # re-insert must not lose dirtiness
    assert c.dirty_pages() == [(1, 0)]
    c.clean((1, 0))
    assert c.dirty_pages() == []


def test_mark_dirty_requires_resident():
    c = PageCache(4 * PAGE, PAGE)
    with pytest.raises(KeyError):
        c.mark_dirty((1, 0))
    c.insert((1, 0))
    c.mark_dirty((1, 0))
    assert c.dirty_pages(1) == [(1, 0)]
    assert c.dirty_pages(2) == []


def test_drop_discards_inode_pages():
    c = PageCache(8 * PAGE, PAGE)
    for pg in range(3):
        c.insert((1, pg), dirty=True)
    c.insert((2, 0))
    assert c.drop(1) == 3
    assert len(c) == 1
    assert c.dirty_pages() == []


def test_resize_shrink_returns_dirty():
    c = PageCache(4 * PAGE, PAGE)
    c.insert((1, 0), dirty=True)
    c.insert((1, 1))
    c.insert((1, 2))
    writeback = c.resize(1 * PAGE)
    assert (1, 0) in writeback
    assert len(c) == 1


def test_validation():
    with pytest.raises(ValueError):
        PageCache(100, page_size=0)
    with pytest.raises(ValueError):
        PageCache(-1, PAGE)


# -- property: cache behaves exactly like a model LRU dict ----------------------

@st.composite
def cache_ops(draw):
    n = draw(st.integers(1, 120))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["touch", "insert", "insert_dirty",
                                     "clean", "drop"]))
        key = (draw(st.integers(1, 3)), draw(st.integers(0, 9)))
        ops.append((kind, key))
    return ops


@given(cache_ops(), st.integers(1, 8))
@settings(max_examples=80, deadline=None)
def test_pagecache_matches_model_lru(ops, capacity_pages):
    cache = PageCache(capacity_pages * PAGE, PAGE)
    model: dict = {}  # insertion/recency-ordered: key -> dirty

    def model_touch(key):
        if key in model:
            model[key] = model.pop(key)
            return True
        return False

    for kind, key in ops:
        if kind == "touch":
            assert cache.touch(key) == model_touch(key)
        elif kind in ("insert", "insert_dirty"):
            dirty = kind == "insert_dirty"
            wb = cache.insert(key, dirty=dirty)
            if key in model:
                model[key] = model[key] or dirty
                model[key] = model.pop(key)  # move to MRU
                assert wb == []
            else:
                model[key] = dirty
                expect_wb = []
                while len(model) > capacity_pages:
                    old_key = next(iter(model))
                    if model.pop(old_key):
                        expect_wb.append(old_key)
                assert wb == expect_wb
        elif kind == "clean":
            cache.clean(key)
            if key in model:
                model[key] = False
        elif kind == "drop":
            inode = key[0]
            dropped = cache.drop(inode)
            doomed = [k for k in model if k[0] == inode]
            assert dropped == len(doomed)
            for k in doomed:
                del model[k]

        # invariants after every step
        assert len(cache) == len(model) <= capacity_pages
        assert set(cache.dirty_pages()) == {k for k, d in model.items() if d}
        for k in model:
            assert k in cache
