"""Tests for the file system: namespace, data path, readahead, write-back."""

import pytest

from repro.sim import Simulator
from repro.storage import Disk, FileSystem, FsError, FsParams


@pytest.fixture
def sim():
    return Simulator(seed=2)


def make_fs(sim, cache_kb=512, store_data=True, params=None):
    return FileSystem(sim, Disk(sim), cache_bytes=cache_kb * 1024,
                      params=params, store_data=store_data)


def run(sim, gen):
    p = sim.process(gen)
    return sim.run(until=p)


def test_create_open_close(sim):
    fs = make_fs(sim)
    fs.create("f", size=1000)
    assert fs.exists("f")
    fh = fs.open("f")
    assert fh.fd >= 3 and not fh.writable
    fs.close(fh)
    assert fs.handle(fh.fd) is None


def test_create_duplicate_rejected(sim):
    fs = make_fs(sim)
    fs.create("f")
    with pytest.raises(FsError, match="exists"):
        fs.create("f")


def test_open_missing_readonly_fails(sim):
    fs = make_fs(sim)
    with pytest.raises(FsError, match="no such file"):
        fs.open("ghost")


def test_open_missing_rw_creates(sim):
    fs = make_fs(sim)
    fh = fs.open("newfile", "r+")
    assert fs.exists("newfile")
    assert fh.writable


def test_bad_mode_rejected(sim):
    fs = make_fs(sim)
    fs.create("f")
    with pytest.raises(FsError, match="bad mode"):
        fs.open("f", "w")


def test_write_then_read_roundtrip(sim):
    fs = make_fs(sim)
    fh = fs.open("f", "r+")
    blob = bytes(range(256)) * 40  # 10 240 B

    def proc():
        n = yield fs.write(fh, 0, len(blob), blob)
        assert n == len(blob)
        count, data = yield fs.read(fh, 0, len(blob))
        return count, data

    count, data = run(sim, proc())
    assert count == len(blob)
    assert data == blob


def test_write_at_offset_extends_file(sim):
    fs = make_fs(sim)
    fh = fs.open("f", "r+")

    def proc():
        yield fs.write(fh, 5000, 100, b"y" * 100)
        count, data = yield fs.read(fh, 4990, 120)
        return count, data

    count, data = run(sim, proc())
    assert fh.file.size == 5100
    assert count == 110  # only 110 bytes exist past 4990
    assert data[:10] == b"\x00" * 10
    assert data[10:] == b"y" * 100


def test_read_past_eof_returns_zero(sim):
    fs = make_fs(sim)
    fs.create("f", size=100)
    fh = fs.open("f")

    def proc():
        count, _ = yield fs.read(fh, 200, 50)
        return count

    assert run(sim, proc()) == 0


def test_short_read_at_eof(sim):
    fs = make_fs(sim)
    fs.create("f", size=100)
    fh = fs.open("f")

    def proc():
        count, _ = yield fs.read(fh, 80, 50)
        return count

    assert run(sim, proc()) == 20


def test_write_to_readonly_fd_fails(sim):
    fs = make_fs(sim)
    fs.create("f", size=10)
    fh = fs.open("f")

    def proc():
        yield fs.write(fh, 0, 5, b"xxxxx")

    with pytest.raises(FsError, match="not open for writing"):
        run(sim, proc())


def test_io_on_closed_fd_fails(sim):
    fs = make_fs(sim)
    fs.create("f", size=10)
    fh = fs.open("f")
    fs.close(fh)

    def proc():
        yield fs.read(fh, 0, 5)

    with pytest.raises(FsError, match="not open"):
        run(sim, proc())


def test_data_length_mismatch_rejected(sim):
    fs = make_fs(sim)
    fh = fs.open("f", "r+")

    def proc():
        yield fs.write(fh, 0, 10, b"short")

    with pytest.raises(FsError, match="len"):
        run(sim, proc())


def test_partial_page_overwrite_preserves_neighbors(sim):
    """Read-modify-write: bytes around an unaligned write must survive."""
    fs = make_fs(sim)
    fh = fs.open("f", "r+")

    def proc():
        yield fs.write(fh, 0, 8192, b"a" * 8192)
        yield fs.write(fh, 100, 50, b"b" * 50)
        _, data = yield fs.read(fh, 0, 8192)
        return data

    data = run(sim, proc())
    assert data[:100] == b"a" * 100
    assert data[100:150] == b"b" * 50
    assert data[150:] == b"a" * (8192 - 150)


def test_cached_reread_is_fast(sim):
    fs = make_fs(sim, cache_kb=1024)
    fs.create("f", size=64 * 1024)
    fh = fs.open("f")

    def proc():
        t0 = sim.now
        yield fs.read(fh, 0, 64 * 1024)
        cold = sim.now - t0
        t0 = sim.now
        yield fs.read(fh, 0, 64 * 1024)
        warm = sim.now - t0
        return cold, warm

    cold, warm = run(sim, proc())
    assert warm < cold / 5


def test_sequential_scan_triggers_readahead(sim):
    fs = make_fs(sim, cache_kb=2048, store_data=False)
    fs.create("f", size=1 << 20)
    fh = fs.open("f")

    def proc():
        for off in range(0, 1 << 20, 8192):
            yield fs.read(fh, off, 8192)

    run(sim, proc())
    # With batched readahead the disk sees far fewer ops than requests.
    assert fs.disk.stats.count("read.ops") < 40
    assert fh.file.ra_window > 0


def test_random_access_resets_readahead(sim):
    fs = make_fs(sim, store_data=False)
    fs.create("f", size=1 << 20)
    fh = fs.open("f")

    def proc():
        yield fs.read(fh, 0, 8192)
        yield fs.read(fh, 8192, 8192)          # sequential: window grows
        assert fh.file.ra_window > 0
        yield fs.read(fh, 500 * 1024, 8192)    # jump: window reset
        return fh.file.ra_window

    assert run(sim, proc()) == 0


def test_eviction_writes_back_dirty_pages(sim):
    fs = make_fs(sim, cache_kb=64, store_data=False)  # tiny cache
    fh = fs.open("f", "r+")

    def proc():
        for off in range(0, 256 * 1024, 4096):
            yield fs.write(fh, off, 4096, None)

    run(sim, proc())
    assert fs.disk.stats.count("write.ops") > 0
    assert fs.stats.count("writeback.bytes") > 0


def test_fsync_flushes_all_dirty(sim):
    fs = make_fs(sim, cache_kb=1024, store_data=False)
    fh = fs.open("f", "r+")

    def proc():
        yield fs.write(fh, 0, 32 * 1024, None)
        before = fs.disk.stats.count("write.bytes")
        yield fs.fsync(fh)
        return before, fs.disk.stats.count("write.bytes")

    before, after = run(sim, proc())
    assert before == 0          # write-back: nothing hit the disk yet
    assert after >= 32 * 1024   # fsync pushed it all
    assert fs.cache.dirty_pages(fh.inode) == []


def test_fsync_idempotent(sim):
    fs = make_fs(sim, store_data=False)
    fh = fs.open("f", "r+")

    def proc():
        yield fs.write(fh, 0, 8192, None)
        yield fs.fsync(fh)
        mid = fs.disk.stats.count("write.bytes")
        yield fs.fsync(fh)
        return mid, fs.disk.stats.count("write.bytes")

    mid, after = run(sim, proc())
    assert mid == after  # second fsync had nothing to write


def test_unlink_drops_cache_pages(sim):
    fs = make_fs(sim, store_data=False)
    fs.create("f", size=16 * 1024)
    fh = fs.open("f")

    def proc():
        yield fs.read(fh, 0, 16 * 1024)

    run(sim, proc())
    assert len(fs.cache) > 0
    fs.unlink("f")
    assert len(fs.cache) == 0
    with pytest.raises(FsError):
        fs.unlink("f")


def test_fragmented_layout_has_many_extents(sim):
    params = FsParams(extent_bytes=64 * 1024, extent_gap=1 << 20)
    fs = make_fs(sim, store_data=False, params=params)
    f = fs.create("frag", size=1 << 20)
    assert len(f.extents) == 16
    # extents are separated by gaps (not contiguous on disk)
    gaps = [f.extents[i + 1].disk_off - (f.extents[i].disk_off +
                                         f.extents[i].length)
            for i in range(len(f.extents) - 1)]
    assert any(g > 0 for g in gaps)


def test_fragmented_sequential_slower_than_contiguous(sim):
    """Fragmentation must cost seeks — the dmine baseline effect."""
    def scan_time(params):
        s = Simulator(seed=3)
        fs = FileSystem(s, Disk(s), cache_bytes=256 * 1024, params=params,
                        store_data=False)
        fs.create("f", size=2 << 20)
        fh = fs.open("f")

        def proc():
            for off in range(0, 2 << 20, 128 * 1024):
                yield fs.read(fh, off, 128 * 1024)

        p = s.process(proc())
        s.run(until=p)
        return s.now

    t_contig = scan_time(None)
    t_gap = scan_time(FsParams(extent_bytes=128 * 1024, extent_gap=8 << 20))
    t_scatter = scan_time(FsParams(extent_bytes=128 * 1024, scatter=True))
    assert t_gap > t_contig * 1.2
    assert t_scatter > t_contig * 1.8


def test_scatter_requires_extent_bytes(sim):
    fs = make_fs(sim, store_data=False, params=FsParams(scatter=True))
    with pytest.raises(FsError, match="extent_bytes"):
        fs.create("f", size=1000)


def test_scattered_data_roundtrip(sim):
    """Data integrity must hold regardless of on-disk layout."""
    fs = make_fs(sim, params=FsParams(extent_bytes=8 * 1024, scatter=True))
    fh = fs.open("f", "r+")
    blob = bytes(i * 7 % 256 for i in range(40_000))

    def proc():
        yield fs.write(fh, 0, len(blob), blob)
        _, data = yield fs.read(fh, 0, len(blob))
        return data

    assert run(sim, proc()) == blob


def test_inodes_are_unique(sim):
    fs = make_fs(sim)
    a = fs.create("a")
    b = fs.create("b")
    assert a.inode != b.inode


def test_zero_byte_ops(sim):
    fs = make_fs(sim)
    fh = fs.open("f", "r+")

    def proc():
        n = yield fs.write(fh, 0, 0, b"")
        count, _ = yield fs.read(fh, 0, 0)
        return n, count

    assert run(sim, proc()) == (0, 0)


def test_negative_offset_rejected(sim):
    fs = make_fs(sim)
    fs.create("f", size=10)
    fh = fs.open("f")

    def proc():
        yield fs.read(fh, -1, 5)

    with pytest.raises(FsError, match="bad read range"):
        run(sim, proc())
