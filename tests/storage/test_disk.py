"""Tests for the mechanical disk model."""

import pytest

from repro.sim import Simulator
from repro.storage import Disk, DiskParams


@pytest.fixture
def sim():
    return Simulator(seed=0)


@pytest.fixture
def disk(sim):
    return Disk(sim, "d0")


def do_io(sim, disk, ops):
    """Run a list of ('r'|'w', offset, nbytes) ops; return total time."""
    def proc():
        for kind, off, n in ops:
            if kind == "r":
                yield disk.read(off, n)
            else:
                yield disk.write(off, n)
    p = sim.process(proc())
    sim.run(until=p)
    return sim.now


def test_single_read_includes_positioning(sim, disk):
    t = do_io(sim, disk, [("r", 1_000_000_000, 8192)])
    p = disk.params
    assert t > p.avg_rotational_latency_s  # seek + rotation dominate


def test_sequential_read_skips_positioning(sim, disk):
    do_io(sim, disk, [("r", 0, 8192)])
    t0 = sim.now
    do_io(sim, disk, [("r", 8192, 8192)])
    t_seq = sim.now - t0
    # streaming: just overhead + transfer
    expected = disk.params.overhead_s + 8192 / disk.params.media_rate
    assert t_seq == pytest.approx(expected)


def test_seek_time_monotone_in_distance(disk):
    d1 = disk.seek_time(1_000_000, write=False)
    d2 = disk.seek_time(100_000_000, write=False)
    d3 = disk.seek_time(3_000_000_000, write=False)
    assert 0 < d1 < d2 <= d3


def test_seek_time_capped_at_max(disk):
    p = disk.params
    assert disk.seek_time(p.capacity_bytes, write=False) <= p.seek_max_read_s
    assert disk.seek_time(p.capacity_bytes, write=True) <= p.seek_max_write_s


def test_zero_distance_seek_is_free(disk):
    assert disk.seek_time(0, write=False) == 0.0


def test_writes_slower_than_reads_on_average(disk):
    d = 1_000_000_000
    assert disk.seek_time(d, write=True) > disk.seek_time(d, write=False)


def test_out_of_range_io_rejected(sim, disk):
    def proc():
        yield disk.read(disk.params.capacity_bytes - 100, 8192)
    p = sim.process(proc())
    with pytest.raises(ValueError):
        sim.run(until=p)


def test_zero_byte_io_rejected(sim, disk):
    def proc():
        yield disk.read(0, 0)
    p = sim.process(proc())
    with pytest.raises(ValueError):
        sim.run(until=p)


def test_arm_serializes_concurrent_requests(sim, disk):
    """Two requests issued together must be served one after the other."""
    times = []

    def proc(off):
        yield disk.read(off, 8192)
        times.append(sim.now)

    sim.process(proc(0))
    sim.process(proc(1_000_000_000))
    sim.run()
    assert times[1] > times[0]
    assert times[1] >= times[0] + disk.params.avg_rotational_latency_s


def test_stats_recorded(sim, disk):
    do_io(sim, disk, [("r", 0, 4096), ("w", 8192, 4096)])
    assert disk.stats.count("read.ops") == 1
    assert disk.stats.count("write.ops") == 1
    assert disk.stats.count("read.bytes") == 4096


def test_rotation_time_from_rpm():
    p = DiskParams(rpm=5400)
    assert p.rotation_s == pytest.approx(60.0 / 5400)
    assert p.avg_rotational_latency_s == pytest.approx(60.0 / 5400 / 2)
