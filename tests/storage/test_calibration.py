"""Calibration against the measured disk figures of Section 5.1.

The paper reports, for the Quantum Fireball ST3.2A through the Linux file
system: 7.75 MB/s for sequential 8 KB/32 KB reads, 0.57 MB/s for random
8 KB reads and 1.56 MB/s for random 32 KB reads.  The whole evaluation's
shape rests on these three numbers, so we pin the model to them within
±20%.
"""

import pytest

from repro.sim import Simulator
from repro.storage import Disk, FileSystem, FsParams

# The microbenchmark file spans most of the disk, as whole-disk random
# access did in the original measurement; seek distance matters.
FILE_MB = 2048


def make_fs(sim, cache_mb=8, store_data=False):
    disk = Disk(sim, "d0")
    fs = FileSystem(sim, disk, cache_bytes=cache_mb * 1024 * 1024,
                    store_data=store_data)
    fs.create("data", size=FILE_MB * 1024 * 1024)
    return fs


def measured_bandwidth(sim, fs, req_size, pattern, total_bytes=16 << 20):
    fh = fs.open("data")
    rng = sim.rng("bench")
    fsize = fh.file.size
    n_req = total_bytes // req_size
    start = None

    def proc():
        nonlocal start
        start = sim.now
        off = 0
        for i in range(n_req):
            if pattern == "seq":
                offset = off
                off += req_size
                if off + req_size > fsize:
                    off = 0
            else:
                offset = int(rng.integers(0, fsize - req_size) // 4096 * 4096)
            yield fs.read(fh, offset, req_size)

    p = sim.process(proc())
    sim.run(until=p)
    return total_bytes / (sim.now - start)


def test_sequential_8k_near_7_75_mbs():
    sim = Simulator()
    bw = measured_bandwidth(sim, make_fs(sim), 8192, "seq")
    assert 7.75e6 * 0.8 < bw < 7.75e6 * 1.25, f"seq 8K: {bw/1e6:.2f} MB/s"


def test_sequential_32k_near_7_75_mbs():
    sim = Simulator()
    bw = measured_bandwidth(sim, make_fs(sim), 32768, "seq")
    assert 7.75e6 * 0.8 < bw < 7.75e6 * 1.25, f"seq 32K: {bw/1e6:.2f} MB/s"


def test_random_8k_near_0_57_mbs():
    sim = Simulator()
    bw = measured_bandwidth(sim, make_fs(sim), 8192, "rand",
                            total_bytes=4 << 20)
    assert 0.57e6 * 0.8 < bw < 0.57e6 * 1.2, f"rand 8K: {bw/1e6:.2f} MB/s"


def test_random_32k_near_1_56_mbs():
    sim = Simulator()
    bw = measured_bandwidth(sim, make_fs(sim), 32768, "rand",
                            total_bytes=8 << 20)
    assert 1.56e6 * 0.8 < bw < 1.56e6 * 1.2, f"rand 32K: {bw/1e6:.2f} MB/s"


def test_ordering_matches_paper():
    """rand8K < rand32K < seq, the ordering everything else depends on."""
    sim = Simulator()
    fs = make_fs(sim)
    r8 = measured_bandwidth(sim, fs, 8192, "rand", total_bytes=2 << 20)
    r32 = measured_bandwidth(sim, fs, 32768, "rand", total_bytes=4 << 20)
    sq = measured_bandwidth(sim, fs, 8192, "seq", total_bytes=8 << 20)
    assert r8 < r32 < sq
