"""Tests for USocket semantics and the paper-named Figure-6 API."""

import pytest

from repro.net import SocketClosed, USocketAPI
from repro.sim import Simulator

from repro.testing import make_net


def test_ephemeral_ports_unique():
    sim = Simulator()
    net = make_net(sim)
    a = net.udp["alpha"].socket()
    b = net.udp["alpha"].socket()
    assert a.port != b.port


def test_explicit_port_conflict_rejected():
    sim = Simulator()
    net = make_net(sim)
    net.udp["alpha"].socket(port=7)
    with pytest.raises(ValueError):
        net.udp["alpha"].socket(port=7)


def test_send_requires_destination():
    sim = Simulator()
    net = make_net(sim)
    sock = net.udp["alpha"].socket()
    with pytest.raises(ValueError):
        sock.send(10)


def test_connect_sets_default_destination():
    sim = Simulator()
    net = make_net(sim)
    rx = net.udp["beta"].socket(port=9)
    tx = net.udp["alpha"].socket()
    tx.connect("beta", 9)

    def proc():
        yield tx.send(3, payload=b"hey")
        d = yield rx.recv()
        return d.payload

    assert sim.run(until=sim.process(proc())) == b"hey"


def test_oversized_datagram_rejected():
    sim = Simulator()
    net = make_net(sim)
    udp = net.udp["alpha"].socket()
    unet = net.unet["alpha"].socket()
    with pytest.raises(ValueError):
        udp.send(64 * 1024 + 1, dst=("beta", 9))
    with pytest.raises(ValueError):
        unet.send(1473, dst=("beta", 9))


def test_recv_timeout_returns_none():
    sim = Simulator()
    net = make_net(sim)
    sock = net.udp["alpha"].socket()

    def proc():
        d = yield sock.recv(timeout=0.5)
        return d, sim.now

    d, t = sim.run(until=sim.process(proc()))
    assert d is None
    assert t == pytest.approx(0.5)
    assert sock.stats.count("rx.timeouts") == 1


def test_recv_timeout_does_not_eat_later_datagram():
    """A datagram arriving after a timed-out recv goes to the next recv."""
    sim = Simulator()
    net = make_net(sim)
    rx = net.udp["beta"].socket(port=9)
    tx = net.udp["alpha"].socket()

    def sender():
        yield sim.timeout(1.0)
        yield tx.send(2, payload=b"ok", dst=("beta", 9))

    def receiver():
        first = yield rx.recv(timeout=0.1)
        second = yield rx.recv(timeout=5.0)
        return first, second.payload

    sim.process(sender())
    first, payload = sim.run(until=sim.process(receiver()))
    assert first is None and payload == b"ok"


def test_recvbuf_overflow_drops():
    sim = Simulator()
    net = make_net(sim)
    rx = net.udp["beta"].socket(port=9, recvbuf=10000)
    tx = net.udp["alpha"].socket()

    def sender():
        for _ in range(3):  # 3 x 8 KB > 10 KB buffer, nobody consuming
            yield tx.send(8192, dst=("beta", 9))

    sim.process(sender())
    sim.run()
    assert rx.stats.count("rx.dropped.buffer_full") == 2
    assert len(rx._queue) == 1


def test_close_unbinds_and_completes_pending_recv():
    sim = Simulator()
    net = make_net(sim)
    sock = net.udp["alpha"].socket(port=5)
    out = {}

    def receiver():
        out["val"] = yield sock.recv()

    def closer():
        yield sim.timeout(1.0)
        sock.close()

    sim.process(receiver())
    sim.process(closer())
    sim.run()
    assert out["val"] is None
    assert net.udp["alpha"].socket_for_port(5) is None


def test_send_recv_on_closed_socket_raise():
    sim = Simulator()
    net = make_net(sim)
    sock = net.udp["alpha"].socket()
    sock.close()
    with pytest.raises(SocketClosed):
        sock.send(1, dst=("beta", 9))
    with pytest.raises(SocketClosed):
        sock.recv()
    sock.close()  # idempotent


def test_send_iovec_concatenates():
    sim = Simulator()
    net = make_net(sim)
    rx = net.udp["beta"].socket(port=9)
    tx = net.udp["alpha"].socket()

    def proc():
        yield tx.send_iovec([b"ab", b"cd", b"ef"], dst=("beta", 9))
        d = yield rx.recv()
        return d.payload

    assert sim.run(until=sim.process(proc())) == b"abcdef"


# -- Figure-6 wrapper API -----------------------------------------------------

def test_api_socket_lifecycle():
    sim = Simulator()
    net = make_net(sim)
    api = USocketAPI(net.udp["alpha"])
    fd = api.u_socket(4096, 4096)
    assert fd >= 3
    assert api.u_close(fd) == 0
    assert api.u_close(fd) == -1


def test_api_aton_ntoa_roundtrip():
    assert USocketAPI.u_ntoa(USocketAPI.u_aton("beta")) == "beta"


def test_api_bind_connect_send_recv():
    sim = Simulator()
    net = make_net(sim)
    alpha = USocketAPI(net.udp["alpha"])
    beta = USocketAPI(net.udp["beta"])
    sfd = beta.u_socket(4096, 4096)
    assert beta.u_bind(sfd, 2001) == 0
    cfd = alpha.u_socket(4096, 4096)
    assert alpha.u_connect(cfd, "beta", 2001) == 0

    def proc():
        yield alpha.u_send(cfd, b"payload")
        data, src = yield beta.u_recv(sfd, 100)
        return data, src

    data, src = sim.run(until=sim.process(proc()))
    assert data == b"payload" and src == "alpha"


def test_api_bind_conflict_and_bad_fd():
    sim = Simulator()
    net = make_net(sim)
    api = USocketAPI(net.udp["alpha"])
    fd1 = api.u_socket(64, 64)
    fd2 = api.u_socket(64, 64)
    assert api.u_bind(fd1, 2100) == 0
    assert api.u_bind(fd2, 2100) == -1
    assert api.u_bind(999, 2200) == -1
    assert api.u_connect(999, "beta", 1) == -1


def test_api_recv_truncates_to_length():
    sim = Simulator()
    net = make_net(sim)
    alpha = USocketAPI(net.udp["alpha"])
    beta = USocketAPI(net.udp["beta"])
    sfd = beta.u_socket(4096, 4096)
    beta.u_bind(sfd, 2002)
    cfd = alpha.u_socket(4096, 4096)
    alpha.u_connect(cfd, "beta", 2002)

    def proc():
        yield alpha.u_send(cfd, b"0123456789")
        data, _ = yield beta.u_recv(sfd, 4)
        return data

    assert sim.run(until=sim.process(proc())) == b"0123"


def test_api_recv_iovec_scatter():
    sim = Simulator()
    net = make_net(sim)
    alpha = USocketAPI(net.udp["alpha"])
    beta = USocketAPI(net.udp["beta"])
    sfd = beta.u_socket(4096, 4096)
    beta.u_bind(sfd, 2003)
    cfd = alpha.u_socket(4096, 4096)
    alpha.u_connect(cfd, "beta", 2003)

    def proc():
        yield alpha.u_send_iovec(cfd, [b"abc", b"defg"])
        bufs, src = yield beta.u_recv_iovec(sfd, [3, 4])
        return bufs, src

    bufs, src = sim.run(until=sim.process(proc()))
    assert bufs == [b"abc", b"defg"] and src == "alpha"


def test_api_recv_timeout():
    sim = Simulator()
    net = make_net(sim)
    api = USocketAPI(net.udp["alpha"])
    fd = api.u_socket(64, 64)

    def proc():
        data, src = yield api.u_recv(fd, 10, timeout=0.25)
        return data, src, sim.now

    data, src, t = sim.run(until=sim.process(proc()))
    assert data is None and src is None and t == pytest.approx(0.25)
