"""Shared fixtures for net tests.

:class:`TinyNet` and :func:`make_net` live in :mod:`repro.testing`
(shared with benchmarks and the chaos harness); this file only binds
them to pytest fixtures (and re-exports them for older imports).
"""

import pytest

from repro.testing import TinyNet, make_net  # noqa: F401

from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1234)


@pytest.fixture
def net(sim):
    return TinyNet(sim, ["alpha", "beta", "gamma"])
