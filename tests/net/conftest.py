"""Shared fixtures: a tiny two/three-host network without the cluster layer."""

import pytest

from repro.net import NIC, Network, TransportEndpoint, transport_params
from repro.sim import Simulator


class TinyNet:
    """A bare network of named hosts with both transports on each."""

    def __init__(self, sim, hosts, loss=0.0):
        self.sim = sim
        self.network = Network(sim)
        self.nics = {}
        self.udp = {}
        self.unet = {}
        for name in hosts:
            nic = NIC(sim, name)
            self.network.attach(nic)
            self.nics[name] = nic
            self.udp[name] = TransportEndpoint(
                sim, nic, self.network, transport_params("udp", loss))
            self.unet[name] = TransportEndpoint(
                sim, nic, self.network, transport_params("unet", loss))


@pytest.fixture
def sim():
    return Simulator(seed=1234)


@pytest.fixture
def net(sim):
    return TinyNet(sim, ["alpha", "beta", "gamma"])


def make_net(sim, hosts=("alpha", "beta"), loss=0.0):
    return TinyNet(sim, list(hosts), loss=loss)
