"""Tests for the RPC control-plane layer."""

import pytest

from repro.net import RpcClient, RpcRemoteError, RpcServer, RpcTimeout
from repro.sim import Simulator

from repro.testing import make_net


def make_pair(sim, net, handlers, server_host="beta", port=50):
    ssock = net.udp[server_host].socket(port=port)
    server = RpcServer(ssock, handlers, name="test")
    server.start()
    csock = net.udp["alpha"].socket()
    return RpcClient(csock), server, (server_host, port)


def test_simple_call_roundtrip():
    sim = Simulator()
    net = make_net(sim)
    client, _, dst = make_pair(sim, net, {
        "add": lambda args, src: {"sum": args["a"] + args["b"]}})

    def proc():
        result = yield from client.call(dst, "add", {"a": 2, "b": 3})
        return result

    assert sim.run(until=sim.process(proc())) == {"sum": 5}


def test_unknown_method_raises_remote_error():
    sim = Simulator()
    net = make_net(sim)
    client, _, dst = make_pair(sim, net, {})

    def proc():
        yield from client.call(dst, "nope")

    with pytest.raises(RpcRemoteError, match="no such method"):
        sim.run(until=sim.process(proc()))


def test_handler_exception_propagates_as_remote_error():
    sim = Simulator()
    net = make_net(sim)

    def boom(args, src):
        raise ValueError("bad input")

    client, server, dst = make_pair(sim, net, {"boom": boom})

    def proc():
        yield from client.call(dst, "boom")

    with pytest.raises(RpcRemoteError, match="ValueError: bad input"):
        sim.run(until=sim.process(proc()))
    assert server.stats.count("handler_errors") == 1


def test_generator_handler_does_simulated_io():
    sim = Simulator()
    net = make_net(sim)

    def slow(args, src):
        yield sim.timeout(0.5)
        return {"when": sim.now}

    client, _, dst = make_pair(sim, net, {"slow": slow})

    def proc():
        result = yield from client.call(dst, "slow", timeout=2.0)
        return result

    result = sim.run(until=sim.process(proc()))
    assert result["when"] >= 0.5


def test_call_to_dead_host_times_out():
    sim = Simulator()
    net = make_net(sim)
    csock = net.udp["alpha"].socket()
    client = RpcClient(csock)

    def proc():
        yield from client.call(("beta", 50), "x", timeout=0.01, retries=3)

    with pytest.raises(RpcTimeout):
        sim.run(until=sim.process(proc()))
    assert client.stats.count("calls.sent") == 3


def test_retry_succeeds_under_loss():
    sim = Simulator(seed=3)
    net = make_net(sim, loss=0.3)  # drop ~30% of single-frame datagrams
    calls = []

    def ping(args, src):
        calls.append(args["n"])
        return {"pong": args["n"]}

    client, _, dst = make_pair(sim, net, {"ping": ping})

    def proc():
        results = []
        for n in range(10):
            r = yield from client.call(dst, "ping", {"n": n},
                                       timeout=0.02, retries=30)
            results.append(r["pong"])
        return results

    assert sim.run(until=sim.process(proc())) == list(range(10))


def test_duplicate_requests_not_reexecuted():
    """Retried requests must replay the cached reply, not rerun the handler."""
    sim = Simulator(seed=5)
    net = make_net(sim, loss=0.4)
    executions = []

    def alloc(args, src):
        executions.append(args["n"])
        return {"ok": True}

    client, server, dst = make_pair(sim, net, {"alloc": alloc})

    def proc():
        for n in range(8):
            yield from client.call(dst, "alloc", {"n": n},
                                   timeout=0.02, retries=50)

    sim.run(until=sim.process(proc()))
    # Each logical call executed exactly once despite retries.
    assert executions == list(range(8))
    # The server observed those retries as duplicates and counted them,
    # while every logical call still produced exactly one execution.
    assert server.stats.count("served") == 8
    assert server.stats.count("duplicates") > 0
    assert client.stats.count("calls.ok") == 8
    # With 40% loss at least one attempt went unanswered.
    assert client.stats.count("calls.retried") > 0
    assert client.stats.count("calls.sent") \
        == 8 + client.stats.count("calls.retried")


def test_retry_counters_without_loss_stay_zero():
    sim = Simulator()
    net = make_net(sim)
    client, server, dst = make_pair(sim, net, {
        "ping": lambda args, src: {}})

    def proc():
        for _ in range(3):
            yield from client.call(dst, "ping")

    sim.run(until=sim.process(proc()))
    assert client.stats.count("calls.sent") == 3
    assert client.stats.count("calls.ok") == 3
    assert client.stats.count("calls.retried") == 0
    assert client.stats.count("calls.timeout") == 0
    assert server.stats.count("duplicates") == 0


def test_duplicate_of_inflight_request_is_dropped():
    """A retry that lands while the original is still executing must not
    produce a second reply; the client's later retry replays the cache."""
    sim = Simulator()
    net = make_net(sim)
    executions = []

    def slow(args, src):
        executions.append(sim.now)
        yield sim.timeout(0.5)  # much longer than the client timeout
        return {"done": True}

    client, server, dst = make_pair(sim, net, {"slow": slow})

    def proc():
        result = yield from client.call(dst, "slow", timeout=0.05,
                                        retries=20)
        return result

    assert sim.run(until=sim.process(proc())) == {"done": True}
    assert len(executions) == 1
    assert server.stats.count("served") == 1
    # Every retry beyond the first send was suppressed as a duplicate.
    assert server.stats.count("duplicates") \
        == client.stats.count("calls.sent") - 1
    assert client.stats.count("calls.retried") > 0


def test_server_stop_ends_loop():
    sim = Simulator()
    net = make_net(sim)
    client, server, dst = make_pair(sim, net, {"x": lambda a, s: {}})

    def proc():
        yield from client.call(dst, "x")
        server.stop()
        with pytest.raises(RpcTimeout):
            yield from client.call(dst, "x", timeout=0.01, retries=2)
        return True

    assert sim.run(until=sim.process(proc())) is True


def test_double_start_rejected():
    sim = Simulator()
    net = make_net(sim)
    _, server, _ = make_pair(sim, net, {})
    with pytest.raises(RuntimeError):
        server.start()


def test_concurrent_clients():
    sim = Simulator()
    net = make_net(sim, hosts=("alpha", "beta", "gamma"))

    def echo(args, src):
        return {"from": src[0], "v": args["v"]}

    ssock = net.udp["gamma"].socket(port=50)
    RpcServer(ssock, {"echo": echo}).start()

    results = {}

    def caller(host, v):
        def proc():
            client = RpcClient(net.udp[host].socket())
            r = yield from client.call(("gamma", 50), "echo", {"v": v})
            results[host] = r
        return proc()

    pa = sim.process(caller("alpha", 1))
    pb = sim.process(caller("beta", 2))
    sim.run(until=pa)
    sim.run(until=pb)
    assert results["alpha"] == {"from": "alpha", "v": 1}
    assert results["beta"] == {"from": "beta", "v": 2}
