"""Edge cases across the network stack: loss corners, crashed endpoints,
handler failures, loopback."""

import pytest

from repro.net import Chunk, Datagram, RpcClient, RpcRemoteError, RpcServer
from repro.sim import Simulator

from repro.testing import make_net


def test_burst_with_all_chunks_lost_is_dropped_whole():
    sim = Simulator(seed=1)
    net = make_net(sim, loss=0.999)  # effectively everything dies
    rx = net.unet["beta"].socket(port=9)
    tx = net.unet["alpha"].socket()
    chunks = tuple(Chunk(i, 100) for i in range(3))

    def sender():
        yield tx.send(300, payload={"kind": "bulk_data"}, chunks=chunks,
                      dst=("beta", 9))

    sim.process(sender())
    sim.run()
    assert len(rx._queue) == 0
    assert net.network.stats.count("loss.bursts_total") >= 1


def test_partial_burst_loss_delivers_survivors():
    """Force exactly one chunk loss by probing the rng stream."""
    # find a seed where, with p=0.5 per chunk, some but not all survive
    for seed in range(20):
        sim = Simulator(seed=seed)
        net = make_net(sim)
        # craft per-chunk drop decisions through the real path:
        net.udp["alpha"].params = net.udp["alpha"].params.__class__(
            **{**net.udp["alpha"].params.__dict__, "frame_loss_prob": 0.5})
        rx = net.udp["beta"].socket(port=9)
        tx = net.udp["alpha"].socket()
        chunks = tuple(Chunk(i, 100) for i in range(4))

        def sender():
            yield tx.send(400, payload={"kind": "bulk_data"},
                          chunks=chunks, dst=("beta", 9))

        sim.process(sender())
        sim.run()
        if len(rx._queue) == 1:
            d = rx._queue.get().value
            if 0 < len(d.lost) < 4:
                survivors = d.delivered_chunks()
                assert {c.seq for c in survivors} \
                    == set(range(4)) - set(d.lost)
                assert d.size == 100 * len(survivors)
                return
    pytest.fail("never produced a partial loss")


def test_crashed_sender_drops_transmission():
    sim = Simulator(seed=2)
    net = make_net(sim)
    tx = net.udp["alpha"].socket()
    net.nics["alpha"].down = True

    def sender():
        yield tx.send(100, dst=("beta", 9))

    sim.process(sender())
    sim.run()
    assert net.network.stats.count("tx.dropped.src_down") == 1


def test_loopback_same_host():
    """A host can message itself through the switch."""
    sim = Simulator(seed=3)
    net = make_net(sim)
    rx = net.udp["alpha"].socket(port=9)
    tx = net.udp["alpha"].socket()

    def proc():
        yield tx.send(4, payload=b"self", dst=("alpha", 9))
        d = yield rx.recv()
        return d.payload

    assert sim.run(until=sim.process(proc())) == b"self"


def test_rpc_generator_handler_failing_after_yield():
    """An exception after simulated work still becomes an error reply."""
    sim = Simulator(seed=4)
    net = make_net(sim)

    def flaky(args, src):
        yield sim.timeout(0.1)
        raise RuntimeError("late failure")

    ssock = net.udp["beta"].socket(port=50)
    server = RpcServer(ssock, {"flaky": flaky})
    server.start()
    client = RpcClient(net.udp["alpha"].socket())

    def proc():
        try:
            yield from client.call(("beta", 50), "flaky", timeout=1.0)
        except RpcRemoteError as exc:
            return str(exc)

    msg = sim.run(until=sim.process(proc()))
    assert "late failure" in msg
    assert server.stats.count("handler_errors") == 1


def test_datagram_negative_size_rejected():
    with pytest.raises(ValueError):
        Datagram(src="a", sport=1, dst="b", dport=2, size=-1)


def test_api_bad_fd_send_raises():
    from repro.net import USocketAPI
    sim = Simulator(seed=5)
    net = make_net(sim)
    api = USocketAPI(net.udp["alpha"])
    with pytest.raises(ValueError):
        api.u_send(99, b"x")
    with pytest.raises(ValueError):
        api.u_recv(99, 10)


def test_send_truncates_to_length_argument():
    from repro.net import USocketAPI
    sim = Simulator(seed=6)
    net = make_net(sim)
    alpha, beta = USocketAPI(net.udp["alpha"]), USocketAPI(net.udp["beta"])
    sfd = beta.u_socket(1024, 1024)
    beta.u_bind(sfd, 60)
    cfd = alpha.u_socket(1024, 1024)
    alpha.u_connect(cfd, "beta", 60)

    def proc():
        yield alpha.u_send(cfd, b"0123456789", length=4)
        data, _ = yield beta.u_recv(sfd, 100)
        return data

    assert sim.run(until=sim.process(proc())) == b"0123"
