"""Property-based tests of the bulk blast protocol.

The invariant under test: for any transfer size, transport, window and
(survivable) loss rate, the receiver assembles exactly the sender's
bytes, in order, exactly once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import BulkParams, recv_bulk, send_bulk
from repro.sim import Simulator

from repro.testing import make_net


def transfer(seed, size, transport, loss, pregrant, recvbuf=128 * 1024):
    sim = Simulator(seed=seed)
    net = make_net(sim, loss=loss)
    eps = net.udp if transport == "udp" else net.unet
    tx = eps["alpha"].socket()
    rx = eps["beta"].socket(port=9, recvbuf=recvbuf)
    blob = bytes((i * 31 + seed) % 256 for i in range(size))
    params = BulkParams(ack_timeout_s=0.02, max_attempts=20)

    receiver = sim.process(recv_bulk(rx, params=params,
                                     pregranted=pregrant))

    def sender():
        window = rx.recvbuf if pregrant else None
        yield sim.process(send_bulk(tx, ("beta", 9), size, data=blob,
                                    params=params, window=window))

    sim.process(sender())
    result = sim.run(until=receiver)
    assert result is not None, "transfer died"
    data, total, _ = result
    return blob, data, total


@given(size=st.integers(0, 200_000),
       transport=st.sampled_from(["udp", "unet"]),
       pregrant=st.booleans(),
       seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_lossless_transfer_integrity(size, transport, pregrant, seed):
    blob, data, total = transfer(seed, size, transport, 0.0, pregrant)
    assert total == size
    assert data == blob


@given(size=st.integers(1, 60_000),
       pregrant=st.booleans(),
       loss=st.floats(0.005, 0.03),
       seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_lossy_unet_transfer_integrity(size, pregrant, loss, seed):
    blob, data, total = transfer(seed, size, "unet", loss, pregrant)
    assert total == size
    assert data == blob


@given(recvbuf=st.sampled_from([2048, 8192, 64 * 1024, 512 * 1024]),
       size=st.integers(1, 120_000),
       seed=st.integers(0, 20))
@settings(max_examples=15, deadline=None)
def test_window_sizes_do_not_affect_integrity(recvbuf, size, seed):
    blob, data, total = transfer(seed, size, "unet", 0.0, True,
                                 recvbuf=recvbuf)
    assert data == blob


def test_tiny_window_forces_many_blasts():
    """A 2 KB window over U-Net means one chunk per blast — the protocol
    must still deliver, one stop-and-wait round per chunk."""
    blob, data, total = transfer(3, 20_000, "unet", 0.0, True,
                                 recvbuf=2048)
    assert data == blob
