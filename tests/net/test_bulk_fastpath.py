"""Differential tests for the flow-level bulk fast path.

The fast path is an *optimization*, not a model change: on every
configuration where it engages, the transfer must deliver byte-identical
payloads at virtual times bit-identical to the packet-by-packet path, and
on every configuration it cannot handle it must disengage and leave the
packet path's behavior untouched.  These tests run the same transfer with
``fastpath=True`` and ``fastpath=False`` and compare everything.
"""

import pytest

from repro.net import BulkError, BulkParams, recv_bulk, send_bulk
from repro.sim import Simulator
from repro.sim.errors import SimulationError

from repro.testing import make_net

MB = 1024 * 1024

SIZES = [0, 1, 1471, 1472, 100_000, 1_000_000]


def run_transfer(fastpath, size, transport="udp", data=None, loss=0.0,
                 seed=1234, recvbuf=256 * 1024, pregranted=False,
                 window=None, nic_down_at=None, down_host="beta",
                 nic_up_at=None, burst=None, start_at=0.0,
                 bulk_params=None):
    """One bulk transfer; returns everything observable about it.

    Fault knobs: ``nic_down_at`` / ``nic_up_at`` flap ``down_host``'s
    NIC; ``burst=(t_on, t_off, p)`` injects an extra frame-loss burst on
    the fabric (nemesis-style); ``start_at`` delays the transfer itself
    so it can begin before, during, or after a fault window.
    """
    sim = Simulator(seed=seed)
    net = make_net(sim, loss=loss)
    eps = net.udp if transport == "udp" else net.unet
    tx = eps["alpha"].socket()
    rx = eps["beta"].socket(port=77, recvbuf=recvbuf)
    params = bulk_params or BulkParams(fastpath=fastpath)
    out = {}

    if pregranted and window is None:
        window = recvbuf

    def sender():
        yield sim.timeout(start_at)
        try:
            sent = yield sim.process(send_bulk(
                tx, ("beta", 77), size, data=data, params=params,
                window=window))
        except BulkError as exc:
            out["sender_error"] = str(exc)
            sent = None
        out["sent"] = sent
        out["t_tx"] = sim.now

    def receiver():
        yield sim.timeout(start_at)
        result = yield sim.process(recv_bulk(
            rx, first_timeout=5.0, params=params, pregranted=pregranted))
        out["received"] = result
        out["t_rx"] = sim.now

    if nic_down_at is not None:
        def killer():
            yield sim.timeout(nic_down_at)
            net.nics[down_host].down = True
            if nic_up_at is not None:
                yield sim.timeout(nic_up_at - nic_down_at)
                net.nics[down_host].down = False
        sim.process(killer())

    if burst is not None:
        t_on, t_off, p = burst

        def bursting():
            yield sim.timeout(t_on)
            net.network.extra_loss_prob = p
            if t_off is not None:
                yield sim.timeout(t_off - t_on)
                net.network.extra_loss_prob = 0.0
        sim.process(bursting())

    sim.process(sender())
    sim.process(receiver())
    sim.run(until=30.0)
    out["events"] = sim.events_processed
    out["fast_transfers"] = net.network.stats.count("fastpath.transfers")
    out["fast_fallbacks"] = net.network.stats.count("fastpath.fallbacks")
    out["fast_aborts"] = net.network.stats.count("fastpath.aborts")
    return out


def assert_equivalent(fast, pkt):
    """The observable outcome must match the packet path exactly."""
    assert fast["sent"] == pkt["sent"]
    assert fast["t_tx"] == pkt["t_tx"], \
        f"sender completion differs: {fast['t_tx']!r} != {pkt['t_tx']!r}"
    assert fast["t_rx"] == pkt["t_rx"], \
        f"receiver completion differs: {fast['t_rx']!r} != {pkt['t_rx']!r}"
    assert fast["received"] == pkt["received"]


# ---------------------------------------------------------------------------
# Identity on eligible configurations
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("transport", ["udp", "unet"])
@pytest.mark.parametrize("size", SIZES)
def test_times_and_bytes_identical_handshake(transport, size):
    data = bytes(i % 251 for i in range(size))
    fast = run_transfer(True, size, transport=transport, data=data)
    pkt = run_transfer(False, size, transport=transport, data=data)
    assert_equivalent(fast, pkt)
    assert fast["received"][0] == data
    assert fast["fast_transfers"] == 1 and fast["fast_fallbacks"] == 0
    assert pkt["fast_transfers"] == 0


@pytest.mark.parametrize("transport", ["udp", "unet"])
@pytest.mark.parametrize("size", SIZES)
def test_times_and_bytes_identical_pregranted(transport, size):
    data = bytes(i % 253 for i in range(size))
    fast = run_transfer(True, size, transport=transport, data=data,
                        pregranted=True)
    pkt = run_transfer(False, size, transport=transport, data=data,
                       pregranted=True)
    assert_equivalent(fast, pkt)
    assert fast["fast_transfers"] == 1


@pytest.mark.parametrize("transport,recvbuf", [
    ("unet", 8 * 1024),     # many small blasts
    ("udp", 64 * 1024),     # window of exactly one chunk
    ("udp", 256 * 1024),
    ("unet", 256 * 1024),
    ("udp", 1 * MB),        # whole transfer in one blast
])
def test_identical_across_window_sizes(transport, recvbuf):
    size = 300_000
    data = bytes(i % 256 for i in range(size))
    for pregranted in (False, True):
        fast = run_transfer(True, size, transport=transport, data=data,
                            recvbuf=recvbuf, pregranted=pregranted)
        pkt = run_transfer(False, size, transport=transport, data=data,
                           recvbuf=recvbuf, pregranted=pregranted)
        assert_equivalent(fast, pkt)
        assert fast["fast_transfers"] == 1


@pytest.mark.parametrize("seed", [0, 7, 20260806])
def test_identical_across_seeds_metadata_mode(seed):
    fast = run_transfer(True, 500_000, seed=seed)
    pkt = run_transfer(False, 500_000, seed=seed)
    assert_equivalent(fast, pkt)
    assert fast["received"][0] is None  # metadata mode carries no bytes


def test_fast_path_event_count_is_constant_in_size():
    """O(1) events per transfer: the whole point of the fast path."""
    small = run_transfer(True, 10_000)
    large = run_transfer(True, 5 * MB)
    assert large["fast_transfers"] == 1
    assert large["events"] == small["events"]
    pkt = run_transfer(False, 5 * MB)
    assert pkt["events"] > 20 * large["events"]


# ---------------------------------------------------------------------------
# Disengagement: the fast path must refuse what it cannot model
# ---------------------------------------------------------------------------

def test_fallback_under_frame_loss():
    data = bytes(i % 251 for i in range(300_000))
    fast = run_transfer(True, len(data), data=data, loss=0.02, seed=7)
    pkt = run_transfer(False, len(data), data=data, loss=0.02, seed=7)
    assert fast["fast_transfers"] == 0 and fast["fast_fallbacks"] >= 1
    assert_equivalent(fast, pkt)  # identical because the same path ran
    assert fast["received"][0] == data


def test_fallback_on_window_mismatch():
    """A pre-granted window that is not the receiver's recvbuf is a stale
    grant; the fast path must not trust it."""
    size = 200_000
    data = bytes(i % 256 for i in range(size))
    fast = run_transfer(True, size, data=data, pregranted=True,
                        recvbuf=256 * 1024, window=64 * 1024)
    pkt = run_transfer(False, size, data=data, pregranted=True,
                       recvbuf=256 * 1024, window=64 * 1024)
    assert fast["fast_transfers"] == 0 and fast["fast_fallbacks"] >= 1
    assert_equivalent(fast, pkt)


def test_fallback_when_receiver_absent():
    sim = Simulator()
    net = make_net(sim)
    tx = net.udp["alpha"].socket()
    params = BulkParams(ack_timeout_s=0.01, max_attempts=3, fastpath=True)

    def sender():
        yield sim.process(send_bulk(tx, ("beta", 99), 1000, params=params))

    p = sim.process(sender())
    with pytest.raises(BulkError, match="no window"):
        sim.run(until=p)
    assert net.network.stats.count("fastpath.fallbacks") >= 1


def test_fallback_under_receiver_contention():
    """Two simultaneous transfers into one host: neither may engage (the
    closed form cannot model their interleaving on the RX engine)."""
    def run(fastpath):
        sim = Simulator(seed=5)
        net = make_net(sim, hosts=("alpha", "beta", "gamma"))
        params = BulkParams(fastpath=fastpath)
        size = 400_000
        socks = {
            "alpha": net.udp["alpha"].socket(),
            "gamma": net.udp["gamma"].socket(),
        }
        rx1 = net.udp["beta"].socket(port=71, recvbuf=256 * 1024)
        rx2 = net.udp["beta"].socket(port=72, recvbuf=256 * 1024)
        out = {}

        def send_from(host, port):
            yield sim.process(send_bulk(socks[host], ("beta", port), size,
                                        params=params))
            out[f"t_{host}"] = sim.now

        def recv_on(rx, key):
            result = yield sim.process(recv_bulk(rx, first_timeout=5.0,
                                                 params=params))
            out[key] = (result, sim.now)

        sim.process(send_from("alpha", 71))
        sim.process(send_from("gamma", 72))
        sim.process(recv_on(rx1, "r1"))
        sim.process(recv_on(rx2, "r2"))
        sim.run(until=30.0)
        out["fast"] = net.network.stats.count("fastpath.transfers")
        return out

    fast = run(True)
    pkt = run(False)
    assert fast["fast"] == 0  # both transfers must have fallen back
    assert fast == pkt or {k: v for k, v in fast.items() if k != "fast"} \
        == {k: v for k, v in pkt.items() if k != "fast"}


def test_abort_when_receiver_nic_goes_down_mid_transfer():
    """A mid-flight NIC failure must fire the transfer's abort: the sender
    dies with BulkError and the receiver gives up, like the packet path."""
    fast = run_transfer(True, 5 * MB, nic_down_at=0.05)
    assert fast["fast_transfers"] == 1
    assert fast["fast_aborts"] >= 1
    assert "aborted" in fast.get("sender_error", "")
    assert fast["received"] is None
    pkt = run_transfer(False, 5 * MB, nic_down_at=0.05)
    assert "sender_error" in pkt and pkt["received"] is None


def test_abort_when_sender_nic_goes_down_mid_transfer():
    fast = run_transfer(True, 5 * MB, nic_down_at=0.05, down_host="alpha")
    assert fast["fast_transfers"] == 1
    assert fast["fast_aborts"] >= 1
    assert fast["received"] is None


def test_nic_down_before_start_prevents_engagement():
    fast = run_transfer(True, 100_000, nic_down_at=0.0)
    assert fast["fast_transfers"] == 0
    assert fast["received"] is None


# ---------------------------------------------------------------------------
# Injected faults (nemesis-style): loss bursts and mid-transfer NIC flaps
# ---------------------------------------------------------------------------

def test_fastpath_disengages_under_injected_loss_burst():
    """An active loss burst means the wire is not lossless: the fast path
    must fall back, and then behave exactly like the packet path (same
    seed, same loss draws) down to the byte and the tick."""
    data = bytes(i % 251 for i in range(300_000))
    burst = (0.0, None, 0.02)
    fast = run_transfer(True, len(data), data=data, burst=burst, seed=9)
    pkt = run_transfer(False, len(data), data=data, burst=burst, seed=9)
    assert fast["fast_transfers"] == 0 and fast["fast_fallbacks"] >= 1
    assert_equivalent(fast, pkt)
    assert fast["received"][0] == data  # survived the burst, byte-identical


def test_fastpath_reengages_after_burst_heals():
    """The heal must fully restore the fast path: a transfer starting
    after the burst window engages and still matches the packet path."""
    data = bytes(i % 253 for i in range(200_000))
    burst = (0.0, 0.02, 0.3)
    fast = run_transfer(True, len(data), data=data, burst=burst,
                        start_at=0.05)
    pkt = run_transfer(False, len(data), data=data, burst=burst,
                       start_at=0.05)
    assert fast["fast_transfers"] == 1 and fast["fast_fallbacks"] == 0
    assert_equivalent(fast, pkt)
    assert fast["received"][0] == data


def test_burst_arriving_mid_transfer_never_corrupts_payload():
    """A burst that begins while the transfer is in flight: whatever path
    ran, a completed transfer must deliver exactly the payload (loss may
    slow it down or kill it, never truncate it silently)."""
    data = bytes(i % 256 for i in range(1_000_000))
    for fastpath in (True, False):
        out = run_transfer(fastpath, len(data), data=data,
                           burst=(0.01, 0.2, 0.2), seed=3)
        if out["received"] is not None and out["received"][0] is not None:
            assert out["received"][0] == data
        else:
            assert "sender_error" in out or out["sent"] is None


def test_midtransfer_nic_flap_differential():
    """A short flap mid-transfer: the fast path aborts loudly (its plan
    cannot survive a downed NIC), the packet path rides it out via NACK
    retries — and whichever completes must deliver identical bytes."""
    data = bytes(i % 249 for i in range(2_000_000))
    recover = BulkParams(fastpath=False, ack_timeout_s=0.05,
                         max_attempts=20)
    pkt = run_transfer(False, len(data), data=data, nic_down_at=0.05,
                       nic_up_at=0.12, bulk_params=recover)
    assert pkt["received"][0] == data, "packet path should ride out a flap"

    fast = run_transfer(True, len(data), data=data, nic_down_at=0.05,
                        nic_up_at=0.12,
                        bulk_params=BulkParams(fastpath=True,
                                               ack_timeout_s=0.05,
                                               max_attempts=20))
    assert fast["fast_transfers"] == 1
    assert fast["fast_aborts"] >= 1
    # loud failure, never silent corruption
    assert "aborted" in fast.get("sender_error", "")
    assert fast["received"] is None


def test_flap_before_transfer_forces_packet_path_then_recovers():
    """NIC down at engagement time: no fast path; once the flap heals a
    new transfer engages again."""
    during = run_transfer(True, 100_000, nic_down_at=0.0, nic_up_at=10.0)
    assert during["fast_transfers"] == 0
    after = run_transfer(True, 100_000, nic_down_at=0.0, nic_up_at=0.01,
                         start_at=0.02)
    assert after["fast_transfers"] == 1


def test_partition_prevents_fastpath_and_heal_restores_it():
    """A network cut between the endpoints: clearance must refuse (the
    closed form would teleport bytes across the cut); healing restores
    engagement."""
    def run_with_cut(fastpath, heal_at=None, start_at=0.0):
        sim = Simulator(seed=21)
        net = make_net(sim)
        net.network.set_partition([["alpha"], ["beta"]])
        tx = net.udp["alpha"].socket()
        rx = net.udp["beta"].socket(port=77, recvbuf=256 * 1024)
        params = BulkParams(fastpath=fastpath, ack_timeout_s=0.02,
                            max_attempts=3)
        out = {}

        if heal_at is not None:
            def healer():
                yield sim.timeout(heal_at)
                net.network.clear_partition()
            sim.process(healer())

        def sender():
            yield sim.timeout(start_at)
            try:
                out["sent"] = yield sim.process(send_bulk(
                    tx, ("beta", 77), 100_000,
                    data=bytes(100_000), params=params))
            except BulkError as exc:
                out["sender_error"] = str(exc)

        def receiver():
            yield sim.timeout(start_at)
            out["received"] = yield sim.process(recv_bulk(
                rx, first_timeout=0.5, params=params))

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=10.0)
        out["fast"] = net.network.stats.count("fastpath.transfers")
        out["fallbacks"] = net.network.stats.count("fastpath.fallbacks")
        out["dropped"] = net.network.stats.count("rx.dropped.partitioned")
        return out

    cut = run_with_cut(True)
    assert cut["fast"] == 0 and cut["fallbacks"] >= 1
    assert cut["received"] is None and "sender_error" in cut
    assert cut["dropped"] > 0
    pkt = run_with_cut(False)
    assert pkt["received"] is None and "sender_error" in pkt

    healed = run_with_cut(True, heal_at=0.01, start_at=0.02)
    assert healed["fast"] == 1
    assert healed["sent"] == 100_000


# ---------------------------------------------------------------------------
# Supporting machinery
# ---------------------------------------------------------------------------

def test_simulator_at_fires_at_exact_absolute_time():
    sim = Simulator()
    seen = {}

    def proc():
        yield sim.timeout(0.1)
        # absolute scheduling must not drift: now + (when - now) is not
        # always when in float arithmetic, which is why at() exists
        yield sim.at(0.3)
        seen["t"] = sim.now

    sim.process(proc())
    sim.run()
    assert seen["t"] == 0.3


def test_simulator_at_rejects_past_times():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        with pytest.raises(SimulationError):
            sim.at(0.5)

    sim.run(until=sim.process(proc()))


def test_config_toggle_controls_fastpath():
    from repro.core.config import DodoConfig
    on = DodoConfig(bulk_fastpath=True)
    off = DodoConfig(bulk_fastpath=False)
    assert on.bulk_params().fastpath is True
    assert off.bulk_params().fastpath is False
    # the default BulkParams inside the config is reused when it agrees
    assert on.bulk_params() is on.bulk


def test_partition_is_zero_copy():
    from repro.net.bulk import _partition
    blob = bytearray(b"z" * 10_000)
    chunks = _partition(len(blob), blob, 1472)
    assert all(isinstance(c.data, memoryview) for c in chunks)
    assert b"".join(c.data for c in chunks) == bytes(blob)
