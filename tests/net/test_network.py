"""Tests for the switch/link fabric and NIC demux."""

import pytest

from repro.net import Chunk, Datagram, LinkParams, UDP_PARAMS
from repro.sim import Simulator

from repro.testing import make_net


def run_send(sim, net, src, dst, size, payload=b""):
    sock_tx = net.udp[src].socket()
    sock_rx = net.udp[dst].socket(port=9)

    result = {}

    def sender():
        yield sock_tx.send(size, payload=payload, dst=(dst, 9))

    def receiver():
        d = yield sock_rx.recv()
        result["dgram"] = d
        result["time"] = sim.now

    sim.process(sender())
    p = sim.process(receiver())
    sim.run(until=p)
    return result


def test_datagram_delivered_with_payload():
    sim = Simulator()
    net = make_net(sim)
    res = run_send(sim, net, "alpha", "beta", 5, b"hello")
    assert res["dgram"].payload == b"hello"
    assert res["dgram"].src == "alpha"


def test_delivery_time_scales_with_size():
    sim1 = Simulator()
    t_small = run_send(sim1, make_net(sim1), "alpha", "beta", 100)["time"]
    sim2 = Simulator()
    t_large = run_send(sim2, make_net(sim2), "alpha", "beta", 60000)["time"]
    assert t_large > t_small
    # 60 KB at 100 Mb/s is ~4.8 ms of wire time; delivery must exceed that.
    assert t_large > 60000 * 8 / 100e6


def test_8k_read_latency_in_expected_band():
    """An 8 KB UDP datagram should take ~1 ms end to end (calibration)."""
    sim = Simulator()
    t = run_send(sim, make_net(sim), "alpha", "beta", 8192)["time"]
    assert 0.7e-3 < t < 1.6e-3


def test_unknown_destination_dropped():
    sim = Simulator()
    net = make_net(sim)
    sock = net.udp["alpha"].socket()

    def sender():
        yield sock.send(10, dst=("nonexistent", 9))

    sim.process(sender())
    sim.run()
    assert net.network.stats.count("rx.dropped.dst_down") == 1


def test_down_nic_drops_traffic():
    sim = Simulator()
    net = make_net(sim)
    net.nics["beta"].down = True
    sock = net.udp["alpha"].socket()
    rx = net.udp["beta"].socket(port=9)

    def sender():
        yield sock.send(10, dst=("beta", 9))

    sim.process(sender())
    sim.run()
    assert len(rx._queue) == 0


def test_unbound_port_drops():
    sim = Simulator()
    net = make_net(sim)
    sock = net.udp["alpha"].socket()

    def sender():
        yield sock.send(10, dst=("beta", 4242))

    sim.process(sender())
    sim.run()
    assert net.nics["beta"].stats.count("rx.dropped.no_port") == 1


def test_transports_demux_independently():
    sim = Simulator()
    net = make_net(sim)
    udp_rx = net.udp["beta"].socket(port=9)
    unet_rx = net.unet["beta"].socket(port=9)
    udp_tx = net.udp["alpha"].socket()
    unet_tx = net.unet["alpha"].socket()

    def sender():
        yield udp_tx.send(4, payload=b"udp!", dst=("beta", 9))
        yield unet_tx.send(5, payload=b"unet!", dst=("beta", 9))

    sim.process(sender())
    sim.run()
    assert udp_rx._queue.get().value.payload == b"udp!"
    assert unet_rx._queue.get().value.payload == b"unet!"


def test_sender_tx_serializes_concurrent_sends():
    """Two large sends from one host must not overlap on the TX link."""
    sim = Simulator()
    net = make_net(sim)
    rx = net.udp["beta"].socket(port=9, recvbuf=1 << 20)
    tx = net.udp["alpha"].socket()
    times = []

    def sender():
        yield tx.send(60000, dst=("beta", 9))
        yield tx.send(60000, dst=("beta", 9))

    def receiver():
        for _ in range(2):
            yield rx.recv()
            times.append(sim.now)

    sim.process(sender())
    p = sim.process(receiver())
    sim.run(until=p)
    wire = 60000 * 8 / 100e6
    assert times[1] - times[0] >= wire * 0.9


def test_receiver_rx_contention_from_two_senders():
    sim = Simulator()
    net = make_net(sim, hosts=("alpha", "beta", "gamma"))
    rx = net.udp["gamma"].socket(port=9, recvbuf=1 << 20)
    times = []

    def sender(host):
        def proc():
            sock = net.udp[host].socket()
            yield sock.send(60000, dst=("gamma", 9))
        return proc()

    def receiver():
        for _ in range(2):
            yield rx.recv()
            times.append(sim.now)

    sim.process(sender("alpha"))
    sim.process(sender("beta"))
    p = sim.process(receiver())
    sim.run(until=p)
    wire = 60000 * 8 / 100e6
    # Second arrival must queue behind the first on gamma's RX link.
    assert times[1] - times[0] >= wire * 0.9


def test_burst_datagram_chunk_accounting():
    chunks = (Chunk(0, 100), Chunk(1, 100), Chunk(2, 50))
    d = Datagram(src="a", sport=1, dst="b", dport=2, size=250, chunks=chunks)
    assert d.is_burst and d.count == 3
    assert [c.seq for c in d.delivered_chunks()] == [0, 1, 2]


def test_burst_size_mismatch_rejected():
    with pytest.raises(ValueError):
        Datagram(src="a", sport=1, dst="b", dport=2, size=999,
                 chunks=(Chunk(0, 100),))


def test_chunk_data_length_must_match_size():
    with pytest.raises(ValueError):
        Chunk(0, 5, b"too long for five")


def test_frames_for_respects_mtu():
    sim = Simulator()
    net = make_net(sim)
    assert net.network.frames_for(0) == 1
    assert net.network.frames_for(1000) == 1
    assert net.network.frames_for(1500) == 2
    assert net.network.frames_for(64 * 1024) == 45


def test_link_params_wire_time():
    link = LinkParams()
    one = link.frame_time(1472)
    assert one == pytest.approx((1472 + 46) * 8 / 100e6)
    assert link.wire_time(2944, 2) == pytest.approx(2 * one)


def test_attach_duplicate_host_rejected():
    sim = Simulator()
    net = make_net(sim)
    from repro.net import NIC
    with pytest.raises(ValueError):
        net.network.attach(NIC(sim, "alpha"))
