"""Tests for the bulk blast / selective-NACK protocol (paper Section 4.4)."""

import pytest

from repro.net import BulkError, BulkParams, recv_bulk, send_bulk
from repro.sim import Simulator

from repro.testing import make_net


def run_transfer(sim, net, transport="udp", size=100_000, data=None,
                 loss=0.0, params=None):
    eps = net.udp if transport == "udp" else net.unet
    tx = eps["alpha"].socket()
    rx = eps["beta"].socket(port=77, recvbuf=256 * 1024)
    kwargs = {"params": params} if params else {}

    done = {}

    def sender():
        sent = yield sim.process(
            send_bulk(tx, ("beta", 77), size, data=data, **kwargs))
        done["sender_time"] = sim.now
        return sent

    def receiver():
        result = yield sim.process(recv_bulk(rx, **kwargs))
        return result

    sp = sim.process(sender())
    rp = sim.process(receiver())
    out = sim.run(until=rp)
    sim.run(until=sp)
    return sp.value, out, done["sender_time"]


def test_metadata_transfer_lossless():
    sim = Simulator()
    net = make_net(sim)
    sent, received, _ = run_transfer(sim, net, size=100_000)
    assert sent == 100_000
    data, total, sender = received
    assert data is None and total == 100_000 and sender[0] == "alpha"


def test_payload_transfer_delivers_exact_bytes_udp():
    sim = Simulator()
    net = make_net(sim)
    blob = bytes(range(256)) * 1000  # 256 000 B, multiple blasts
    sent, received, _ = run_transfer(sim, net, size=len(blob), data=blob)
    assert sent == len(blob)
    assert received[0] == blob


def test_payload_transfer_delivers_exact_bytes_unet():
    sim = Simulator()
    net = make_net(sim)
    blob = b"dodo" * 25_000  # 100 000 B, many 1472-byte chunks
    sent, received, _ = run_transfer(sim, net, transport="unet",
                                  size=len(blob), data=blob)
    assert received[0] == blob


def test_zero_length_transfer():
    sim = Simulator()
    net = make_net(sim)
    sent, received, _ = run_transfer(sim, net, size=0, data=b"")
    assert sent == 0
    assert received[0] == b"" and received[1] == 0


def test_single_chunk_transfer():
    sim = Simulator()
    net = make_net(sim)
    sent, received, _ = run_transfer(sim, net, size=100, data=b"x" * 100)
    assert received[0] == b"x" * 100


def test_transfer_survives_frame_loss_udp():
    sim = Simulator(seed=7)
    net = make_net(sim, loss=0.02)
    blob = bytes(i % 251 for i in range(300_000))
    sent, received, _ = run_transfer(sim, net, size=len(blob), data=blob)
    assert received[0] == blob
    # With 2% frame loss a 64 KB chunk (45 frames) is dropped with
    # probability ~0.6, so chunks must have been lost and recovered via
    # selective NACK for the data to arrive intact.
    assert net.network.stats.count("loss.chunks") > 0 or \
        net.network.stats.count("loss.datagrams") > 0


def test_transfer_survives_heavy_loss_unet():
    sim = Simulator()
    net = make_net(sim, loss=0.05)
    blob = bytes(i % 256 for i in range(50_000))
    sent, received, _ = run_transfer(sim, net, transport="unet",
                                  size=len(blob), data=blob)
    assert received[0] == blob


def test_sender_fails_when_receiver_absent():
    sim = Simulator()
    net = make_net(sim)
    tx = net.udp["alpha"].socket()
    params = BulkParams(ack_timeout_s=0.01, max_attempts=3)

    def sender():
        yield sim.process(
            send_bulk(tx, ("beta", 99), 1000, params=params))

    p = sim.process(sender())
    with pytest.raises(BulkError, match="no window"):
        sim.run(until=p)


def test_receiver_first_timeout_returns_none():
    sim = Simulator()
    net = make_net(sim)
    rx = net.udp["beta"].socket(port=77)

    def receiver():
        out = yield sim.process(recv_bulk(rx, first_timeout=0.2))
        return out, sim.now

    out, t = sim.run(until=sim.process(receiver()))
    assert out is None
    assert t == pytest.approx(0.2)


def test_throughput_udp_8k_chunks_band():
    """1 MB over UDP should land in the 6.5-11 MB/s band (calibration)."""
    sim = Simulator()
    net = make_net(sim)
    size = 1_000_000
    _, _, t_done = run_transfer(sim, net, size=size)
    mbps = size / t_done / 1e6
    assert 6.5 < mbps < 11.5, f"UDP bulk bandwidth {mbps:.2f} MB/s"


def test_unet_faster_than_udp_for_same_transfer():
    size = 1_000_000
    sim_udp = Simulator()
    _, _, t_udp = run_transfer(sim_udp, make_net(sim_udp),
                               transport="udp", size=size)
    sim_unet = Simulator()
    _, _, t_unet = run_transfer(sim_unet, make_net(sim_unet),
                                transport="unet", size=size)
    assert t_unet < t_udp


def test_duplicate_chunks_dropped_by_seq():
    """Receiver keeps the first copy of a chunk (paper footnote 5)."""
    from repro.net.bulk import _partition
    chunks = _partition(100, b"a" * 100, 40)
    assert [c.seq for c in chunks] == [0, 1, 2]
    assert [c.size for c in chunks] == [40, 40, 20]


def test_partition_empty_metadata():
    from repro.net.bulk import _partition
    chunks = _partition(0, None, 1472)
    assert len(chunks) == 1 and chunks[0].size == 0 and chunks[0].data is None
