"""Differential tests for the flow-level datagram (RPC) fast path.

Same contract as the bulk fast path (``test_bulk_fastpath.py``): the fast
path is an *optimization*, never a model change.  Every single uncontended
datagram carried by ``Network.fast_transmit`` must deliver at virtual
times bit-identical to the packet-by-packet path, with identical socket
and network statistics; whenever the world is not analytically tractable
(loss, contention, bursts, partitions, downed NICs, competing bulk
traffic) it must disengage or fall back mid-flight and leave the packet
path's behavior untouched.
"""

import pytest

from repro.net import RpcClient, RpcServer
from repro.sim import Simulator

from repro.testing import make_net

SIZES = [1, 100, 1472, 8_000, 60_000]


def _strip_fastpath(stats: dict) -> dict:
    """Drop the fast path's own engagement counters before comparing."""
    return {k: v for k, v in stats.items() if not k.startswith("fastpath.")}


def run_dgrams(fastpath, sizes, transport="udp", loss=0.0, seed=1234,
               gap=0.0, burst=None, nic_down_at=None, down_host="beta",
               partition_at=None, hosts=("alpha", "beta")):
    """Send a sequence of datagrams alpha->beta; return all observables.

    ``gap`` spaces the sends apart in virtual time (0 = back-to-back,
    which contends the engines).  ``burst=(t_on, t_off, p)`` injects an
    extra frame-loss window; ``nic_down_at`` / ``partition_at`` inject
    mid-flight failures.
    """
    sim = Simulator(seed=seed)
    net = make_net(sim, hosts=hosts, loss=loss)
    net.network.dgram_fastpath = fastpath
    eps = net.udp if transport == "udp" else net.unet
    tx = eps["alpha"].socket()
    rx = eps["beta"].socket(port=77)
    out = {"sent_at": [], "recv": []}

    def sender():
        for size in sizes:
            got = yield tx.send(size, dst=("beta", 77))
            out["sent_at"].append((got, sim.now))
            if gap:
                yield sim.timeout(gap)

    def receiver():
        while len(out["recv"]) < len(sizes):
            dgram = yield rx.recv(timeout=5.0)
            if dgram is None:
                return
            out["recv"].append((dgram.size, sim.now))

    if burst is not None:
        t_on, t_off, p = burst
        if t_on <= 0.0:
            net.network.extra_loss_prob = p
        else:
            def bursting():
                yield sim.timeout(t_on)
                net.network.extra_loss_prob = p
                if t_off is not None:
                    yield sim.timeout(t_off - t_on)
                    net.network.extra_loss_prob = 0.0
            sim.process(bursting())

    if nic_down_at is not None:
        if nic_down_at <= 0.0:
            net.nics[down_host].down = True
        else:
            def killer():
                yield sim.timeout(nic_down_at)
                net.nics[down_host].down = True
            sim.process(killer())

    if partition_at is not None:
        if partition_at <= 0.0:
            net.network.set_partition([["alpha"], ["beta"]])
        else:
            def cutter():
                yield sim.timeout(partition_at)
                net.network.set_partition([["alpha"], ["beta"]])
            sim.process(cutter())

    sim.process(sender())
    sim.process(receiver())
    sim.run(until=30.0)
    out["events"] = sim.events_processed
    out["net_stats"] = _strip_fastpath(dict(net.network.stats.counters))
    out["tx_stats"] = dict(tx.stats.counters)
    out["rx_stats"] = dict(rx.stats.counters)
    out["fast"] = net.network.stats.count("fastpath.dgrams")
    out["fallbacks"] = net.network.stats.count("fastpath.dgram_fallbacks")
    out["inflight"] = dict(net.network._dgram_inflight)
    return out


def assert_equivalent(fast, pkt):
    """Virtual times and every statistic must match the packet path."""
    assert fast["sent_at"] == pkt["sent_at"], \
        f"send completions differ:\n{fast['sent_at']}\n{pkt['sent_at']}"
    assert fast["recv"] == pkt["recv"], \
        f"deliveries differ:\n{fast['recv']}\n{pkt['recv']}"
    assert fast["net_stats"] == pkt["net_stats"]
    assert fast["tx_stats"] == pkt["tx_stats"]
    assert fast["rx_stats"] == pkt["rx_stats"]


# ---------------------------------------------------------------------------
# Identity on eligible configurations
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("transport", ["udp", "unet"])
@pytest.mark.parametrize("size", SIZES)
def test_single_datagram_times_identical(transport, size):
    if transport == "unet" and size > 1472:
        pytest.skip("beyond unet max payload")
    fast = run_dgrams(True, [size], transport=transport, gap=0.01)
    pkt = run_dgrams(False, [size], transport=transport, gap=0.01)
    assert_equivalent(fast, pkt)
    assert fast["fast"] == 1 and fast["fallbacks"] == 0
    assert pkt["fast"] == 0


@pytest.mark.parametrize("seed", range(10))
def test_spaced_sequences_identical_across_seeds(seed):
    import random
    rng = random.Random(seed)
    sizes = [rng.randrange(1, 60_000) for _ in range(8)]
    fast = run_dgrams(True, sizes, seed=seed, gap=0.02)
    pkt = run_dgrams(False, sizes, seed=seed, gap=0.02)
    assert_equivalent(fast, pkt)
    assert fast["fast"] == len(sizes)


def test_back_to_back_sends_fall_back_identically():
    """Zero-gap sends overlap on the engines: later datagrams must refuse
    or fall back, and the timeline must still match the packet path."""
    sizes = [30_000, 30_000, 30_000, 30_000]
    fast = run_dgrams(True, sizes, gap=0.0)
    pkt = run_dgrams(False, sizes, gap=0.0)
    assert_equivalent(fast, pkt)
    assert fast["inflight"] == {} or \
        all(v == 0 for v in fast["inflight"].values())


def test_fast_path_event_count_shrinks():
    """The point of the fast path: far fewer simulator events."""
    sizes = [10_000] * 20
    fast = run_dgrams(True, sizes, gap=0.01)
    pkt = run_dgrams(False, sizes, gap=0.01)
    assert fast["fast"] == 20
    assert fast["events"] < pkt["events"] - 5 * 20  # >=5 events saved each


# ---------------------------------------------------------------------------
# RPC request/reply: the consumer the fast path exists for
# ---------------------------------------------------------------------------

def run_rpc(fastpath, n_calls=5, seed=7, arg_size=256):
    """An RPC client/server pair; returns per-call completion times."""
    sim = Simulator(seed=seed)
    net = make_net(sim)
    net.network.dgram_fastpath = fastpath
    server_sock = net.udp["beta"].socket(port=90)
    RpcServer(server_sock, {
        "echo": lambda args, src: {"echo": args.get("x")},
    }, name="test").start()
    client = RpcClient(net.udp["alpha"].socket())
    out = {"calls": []}

    def caller():
        for i in range(n_calls):
            result = yield from client.call(
                ("beta", 90), "echo", {"x": i}, size=arg_size,
                timeout=0.05, retries=5)
            out["calls"].append((result["echo"], sim.now))
            yield sim.timeout(0.002)

    sim.process(caller())
    sim.run(until=10.0)
    out["events"] = sim.events_processed
    out["fast"] = net.network.stats.count("fastpath.dgrams")
    return out


@pytest.mark.parametrize("seed", range(10))
def test_rpc_latencies_identical_across_seeds(seed):
    fast = run_rpc(True, seed=seed)
    pkt = run_rpc(False, seed=seed)
    assert fast["calls"] == pkt["calls"]
    assert fast["fast"] >= 2  # both directions engage at least some calls
    assert fast["events"] < pkt["events"]


# ---------------------------------------------------------------------------
# Disengagement and mid-flight fallback
# ---------------------------------------------------------------------------

def test_lossy_transport_never_engages():
    fast = run_dgrams(True, [10_000, 10_000], loss=0.05, seed=3, gap=0.01)
    pkt = run_dgrams(False, [10_000, 10_000], loss=0.05, seed=3, gap=0.01)
    assert fast["fast"] == 0
    assert_equivalent(fast, pkt)


def test_active_loss_burst_prevents_engagement():
    burst = (0.0, None, 0.5)
    fast = run_dgrams(True, [10_000] * 4, burst=burst, seed=11, gap=0.01)
    pkt = run_dgrams(False, [10_000] * 4, burst=burst, seed=11, gap=0.01)
    assert fast["fast"] == 0
    assert_equivalent(fast, pkt)


@pytest.mark.parametrize("seed", range(10))
def test_burst_starting_mid_flight_draws_identical_loss(seed):
    """A loss burst that begins *after* engagement: the in-flight fast
    datagram re-applies the loss model at the exact instant the packet
    path would, consuming identical RNG draws — so later lossy traffic
    sees the same stream state and the whole run stays byte-identical."""
    # the burst lands inside the first datagram's flight window
    burst = (0.0004, 0.5, 0.9)
    sizes = [60_000] * 6
    fast = run_dgrams(True, sizes, burst=burst, seed=seed, gap=0.01)
    pkt = run_dgrams(False, sizes, burst=burst, seed=seed, gap=0.01)
    assert fast["fast"] >= 1  # the first send engaged before the burst
    assert_equivalent(fast, pkt)


def test_receiver_nic_down_mid_flight():
    """Receiver dies while the datagram is on the wire: both paths drop
    it with the same statistic at the same virtual time."""
    fast = run_dgrams(True, [60_000], nic_down_at=0.0004, gap=0.01)
    pkt = run_dgrams(False, [60_000], nic_down_at=0.0004, gap=0.01)
    assert fast["fast"] == 1
    assert fast["recv"] == pkt["recv"] == []
    assert fast["net_stats"] == pkt["net_stats"]
    assert all(v == 0 for v in fast["inflight"].values())


def test_partition_mid_flight():
    """A cut while the datagram is in the switch: dropped identically."""
    fast = run_dgrams(True, [60_000], partition_at=0.0004, gap=0.01)
    pkt = run_dgrams(False, [60_000], partition_at=0.0004, gap=0.01)
    assert fast["fast"] == 1
    assert fast["recv"] == pkt["recv"] == []
    assert fast["net_stats"]["rx.dropped.partitioned"] == \
        pkt["net_stats"]["rx.dropped.partitioned"] == 1
    assert all(v == 0 for v in fast["inflight"].values())


def test_downed_nic_prevents_engagement():
    fast = run_dgrams(True, [1000], nic_down_at=0.0, gap=0.01)
    assert fast["fast"] == 0
    assert fast["recv"] == []


def test_partition_prevents_engagement():
    fast = run_dgrams(True, [1000], partition_at=0.0, gap=0.01)
    assert fast["fast"] == 0
    assert fast["recv"] == []


def test_burst_datagrams_never_engage():
    """Blast (multi-chunk) datagrams always take the packet path."""
    from repro.net.packet import Chunk
    sim = Simulator(seed=2)
    net = make_net(sim)
    tx = net.udp["alpha"].socket()
    net.udp["beta"].socket(port=77)
    chunks = [Chunk(seq=i, size=1000) for i in range(4)]

    def sender():
        yield tx.send(4000, dst=("beta", 77), chunks=chunks)

    sim.process(sender())
    sim.run(until=1.0)
    assert net.network.stats.count("fastpath.dgrams") == 0
    assert net.network.stats.count("tx.datagrams") == 4


# ---------------------------------------------------------------------------
# Mutual exclusion with the bulk fast path
# ---------------------------------------------------------------------------

def test_registered_bulk_transfer_blocks_dgram_engagement():
    """While a bulk transfer is registered on a host, no fast datagram
    may engage there — its analytic window would hide contention the
    packet world imposes."""
    from repro.net import BulkParams, recv_bulk, send_bulk

    sim = Simulator(seed=17)
    net = make_net(sim, hosts=("alpha", "beta", "gamma"))
    params = BulkParams(fastpath=True)
    btx = net.udp["alpha"].socket()
    brx = net.udp["beta"].socket(port=71, recvbuf=256 * 1024)
    dtx = net.udp["gamma"].socket()
    drx = net.udp["beta"].socket(port=72)
    out = {}

    def bulk_sender():
        out["sent"] = yield sim.process(send_bulk(
            btx, ("beta", 71), 400_000, params=params))

    def bulk_receiver():
        out["recv"] = yield sim.process(recv_bulk(
            brx, first_timeout=5.0, params=params))

    def dgram_sender():
        # fire mid-transfer, while beta is registered to the bulk flow
        yield sim.timeout(0.003)
        yield dtx.send(20_000, dst=("beta", 72))

    def dgram_receiver():
        dgram = yield drx.recv(timeout=5.0)
        out["dgram_size"] = dgram.size if dgram else None

    sim.process(bulk_sender())
    sim.process(bulk_receiver())
    sim.process(dgram_sender())
    sim.process(dgram_receiver())
    sim.run(until=30.0)
    assert out["sent"] == 400_000
    assert out["dgram_size"] == 20_000  # delivered, via the packet path
    assert net.network.stats.count("fastpath.dgrams") == 0
    assert net.network.stats.count("fastpath.transfers") == 1


def test_inflight_dgram_blocks_bulk_engagement():
    """A fast datagram in flight occupies an RX engine at a future
    instant the bulk planner cannot see: the bulk fast path must refuse
    and carry the transfer packet by packet."""
    from repro.net import BulkParams, recv_bulk, send_bulk

    sim = Simulator(seed=23)
    net = make_net(sim, hosts=("alpha", "beta", "gamma"))
    params = BulkParams(fastpath=True)
    dtx = net.udp["gamma"].socket()
    drx = net.udp["beta"].socket(port=72)
    btx = net.udp["alpha"].socket()
    brx = net.udp["beta"].socket(port=71, recvbuf=256 * 1024)
    out = {}

    def dgram_sender():
        yield dtx.send(60_000, dst=("beta", 72))  # ~5 ms in flight

    def dgram_receiver():
        dgram = yield drx.recv(timeout=5.0)
        out["dgram_size"] = dgram.size if dgram else None

    def bulk_sender():
        # engage pregranted (no handshake) while the datagram is in flight
        yield sim.timeout(0.001)
        out["sent"] = yield sim.process(send_bulk(
            btx, ("beta", 71), 200_000, params=params,
            window=brx.recvbuf))

    def bulk_receiver():
        yield sim.timeout(0.001)
        out["recv"] = yield sim.process(recv_bulk(
            brx, first_timeout=5.0, params=params, pregranted=True))

    sim.process(dgram_sender())
    sim.process(dgram_receiver())
    sim.process(bulk_sender())
    sim.process(bulk_receiver())
    sim.run(until=30.0)
    assert net.network.stats.count("fastpath.dgrams") == 1
    assert net.network.stats.count("fastpath.transfers") == 0
    assert net.network.stats.count("fastpath.fallbacks") >= 1
    assert out["sent"] == 200_000
    assert out["dgram_size"] == 60_000


def test_inflight_registry_reaches_zero_after_traffic():
    out = run_dgrams(True, [5_000] * 10, gap=0.002)
    assert out["fast"] > 0
    assert all(v == 0 for v in out["inflight"].values())


# ---------------------------------------------------------------------------
# The recv fast path
# ---------------------------------------------------------------------------

def test_recv_fast_path_returns_queued_datagram():
    """recv() on a non-empty queue resolves without spawning a process,
    with identical value, bookkeeping and resume time."""
    sim = Simulator(seed=1)
    net = make_net(sim)
    tx = net.udp["alpha"].socket()
    rx = net.udp["beta"].socket(port=77)
    out = {}

    def sender():
        yield tx.send(5000, dst=("beta", 77))

    def receiver():
        yield sim.timeout(1.0)  # datagram queued long before
        dgram = yield rx.recv(timeout=2.0)
        out["got"] = (dgram.size, sim.now)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert out["got"] == (5000, 1.0)
    assert rx.stats.count("rx.datagrams") == 1
    assert rx.stats.count("rx.bytes") == 5000
    assert rx._queued_bytes == 0


def test_recv_fast_path_preserves_close_semantics():
    """close() still resolves every *pending* recv with None; the fast
    branch never leaves a stale pending counter behind."""
    sim = Simulator(seed=1)
    net = make_net(sim)
    tx = net.udp["alpha"].socket()
    rx = net.udp["beta"].socket(port=77)
    out = {"drained": [], "pending": None}

    def sender():
        yield tx.send(100, dst=("beta", 77))

    def drainer():
        yield sim.timeout(0.5)
        dgram = yield rx.recv()          # fast: data already queued
        out["drained"].append(dgram.size)
        out["pending"] = yield rx.recv(timeout=5.0)  # blocks, then close

    def closer():
        yield sim.timeout(1.0)
        rx.close()

    sim.process(sender())
    sim.process(drainer())
    sim.process(closer())
    sim.run()
    assert out["drained"] == [100]
    assert out["pending"] is None
    assert rx._pending_recvs == 0
