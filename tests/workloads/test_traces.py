"""Tests for I/O trace recording, persistence and characterization."""

import pytest

from repro.sim import Simulator
from repro.storage import Disk, FileSystem
from repro.workloads.app import TraceRequest
from repro.workloads.traces import (TraceRecorder, characterize, load_trace,
                                    save_trace)

MB = 1024 * 1024


@pytest.fixture
def sim():
    return Simulator(seed=71)


def test_recorder_captures_kind_offset_length(sim):
    rec = TraceRecorder(sim)
    rec.begin("read", 0, 100)
    rec.end()
    rec.begin("write", 100, 50)
    rec.end()
    assert [(r.kind, r.offset, r.length) for r in rec.requests] == \
        [("read", 0, 100), ("write", 100, 50)]


def test_recorder_compute_gap(sim):
    rec = TraceRecorder(sim)

    def proc():
        rec.begin("read", 0, 10)
        yield sim.timeout(0.5)  # the I/O itself
        rec.end()
        yield sim.timeout(2.0)  # compute
        rec.begin("read", 10, 10)
        yield sim.timeout(0.5)
        rec.end()

    p = sim.process(proc())
    sim.run(until=p)
    assert rec.requests[0].compute_s == 0.0
    assert rec.requests[1].compute_s == pytest.approx(2.0)


def test_recorder_misuse_raises(sim):
    rec = TraceRecorder(sim)
    with pytest.raises(RuntimeError):
        rec.end()
    rec.begin("read", 0, 1)
    with pytest.raises(RuntimeError):
        rec.begin("read", 1, 1)
    with pytest.raises(ValueError):
        TraceRecorder(sim).begin("seek", 0, 1)


def test_recording_fs_facade(sim):
    fs = FileSystem(sim, Disk(sim), cache_bytes=1 * MB)
    fs.create("f", size=256 * 1024)
    fh = fs.open("f", "r+")
    rec = TraceRecorder(sim)
    facade = rec.recording_fs(fs, fh)

    def proc():
        yield facade.read(0, 8192)
        yield sim.timeout(0.01)
        yield facade.write(8192, 4096)
        yield facade.read(16384, 8192)

    p = sim.process(proc())
    sim.run(until=p)
    kinds = [r.kind for r in rec.requests]
    assert kinds == ["read", "write", "read"]
    assert rec.requests[1].compute_s == pytest.approx(0.01)
    # compute between write-end and next read is zero
    assert rec.requests[2].compute_s == pytest.approx(0.0)


def test_save_load_roundtrip(tmp_path):
    trace = [TraceRequest("read", 0, 8192, 0.01),
             TraceRequest("write", 8192, 100, 0.0),
             TraceRequest("read", 0, 8192, 2.5)]
    path = tmp_path / "trace.jsonl"
    save_trace(trace, str(path))
    assert load_trace(str(path)) == trace


def test_characterize_sequential():
    trace = [TraceRequest("read", i * 8192, 8192, 0.01) for i in range(50)]
    c = characterize(trace)
    assert c["pattern"] == "sequential"
    assert c["read_fraction"] == 1.0
    assert c["mean_request_bytes"] == 8192
    assert c["requests"] == 50


def test_characterize_multiscan():
    trace = [TraceRequest("read", (i % 10) * 8192, 8192, 0.01)
             for i in range(30)]  # three passes
    assert characterize(trace)["pattern"] == "multi-scan"


def test_characterize_random():
    import numpy as np
    rng = np.random.default_rng(5)
    trace = [TraceRequest("read", int(o) * 8192, 8192, 0.0)
             for o in rng.integers(0, 1000, size=100)]
    assert characterize(trace)["pattern"] == "random"


def test_characterize_real_traces_match_paper_description():
    """The built-in lu/dmine traces must self-describe as the paper does."""
    from repro.workloads import LuParams, dmine_trace, lu_trace
    dm = characterize(dmine_trace(64 * 128 * 1024, 3))
    assert dm["pattern"] == "multi-scan"
    assert dm["read_fraction"] == 1.0
    assert dm["mean_request_bytes"] == 128 * 1024  # "almost all 128 KB"

    lu = characterize(lu_trace(LuParams(n=256, slab_cols=32)))
    assert lu["read_fraction"] > 0.6  # "most of its I/O requests are reads"
    assert lu["pattern"] in ("triangle-scan", "multi-scan")


def test_characterize_empty_rejected():
    with pytest.raises(ValueError):
        characterize([])
