"""Tests for the dmine workload: encoding, Apriori correctness, end-to-end."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.workloads import (Apriori, BLOCK_SIZE, DmineParams,
                             brute_force_frequent, decode_block,
                             dmine_trace, encode_blocks,
                             generate_transactions)

SMALL = DmineParams(n_transactions=300, avg_items=8, n_items=60,
                    n_patterns=5, pattern_len=3, pattern_prob=0.5,
                    min_support=0.05, max_itemset_len=3)


@pytest.fixture(scope="module")
def txns():
    return generate_transactions(np.random.default_rng(7), SMALL)


def blocks_of(data):
    return [decode_block(data[off:off + BLOCK_SIZE])
            for off in range(0, len(data), BLOCK_SIZE)]


def test_generator_properties(txns):
    assert len(txns) == SMALL.n_transactions
    for t in txns:
        assert t == sorted(set(t))
        assert all(0 <= i < SMALL.n_items for i in t)
    mean = np.mean([len(t) for t in txns])
    assert 5 < mean < 14  # around avg_items, inflated a bit by patterns


def test_encode_decode_roundtrip(txns):
    data = encode_blocks(txns)
    assert len(data) % BLOCK_SIZE == 0
    decoded = [t for blk in blocks_of(data) for t in blk]
    assert decoded == txns


def test_encode_block_self_containment(txns):
    """Every block decodes independently (the 128 KB read property)."""
    data = encode_blocks(txns)
    total = 0
    for off in range(0, len(data), BLOCK_SIZE):
        total += len(decode_block(data[off:off + BLOCK_SIZE]))
    assert total == len(txns)


def test_apriori_matches_brute_force(txns):
    data = encode_blocks(txns)
    apriori = Apriori(SMALL)
    result = apriori.run(lambda: iter(blocks_of(data)))
    expected = brute_force_frequent(txns, SMALL)
    for k in expected:
        if expected[k]:
            assert result.get(k, {}) == expected[k]
    # the planted patterns guarantee frequent itemsets beyond singletons
    assert result.get(2), "no frequent pairs found"


def test_apriori_min_support_respected(txns):
    data = encode_blocks(txns)
    apriori = Apriori(SMALL)
    result = apriori.run(lambda: iter(blocks_of(data)))
    for k, sets in result.items():
        for count in sets.values():
            assert count >= apriori.min_count


def test_dmine_trace_shape():
    trace = dmine_trace(dataset_bytes=4 * BLOCK_SIZE, n_passes=3)
    assert len(trace) == 12
    assert all(t.kind == "read" for t in trace)
    assert [t.offset for t in trace[:4]] == [0, BLOCK_SIZE, 2 * BLOCK_SIZE,
                                             3 * BLOCK_SIZE]
    # pass 2 rewinds to the start: multi-scan
    assert trace[4].offset == 0


def test_dmine_end_to_end_through_dodo():
    """The full thing: encode to the backing file, mine through the
    region library, and get the same itemsets as the in-memory run."""
    from repro.testing import make_platform, run

    sim = Simulator(seed=13)
    platform = make_platform(sim, pool_mb=2, local_cache_kb=256)
    data = encode_blocks(generate_transactions(
        np.random.default_rng(7), SMALL))
    fs = platform.app.fs
    fs.create("retail", size=len(data))
    fh = fs.open("retail", "r+")

    def write_dataset():
        yield fs.write(fh, 0, len(data), data)
        yield fs.fsync(fh)

    run(sim, write_dataset())
    cache = platform.region_cache(policy="first-in",
                                  local_bytes=256 * 1024)

    apriori = Apriori(SMALL)

    def scan():
        """One pass over the dataset through cread, 128 KB at a time."""
        blocks = []
        for off in range(0, len(data), BLOCK_SIZE):
            ridx = off // BLOCK_SIZE
            if ridx not in scan.crds:
                crd, err = yield from cache.copen(BLOCK_SIZE, fh.fd, off)
                assert err == 0
                scan.crds[ridx] = crd
            n, err, blk = yield from cache.cread(
                scan.crds[ridx], 0, BLOCK_SIZE)
            assert err == 0
            blocks.append(decode_block(blk))
        return blocks

    scan.crds = {}

    def mine():
        apriori.frequent[1] = apriori.count_pass((yield from scan()), k=1)
        k = 2
        while k <= SMALL.max_itemset_len and apriori.frequent[k - 1]:
            cands = apriori.gen_candidates(k)
            if not cands:
                break
            apriori.frequent[k] = apriori.count_pass(
                (yield from scan()), cands, k=k)
            k += 1
        return apriori.frequent

    result = run(sim, mine())
    expected = brute_force_frequent(
        generate_transactions(np.random.default_rng(7), SMALL), SMALL)
    assert result[2] == expected[2]
    assert result.get(3, {}) == expected[3]
    # later passes hit the caches, not the disk, for most blocks
    assert cache.stats.count("cread.local_hits") \
        + cache.stats.count("cread.remote_hits") > 0
