"""Tests for the request-serving tier and its serve-bench driver."""

import json

import pytest

from repro.exp.serving import run_serve_bench, run_serving

QUICK = dict(duration_s=2.0, arrival_rate=300.0, n_keys=64,
             n_memory_hosts=4)


def test_serving_point_is_deterministic():
    a = run_serving(n_shards=2, **QUICK)
    b = run_serving(n_shards=2, **QUICK)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["completed"] > 0
    assert a["audit_findings"] == 0


def test_serving_seeds_differ():
    a = run_serving(n_shards=1, seed=1, **QUICK)
    b = run_serving(n_shards=1, seed=2, **QUICK)
    assert a["offered"] != b["offered"] or a["p50_ms"] != b["p50_ms"]


def test_offered_requests_are_conserved():
    r = run_serving(n_shards=2, **QUICK)
    assert r["completed"] + r["rejected"] == r["offered"]
    assert r["failed"] == r["rejected"]  # admission is the only failure
    assert r["writes"] <= r["completed"]


def test_admission_control_rejects_under_pressure():
    r = run_serving(n_shards=1, max_inflight=2, n_workers=2,
                    mgr_service_s=0.01, desc_cache=2, **QUICK)
    assert r["rejected"] > 0
    assert r["completed"] + r["rejected"] == r["offered"]
    # rejections are instant failures, not latency outliers
    assert r["good_fraction"] <= 1.0


def test_unreplicated_single_shard_works():
    r = run_serving(n_shards=1, replication=False, **QUICK)
    assert r["completed"] > 0
    assert r["replication"] is False
    assert r["audit_findings"] == 0


def test_serve_bench_series_jobs_invariant():
    a = run_serve_bench((1, 2), jobs=1, **QUICK)
    b = run_serve_bench((1, 2), jobs=2, **QUICK)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert [r["shards"] for r in a] == [1, 2]


def test_slo_engine_sees_every_request():
    from repro.obs.slo import SERVING_SPECS, SloEngine
    engine = SloEngine(specs=SERVING_SPECS)
    r = run_serving(n_shards=2, engine=engine, **QUICK)
    summaries = {s["name"]: s for s in engine.spec_summaries()}
    assert summaries["serve-availability"]["total"] == r["offered"]
    assert summaries["serve-latency"]["total"] == r["offered"]
    good = summaries["serve-availability"]["good"]
    assert good == r["completed"]


def test_undersized_pools_fail_loudly():
    # run_serving sizes pools to fit the keyspace; build a platform
    # whose pools cannot hold it and the loader must raise, not limp
    from repro.exp.platform import MB, Platform, PlatformParams
    from repro.sim import Simulator
    from repro.workloads.serving import ServingParams, ServingTier

    sim = Simulator(seed=3)
    platform = Platform(sim, PlatformParams(
        transport="udp", store_payload=False, n_memory_hosts=1,
        imd_pool_bytes=256 * 1024, local_cache_bytes=128 * 1024,
        app_fs_cache_dodo=1 * MB, disk_capacity_bytes=64 * MB,
        shards=1, replication=True), dodo=True)
    tier = ServingTier(platform, ServingParams(
        n_keys=64, value_bytes=16 * 1024, duration_s=0.5,
        arrival_rate=10.0))
    with pytest.raises(RuntimeError, match="serving load failed"):
        sim.run(until=sim.process(tier.run()))


def test_sweep_adapter_registered():
    from repro.sweep.runner import EXPERIMENTS, run_sweep_point
    from repro.sweep.spec import SweepPoint
    assert "serving" in EXPERIMENTS
    result = run_sweep_point(SweepPoint(
        "serving", seed=21,
        overrides=dict(n_shards=1, duration_s=1.0, arrival_rate=200.0,
                       n_keys=32)))
    assert result["completed"] > 0
    assert result["seed"] == 21
