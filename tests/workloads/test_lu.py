"""Tests for the out-of-core LU workload."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.workloads import (LuParams, OutOfCoreLU, lu_factor_slabs,
                             lu_trace, make_test_matrix, unpack_lu)

from repro.testing import make_platform, run


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(17)


def test_params_validation():
    with pytest.raises(ValueError):
        LuParams(n=100, slab_cols=32)
    p = LuParams(n=128, slab_cols=32)
    assert p.n_slabs == 4
    assert p.slab_bytes == 128 * 32 * 8
    assert p.matrix_bytes == 128 * 128 * 8


def test_in_memory_blocked_lu_correct(rng):
    a = make_test_matrix(rng, 64)
    lu = lu_factor_slabs(a, 16)
    l, u = unpack_lu(lu)
    np.testing.assert_allclose(l @ u, a, rtol=1e-9, atol=1e-9)


def test_in_memory_lu_matches_scipy(rng):
    import scipy.linalg
    a = make_test_matrix(rng, 48)
    lu = lu_factor_slabs(a, 12)
    # diagonally dominant: scipy's pivoted LU picks the identity permutation
    p, l_ref, u_ref = scipy.linalg.lu(a)
    np.testing.assert_allclose(p, np.eye(48), atol=1e-12)
    l, u = unpack_lu(lu)
    np.testing.assert_allclose(l, l_ref, rtol=1e-8, atol=1e-8)
    np.testing.assert_allclose(u, u_ref, rtol=1e-8, atol=1e-8)


@pytest.mark.parametrize("use_dodo", [False, True],
                         ids=["baseline", "dodo"])
def test_out_of_core_lu_end_to_end(rng, use_dodo):
    """The real out-of-core factorization through the simulated stack."""
    sim = Simulator(seed=19)
    platform = make_platform(sim, pool_mb=2, local_cache_kb=128,
                             dodo=True)  # build daemons either way
    params = LuParams(n=96, slab_cols=16)
    a = make_test_matrix(np.random.default_rng(23), params.n)
    ooc = OutOfCoreLU(platform, params, use_dodo=use_dodo)

    def proc():
        yield from ooc.load_matrix(a)
        lu = yield from ooc.factor()
        return lu

    lu = run(sim, proc())
    l, u = unpack_lu(lu)
    np.testing.assert_allclose(l @ u, a, rtol=1e-8, atol=1e-8)


def test_out_of_core_matches_in_memory(rng):
    sim = Simulator(seed=29)
    platform = make_platform(sim, pool_mb=2, local_cache_kb=128)
    params = LuParams(n=64, slab_cols=16)
    a = make_test_matrix(np.random.default_rng(31), params.n)
    ooc = OutOfCoreLU(platform, params, use_dodo=True)

    def proc():
        yield from ooc.load_matrix(a)
        return (yield from ooc.factor())

    lu = run(sim, proc())
    np.testing.assert_allclose(lu, lu_factor_slabs(a, params.slab_cols),
                               rtol=1e-9, atol=1e-9)


def test_lu_trace_is_triangle_scan():
    params = LuParams(n=128, slab_cols=32)  # 4 slabs
    trace = lu_trace(params)
    reads = [t for t in trace if t.kind == "read"]
    writes = [t for t in trace if t.kind == "write"]
    # slab j: 1 self-read + j re-reads => 4 + (0+1+2+3) = 10 reads
    assert len(reads) == 10
    assert len(writes) == 4
    # re-reads of earlier slabs: slab 3's pass touches slabs 0,1,2
    sb = params.slab_bytes
    tail = [t.offset // sb for t in reads[-3:]]
    assert tail == [0, 1, 2]
    # mostly-read workload, as in the paper
    assert len(reads) > 2 * len(writes)


def test_lu_trace_compute_dominates():
    """lu is compute-bound: per-trace compute must dwarf request count."""
    params = LuParams(n=512, slab_cols=64)
    trace = lu_trace(params)
    compute = sum(t.compute_s for t in trace)
    # at 50 Mflop/s, 512^3 * 2/3 flops ~ 1.8 s of compute minimum
    assert compute > 1.5
