"""Tests for the synthetic workload generators and the app harness."""

import numpy as np
import pytest

from repro.exp.platform import MB, Platform, PlatformParams
from repro.sim import Simulator
from repro.workloads import (SyntheticParams, SyntheticRunner, TraceRequest,
                             TraceRunner, iteration_offsets)


def offsets_for(pattern, ds=1 << 20, req=8192, **kw):
    params = SyntheticParams(pattern=pattern, dataset_bytes=ds,
                             req_size=req, **kw)
    rng = np.random.default_rng(3)
    return params, list(iteration_offsets(params, rng))


def test_params_validation():
    with pytest.raises(ValueError):
        SyntheticParams(pattern="zigzag")
    with pytest.raises(ValueError):
        SyntheticParams(dataset_bytes=10_000, req_size=8192)


def test_sequential_covers_dataset_in_order():
    params, iters = offsets_for("sequential", num_iter=2)
    for it in iters:
        assert len(it) == params.requests_per_iter
        assert (np.diff(it) == params.req_size).all()
        assert it[0] == 0
        assert it[-1] == params.dataset_bytes - params.req_size


def test_random_offsets_aligned_and_in_range():
    params, iters = offsets_for("random")
    for it in iters:
        assert (it % params.req_size == 0).all()
        assert (it >= 0).all()
        assert (it < params.dataset_bytes).all()


def test_random_iterations_differ():
    _, iters = offsets_for("random", num_iter=2)
    assert not np.array_equal(iters[0], iters[1])


def test_hotcold_concentration():
    params, iters = offsets_for("hotcold")
    hot_boundary = params.dataset_bytes * params.hot_fraction
    frac_hot = np.mean([np.mean(it < hot_boundary) for it in iters])
    assert 0.75 < frac_hot < 0.86  # ~80% of refs to the hot 20%


def test_each_iteration_reads_whole_dataset_volume():
    params, iters = offsets_for("hotcold", num_iter=3)
    assert all(len(it) == params.requests_per_iter for it in iters)


def make_platform(sim, dodo):
    params = PlatformParams(store_payload=False).scaled(1 / 256)
    return Platform(sim, params, dodo=dodo)


def test_synthetic_runner_baseline_counts():
    sim = Simulator(seed=51)
    plat = make_platform(sim, dodo=False)
    sp = SyntheticParams(pattern="sequential", dataset_bytes=1 * MB,
                         req_size=8192, num_iter=2, compute_s=0.001)
    runner = SyntheticRunner(plat, sp, use_dodo=False)
    res = sim.run(until=runner.run())
    assert res.requests == 2 * (1 * MB // 8192)
    assert res.bytes_read == 2 * MB
    assert len(res.iteration_s) == 2
    assert res.elapsed_s == pytest.approx(sum(res.iteration_s), rel=1e-6)


def test_synthetic_runner_dodo_later_iterations_faster():
    sim = Simulator(seed=52)
    plat = make_platform(sim, dodo=True)
    sp = SyntheticParams(pattern="random", dataset_bytes=1 * MB,
                         req_size=8192, num_iter=3, compute_s=0.001)
    runner = SyntheticRunner(plat, sp, use_dodo=True)
    res = sim.run(until=runner.run())
    assert res.iteration_s[1] < res.iteration_s[0]
    assert res.steady_state_s < res.iteration_s[0]


def test_compute_time_floor():
    """With compute_s=c, an iteration can never beat c * requests."""
    sim = Simulator(seed=53)
    plat = make_platform(sim, dodo=False)
    sp = SyntheticParams(pattern="sequential", dataset_bytes=512 * 1024,
                         req_size=8192, num_iter=1, compute_s=0.01)
    runner = SyntheticRunner(plat, sp, use_dodo=False)
    res = sim.run(until=runner.run())
    assert res.elapsed_s >= 0.01 * res.requests


def test_trace_runner_replays_reads_and_writes():
    sim = Simulator(seed=54)
    plat = make_platform(sim, dodo=True)
    trace = [
        TraceRequest("read", 0, 64 * 1024, 0.001),
        TraceRequest("write", 64 * 1024, 64 * 1024, 0.002),
        TraceRequest("read", 0, 64 * 1024, 0.001),
    ]
    runner = TraceRunner(plat, trace, dataset_bytes=1 * MB, use_dodo=True,
                         region_bytes=64 * 1024)
    res = sim.run(until=runner.run())
    assert res.requests == 3
    assert res.elapsed_s >= 0.004  # at least the compute time


def test_trace_runner_request_spanning_regions():
    sim = Simulator(seed=55)
    plat = make_platform(sim, dodo=True)
    # one 96 KB read over 64 KB regions must split into two region reads
    trace = [TraceRequest("read", 32 * 1024, 96 * 1024, 0.0)]
    runner = TraceRunner(plat, trace, dataset_bytes=1 * MB, use_dodo=True,
                         region_bytes=64 * 1024)
    res = sim.run(until=runner.run())
    assert res.bytes_read == 96 * 1024
    assert len(runner._crds) == 2
