"""CLI + config validation for the elastic-caching subsystem.

The user-facing contract of docs/CACHING.md: a typo'd policy name —
in ``repro cache`` arguments, a ``DodoConfig.cache`` block or the
``placement`` knob — surfaces as a one-line ``repro: ...`` message
with exit code 2 (or a plain :class:`ValueError` at config
construction), never a traceback from inside a daemon.
"""

import json

import pytest

from repro.cli import main
from repro.core.config import CacheConfig, DodoConfig


# -- config-layer validation --------------------------------------------------

def test_unknown_cache_policy_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown cache policy 'bogus'"):
        CacheConfig(policy="bogus")


def test_unknown_shadow_policy_rejected_at_construction():
    with pytest.raises(ValueError,
                       match="unknown shadow cache policy 'fifo'"):
        CacheConfig(policy="lru", shadow_policies=("lru", "fifo"))


def test_unknown_placement_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown placement 'bogus'"):
        DodoConfig(placement="bogus")


def test_error_messages_list_accepted_values():
    with pytest.raises(ValueError) as exc:
        CacheConfig(policy="mru")
    for name in ("none", "lru", "lfu", "clock", "cost-aware"):
        assert name in str(exc.value)
    with pytest.raises(ValueError) as exc:
        DodoConfig(placement="first-fit")
    for name in ("random", "most-free", "round-robin"):
        assert name in str(exc.value)


def test_default_cache_block_is_inert():
    cfg = DodoConfig()
    assert cfg.cache.policy == "none"
    assert not cfg.cache.enabled
    assert not cfg.cache.migration
    assert not cfg.cache.adaptive


# -- CLI surface --------------------------------------------------------------

def test_cache_rejects_unknown_policy_one_line(capsys):
    assert main(["cache", "--policies", "bogus"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: unknown cache policy 'bogus'")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err


def test_cache_rejects_unknown_workload_one_line(capsys):
    assert main(["cache", "--workloads", "bogus"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: unknown cache workload 'bogus'")
    assert len(err.strip().splitlines()) == 1


def test_whatif_rejects_unknown_placement(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["whatif", "/nonexistent", "--placement", "bogus"])
    assert exc.value.code == 2
    assert "invalid choice: 'bogus'" in capsys.readouterr().err


def test_cache_command_runs_and_writes_json(tmp_path, capsys):
    out = tmp_path / "cache.json"
    assert main(["cache", "--policies", "lru", "--workloads", "fig7",
                 "--iters", "1", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "Elastic-caching ablation" in text
    assert "claim (migration saves refetches" in text
    doc = json.loads(out.read_text())
    variants = {(r["workload"], r["policy"], r["migration"], r["adaptive"])
                for r in doc["rows"]}
    # the requested grid cell plus the always-run claim/adaptive rows
    assert ("fig7", "lru", False, False) in variants
    assert ("nondedicated", "cost-aware", True, False) in variants
    assert doc["claim"]["disk_reads_migration"] >= 0
