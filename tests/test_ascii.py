"""Tests for the ASCII chart renderer."""

import pytest

from repro.metrics import line_chart, sparkline
from repro.metrics.ascii import _resample


def test_sparkline_monotone_heights():
    s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert s == "▁▂▃▄▅▆▇█"


def test_sparkline_flat_series():
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_sparkline_fixed_bounds():
    s = sparkline([5.0], lo=0.0, hi=10.0)
    assert s == "▅"  # midpoint (rounds up)


def test_sparkline_resamples_to_width():
    s = sparkline(list(range(1000)), width=50)
    assert len(s) == 50
    assert s[0] == "▁" and s[-1] == "█"


def test_resample_preserves_short_series():
    assert _resample([1, 2, 3], 10) == [1.0, 2.0, 3.0]


def test_resample_bucket_averages():
    out = _resample([0, 10, 20, 30], 2)
    assert out == [5.0, 25.0]


def test_resample_empty_rejected():
    with pytest.raises(ValueError):
        _resample([], 10)


def test_line_chart_structure():
    chart = line_chart([0, 5, 10, 5, 0], height=4, title="T")
    lines = chart.splitlines()
    assert lines[0] == "T"
    assert len(lines) == 1 + 4 + 1  # title + rows + axis
    assert lines[1].lstrip().startswith("10")  # top label
    assert lines[-2].lstrip().startswith("0")  # bottom label
    assert lines[-1].strip().startswith("+")


def test_line_chart_peak_position():
    chart = line_chart([0, 0, 10, 0, 0], height=5)
    top_row = chart.splitlines()[0]
    body = top_row.split("|", 1)[1]
    assert body[2] == "█"
    assert body[0] == " " and body[4] == " "


def test_line_chart_height_validation():
    with pytest.raises(ValueError):
        line_chart([1, 2], height=1)
