"""Content-addressed result cache: keys, storage, invalidation."""

import json
import os

from repro.sweep.cache import (ResultCache, code_fingerprint,
                               point_key)
from repro.sweep.spec import SweepPoint


# -- keys ---------------------------------------------------------------------

def test_key_is_stable_across_override_dict_ordering():
    a = SweepPoint("selftest", seed=1, overrides={"a": 1, "b": 2})
    b = SweepPoint("selftest", seed=1, overrides={"b": 2, "a": 1})
    assert point_key(a) == point_key(b)


def test_key_changes_with_every_identity_component():
    base = SweepPoint("selftest", seed=1, overrides={"x": 1})
    keys = {
        point_key(base),
        point_key(SweepPoint("disk", seed=1, overrides={"x": 1})),
        point_key(SweepPoint("selftest", seed=2, overrides={"x": 1})),
        point_key(SweepPoint("selftest", seed=1, overrides={"x": 2})),
        point_key(base, fingerprint="different-code-version"),
    }
    assert len(keys) == 5


def test_code_fingerprint_is_memoized_and_hexdigest():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 64 and int(fp, 16) >= 0


# -- storage ------------------------------------------------------------------

def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path))
    point = SweepPoint("selftest", seed=3, overrides={"x": 1})
    key = point_key(point)
    assert cache.get(key) is None  # miss before put
    path = cache.put(key, point, {"value": 42})
    assert os.path.exists(path)
    record = cache.get(key)
    assert record["result"] == {"value": 42}
    assert record["point"]["experiment"] == "selftest"
    assert record["key"] == key


def test_cache_file_bytes_are_deterministic(tmp_path):
    a = ResultCache(str(tmp_path / "a"))
    b = ResultCache(str(tmp_path / "b"))
    point = SweepPoint("selftest", seed=3, overrides={"p": 1, "q": 2})
    key = point_key(point)
    pa = a.put(key, point, {"y": 2, "x": 1})
    pb = b.put(key, SweepPoint("selftest", seed=3,
                               overrides={"q": 2, "p": 1}),
               {"x": 1, "y": 2})
    assert open(pa, "rb").read() == open(pb, "rb").read()


def test_corrupt_entry_counts_as_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    point = SweepPoint("selftest", seed=0)
    key = point_key(point)
    cache.put(key, point, {"v": 1})
    with open(cache.path(key), "w") as fp:
        fp.write("{truncated")
    assert cache.get(key) is None


def test_entry_without_result_counts_as_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = point_key(SweepPoint("selftest", seed=0))
    os.makedirs(os.path.dirname(cache.path(key)))
    with open(cache.path(key), "w") as fp:
        json.dump({"key": key}, fp)
    assert cache.get(key) is None


# -- invalidation -------------------------------------------------------------

def test_prune_drops_stale_fingerprints_keeps_current(tmp_path):
    cache = ResultCache(str(tmp_path))
    fresh = SweepPoint("selftest", seed=1)
    stale = SweepPoint("selftest", seed=2)
    fresh_key = point_key(fresh)
    stale_key = point_key(stale, fingerprint="old-code")
    cache.put(fresh_key, fresh, {"v": 1})
    cache.put(stale_key, stale, {"v": 2}, fingerprint="old-code")
    removed = cache.prune()
    assert removed == 1
    assert cache.get(fresh_key) is not None
    assert cache.get(stale_key) is None


def test_prune_of_missing_directory_is_noop(tmp_path):
    assert ResultCache(str(tmp_path / "absent")).prune() == 0
