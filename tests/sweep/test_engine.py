"""The sweep driver: pooling, memoization, resume, determinism.

The acceptance bar (mirrored by the CI sweep-smoke step):

* ``jobs=1`` and ``jobs=N`` produce byte-identical per-point cache
  entries for the same spec;
* a resumed invocation reports previously-completed points as cache
  hits and reruns nothing;
* a failed point neither aborts the sweep nor poisons the cache, and a
  resume retries exactly the failures — the crash-recovery story.
"""

import io
import json
import os

import pytest

from repro.sweep import (SweepPoint, SweepSpec, load_spec,
                         parallel_map, point_key, run_sweep,
                         run_sweep_point)
from repro.sweep.runner import UnknownExperimentError, _selftest


def _selftest_spec(seeds=(0, 1, 2), x=1, **over):
    return SweepSpec("t", [
        SweepPoint("selftest", seed=s, overrides={"x": x, **over})
        for s in seeds])


def _tree(root):
    """{relative path: bytes} for a cache directory."""
    out = {}
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as fp:
                out[os.path.relpath(path, root)] = fp.read()
    return out


# -- run_sweep_point ----------------------------------------------------------

def test_run_sweep_point_executes_and_jsonifies():
    result = run_sweep_point(SweepPoint("selftest", seed=2,
                                        overrides={"x": 5}))
    assert result["value"] == 2005
    assert json.dumps(result)  # JSON-safe


def test_run_sweep_point_rejects_unknown_experiment():
    with pytest.raises(UnknownExperimentError, match="unknown experiment"):
        run_sweep_point(SweepPoint("fig99"))


# -- inline execution ---------------------------------------------------------

def test_inline_sweep_runs_every_point():
    result = run_sweep(_selftest_spec())
    assert (result.ran, result.cached, result.failed) == (3, 0, 0)
    assert result.ok
    assert [r.result["seed"] for r in result.runs] == [0, 1, 2]
    assert all(r.key == point_key(r.point) for r in result.runs)


def test_unknown_experiment_becomes_failed_point_not_crash():
    spec = SweepSpec("t", [SweepPoint("selftest", seed=0),
                           SweepPoint("fig99", seed=0)])
    result = run_sweep(spec)
    assert not result.ok
    assert [r.status for r in result.runs] == ["ok", "failed"]
    assert "unknown experiment" in result.runs[1].error


def test_progress_stream_gets_one_line_per_point():
    buf = io.StringIO()
    run_sweep(_selftest_spec(), progress=buf)
    lines = buf.getvalue().splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("[1/3] selftest seed=0")
    assert "ran in" in lines[0]


def test_out_file_is_written_and_complete(tmp_path):
    out = tmp_path / "results.json"
    result = run_sweep(_selftest_spec(), out=str(out))
    record = json.loads(out.read_text())
    assert record["summary"] == {"points": 3, "ran": 3, "cached": 0,
                                 "failed": 0}
    assert record["fingerprint"] == result.fingerprint
    assert [p["result"]["seed"] for p in record["points"]] == [0, 1, 2]


# -- caching and resume -------------------------------------------------------

def test_resume_hits_cache_and_runs_nothing(tmp_path):
    spec = _selftest_spec()
    first = run_sweep(spec, cache_dir=str(tmp_path))
    assert first.ran == 3
    again = run_sweep(spec, cache_dir=str(tmp_path), resume=True)
    assert (again.ran, again.cached, again.failed) == (0, 3, 0)
    assert [r.result for r in again.runs] \
        == [r.result for r in first.runs]


def test_without_resume_points_recompute(tmp_path):
    spec = _selftest_spec()
    run_sweep(spec, cache_dir=str(tmp_path))
    again = run_sweep(spec, cache_dir=str(tmp_path))  # no resume
    assert again.cached == 0 and again.ran == 3


def test_cache_key_ignores_override_ordering(tmp_path):
    a = SweepSpec("t", [SweepPoint("selftest", seed=0,
                                   overrides={"x": 1, "fail": False})])
    b = SweepSpec("t", [SweepPoint("selftest", seed=0,
                                   overrides={"fail": False, "x": 1})])
    run_sweep(a, cache_dir=str(tmp_path))
    resumed = run_sweep(b, cache_dir=str(tmp_path), resume=True)
    assert resumed.cached == 1


def test_interrupted_sweep_resumes_where_it_left_off(tmp_path):
    # simulate an interrupt: only a prefix of the grid completed
    full = _selftest_spec(seeds=(0, 1, 2, 3, 4))
    prefix = SweepSpec("t", full.points[:2])
    run_sweep(prefix, cache_dir=str(tmp_path))
    resumed = run_sweep(full, cache_dir=str(tmp_path), resume=True)
    assert (resumed.cached, resumed.ran) == (2, 3)
    statuses = [r.status for r in resumed.runs]
    assert statuses == ["cached", "cached", "ok", "ok", "ok"]


def test_failed_points_are_not_cached_and_are_retried(tmp_path):
    # a worker "crash" mid-sweep: seed 1 raises, the others complete
    crashing = _selftest_spec(seeds=(0, 1, 2), fail_seeds=[1])
    first = run_sweep(crashing, cache_dir=str(tmp_path))
    assert not first.ok
    assert [r.status for r in first.runs] == ["ok", "failed", "ok"]
    assert "injected failure" in first.runs[1].error
    # the fixed code path (same identity, no fail marker this time)
    # must rerun only the failed point... but identity includes the
    # overrides, so model the retry as the same failing spec with the
    # fault gone: clear the in-cache misses by resuming the original
    # spec — the two ok points hit, the failed one reruns (and fails
    # again, proving it was never cached).
    second = run_sweep(crashing, cache_dir=str(tmp_path), resume=True)
    assert [r.status for r in second.runs] == ["cached", "failed",
                                               "cached"]


# -- parallel execution -------------------------------------------------------

def test_jobs_n_matches_jobs_1_byte_for_byte(tmp_path):
    spec = _selftest_spec(seeds=range(8))
    serial = run_sweep(spec, jobs=1, cache_dir=str(tmp_path / "j1"))
    pooled = run_sweep(spec, jobs=4, cache_dir=str(tmp_path / "j4"))
    assert serial.ok and pooled.ok
    assert _tree(tmp_path / "j1") == _tree(tmp_path / "j4")


@pytest.mark.slow
def test_real_experiment_grid_jobs_identity_and_resume(tmp_path):
    """The acceptance criterion on a real >=8-point simulation grid:
    fig8 points at scale 1/256 through jobs=1 and jobs=4 must produce
    byte-identical cache entries, and a resumed run is all hits."""
    spec = load_spec("ci-grid")
    assert len(spec) >= 8
    pooled = run_sweep(spec, jobs=4, cache_dir=str(tmp_path / "j4"))
    serial = run_sweep(spec, jobs=1, cache_dir=str(tmp_path / "j1"))
    assert pooled.ok and serial.ok
    assert _tree(tmp_path / "j1") == _tree(tmp_path / "j4")
    resumed = run_sweep(spec, jobs=4, cache_dir=str(tmp_path / "j4"),
                        resume=True)
    assert resumed.cached == len(spec) and resumed.ran == 0


def test_pool_failures_are_contained(tmp_path):
    spec = _selftest_spec(seeds=range(6), fail_seeds=[2, 4])
    result = run_sweep(spec, jobs=3, cache_dir=str(tmp_path))
    assert result.failed == 2 and result.ran == 4
    # completed points were cached even though the sweep had failures
    resumed = run_sweep(spec, jobs=3, cache_dir=str(tmp_path),
                        resume=True)
    assert resumed.cached == 4


# -- parallel_map (the uncached fan-out used by run_fig8) ---------------------

def test_parallel_map_preserves_input_order():
    kwargs = [dict(seed=s, x=7) for s in range(5)]
    inline = parallel_map(_selftest, kwargs, jobs=1)
    pooled = parallel_map(_selftest, kwargs, jobs=3)
    assert inline == pooled
    assert [r["seed"] for r in pooled] == list(range(5))


def test_run_fig8_panel_routes_through_engine_identically():
    from repro.exp.fig8 import run_panel
    kwargs = dict(req_size=8192, dataset_gb=1, scale=1 / 256,
                  transports=("udp",),
                  patterns=("sequential", "random"), num_iter=2)
    serial = run_panel(**kwargs, jobs=1)
    pooled = run_panel(**kwargs, jobs=2)
    assert serial == pooled
    assert [r["point"].pattern for r in pooled] \
        == ["sequential", "random"]
