"""Sweep spec parsing, grid expansion, and canonical JSON."""

import json

import numpy as np
import pytest

from repro.sweep.spec import (BUILTIN_SPECS, SpecError, SweepPoint,
                              SweepSpec, canonical_text, jsonify,
                              load_spec)


# -- jsonify / canonical_text -------------------------------------------------

def test_jsonify_passes_plain_data_through():
    data = {"a": 1, "b": [1.5, "x", None, True]}
    assert jsonify(data) == data


def test_jsonify_converts_tuples_and_tuple_keys():
    assert jsonify((1, 2)) == [1, 2]
    assert jsonify({("lu", "udp"): 1}) == {"lu/udp": 1}


def test_jsonify_converts_numpy_scalars():
    out = jsonify({"m": np.float64(1.5), "n": np.int64(3)})
    assert out == {"m": 1.5, "n": 3}
    assert type(out["m"]) is float and type(out["n"]) is int


def test_jsonify_converts_dataclasses():
    from repro.exp.fig8 import Fig8Point
    out = jsonify(Fig8Point("random", 8192, 1, "udp"))
    assert out == {"pattern": "random", "req_size": 8192,
                   "dataset_gb": 1, "transport": "udp"}


def test_jsonify_stringifies_non_string_keys():
    assert jsonify({1: "a", 2.0: "b"}) == {"1": "a", "2.0": "b"}


def test_jsonify_rejects_unserializable_objects():
    with pytest.raises(TypeError, match="canonicalize"):
        jsonify({"bad": object()})


def test_jsonify_rejects_colliding_canonical_keys():
    with pytest.raises(TypeError, match="duplicate key"):
        jsonify({1: "a", "1": "b"})


def test_canonical_text_is_order_independent():
    a = canonical_text({"x": 1, "y": {"p": 2, "q": 3}})
    b = canonical_text({"y": {"q": 3, "p": 2}, "x": 1})
    assert a == b
    assert " " not in a  # compact separators


# -- grid expansion -----------------------------------------------------------

def test_grid_expands_full_cross_product():
    spec = SweepSpec.from_dict({
        "name": "g", "experiment": "selftest",
        "grid": {"x": [1, 2], "seed": [0, 1, 2]},
    })
    assert len(spec) == 6
    # seed axis populates point.seed, not overrides
    assert all(p.seed is not None for p in spec)
    assert all(list(p.overrides) == ["x"] for p in spec)
    assert {(p.seed, p.overrides["x"]) for p in spec} \
        == {(s, x) for s in (0, 1, 2) for x in (1, 2)}


def test_grid_expansion_order_is_deterministic():
    d = {"name": "g", "experiment": "selftest",
         "grid": {"b": [1, 2], "a": [3, 4], "seed": [0]}}
    first = SweepSpec.from_dict(d)
    # same grid with keys declared in a different order
    d2 = {"name": "g", "experiment": "selftest",
          "grid": {"seed": [0], "a": [3, 4], "b": [1, 2]}}
    second = SweepSpec.from_dict(d2)
    assert [p.canonical() for p in first] \
        == [p.canonical() for p in second]


def test_base_overrides_merge_under_grid_axes():
    spec = SweepSpec.from_dict({
        "name": "g", "experiment": "selftest",
        "overrides": {"x": 9, "fail": False},
        "grid": {"x": [1], "seed": [0]},
    })
    assert spec.points[0].overrides == {"x": 1, "fail": False}


def test_explicit_points_and_grid_combine():
    spec = SweepSpec.from_dict({
        "name": "g", "experiment": "selftest",
        "grid": {"seed": [0]},
        "points": [{"experiment": "disk"},
                   {"seed": 7, "overrides": {"x": 2}}],
    })
    assert [p.experiment for p in spec] \
        == ["selftest", "disk", "selftest"]
    assert spec.points[2].seed == 7


def test_roundtrip_through_to_dict():
    spec = SweepSpec.from_dict({
        "name": "g", "experiment": "selftest",
        "grid": {"seed": [0, 1]},
    })
    again = SweepSpec.from_dict(spec.to_dict())
    assert [p.canonical() for p in again] \
        == [p.canonical() for p in spec]


# -- validation ---------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    [],                                                  # not an object
    {"name": "x"},                                       # no points at all
    {"name": "x", "bogus": 1},                           # unknown key
    {"name": "x", "grid": {"seed": [0]}},                # grid w/o experiment
    {"name": "x", "experiment": "e", "grid": {}},        # empty grid
    {"name": "x", "experiment": "e", "grid": {"a": []}},  # empty axis
    {"name": "x", "experiment": "e", "grid": {"a": 1}},  # non-list axis
    {"name": "x", "points": [{"seed": 1}]},              # point w/o experiment
    {"name": "x", "overrides": 3, "points": []},         # bad overrides
])
def test_bad_specs_raise_spec_error(bad):
    with pytest.raises(SpecError):
        SweepSpec.from_dict(bad)


def test_read_missing_file_raises_spec_error(tmp_path):
    with pytest.raises(SpecError, match="cannot read"):
        SweepSpec.read(str(tmp_path / "absent.json"))


def test_read_invalid_json_raises_spec_error(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(SpecError, match="invalid JSON"):
        SweepSpec.read(str(path))


# -- builtins / load_spec -----------------------------------------------------

def test_all_builtin_specs_parse_to_known_experiments():
    from repro.sweep.runner import EXPERIMENTS
    for name, raw in BUILTIN_SPECS.items():
        spec = SweepSpec.from_dict(raw)
        assert len(spec) > 0
        assert {p.experiment for p in spec} <= set(EXPERIMENTS), name


def test_ci_grid_builtin_has_at_least_eight_points():
    assert len(load_spec("ci-grid")) >= 8


def test_load_spec_resolves_file(tmp_path):
    path = tmp_path / "s.json"
    path.write_text(json.dumps({"name": "f", "experiment": "selftest",
                                "grid": {"seed": [0]}}))
    assert load_spec(str(path)).name == "f"


def test_load_spec_rejects_unknown_reference():
    with pytest.raises(SpecError, match="unknown sweep spec"):
        load_spec("no-such-builtin")
