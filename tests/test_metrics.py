"""Tests for the metrics package: Recorder, TimeSeries, report helpers."""

import pytest

from repro.metrics import (Recorder, TimeSeries, format_series, format_table,
                           speedup)


# -- Recorder ----------------------------------------------------------------

def test_recorder_counters():
    r = Recorder("x")
    r.add("ops")
    r.add("ops", 2)
    r.add("bytes", 100)
    assert r.count("ops") == 3
    assert r.count("bytes") == 100
    assert r.count("missing") == 0
    assert r.counters == {"ops": 3, "bytes": 100}


def test_recorder_samples():
    r = Recorder()
    for v in (1.0, 2.0, 3.0):
        r.sample("lat", v)
    assert r.samples("lat") == [1.0, 2.0, 3.0]
    assert r.mean("lat") == pytest.approx(2.0)
    assert r.maximum("lat") == 3.0
    assert r.mean("none") == 0.0
    assert r.maximum("none") == 0.0


def test_recorder_clear():
    r = Recorder()
    r.add("a")
    r.sample("b", 1.0)
    r.clear()
    assert r.count("a") == 0
    assert r.samples("b") == []


# -- TimeSeries ---------------------------------------------------------------

def test_timeseries_value_at_step_function():
    ts = TimeSeries()
    ts.record(0.0, 10.0)
    ts.record(5.0, 20.0)
    ts.record(10.0, 5.0)
    assert ts.value_at(0.0) == 10.0
    assert ts.value_at(4.99) == 10.0
    assert ts.value_at(5.0) == 20.0
    assert ts.value_at(100.0) == 5.0


def test_timeseries_before_first_sample_is_error():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.value_at(4.0)


def test_timeseries_out_of_order_rejected():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 2.0)


def test_timeseries_integral_and_average():
    ts = TimeSeries()
    ts.record(0.0, 10.0)
    ts.record(10.0, 20.0)
    # [0,10): 10, [10,20]: 20 -> integral over [0,20] = 100 + 200
    assert ts.integral(0.0, 20.0) == pytest.approx(300.0)
    assert ts.average(0.0, 20.0) == pytest.approx(15.0)
    assert ts.integral(5.0, 5.0) == 0.0
    assert ts.average(5.0, 5.0) == 10.0
    with pytest.raises(ValueError):
        ts.integral(10.0, 5.0)


def test_timeseries_minmax_and_len():
    ts = TimeSeries()
    with pytest.raises(ValueError):
        ts.minimum()
    ts.record(0.0, 3.0)
    ts.record(1.0, 7.0)
    assert ts.minimum() == 3.0
    assert ts.maximum() == 7.0
    assert len(ts) == 2


def test_timeseries_aggregate():
    a, b = TimeSeries(), TimeSeries()
    for t, (va, vb) in enumerate(((1, 10), (2, 20), (3, 30))):
        a.record(float(t), va)
        b.record(float(t), vb)
    agg = TimeSeries.aggregate([a, b], [0.0, 1.0, 2.0])
    assert agg.values == [11, 22, 33]


# -- report --------------------------------------------------------------------

def test_speedup():
    assert speedup(10.0, 5.0) == 2.0
    with pytest.raises(ValueError):
        speedup(10.0, 0.0)


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "long-name" in lines[4]
    assert "2.500" in lines[4]  # float formatting


def test_format_series():
    out = format_series({"y1": [1.0, 2.0], "y2": [3.0, 4.0]},
                        xlabel="x", xs=[10, 20])
    lines = out.splitlines()
    assert lines[0].split() == ["x", "y1", "y2"]
    assert lines[2].split() == ["10", "1.000", "3.000"]
