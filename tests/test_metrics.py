"""Tests for the metrics package: Recorder, TimeSeries, report helpers."""

import pytest

from repro.metrics import (Recorder, TimeSeries, format_series, format_table,
                           speedup)


# -- Recorder ----------------------------------------------------------------

def test_recorder_counters():
    r = Recorder("x")
    r.add("ops")
    r.add("ops", 2)
    r.add("bytes", 100)
    assert r.count("ops") == 3
    assert r.count("bytes") == 100
    assert r.count("missing") == 0
    assert r.counters == {"ops": 3, "bytes": 100}


def test_recorder_samples():
    r = Recorder()
    for v in (1.0, 2.0, 3.0):
        r.sample("lat", v)
    assert r.samples("lat") == [1.0, 2.0, 3.0]
    assert r.mean("lat") == pytest.approx(2.0)
    assert r.maximum("lat") == 3.0
    assert r.mean("none") == 0.0
    assert r.maximum("none") == 0.0


def test_recorder_percentile_interpolates():
    r = Recorder()
    for v in (1.0, 2.0, 3.0, 4.0):
        r.sample("lat", v)
    assert r.percentile("lat", 0.0) == 1.0
    assert r.percentile("lat", 1.0) == 4.0
    assert r.percentile("lat", 0.5) == pytest.approx(2.5)
    assert r.percentile("lat", 0.9) == pytest.approx(3.7)
    # order of recording must not matter
    r2 = Recorder()
    for v in (4.0, 1.0, 3.0, 2.0):
        r2.sample("lat", v)
    assert r2.percentile("lat", 0.9) == pytest.approx(3.7)


def test_recorder_percentile_edge_cases():
    r = Recorder()
    assert r.percentile("missing", 0.5) == 0.0
    r.sample("one", 7.0)
    assert r.percentile("one", 0.25) == 7.0
    with pytest.raises(ValueError):
        r.percentile("one", 1.5)
    with pytest.raises(ValueError):
        r.percentile("one", -0.1)


def test_recorder_histogram_equal_width_bins():
    r = Recorder()
    for v in (0.0, 1.0, 2.0, 3.0, 4.0):
        r.sample("v", v)
    counts, edges = r.histogram("v", bins=4)
    assert edges == [0.0, 1.0, 2.0, 3.0, 4.0]
    # last bin is closed on both sides: 3.0 and 4.0 both land in it
    assert counts == [1, 1, 1, 2]
    assert sum(counts) == 5


def test_recorder_histogram_explicit_edges_and_outliers():
    r = Recorder()
    for v in (-1.0, 0.5, 1.5, 2.5, 99.0):
        r.sample("v", v)
    counts, edges = r.histogram("v", bins=[0.0, 1.0, 2.0, 3.0])
    assert counts == [1, 1, 1]  # -1 and 99 fall outside and are dropped
    assert edges == [0.0, 1.0, 2.0, 3.0]


def test_recorder_histogram_degenerate_inputs():
    r = Recorder()
    counts, edges = r.histogram("empty", bins=2)
    assert counts == [0, 0]
    assert edges == [0.0, 0.5, 1.0]
    r.sample("flat", 5.0)
    r.sample("flat", 5.0)
    counts, edges = r.histogram("flat", bins=2)
    assert sum(counts) == 2
    with pytest.raises(ValueError):
        r.histogram("flat", bins=0)
    with pytest.raises(ValueError):
        r.histogram("flat", bins=[3.0, 2.0, 1.0])  # not increasing
    with pytest.raises(ValueError):
        r.histogram("flat", bins=[1.0])  # fewer than two edges


def test_recorder_names_enumerate_in_first_use_order():
    r = Recorder()
    r.add("tx.bytes", 10)
    r.sample("latency", 0.5)
    r.add("rx.bytes")
    r.sample("latency", 0.7)  # repeat: no duplicate name
    assert r.counter_names() == ["tx.bytes", "rx.bytes"]
    assert r.sample_names() == ["latency"]
    assert r.names() == ["tx.bytes", "rx.bytes", "latency"]


def test_recorder_names_empty():
    r = Recorder()
    assert r.counter_names() == []
    assert r.sample_names() == []
    assert r.names() == []


def test_recorder_clear():
    r = Recorder()
    r.add("a")
    r.sample("b", 1.0)
    r.clear()
    assert r.count("a") == 0
    assert r.samples("b") == []


# -- TimeSeries ---------------------------------------------------------------

def test_timeseries_value_at_step_function():
    ts = TimeSeries()
    ts.record(0.0, 10.0)
    ts.record(5.0, 20.0)
    ts.record(10.0, 5.0)
    assert ts.value_at(0.0) == 10.0
    assert ts.value_at(4.99) == 10.0
    assert ts.value_at(5.0) == 20.0
    assert ts.value_at(100.0) == 5.0


def test_timeseries_before_first_sample_is_error():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.value_at(4.0)


def test_timeseries_out_of_order_rejected():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 2.0)


def test_timeseries_integral_and_average():
    ts = TimeSeries()
    ts.record(0.0, 10.0)
    ts.record(10.0, 20.0)
    # [0,10): 10, [10,20]: 20 -> integral over [0,20] = 100 + 200
    assert ts.integral(0.0, 20.0) == pytest.approx(300.0)
    assert ts.average(0.0, 20.0) == pytest.approx(15.0)
    assert ts.integral(5.0, 5.0) == 0.0
    assert ts.average(5.0, 5.0) == 10.0
    with pytest.raises(ValueError):
        ts.integral(10.0, 5.0)


def test_timeseries_minmax_and_len():
    ts = TimeSeries()
    with pytest.raises(ValueError):
        ts.minimum()
    ts.record(0.0, 3.0)
    ts.record(1.0, 7.0)
    assert ts.minimum() == 3.0
    assert ts.maximum() == 7.0
    assert len(ts) == 2


def test_timeseries_aggregate():
    a, b = TimeSeries(), TimeSeries()
    for t, (va, vb) in enumerate(((1, 10), (2, 20), (3, 30))):
        a.record(float(t), va)
        b.record(float(t), vb)
    agg = TimeSeries.aggregate([a, b], [0.0, 1.0, 2.0])
    assert agg.values == [11, 22, 33]


# -- report --------------------------------------------------------------------

def test_speedup():
    assert speedup(10.0, 5.0) == 2.0
    with pytest.raises(ValueError):
        speedup(10.0, 0.0)


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "long-name" in lines[4]
    assert "2.500" in lines[4]  # float formatting


def test_format_series():
    out = format_series({"y1": [1.0, 2.0], "y2": [3.0, 4.0]},
                        xlabel="x", xs=[10, 20])
    lines = out.splitlines()
    assert lines[0].split() == ["x", "y1", "y2"]
    assert lines[2].split() == ["10", "1.000", "3.000"]


def test_format_series_rejects_mismatched_lengths():
    with pytest.raises(ValueError, match="'short'.*2 values.*has 3"):
        format_series({"ok": [1.0, 2.0, 3.0], "short": [1.0, 2.0]},
                      xlabel="x", xs=[1, 2, 3])
