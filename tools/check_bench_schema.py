#!/usr/bin/env python
"""Schema check for the checked-in benchmark baselines.

Validates ``benchmarks/BENCH_primitives.json``,
``benchmarks/BENCH_scaling.json``, ``benchmarks/BENCH_serving.json``
and ``benchmarks/BENCH_cache.json`` (or any files passed as arguments,
matched by name) with nothing but the standard library, so the CI step
needs no installed package — the gate scripts themselves read these
files, and a malformed refresh would otherwise surface as a confusing
gate failure instead of a schema diagnosis.

Checks per file:

* every required field is present with the right type;
* throughput, wall-clock and footprint numbers are finite and positive;
* the scaling/serving series are sorted by strictly increasing host
  count / shard count;
* the cache ablation's claim block is internally consistent (the
  refetch savings match the two disk-read counts it cites).

Exit 1 with one line per problem.  Run from the repo root::

    python tools/check_bench_schema.py            # both defaults
    python tools/check_bench_schema.py FILE...    # explicit files
"""

from __future__ import annotations

import json
import math
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULTS = [
    os.path.join(ROOT, "benchmarks", "BENCH_primitives.json"),
    os.path.join(ROOT, "benchmarks", "BENCH_scaling.json"),
    os.path.join(ROOT, "benchmarks", "BENCH_serving.json"),
    os.path.join(ROOT, "benchmarks", "BENCH_cache.json"),
]

#: required top-level numeric fields of BENCH_primitives.json
PRIMITIVES_NUMBERS = [
    "events_per_sec", "events_per_cpu_sec", "kernel_wall_s",
    "bulk_fast_wall_s", "bulk_packet_wall_s", "bulk_fast_speedup_x",
    "bulk_mb_per_wall_s", "bulk_virtual_s",
    "fig7_lu_runtime_s", "fig7_lu_packet_runtime_s",
    "fig7_fastpath_speedup_x", "fig7_lu_speedup",
]
PRIMITIVES_INTS = ["bulk_bytes", "bulk_fast_events", "bulk_packet_events",
                   "kernel_events"]

#: required per-point numeric fields of BENCH_scaling.json
SCALING_POINT_NUMBERS = ["virtual_s", "elapsed_s", "wall_s", "build_wall_s",
                         "events_per_sec", "peak_rss_mb"]
SCALING_POINT_INTS = ["hosts", "seed", "events", "requests"]
SCALING_FASTPATH = ["dgrams", "bulk_transfers", "disk_batches"]

#: required per-point fields of BENCH_serving.json (all virtual-time)
SERVING_POINT_NUMBERS = ["arrival_rate", "duration_s", "mgr_service_s",
                         "throughput_rps", "p50_ms", "p99_ms", "p999_ms",
                         "mean_ms", "latency_slo_ms", "virtual_s"]
SERVING_POINT_INTS = ["shards", "offered", "completed", "n_keys"]
#: present and integer-typed, but legitimately zero in a healthy run
SERVING_POINT_COUNTS = ["rejected", "failed", "writes", "disk_fallbacks",
                        "audit_findings", "seed"]

#: required per-row fields of BENCH_cache.json (all virtual-time)
CACHE_ROW_INTS = ["requests"]
#: present and integer-typed, but legitimately zero in a healthy run
CACHE_ROW_COUNTS = ["seed", "local_hits", "remote_hits", "disk_reads",
                    "remote_lost", "migrated_hits", "evictions",
                    "evicted_bytes", "entries_evicted", "switches",
                    "reclaims", "recruits"]
CACHE_MIGRATIONS = ["attempted", "ok", "failed", "bytes"]
CACHE_CLAIM_COUNTS = ["seed", "disk_reads_evict_only",
                      "disk_reads_migration", "migrated_hits",
                      "migrations_ok"]


def _positive_number(value) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value) and value > 0)


def _require(problems: list, where: str, obj: dict, key: str,
             kind: str) -> None:
    """Append a problem line unless ``obj[key]`` matches ``kind``."""
    if key not in obj:
        problems.append(f"{where}: missing {key!r}")
        return
    value = obj[key]
    if kind == "number" and not _positive_number(value):
        problems.append(f"{where}: {key!r} must be a finite positive "
                        f"number, got {value!r}")
    elif kind == "int" and (isinstance(value, bool)
                            or not isinstance(value, int) or value <= 0):
        problems.append(f"{where}: {key!r} must be a positive integer, "
                        f"got {value!r}")
    elif kind == "str" and not isinstance(value, str):
        problems.append(f"{where}: {key!r} must be a string, got {value!r}")


def check_primitives(doc: dict, where: str) -> list:
    """BENCH_primitives.json: flat metrics dict from perf_smoke.py."""
    problems: list = []
    if not isinstance(doc, dict):
        return [f"{where}: top level must be an object"]
    for key in PRIMITIVES_NUMBERS:
        _require(problems, where, doc, key, "number")
    for key in PRIMITIVES_INTS:
        _require(problems, where, doc, key, "int")
    _require(problems, where, doc, "python", "str")
    if not isinstance(doc.get("full"), bool):
        problems.append(f"{where}: 'full' must be a boolean")
    return problems


def check_scaling(doc: dict, where: str) -> list:
    """BENCH_scaling.json: kernel anchor + host-count series."""
    problems: list = []
    if not isinstance(doc, dict):
        return [f"{where}: top level must be an object"]
    _require(problems, where, doc, "kernel_events_per_sec", "number")
    _require(problems, where, doc, "python", "str")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        problems.append(f"{where}: 'points' must be a non-empty list")
        return problems
    hosts_seen = []
    for i, point in enumerate(points):
        at = f"{where}: points[{i}]"
        if not isinstance(point, dict):
            problems.append(f"{at}: must be an object")
            continue
        for key in SCALING_POINT_NUMBERS:
            _require(problems, at, point, key, "number")
        for key in SCALING_POINT_INTS:
            _require(problems, at, point, key, "int")
        fastpath = point.get("fastpath")
        if not isinstance(fastpath, dict):
            problems.append(f"{at}: missing 'fastpath' object")
        else:
            for key in SCALING_FASTPATH:
                if not _positive_number(fastpath.get(key)):
                    problems.append(
                        f"{at}: fastpath[{key!r}] must be a positive "
                        f"number, got {fastpath.get(key)!r}")
        if isinstance(point.get("hosts"), int):
            hosts_seen.append(point["hosts"])
    if hosts_seen != sorted(set(hosts_seen)):
        problems.append(f"{where}: host counts must be strictly "
                        f"increasing, got {hosts_seen}")
    return problems


def check_serving(doc: dict, where: str) -> list:
    """BENCH_serving.json: the shard-count serving series."""
    problems: list = []
    if not isinstance(doc, dict):
        return [f"{where}: top level must be an object"]
    _require(problems, where, doc, "python", "str")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        problems.append(f"{where}: 'points' must be a non-empty list")
        return problems
    shards_seen = []
    for i, point in enumerate(points):
        at = f"{where}: points[{i}]"
        if not isinstance(point, dict):
            problems.append(f"{at}: must be an object")
            continue
        for key in SERVING_POINT_NUMBERS:
            _require(problems, at, point, key, "number")
        for key in SERVING_POINT_INTS:
            _require(problems, at, point, key, "int")
        for key in SERVING_POINT_COUNTS:
            value = point.get(key)
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 0:
                problems.append(f"{at}: {key!r} must be a non-negative "
                                f"integer, got {value!r}")
        good = point.get("good_fraction")
        if not isinstance(good, (int, float)) or isinstance(good, bool) \
                or not 0.0 <= good <= 1.0:
            problems.append(f"{at}: 'good_fraction' must be in [0, 1], "
                            f"got {good!r}")
        if not isinstance(point.get("replication"), bool):
            problems.append(f"{at}: 'replication' must be a boolean")
        if isinstance(point.get("shards"), int):
            shards_seen.append(point["shards"])
    if shards_seen != sorted(set(shards_seen)):
        problems.append(f"{where}: shard counts must be strictly "
                        f"increasing, got {shards_seen}")
    return problems


def _count(problems: list, where: str, obj: dict, key: str) -> None:
    """Require a non-negative integer (zero is legitimate)."""
    value = obj.get(key)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        problems.append(f"{where}: {key!r} must be a non-negative "
                        f"integer, got {value!r}")


def check_cache(doc: dict, where: str) -> list:
    """BENCH_cache.json: the elastic-caching ablation rows + claim."""
    problems: list = []
    if not isinstance(doc, dict):
        return [f"{where}: top level must be an object"]
    _require(problems, where, doc, "python", "str")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append(f"{where}: 'rows' must be a non-empty list")
        return problems
    for i, row in enumerate(rows):
        at = f"{where}: rows[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{at}: must be an object")
            continue
        for key in ("workload", "policy"):
            _require(problems, at, row, key, "str")
        for key in ("migration", "adaptive"):
            if not isinstance(row.get(key), bool):
                problems.append(f"{at}: {key!r} must be a boolean, "
                                f"got {row.get(key)!r}")
        _require(problems, at, row, "elapsed_s", "number")
        for key in CACHE_ROW_INTS:
            _require(problems, at, row, key, "int")
        for key in CACHE_ROW_COUNTS:
            _count(problems, at, row, key)
        migrations = row.get("migrations")
        if not isinstance(migrations, dict):
            problems.append(f"{at}: missing 'migrations' object")
        else:
            for key in CACHE_MIGRATIONS:
                _count(problems, f"{at}: migrations", migrations, key)
    claim = doc.get("claim")
    if not isinstance(claim, dict):
        problems.append(f"{where}: missing 'claim' object")
        return problems
    at = f"{where}: claim"
    for key in ("workload", "policy"):
        _require(problems, at, claim, key, "str")
    for key in CACHE_CLAIM_COUNTS:
        _count(problems, at, claim, key)
    if not isinstance(claim.get("migration_reduces_refetches"), bool):
        problems.append(f"{at}: 'migration_reduces_refetches' must be "
                        f"a boolean")
    saved = claim.get("refetches_saved")
    if isinstance(saved, bool) or not isinstance(saved, int):
        problems.append(f"{at}: 'refetches_saved' must be an integer, "
                        f"got {saved!r}")
    elif (isinstance(claim.get("disk_reads_evict_only"), int)
          and isinstance(claim.get("disk_reads_migration"), int)
          and saved != (claim["disk_reads_evict_only"]
                        - claim["disk_reads_migration"])):
        problems.append(
            f"{at}: 'refetches_saved' ({saved}) does not equal "
            f"disk_reads_evict_only - disk_reads_migration "
            f"({claim['disk_reads_evict_only']} - "
            f"{claim['disk_reads_migration']})")
    return problems


def check_file(path: str) -> list:
    """Dispatch on the file name; unknown names are a problem too."""
    name = os.path.basename(path)
    if not os.path.exists(path):
        return [f"{name}: file not found at {path}"]
    try:
        with open(path) as f:
            doc = json.load(f)
    except ValueError as exc:
        return [f"{name}: invalid JSON ({exc})"]
    if "primitives" in name:
        return check_primitives(doc, name)
    if "scaling" in name:
        return check_scaling(doc, name)
    if "serving" in name:
        return check_serving(doc, name)
    if "cache" in name:
        return check_cache(doc, name)
    return [f"{name}: unrecognized benchmark file (expected a name "
            f"containing 'primitives', 'scaling', 'serving' or "
            f"'cache')"]


def main(argv=None) -> int:
    """Check the given files (default: both checked-in baselines)."""
    paths = (argv if argv is not None else sys.argv[1:]) or DEFAULTS
    problems = []
    for path in paths:
        problems.extend(check_file(path))
    for line in problems:
        print(f"BENCH SCHEMA: {line}", file=sys.stderr)
    if not problems:
        print(f"bench schema ok: {', '.join(os.path.basename(p) for p in paths)}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
