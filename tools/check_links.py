#!/usr/bin/env python
"""Markdown link checker for the repo's documentation.

Scans every ``*.md`` at the repo root and under ``docs/`` for inline
links and validates the **local** ones:

* relative file links must point at an existing file or directory;
* ``#fragment``-only links and ``http(s)``/``mailto`` URLs are skipped
  (CI has no network, and anchors are a rendering concern);
* a fragment on a local link (``FILE.md#section``) is checked only for
  file existence, not anchor existence.

Exit 1 with one line per broken link, so the CI step output is directly
actionable.  Run from the repo root::

    python tools/check_links.py
"""

from __future__ import annotations

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# inline markdown links [text](target); images are links too
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_FENCE = re.compile(r"^(```|~~~)")


def _markdown_files():
    """All tracked-ish markdown files: repo root + docs/, sorted."""
    found = []
    for entry in sorted(os.listdir(ROOT)):
        if entry.endswith(".md"):
            found.append(os.path.join(ROOT, entry))
    docs = os.path.join(ROOT, "docs")
    if os.path.isdir(docs):
        for dirpath, _dirs, files in sorted(os.walk(docs)):
            for name in sorted(files):
                if name.endswith(".md"):
                    found.append(os.path.join(dirpath, name))
    return found


def _links(path):
    """Yield (lineno, target) for inline links outside code fences."""
    in_fence = False
    with open(path, "r", encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, 1):
            if CODE_FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK.finditer(line):
                yield lineno, match.group(1)


def check():
    """Return a list of 'file:line: broken link -> target' strings."""
    broken = []
    for path in _markdown_files():
        base = os.path.dirname(path)
        for lineno, target in _links(path):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            local = target.split("#", 1)[0]
            if not local:
                continue
            resolved = os.path.normpath(os.path.join(base, local))
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, ROOT)
                broken.append(f"{rel}:{lineno}: broken link -> {target}")
    return broken


def main():
    """CLI entry point: print broken links, exit non-zero on any."""
    broken = check()
    for line in broken:
        print(line)
    if broken:
        print(f"\n{len(broken)} broken link(s)")
        return 1
    print("markdown links: all local targets exist")
    return 0


if __name__ == "__main__":
    sys.exit(main())
