#!/usr/bin/env python3
"""Validate fleet dashboard /api/* responses against the checked-in
schema (docs/schemas/fleet_api.json) — no third-party dependencies.

Usage (the CI fleet smoke)::

    python tools/check_fleet_api.py --schema docs/schemas/fleet_api.json \
        /api/meta=/tmp/meta.json /api/fleet=/tmp/fleet.json \
        /api/host=/tmp/host.json /api/events=/tmp/events.json \
        /api/insights=/tmp/insights.json \
        /api/timeseries=/tmp/timeseries.json

Each positional argument maps an endpoint name (a key of the schema's
``endpoints`` object) to a file holding one captured response body.  The
validator implements the subset of JSON Schema the fleet schema uses:
``type`` (string or list, with ``integer`` ⊂ ``number``), ``properties``
+ ``required``, ``items``, ``enum``, ``oneOf``, ``$ref`` into
``#/definitions``, and ``additionalProperties`` as a value schema.
Exit code 0 when every document validates, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

TYPES = {
    "object": dict, "array": list, "string": str, "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """A document that does not match the schema (with a JSON path)."""


def _type_ok(value, name: str) -> bool:
    if name == "number":
        return isinstance(value, (int, float)) \
            and not isinstance(value, bool)
    if name == "integer":
        return (isinstance(value, int) and not isinstance(value, bool)) \
            or (isinstance(value, float) and value.is_integer())
    return isinstance(value, TYPES[name])


def validate(value, schema: dict, root: dict, path: str = "$") -> None:
    """Recursively check ``value`` against ``schema``; raises
    :class:`SchemaError` naming the first offending path."""
    if "$ref" in schema:
        ref = schema["$ref"]
        prefix = "#/definitions/"
        if not ref.startswith(prefix):
            raise SchemaError(f"{path}: unsupported $ref {ref!r}")
        validate(value, root["definitions"][ref[len(prefix):]], root, path)
        return
    if "oneOf" in schema:
        errors = []
        for sub in schema["oneOf"]:
            try:
                validate(value, sub, root, path)
                return
            except SchemaError as exc:
                errors.append(str(exc))
        raise SchemaError(f"{path}: matched no oneOf branch "
                          f"({'; '.join(errors)})")
    if "enum" in schema:
        if value not in schema["enum"]:
            raise SchemaError(f"{path}: {value!r} not in {schema['enum']}")
        return
    types = schema.get("type")
    if types is not None:
        names = [types] if isinstance(types, str) else types
        if not any(_type_ok(value, n) for n in names):
            raise SchemaError(f"{path}: expected {'|'.join(names)}, "
                              f"got {type(value).__name__} {value!r:.60}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                raise SchemaError(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in props:
                validate(item, props[key], root, f"{path}.{key}")
            elif isinstance(extra, dict):
                validate(item, extra, root, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--schema", required=True,
                        help="path to fleet_api.json")
    parser.add_argument("pairs", nargs="+", metavar="ENDPOINT=FILE",
                        help="endpoint name = captured response file")
    args = parser.parse_args(argv)
    with open(args.schema) as fp:
        root = json.load(fp)
    failures = 0
    for pair in args.pairs:
        endpoint, _, filename = pair.partition("=")
        if not filename:
            print(f"check_fleet_api: bad argument {pair!r} "
                  "(want ENDPOINT=FILE)", file=sys.stderr)
            return 2
        schema = root["endpoints"].get(endpoint)
        if schema is None:
            print(f"check_fleet_api: unknown endpoint {endpoint!r}; "
                  f"schema defines {sorted(root['endpoints'])}",
                  file=sys.stderr)
            return 2
        with open(filename) as fp:
            try:
                doc = json.load(fp)
            except json.JSONDecodeError as exc:
                print(f"FAIL {endpoint} ({filename}): not JSON: {exc}")
                failures += 1
                continue
        try:
            validate(doc, schema, root)
            print(f"ok   {endpoint} ({filename})")
        except SchemaError as exc:
            print(f"FAIL {endpoint} ({filename}): {exc}")
            failures += 1
    if failures:
        print(f"check_fleet_api: {failures} endpoint(s) failed",
              file=sys.stderr)
        return 1
    print(f"check_fleet_api: all {len(args.pairs)} endpoint(s) validate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
