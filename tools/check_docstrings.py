#!/usr/bin/env python
"""Docstring-coverage lint for the ``repro`` package.

Walks every module under ``src/repro`` and requires a docstring on:

* the module itself,
* every public class (name not starting with ``_``) defined at module
  top level,
* every public function defined at module top level.

Private names, nested definitions, and methods are exempt — the bar is
"can a reader skim ``docs/API.md`` and the module headers and know what
each public entry point does", not 100%% annotation bureaucracy.

Known, intentional gaps go in :data:`ALLOWLIST` with a reason; the lint
fails (exit 1) on any *new* missing docstring and also on a stale
allowlist entry, so the list can only shrink.

Run from the repo root::

    python tools/check_docstrings.py
"""

from __future__ import annotations

import ast
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PACKAGE = os.path.join(ROOT, "src", "repro")

# "module:qualname" (or just "module" for the module docstring itself).
# Every entry needs a reason; an entry that no longer matches a missing
# docstring makes the lint fail so the list stays honest.
ALLOWLIST: dict[str, str] = {
}


def _public_targets(path):
    """Yield (qualname, node) pairs that must carry a docstring."""
    with open(path, "r", encoding="utf-8") as fp:
        tree = ast.parse(fp.read(), filename=path)
    yield "", tree  # the module docstring
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not node.name.startswith("_"):
                yield node.name, node


def check(package=PACKAGE):
    """Return a list of 'module:qualname — missing docstring' strings."""
    missing = []
    allow_hits = set()
    for dirpath, _dirs, files in sorted(os.walk(package)):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            module = os.path.relpath(path, os.path.join(ROOT, "src"))
            module = module[:-3].replace(os.sep, ".")
            if module.endswith(".__init__"):
                module = module[:-len(".__init__")]
            for qualname, node in _public_targets(path):
                if ast.get_docstring(node):
                    continue
                ref = f"{module}:{qualname}" if qualname else module
                if ref in ALLOWLIST:
                    allow_hits.add(ref)
                    continue
                missing.append(ref)
    stale = sorted(set(ALLOWLIST) - allow_hits)
    return missing, stale


def main():
    """CLI entry point: print findings, exit non-zero on any."""
    missing, stale = check()
    for ref in missing:
        print(f"missing docstring: {ref}")
    for ref in stale:
        print(f"stale allowlist entry (docstring exists now): {ref}")
    if missing or stale:
        print(f"\n{len(missing)} missing, {len(stale)} stale "
              "(see tools/check_docstrings.py ALLOWLIST)")
        return 1
    print("docstring coverage: all public modules/classes/functions "
          "documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
