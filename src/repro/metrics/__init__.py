"""Measurement utilities: counters, time series and report formatting."""

from repro.metrics.ascii import line_chart, sparkline
from repro.metrics.recorder import Recorder, TimeSeries
from repro.metrics.report import format_series, format_table, speedup

__all__ = ["Recorder", "TimeSeries", "format_series", "format_table",
           "line_chart", "sparkline", "speedup"]
