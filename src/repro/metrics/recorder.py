"""Lightweight counters and time series shared by all components.

Every daemon, NIC, disk and cache owns a :class:`Recorder`; experiments pull
numbers out of them after a run.  Recording is plain dictionary arithmetic —
cheap enough to leave on unconditionally.
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from typing import Iterable, Sequence

#: weak references to every Recorder ever created, in creation order —
#: the observability snapshot (:mod:`repro.obs.snapshot`) walks this to
#: collect the whole system's counters without a wiring pass
_REGISTRY: list[weakref.ref] = []

#: active strong-reference collections (see :func:`start_collection`)
_COLLECTORS: list[list] = []


def iter_recorders() -> Iterable["Recorder"]:
    """All live recorders in creation order (dead ones are skipped)."""
    for ref in _REGISTRY:
        rec = ref()
        if rec is not None:
            yield rec


def start_collection() -> list:
    """Keep every Recorder created from now on alive (strong refs).

    The registry itself is weak so experiments don't leak; a snapshot
    taken *after* a run would then see nothing.  The CLI brackets a run
    with ``start_collection()`` / ``stop_collection()`` so the run's
    recorders survive until the snapshot is written.  Returns the list
    holding the references.
    """
    collected: list = []
    _COLLECTORS.append(collected)
    return collected


def stop_collection(collected: list) -> None:
    """Stop collecting into (and release) a :func:`start_collection` list."""
    try:
        _COLLECTORS.remove(collected)
    except ValueError:
        pass


class Recorder:
    """A named bag of additive counters and value accumulators."""

    def __init__(self, name: str = ""):
        self.name = name
        self._counters: defaultdict[str, float] = defaultdict(float)
        self._samples: defaultdict[str, list[float]] = defaultdict(list)
        if len(_REGISTRY) % 4096 == 0:  # amortized pruning of dead refs
            _REGISTRY[:] = [r for r in _REGISTRY if r() is not None]
        _REGISTRY.append(weakref.ref(self))
        for collected in _COLLECTORS:
            collected.append(self)

    # -- counters -----------------------------------------------------------
    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def count(self, key: str) -> float:
        """Current value of counter ``key`` (0 if never incremented)."""
        return self._counters.get(key, 0.0)

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    # -- series enumeration (the exporters' API) ----------------------------
    def counter_names(self) -> list[str]:
        """Registered counter keys, in first-increment order."""
        return list(self._counters)

    def sample_names(self) -> list[str]:
        """Registered sample keys, in first-observation order."""
        return list(self._samples)

    def names(self) -> list[str]:
        """All registered series keys: counters, then samples."""
        seen = dict.fromkeys(self._counters)
        seen.update(dict.fromkeys(self._samples))
        return list(seen)

    # -- samples --------------------------------------------------------------
    def sample(self, key: str, value: float) -> None:
        """Append one observation to the sample list for ``key``."""
        self._samples[key].append(value)

    def samples(self, key: str) -> list[float]:
        return list(self._samples.get(key, []))

    def mean(self, key: str) -> float:
        vals = self._samples.get(key)
        if not vals:
            return 0.0
        return sum(vals) / len(vals)

    def maximum(self, key: str) -> float:
        vals = self._samples.get(key)
        return max(vals) if vals else 0.0

    def percentile(self, key: str, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) of the samples for ``key``,
        with linear interpolation between order statistics (numpy's
        default method).  Returns 0.0 when no samples exist, matching
        :meth:`mean`/:meth:`maximum`."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        vals = self._samples.get(key)
        if not vals:
            return 0.0
        ordered = sorted(vals)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        frac = pos - lo
        if frac == 0.0 or lo + 1 >= len(ordered):
            return ordered[lo]
        return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac

    def histogram(self, key: str,
                  bins: int | Sequence[float] = 10
                  ) -> tuple[list[int], list[float]]:
        """Histogram of the samples for ``key``.

        ``bins`` is either a bin count (equal-width bins spanning
        [min, max]) or an explicit increasing edge sequence.  Returns
        ``(counts, edges)`` with ``len(edges) == len(counts) + 1``; the
        last bin is closed on both sides, like numpy.  Empty sample
        lists yield all-zero counts (edges [0, 1] when ``bins`` is a
        count).
        """
        vals = self._samples.get(key, [])
        if isinstance(bins, int):
            if bins < 1:
                raise ValueError(f"need at least 1 bin, got {bins}")
            lo = min(vals) if vals else 0.0
            hi = max(vals) if vals else 1.0
            if hi == lo:
                hi = lo + 1.0
            width = (hi - lo) / bins
            edges = [lo + i * width for i in range(bins)] + [hi]
        else:
            edges = [float(e) for e in bins]
            if len(edges) < 2 or any(a >= b for a, b in
                                     zip(edges, edges[1:])):
                raise ValueError("bin edges must be increasing, >= 2")
        counts = [0] * (len(edges) - 1)
        for v in vals:
            if v < edges[0] or v > edges[-1]:
                continue
            lo_i, hi_i = 0, len(counts) - 1
            while lo_i < hi_i:
                mid = (lo_i + hi_i + 1) // 2
                if edges[mid] <= v:
                    lo_i = mid
                else:
                    hi_i = mid - 1
            counts[min(lo_i, len(counts) - 1)] += 1
        return counts, edges

    def clear(self) -> None:
        self._counters.clear()
        self._samples.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Recorder {self.name!r} {dict(self._counters)}>"


class TimeSeries:
    """(time, value) pairs with stepwise integration helpers.

    Used for Section-2 style availability traces: ``integral``/``average``
    treat the series as a right-continuous step function, matching how the
    original study averaged sampled memory levels.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time: float) -> float:
        """Step-function value at ``time`` (last recorded value <= time)."""
        if not self.times or time < self.times[0]:
            raise ValueError(f"no value recorded at or before t={time}")
        lo, hi = 0, len(self.times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.times[mid] <= time:
                lo = mid
            else:
                hi = mid - 1
        return self.values[lo]

    def integral(self, t0: float, t1: float) -> float:
        """Integral of the step function over ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return 0.0
        total = 0.0
        prev_t = t0
        prev_v = self.value_at(t0)
        for t, v in zip(self.times, self.values):
            if t <= t0:
                continue
            if t >= t1:
                break
            total += prev_v * (t - prev_t)
            prev_t, prev_v = t, v
        total += prev_v * (t1 - prev_t)
        return total

    def average(self, t0: float, t1: float) -> float:
        """Time-weighted mean over ``[t0, t1]``."""
        if t1 == t0:
            return self.value_at(t0)
        return self.integral(t0, t1) / (t1 - t0)

    def minimum(self) -> float:
        if not self.values:
            raise ValueError("empty time series")
        return min(self.values)

    def maximum(self) -> float:
        if not self.values:
            raise ValueError("empty time series")
        return max(self.values)

    @staticmethod
    def aggregate(series: Iterable["TimeSeries"], times: Iterable[float],
                  name: str = "sum") -> "TimeSeries":
        """Sum several step series sampled at common ``times``."""
        out = TimeSeries(name)
        series = list(series)
        for t in times:
            out.record(t, sum(s.value_at(t) for s in series))
        return out
