"""Lightweight counters and time series shared by all components.

Every daemon, NIC, disk and cache owns a :class:`Recorder`; experiments pull
numbers out of them after a run.  Recording is plain dictionary arithmetic —
cheap enough to leave on unconditionally.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable


class Recorder:
    """A named bag of additive counters and value accumulators."""

    def __init__(self, name: str = ""):
        self.name = name
        self._counters: defaultdict[str, float] = defaultdict(float)
        self._samples: defaultdict[str, list[float]] = defaultdict(list)

    # -- counters -----------------------------------------------------------
    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def count(self, key: str) -> float:
        """Current value of counter ``key`` (0 if never incremented)."""
        return self._counters.get(key, 0.0)

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    # -- samples --------------------------------------------------------------
    def sample(self, key: str, value: float) -> None:
        """Append one observation to the sample list for ``key``."""
        self._samples[key].append(value)

    def samples(self, key: str) -> list[float]:
        return list(self._samples.get(key, []))

    def mean(self, key: str) -> float:
        vals = self._samples.get(key)
        if not vals:
            return 0.0
        return sum(vals) / len(vals)

    def maximum(self, key: str) -> float:
        vals = self._samples.get(key)
        return max(vals) if vals else 0.0

    def clear(self) -> None:
        self._counters.clear()
        self._samples.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Recorder {self.name!r} {dict(self._counters)}>"


class TimeSeries:
    """(time, value) pairs with stepwise integration helpers.

    Used for Section-2 style availability traces: ``integral``/``average``
    treat the series as a right-continuous step function, matching how the
    original study averaged sampled memory levels.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time: float) -> float:
        """Step-function value at ``time`` (last recorded value <= time)."""
        if not self.times or time < self.times[0]:
            raise ValueError(f"no value recorded at or before t={time}")
        lo, hi = 0, len(self.times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.times[mid] <= time:
                lo = mid
            else:
                hi = mid - 1
        return self.values[lo]

    def integral(self, t0: float, t1: float) -> float:
        """Integral of the step function over ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return 0.0
        total = 0.0
        prev_t = t0
        prev_v = self.value_at(t0)
        for t, v in zip(self.times, self.values):
            if t <= t0:
                continue
            if t >= t1:
                break
            total += prev_v * (t - prev_t)
            prev_t, prev_v = t, v
        total += prev_v * (t1 - prev_t)
        return total

    def average(self, t0: float, t1: float) -> float:
        """Time-weighted mean over ``[t0, t1]``."""
        if t1 == t0:
            return self.value_at(t0)
        return self.integral(t0, t1) / (t1 - t0)

    def minimum(self) -> float:
        if not self.values:
            raise ValueError("empty time series")
        return min(self.values)

    def maximum(self) -> float:
        if not self.values:
            raise ValueError("empty time series")
        return max(self.values)

    @staticmethod
    def aggregate(series: Iterable["TimeSeries"], times: Iterable[float],
                  name: str = "sum") -> "TimeSeries":
        """Sum several step series sampled at common ``times``."""
        out = TimeSeries(name)
        series = list(series)
        for t in times:
            out.record(t, sum(s.value_at(t) for s in series))
        return out
