"""Plain-text table and series formatting for benchmark output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent across experiments.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def speedup(baseline: float, improved: float) -> float:
    """Classic speedup: baseline time divided by improved time."""
    if improved <= 0:
        raise ValueError(f"non-positive improved time: {improved}")
    return baseline / improved


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], xlabel: str,
                  xs: Sequence, title: str = "") -> str:
    """Render named y-series over a shared x axis, one x per row.

    Every series must have exactly one value per x; a mismatched series
    raises :class:`ValueError` naming the offender instead of failing
    mid-render with an opaque ``IndexError``.
    """
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} values but the x axis "
                f"{xlabel!r} has {len(xs)}")
    headers = [xlabel] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[k][i] for k in series])
    return format_table(headers, rows, title=title)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)
