"""ASCII rendering of time series — the paper's Figures 1/2 in a terminal.

No plotting dependencies: series render as block-character charts and
one-line sparklines, good enough to eyeball the availability dips and
diurnal structure the paper's figures show.
"""

from __future__ import annotations

from typing import Sequence

#: eight block heights, lowest to highest
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 72,
              lo: float | None = None, hi: float | None = None) -> str:
    """One-line block-character rendering of a series."""
    vals = _resample(values, width)
    if lo is None:
        lo = min(vals)
    if hi is None:
        hi = max(vals)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1) + 0.5)
        out.append(_BLOCKS[max(0, min(idx, len(_BLOCKS) - 1))])
    return "".join(out)


def line_chart(values: Sequence[float], width: int = 72, height: int = 10,
               title: str = "", ylabel_fmt: str = "{:.0f}") -> str:
    """A multi-row block chart with a y-axis, for the Figure 1/2 series."""
    if height < 2:
        raise ValueError("height must be >= 2")
    vals = _resample(values, width)
    lo, hi = min(vals), max(vals)
    span = hi - lo or 1.0
    rows = []
    if title:
        rows.append(title)
    label_w = max(len(ylabel_fmt.format(hi)), len(ylabel_fmt.format(lo)))
    for level in range(height, 0, -1):
        cutoff_hi = lo + span * level / height
        cutoff_lo = lo + span * (level - 1) / height
        cells = []
        for v in vals:
            if v >= cutoff_hi:
                cells.append("█")
            elif v > cutoff_lo:
                frac = (v - cutoff_lo) / (cutoff_hi - cutoff_lo)
                cells.append(_BLOCKS[max(0, min(
                    int(frac * (len(_BLOCKS) - 1)), len(_BLOCKS) - 1))])
            else:
                cells.append(" ")
        if level == height:
            label = ylabel_fmt.format(hi)
        elif level == 1:
            label = ylabel_fmt.format(lo)
        else:
            label = ""
        rows.append(f"{label:>{label_w}} |{''.join(cells)}")
    rows.append(" " * label_w + " +" + "-" * len(vals))
    return "\n".join(rows)


def _resample(values: Sequence[float], width: int) -> list[float]:
    """Bucket-average a series down to at most ``width`` points."""
    vals = list(values)
    if not vals:
        raise ValueError("empty series")
    if len(vals) <= width:
        return [float(v) for v in vals]
    out = []
    n = len(vals)
    for i in range(width):
        a = i * n // width
        b = max(a + 1, (i + 1) * n // width)
        out.append(sum(vals[a:b]) / (b - a))
    return out
