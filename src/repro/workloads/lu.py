"""``lu`` — out-of-core dense LU decomposition (Section 5.2.1).

The paper factors an 8192x8192 double-precision matrix (536 MB) stored in
8 files, working on 64-column slabs: a compute-bound application (only 9%
of its time is I/O) with a *triangle-scan* read pattern — factoring slab
``j`` re-reads every earlier slab — and large requests (12 KB-516 KB,
330 KB average), run under the first-in replacement policy.

Provided here:

* a real out-of-core **left-looking blocked LU** (no pivoting; tests use
  diagonally dominant matrices) that stores column slabs in a backing
  file and moves them through the region-management library or plain FS
  reads, verifying ``L @ U == A`` in functional mode;
* a trace generator for the Figure 7 benchmark: the same triangle-scan
  request stream with per-update compute times derived from the block
  flop counts, calibrated so the baseline spends ~9% of its time in I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.app import TraceRequest


@dataclass(frozen=True)
class LuParams:
    """Matrix geometry (paper: n=8192, slab_cols=64 => 128 slabs)."""

    n: int = 256
    slab_cols: int = 32

    def __post_init__(self) -> None:
        if self.n % self.slab_cols:
            raise ValueError("n must be a multiple of slab_cols")

    @property
    def n_slabs(self) -> int:
        return self.n // self.slab_cols

    @property
    def slab_bytes(self) -> int:
        return self.n * self.slab_cols * 8

    @property
    def matrix_bytes(self) -> int:
        return self.n * self.n * 8


def make_test_matrix(rng: np.random.Generator, n: int) -> np.ndarray:
    """A well-conditioned matrix safe for LU without pivoting."""
    a = rng.random((n, n))
    a += np.eye(n) * n  # strongly diagonally dominant
    return a


def lu_factor_slabs(a: np.ndarray, slab_cols: int) -> np.ndarray:
    """In-memory reference: blocked left-looking LU, packed LU form."""
    lu = a.copy()
    n = a.shape[0]
    for j0 in range(0, n, slab_cols):
        j1 = j0 + slab_cols
        # apply updates from all earlier slabs
        for k0 in range(0, j0, slab_cols):
            k1 = k0 + slab_cols
            lkk = np.tril(lu[k0:k1, k0:k1], -1) + np.eye(slab_cols)
            lu[k0:k1, j0:j1] = np.linalg.solve(lkk, lu[k0:k1, j0:j1])
            lu[k1:, j0:j1] -= lu[k1:, k0:k1] @ lu[k0:k1, j0:j1]
        # factor the diagonal block and the panel below it
        for p in range(j0, j1):
            lu[p + 1:, p] /= lu[p, p]
            lu[p + 1:, j0 + (p - j0) + 1:j1] -= np.outer(
                lu[p + 1:, p], lu[p, p + 1:j1])
    return lu


def unpack_lu(lu: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a packed in-place LU factorization into (L, U) factors."""
    l = np.tril(lu, -1) + np.eye(lu.shape[0])
    u = np.triu(lu)
    return l, u


class OutOfCoreLU:
    """Slab-at-a-time LU against a backing file through cread/cwrite.

    The matrix lives column-slab-major in one backing file (the paper
    used 8 files; one file with slab-aligned regions exercises the same
    region keys and I/O sizes).  Only two slabs are in application memory
    at once — slab ``j`` being built and slab ``k`` streaming past — so
    memory traffic matches the out-of-core algorithm.
    """

    def __init__(self, platform, params: LuParams, use_dodo: bool,
                 policy: str = "first-in", dataset_name: str = "matrix"):
        self.platform = platform
        self.params = params
        self.use_dodo = use_dodo
        self.fs = platform.app.fs
        if not self.fs.exists(dataset_name):
            self.fs.create(dataset_name, size=params.matrix_bytes)
        self.fh = self.fs.open(dataset_name, "r+")
        self.cache = None
        if use_dodo:
            self.cache = platform.region_cache(policy=policy)
        self._crds: dict[int, int] = {}

    # -- slab I/O ----------------------------------------------------------------
    def _slab_offset(self, j: int) -> int:
        return j * self.params.slab_bytes

    def _crd(self, j: int):
        crd = self._crds.get(j)
        if crd is None:
            crd, err = yield from self.cache.copen(
                self.params.slab_bytes, self.fh.fd, self._slab_offset(j))
            if err != 0:
                raise RuntimeError(f"copen slab {j}: errno {err}")
            self._crds[j] = crd
        return crd

    def read_slab(self, j: int):
        """Process body: slab ``j`` as an (n, slab_cols) array."""
        p = self.params
        if self.use_dodo:
            crd = yield from self._crd(j)
            n, err, data = yield from self.cache.cread(crd, 0, p.slab_bytes)
            if err != 0:
                raise RuntimeError(f"cread slab {j}: errno {err}")
        else:
            n, data = yield self.fs.read(
                self.fh, self._slab_offset(j), p.slab_bytes)
        if data is None:
            return None
        return np.frombuffer(data, dtype=np.float64).reshape(
            p.n, p.slab_cols).copy()

    def write_slab(self, j: int, slab):
        p = self.params
        data = None if slab is None else slab.astype(np.float64).tobytes()
        if self.use_dodo:
            crd = yield from self._crd(j)
            _, err = yield from self.cache.cwrite(crd, 0, p.slab_bytes, data)
            if err != 0:
                raise RuntimeError(f"cwrite slab {j}: errno {err}")
        else:
            yield self.fs.write(self.fh, self._slab_offset(j),
                                p.slab_bytes, data)

    def load_matrix(self, a: np.ndarray):
        """Process body: write the input matrix into the backing file."""
        p = self.params
        for j in range(p.n_slabs):
            yield from self.write_slab(
                j, np.ascontiguousarray(a[:, j * p.slab_cols:
                                          (j + 1) * p.slab_cols]))

    def factor(self):
        """Process body: the triangle-scan factorization.

        Returns the packed LU matrix (functional mode) or None.
        """
        p = self.params
        b = p.slab_cols
        for j in range(p.n_slabs):
            slab_j = yield from self.read_slab(j)
            j0 = j * b
            for k in range(j):  # triangle scan: re-read earlier slabs
                slab_k = yield from self.read_slab(k)
                if slab_j is None or slab_k is None:
                    continue
                k0 = k * b
                lkk = np.tril(slab_k[k0:k0 + b, :], -1) + np.eye(b)
                slab_j[k0:k0 + b, :] = np.linalg.solve(
                    lkk, slab_j[k0:k0 + b, :])
                slab_j[k0 + b:, :] -= slab_k[k0 + b:, :] \
                    @ slab_j[k0:k0 + b, :]
            if slab_j is not None:
                for pcol in range(b):
                    prow = j0 + pcol
                    piv = slab_j[prow, pcol]
                    slab_j[prow + 1:, pcol] /= piv
                    slab_j[prow + 1:, pcol + 1:] -= np.outer(
                        slab_j[prow + 1:, pcol], slab_j[prow, pcol + 1:])
            yield from self.write_slab(j, slab_j)
        return (yield from self.assemble()) \
            if self.platform.params.store_payload else None

    def assemble(self):
        """Process body: read all slabs back into one packed LU matrix."""
        p = self.params
        out = np.empty((p.n, p.n))
        for j in range(p.n_slabs):
            slab = yield from self.read_slab(j)
            out[:, j * p.slab_cols:(j + 1) * p.slab_cols] = slab
        return out


def lu_trace(params: LuParams, flops_per_s: float = 50e6
             ) -> list[TraceRequest]:
    """The Figure 7 lu I/O trace: triangle-scan slab reads with compute
    time from the block flop counts.

    ``flops_per_s`` calibrates the 200 MHz Pentium Pro's dense-kernel
    rate; the default lands the baseline at roughly the paper's 9% I/O
    fraction (see the fig7 benchmark).
    """
    trace = []
    n, b = params.n, params.slab_cols
    sb = params.slab_bytes
    for j in range(params.n_slabs):
        trace.append(TraceRequest("read", j * sb, sb, 0.0))
        j0 = j * b
        for k in range(j):
            k0 = k * b
            # triangular solve (b^2 n) + rank-b update (2 b^2 (n - k0))
            flops = b * b * n + 2.0 * b * b * max(0, n - k0 - b)
            trace.append(TraceRequest("read", k * sb, sb,
                                      flops / flops_per_s))
        panel_flops = 2.0 / 3.0 * b * b * b + 2.0 * b * b * max(0, n - j0)
        trace.append(TraceRequest("write", j * sb, sb,
                                  panel_flops / flops_per_s))
    return trace
