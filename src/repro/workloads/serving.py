"""A request-serving tier over Dodo remote memory (the PR 9 workload).

A key-value / page-cache tier: ``n_keys`` fixed-size values live in
remote memory as persistent Dodo regions (loaded once, then owned by
nobody — the dmine pattern), and a pool of worker processes serves an
**open-loop** stream of Poisson arrivals with Zipfian key popularity.
Each worker holds a small :class:`~repro.core.regionlib.DescriptorCache`
— a hot key is served straight from the worker's cached descriptor with
one imd round-trip, while a cold key first pays a directory lookup.
That per-request directory traffic is exactly the load the sharded
manager (``core/shard.py``) exists to absorb: the serving benchmark
(``repro serve-bench``) sweeps the shard count and watches the tail.

Open-loop means arrivals do not wait for completions: when the
directory (or the admission limit) cannot keep up, latency grows
without bound and the admission controller starts rejecting — both are
visible in the p99/p999 and the ``rejected`` count rather than being
hidden by a closed loop's self-throttling.

Latencies feed a :class:`~repro.obs.slo.sketch.LatencySketch` via
:class:`~repro.obs.slo.sli.KindStats` (request kind ``"serve"``), so
tail percentiles come from the same streaming stack the SLO engine
uses; pass an :class:`~repro.obs.slo.engine.SloEngine` to evaluate the
serving-tier objectives (:data:`repro.obs.slo.engine.SERVING_SPECS`)
with burn-rate alerting during the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.regionlib import DescriptorCache
from repro.obs.slo.sli import KindStats, RequestRecord
from repro.sim import AllOf, Store

MB = 1024 * 1024

#: outcome -> the stage charged with the request's whole latency (the
#: serving tier records end-to-end latency, not a span decomposition)
_STAGE_OF_OUTCOME = {
    "remote-imd": "imd",
    "disk-fallback": "disk",
    "failed": "client",
}


@dataclass(frozen=True)
class ServingParams:
    """Shape of one serving run."""

    #: distinct keys (values); total footprint is n_keys * value_bytes
    n_keys: int = 512
    value_bytes: int = 16 * 1024
    #: Zipf popularity exponent (1.0 = classic, higher = more skew)
    zipf_s: float = 1.1
    #: open-loop Poisson arrival rate, requests per virtual second
    arrival_rate: float = 800.0
    #: measured serving window (after the load phase)
    duration_s: float = 10.0
    n_workers: int = 8
    #: admission control: arrivals beyond this many in-flight requests
    #: are rejected immediately (and count as failed)
    max_inflight: int = 64
    #: fraction of requests that write (remote push) instead of read
    write_fraction: float = 0.1
    #: per-worker descriptor-cache capacity; keys beyond it pay a
    #: directory lookup per request
    desc_cache: int = 16
    #: latency objective used for the good-request count
    latency_slo_s: float = 0.050


class ServingTier:
    """Loads the keyspace into remote memory, then serves the stream.

    Usage::

        tier = ServingTier(platform, ServingParams())
        sim.run(until=sim.process(tier.run()))
        results = tier.results()
    """

    def __init__(self, platform, params: ServingParams,
                 engine=None):
        self.platform = platform
        self.params = params
        self.sim = platform.sim
        #: optional SloEngine fed one record per request
        self.engine = engine
        self.stats = KindStats("serve", alpha=0.01)
        self.store = Store(self.sim)
        self.inflight = 0
        self.offered = 0
        self.completed = 0
        self.rejected = 0
        self.failed = 0
        self.disk_fallbacks = 0
        self.writes = 0
        self.good = 0
        self._req_id = 0
        #: every runtime the tier created (loader + workers) — the
        #: shard-routing counters the bench reports live on these
        self.runtimes: list = []
        fs = platform.app.fs
        size = params.n_keys * params.value_bytes
        if not fs.exists("serving"):
            fs.create("serving", size=size)
        self.fh = fs.open("serving", "r+")
        self.fs = fs
        # Zipf CDF over key ranks; drawn by inverse-transform sampling
        ranks = np.arange(1, params.n_keys + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, params.zipf_s)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    # -- phases ------------------------------------------------------------
    def run(self):
        """Generator: load every key, then serve the arrival stream."""
        yield from self._load()
        p = self.params
        workers = [self.sim.process(self._worker())
                   for _ in range(p.n_workers)]
        yield from self._arrivals()
        # drain: workers finish what was admitted, then take the poison
        while self.inflight > 0:
            yield self.sim.timeout(0.01)
        for _ in workers:
            yield self.store.put(None)
        yield AllOf(self.sim, workers)

    def _load(self):
        """Place every key's region in remote memory, persistently."""
        p = self.params
        loader = self.platform.runtime()
        self.runtimes.append(loader)
        for k in range(p.n_keys):
            desc, err = yield from loader.mopen(
                p.value_bytes, self.fh.fd, k * p.value_bytes)
            if err != 0:
                raise RuntimeError(
                    f"serving load failed at key {k}/{p.n_keys} "
                    f"(errno {err}): size the imd pools to hold the "
                    f"whole keyspace")
        yield from loader.detach(persist=True)

    def _arrivals(self):
        """Open-loop Poisson arrivals with Zipfian keys."""
        p = self.params
        rng_gap = self.sim.rng("serving.arrivals")
        rng_key = self.sim.rng("serving.keys")
        rng_rw = self.sim.rng("serving.rw")
        end = self.sim.now + p.duration_s
        while True:
            yield self.sim.timeout(float(
                rng_gap.exponential(1.0 / p.arrival_rate)))
            if self.sim.now >= end:
                return
            self.offered += 1
            key = int(np.searchsorted(self._cdf, float(rng_key.random()),
                                      side="right"))
            key = min(key, p.n_keys - 1)
            is_write = float(rng_rw.random()) < p.write_fraction
            if self.inflight >= p.max_inflight:
                self.rejected += 1
                self._observe(self.sim.now, self.sim.now, "failed")
                continue
            self.inflight += 1
            yield self.store.put((key, is_write, self.sim.now))

    def _worker(self):
        """One serving worker: own runtime, own descriptor cache."""
        runtime = self.platform.runtime()
        self.runtimes.append(runtime)
        cache = DescriptorCache(runtime, self.params.desc_cache)
        while True:
            req = yield self.store.get()
            if req is None:
                return
            key, is_write, t0 = req
            outcome = yield from self._serve(runtime, cache, key,
                                             is_write)
            self.inflight -= 1
            self._observe(t0, self.sim.now, outcome)

    def _serve(self, runtime, cache: DescriptorCache, key: int,
               is_write: bool):
        """One request; returns its outcome class."""
        p = self.params
        offset = key * p.value_bytes
        desc, err = yield from cache.open(p.value_bytes, self.fh.fd,
                                          offset)
        if err == 0:
            if is_write:
                self.writes += 1
                _, err = yield from runtime.mpush(desc, 0, p.value_bytes)
            else:
                _, err, _ = yield from runtime.mread(desc, 0,
                                                     p.value_bytes)
            if err == 0:
                return "remote-imd"
            cache.invalidate(self.fh.fd, offset)
        # remote memory unavailable (failover window, lost region):
        # a real tier would go to its backing store, so this one does
        self.disk_fallbacks += 1
        yield self.fs.read(self.fh, offset, p.value_bytes)
        return "disk-fallback"

    # -- accounting --------------------------------------------------------
    def _observe(self, start: float, end: float, outcome: str) -> None:
        self._req_id += 1
        stage = _STAGE_OF_OUTCOME[outcome]
        record = RequestRecord(
            "serve", self._req_id, 0, start, end, outcome, stage,
            {stage: end - start}, [])
        self.stats.observe(record)
        if outcome == "failed":
            self.failed += 1
        else:
            self.completed += 1
            if record.latency <= self.params.latency_slo_s:
                self.good += 1
        engine = self.engine
        if engine is not None and engine.enabled:
            engine.observe(self.sim, record)

    def results(self) -> dict:
        """JSON-safe summary (virtual-time quantities only)."""
        p = self.params
        sketch = self.stats.sketch

        def _ms(q: float) -> Optional[float]:
            v = sketch.quantile(q)
            return None if v is None else round(v * 1e3, 4)

        return {
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "writes": self.writes,
            "disk_fallbacks": self.disk_fallbacks,
            "throughput_rps": round(self.completed / p.duration_s, 3),
            "good_fraction": round(self.good / self.completed, 6)
            if self.completed else 0.0,
            "latency_slo_ms": p.latency_slo_s * 1e3,
            "p50_ms": _ms(0.50),
            "p90_ms": _ms(0.90),
            "p99_ms": _ms(0.99),
            "p999_ms": _ms(0.999),
            "mean_ms": round(sketch.mean() * 1e3, 4)
            if self.stats.count else None,
            "outcomes": dict(sorted(self.stats.outcomes.items())),
            "shard_routing": self.shard_routing(),
        }

    def shard_routing(self) -> dict:
        """Summed ``shard.*`` routing counters across every runtime the
        tier created (bounded-retry-storm evidence for the chaos tests)."""
        totals: dict[str, float] = {}
        for rt in self.runtimes:
            for name, value in rt.stats.counters.items():
                if name.startswith("shard."):
                    totals[name] = totals.get(name, 0.0) + value
        return dict(sorted(totals.items()))
