"""Workloads: the paper's two applications and three synthetic benchmarks."""

from repro.workloads.app import (RunResult, SyntheticRunner, TraceRequest,
                                 TraceRunner)
from repro.workloads.dmine import (Apriori, BLOCK_SIZE, DmineParams,
                                   brute_force_frequent, decode_block,
                                   dmine_trace, encode_blocks,
                                   generate_transactions)
from repro.workloads.lu import (LuParams, OutOfCoreLU, lu_factor_slabs,
                                lu_trace, make_test_matrix, unpack_lu)
from repro.workloads.synthetic import (PATTERNS, SyntheticParams,
                                       iteration_offsets)

__all__ = [
    "Apriori",
    "BLOCK_SIZE",
    "DmineParams",
    "LuParams",
    "OutOfCoreLU",
    "PATTERNS",
    "RunResult",
    "SyntheticParams",
    "SyntheticRunner",
    "TraceRequest",
    "TraceRunner",
    "brute_force_frequent",
    "decode_block",
    "dmine_trace",
    "encode_blocks",
    "generate_transactions",
    "iteration_offsets",
    "lu_factor_slabs",
    "lu_trace",
    "make_test_matrix",
    "unpack_lu",
]
