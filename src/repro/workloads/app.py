"""Application harness: run a request stream against the FS or Dodo.

Runs a workload twice-comparable ways on the Section 5.1 platform:

* **baseline** — plain ``read()`` through the OS page cache and disk (the
  app's otherwise-free memory all belongs to the file cache);
* **dodo** — through the region-management library (``cread``), with the
  region cache in application memory and remote memory behind it.

The harness owns the compute model (the synthetic benchmarks' fixed 10 ms
per request; the real applications pass their own per-request compute
times) and collects per-iteration wall-clock plus source counters, which
is exactly what Figures 7/8 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.regionlib import RegionCache
from repro.exp.platform import Platform
from repro.workloads.synthetic import SyntheticParams, iteration_offsets


@dataclass
class RunResult:
    """Outcome of one application run."""

    elapsed_s: float
    iteration_s: list[float] = field(default_factory=list)
    bytes_read: int = 0
    requests: int = 0

    @property
    def steady_state_s(self) -> float:
        """Mean time of the post-warmup iterations (2..n)."""
        if len(self.iteration_s) <= 1:
            return self.elapsed_s
        tail = self.iteration_s[1:]
        return sum(tail) / len(tail)


class SyntheticRunner:
    """Drives one synthetic benchmark on a platform."""

    def __init__(self, platform: Platform, params: SyntheticParams,
                 use_dodo: bool, policy: str = "lru",
                 region_bytes: Optional[int] = None,
                 dataset_name: str = "dataset"):
        self.platform = platform
        self.params = params
        self.use_dodo = use_dodo
        self.policy = policy
        #: Dodo caches at region granularity; the synthetic benchmarks use
        #: one region per request slot so access patterns translate 1:1
        self.region_bytes = region_bytes or params.req_size
        if params.dataset_bytes % self.region_bytes:
            raise ValueError("dataset must be a multiple of region size")
        self.fs = platform.app.fs
        if not self.fs.exists(dataset_name):
            self.fs.create(dataset_name, size=params.dataset_bytes)
        self.fh = self.fs.open(dataset_name, "r+")
        self.cache: Optional[RegionCache] = None
        if use_dodo:
            self.cache = platform.region_cache(policy=policy)
        self._crds: dict[int, int] = {}  # region index -> crd

    def run(self):
        """Process: execute the benchmark; value is a :class:`RunResult`."""
        return self.platform.sim.process(self._run())

    def _run(self):
        sim = self.platform.sim
        rng = sim.rng(f"workload.{self.params.pattern}")
        result = RunResult(elapsed_s=0.0)
        start = sim.now
        for offsets in iteration_offsets(self.params, rng):
            it_start = sim.now
            for off in offsets:
                yield sim.timeout(self.params.compute_s)
                yield from self._read(int(off), self.params.req_size)
                result.requests += 1
                result.bytes_read += self.params.req_size
            result.iteration_s.append(sim.now - it_start)
        result.elapsed_s = sim.now - start
        return result

    def _read(self, offset: int, length: int):
        if not self.use_dodo:
            yield self.fs.read(self.fh, offset, length)
            return
        ridx = offset // self.region_bytes
        crd = self._crds.get(ridx)
        if crd is None:
            crd, err = yield from self.cache.copen(
                self.region_bytes, self.fh.fd, ridx * self.region_bytes)
            if err != 0:
                raise RuntimeError(f"copen failed: errno {err}")
            self._crds[ridx] = crd
        n, err, _ = yield from self.cache.cread(
            crd, offset - ridx * self.region_bytes, length)
        if err != 0:
            raise RuntimeError(f"cread failed: errno {err}")


@dataclass
class TraceRequest:
    """One request of a recorded application I/O trace."""

    kind: str          # "read" | "write"
    offset: int
    length: int
    compute_s: float   # CPU time preceding this request


class TraceRunner:
    """Replays an application I/O trace (used by the dmine/lu drivers).

    The trace abstracts the application: each record carries the compute
    time that preceded the I/O, so replaying the trace against baseline
    and Dodo data paths reproduces the application's timing behaviour
    without re-running its arithmetic.
    """

    def __init__(self, platform: Platform, trace: Sequence[TraceRequest],
                 dataset_bytes: int, use_dodo: bool, policy: str = "first-in",
                 region_bytes: int = 128 * 1024,
                 dataset_name: str = "dataset",
                 cache: Optional[RegionCache] = None):
        self.platform = platform
        self.trace = trace
        self.use_dodo = use_dodo
        self.region_bytes = region_bytes
        self.fs = platform.app.fs
        if not self.fs.exists(dataset_name):
            self.fs.create(dataset_name, size=dataset_bytes)
        self.fh = self.fs.open(dataset_name, "r+")
        self.cache = cache
        if use_dodo and self.cache is None:
            self.cache = platform.region_cache(policy=policy)
        self._crds: dict[int, int] = {}

    def run(self):
        """Process: replay the trace; value is a :class:`RunResult`."""
        return self.platform.sim.process(self._run())

    def _run(self):
        sim = self.platform.sim
        result = RunResult(elapsed_s=0.0)
        start = sim.now
        for req in self.trace:
            if req.compute_s > 0:
                yield sim.timeout(req.compute_s)
            if req.kind == "read":
                yield from self._io(req, read=True)
            else:
                yield from self._io(req, read=False)
            result.requests += 1
            result.bytes_read += req.length
        result.elapsed_s = sim.now - start
        result.iteration_s.append(result.elapsed_s)
        return result

    def _io(self, req: TraceRequest, read: bool):
        # Requests may span region boundaries; split accordingly.
        offset, remaining = req.offset, req.length
        while remaining > 0:
            ridx = offset // self.region_bytes
            in_region = offset - ridx * self.region_bytes
            n = min(remaining, self.region_bytes - in_region)
            if self.use_dodo:
                crd = self._crds.get(ridx)
                if crd is None:
                    crd, err = yield from self.cache.copen(
                        self.region_bytes, self.fh.fd,
                        ridx * self.region_bytes)
                    if err != 0:
                        raise RuntimeError(f"copen errno {err}")
                    self._crds[ridx] = crd
                if read:
                    _, err, _ = yield from self.cache.cread(crd, in_region, n)
                else:
                    _, err = yield from self.cache.cwrite(crd, in_region, n)
                if err != 0:
                    raise RuntimeError(f"c{'read' if read else 'write'} "
                                       f"errno {err}")
            else:
                if read:
                    yield self.fs.read(self.fh, offset, n)
                else:
                    yield self.fs.write(self.fh, offset, n, None)
            offset += n
            remaining -= n
