"""I/O trace recording, persistence and analysis.

The Figure 7 benchmarks replay application I/O traces.  This module
closes the loop: a :class:`TraceRecorder` can be interposed on a live
(functional) application run to capture its actual request stream —
offsets, lengths, kinds and inter-request compute times — which can then
be saved, characterized (the paper's Section 5.2 descriptions: request
size distributions, read/write mix, access-pattern class) and replayed
through :class:`~repro.workloads.app.TraceRunner` against either data
path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.workloads.app import TraceRequest


class TraceRecorder:
    """Accumulates a request trace from a live run.

    Wraps time observation explicitly: the caller notifies the recorder
    around each request; the gap between the previous request's end and
    this one's start is recorded as that request's compute time.
    """

    def __init__(self, sim):
        self.sim = sim
        self.requests: list[TraceRequest] = []
        self._last_io_end: Optional[float] = None
        self._pending_start: Optional[float] = None
        self._pending: Optional[tuple[str, int, int]] = None

    def begin(self, kind: str, offset: int, length: int) -> None:
        """Call immediately before issuing the I/O."""
        if kind not in ("read", "write"):
            raise ValueError(f"bad request kind {kind!r}")
        if self._pending is not None:
            raise RuntimeError("begin() without matching end()")
        self._pending = (kind, offset, length)
        self._pending_start = self.sim.now

    def end(self) -> None:
        """Call immediately after the I/O completes."""
        if self._pending is None:
            raise RuntimeError("end() without begin()")
        kind, offset, length = self._pending
        compute = 0.0
        if self._last_io_end is not None:
            compute = max(0.0, self._pending_start - self._last_io_end)
        self.requests.append(TraceRequest(kind, offset, length, compute))
        self._last_io_end = self.sim.now
        self._pending = None

    def recording_fs(self, fs, fh):
        """A read/write facade over a FileSystem handle that records."""
        recorder = self

        class _Facade:
            def read(self, offset, n):
                recorder.begin("read", offset, n)
                proc = fs.read(fh, offset, n)
                return recorder._finish(proc)

            def write(self, offset, n, data=None):
                recorder.begin("write", offset, n)
                proc = fs.write(fh, offset, n, data)
                return recorder._finish(proc)

        return _Facade()

    def _finish(self, proc):
        sim = self.sim

        def wrapper():
            result = yield proc
            self.end()
            return result

        return sim.process(wrapper())


# -- persistence --------------------------------------------------------------------

def save_trace(requests: Sequence[TraceRequest], path: str) -> None:
    """Write a trace as JSON lines (kind, offset, length, compute_s)."""
    with open(path, "w", encoding="utf-8") as f:
        for r in requests:
            f.write(json.dumps({"k": r.kind, "o": r.offset, "l": r.length,
                                "c": r.compute_s}) + "\n")


def load_trace(path: str) -> list[TraceRequest]:
    """Read a JSONL request trace written by :func:`save_trace`."""
    out = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            out.append(TraceRequest(d["k"], int(d["o"]), int(d["l"]),
                                    float(d["c"])))
    return out


# -- characterization ----------------------------------------------------------------

def characterize(requests: Sequence[TraceRequest]) -> dict:
    """Summarize a trace the way Section 5.2 describes its applications:
    request-size stats, read fraction, compute share, and a crude
    access-pattern classification (sequential / multi-scan / random)."""
    if not requests:
        raise ValueError("empty trace")
    sizes = np.array([r.length for r in requests], dtype=float)
    reads = sum(1 for r in requests if r.kind == "read")
    compute = sum(r.compute_s for r in requests)

    offsets = [r.offset for r in requests if r.kind == "read"]
    sequential_steps = sum(
        1 for a, b in zip(offsets, offsets[1:])
        if b == a + requests[0].length or b > a)
    rewinds = sum(1 for a, b in zip(offsets, offsets[1:]) if b < a)
    n_pairs = max(1, len(offsets) - 1)
    if sequential_steps / n_pairs > 0.9:
        if rewinds >= 1:
            pattern = "multi-scan"
        else:
            pattern = "sequential"
    elif sequential_steps / n_pairs > 0.6:
        pattern = "triangle-scan"
    else:
        pattern = "random"

    return {
        "requests": len(requests),
        "read_fraction": reads / len(requests),
        "bytes": float(sizes.sum()),
        "mean_request_bytes": float(sizes.mean()),
        "min_request_bytes": float(sizes.min()),
        "max_request_bytes": float(sizes.max()),
        "total_compute_s": compute,
        "pattern": pattern,
    }
