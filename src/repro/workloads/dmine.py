"""``dmine`` — association-rule mining over retail data (Section 5.2.1).

The paper mines 10 million transactions (average size 20 items, maximal
potentially-frequent set size 3 — the Agrawal–Srikant workload) from a
1 GB dataset with a *multi-scan* access pattern and 128 KB reads, run
under the first-in replacement policy.

This module provides the real thing, scaled:

* an IBM-Quest-style transaction generator with embedded frequent
  patterns, serialized into self-contained 128 KB blocks;
* a from-scratch Apriori implementation whose passes scan the dataset
  through the region-management library (or plain FS reads for the
  baseline), decoding and counting actual bytes in functional mode;
* a trace generator for the Figure 7 benchmark, which replays dmine's
  I/O pattern (multi-pass sequential 128 KB reads with per-block compute)
  without the Python-side counting cost.

The dmine dataset lives on an *aged* disk region (scattered extents, see
DESIGN.md): the paper's measured dmine speedups (2.6/3.2) are only
reachable if its baseline reads pay seeks, which a freshly-written
contiguous file would not.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Optional

import numpy as np

from repro.workloads.app import TraceRequest

BLOCK_SIZE = 128 * 1024
_HEADER = struct.Struct("<I")  # transactions in this block
_TXN_HEADER = struct.Struct("<I")  # items in this transaction
_ITEM = struct.Struct("<I")


@dataclass(frozen=True)
class DmineParams:
    """Workload knobs (paper values, scaled by choosing n_transactions)."""

    n_transactions: int = 20_000
    avg_items: int = 20
    n_items: int = 1000
    #: number of embedded potentially-frequent patterns and their size
    n_patterns: int = 40
    pattern_len: int = 3
    #: probability a transaction contains some embedded pattern
    pattern_prob: float = 0.35
    #: minimum support as a fraction of transactions
    min_support: float = 0.02
    max_itemset_len: int = 3


def generate_transactions(rng: np.random.Generator,
                          params: DmineParams) -> list[list[int]]:
    """Synthetic retail transactions with planted frequent patterns."""
    patterns = [sorted(rng.choice(params.n_items, size=params.pattern_len,
                                  replace=False).tolist())
                for _ in range(params.n_patterns)]
    txns = []
    for _ in range(params.n_transactions):
        size = max(1, int(rng.poisson(params.avg_items)))
        items = set(rng.integers(0, params.n_items,
                                 size=size).tolist())
        if rng.random() < params.pattern_prob:
            items.update(patterns[int(rng.integers(0, len(patterns)))])
        txns.append(sorted(items))
    return txns


def encode_blocks(txns: Iterable[list[int]]) -> bytes:
    """Serialize transactions into self-contained BLOCK_SIZE blocks.

    Each block: u32 transaction count, then [u32 n, n * u32 item] records,
    zero-padded to the block size so every 128 KB read decodes alone.
    """
    blocks = []
    cur = bytearray(_HEADER.size)
    count = 0
    for txn in txns:
        rec = _TXN_HEADER.pack(len(txn)) + b"".join(
            _ITEM.pack(i) for i in txn)
        if len(cur) + len(rec) > BLOCK_SIZE:
            _HEADER.pack_into(cur, 0, count)
            cur.extend(b"\x00" * (BLOCK_SIZE - len(cur)))
            blocks.append(bytes(cur))
            cur = bytearray(_HEADER.size)
            count = 0
        cur.extend(rec)
        count += 1
    if count:
        _HEADER.pack_into(cur, 0, count)
        cur.extend(b"\x00" * (BLOCK_SIZE - len(cur)))
        blocks.append(bytes(cur))
    return b"".join(blocks)


def decode_block(block: bytes) -> list[list[int]]:
    """Inverse of :func:`encode_blocks` for one block."""
    (count,) = _HEADER.unpack_from(block, 0)
    off = _HEADER.size
    txns = []
    for _ in range(count):
        (n,) = _TXN_HEADER.unpack_from(block, off)
        off += _TXN_HEADER.size
        items = list(struct.unpack_from(f"<{n}I", block, off))
        off += n * _ITEM.size
        txns.append(items)
    return txns


class Apriori:
    """Classic Apriori over a block-scan interface.

    Each pass consumes every block once (the multi-scan pattern); the
    caller supplies the scan as an iterator of decoded blocks, which is
    where the I/O system under test plugs in.
    """

    def __init__(self, params: DmineParams):
        self.params = params
        self.min_count = max(1, int(params.min_support
                                    * params.n_transactions))
        #: frequent itemsets by size: {k: {itemset_tuple: count}}
        self.frequent: dict[int, dict[tuple, int]] = {}

    # -- pass logic -------------------------------------------------------------
    def count_pass(self, blocks: Iterable[list[list[int]]],
                   candidates: Optional[set[tuple]] = None,
                   k: int = 1) -> dict[tuple, int]:
        """One scan: count 1-itemsets (k=1) or the given k-candidates."""
        counts: dict[tuple, int] = {}
        for txns in blocks:
            for txn in txns:
                if k == 1:
                    for item in txn:
                        t = (item,)
                        counts[t] = counts.get(t, 0) + 1
                else:
                    relevant = [i for i in txn
                                if (i,) in self.frequent[1]]
                    if len(relevant) < k:
                        continue
                    for combo in combinations(relevant, k):
                        if candidates is not None and combo not in candidates:
                            continue
                        counts[combo] = counts.get(combo, 0) + 1
        return {t: c for t, c in counts.items() if c >= self.min_count}

    def gen_candidates(self, k: int) -> set[tuple]:
        """Join step: (k-1)-frequent sets sharing a (k-2)-prefix, pruned."""
        prev = list(self.frequent[k - 1])
        cands = set()
        for i in range(len(prev)):
            for j in range(i + 1, len(prev)):
                a, b = prev[i], prev[j]
                if a[:-1] == b[:-1]:
                    cand = tuple(sorted(set(a) | set(b)))
                    if len(cand) == k and all(
                            sub in self.frequent[k - 1]
                            for sub in combinations(cand, k - 1)):
                        cands.add(cand)
        return cands

    def passes_needed(self) -> int:
        """Number of dataset scans Apriori will make (for trace gen)."""
        return self.params.max_itemset_len

    def run(self, scan_factory) -> dict[int, dict[tuple, int]]:
        """Plain (non-simulated) driver: ``scan_factory()`` returns a
        fresh block iterator per pass.  Used by tests as the reference."""
        self.frequent[1] = self.count_pass(scan_factory(), k=1)
        k = 2
        while k <= self.params.max_itemset_len and self.frequent[k - 1]:
            cands = self.gen_candidates(k)
            if not cands:
                break
            self.frequent[k] = self.count_pass(scan_factory(), cands, k=k)
            k += 1
        return self.frequent


def brute_force_frequent(txns: list[list[int]],
                         params: DmineParams) -> dict[int, dict[tuple, int]]:
    """Reference implementation: direct counting, for correctness tests."""
    min_count = max(1, int(params.min_support * params.n_transactions))
    out: dict[int, dict[tuple, int]] = {}
    for k in range(1, params.max_itemset_len + 1):
        counts: dict[tuple, int] = {}
        for txn in txns:
            for combo in combinations(sorted(set(txn)), k):
                counts[combo] = counts.get(combo, 0) + 1
        out[k] = {t: c for t, c in counts.items() if c >= min_count}
    return out


def dmine_trace(dataset_bytes: int, n_passes: int,
                compute_per_block_s: float = 2.0e-3,
                run_index: int = 0) -> list[TraceRequest]:
    """The Figure 7 dmine I/O trace: ``n_passes`` sequential scans of the
    dataset in 128 KB reads with constant per-block compute.

    ``run_index`` only matters for bookkeeping: dmine keeps its regions
    across runs, so the harness reuses one platform for consecutive runs.
    """
    trace = []
    for _ in range(n_passes):
        for off in range(0, dataset_bytes, BLOCK_SIZE):
            trace.append(TraceRequest(
                kind="read", offset=off,
                length=min(BLOCK_SIZE, dataset_bytes - off),
                compute_s=compute_per_block_s))
    return trace
