"""The three synthetic benchmarks of Section 5.2.2.

Each performs ``num_iter`` iterations; in each iteration it reads its
entire dataset with requests of ``req_size`` and a constant 10 ms compute
time between requests:

* **sequential** — reads the dataset front to back;
* **hotcold** — a 20% "hot" region receives 80% of the references,
  random within each region;
* **random** — uniform random requests over the whole dataset.

The request generators yield byte offsets aligned to ``req_size``; the
:mod:`~repro.workloads.app` harness turns them into FS reads (baseline)
or region-library reads (Dodo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

PATTERNS = ("sequential", "hotcold", "random")


@dataclass(frozen=True)
class SyntheticParams:
    """Knobs of one synthetic run (paper defaults)."""

    pattern: str = "sequential"
    dataset_bytes: int = 1 << 30
    req_size: int = 8192
    num_iter: int = 4
    compute_s: float = 0.010
    hot_fraction: float = 0.2
    hot_prob: float = 0.8

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(f"pattern must be one of {PATTERNS}, "
                             f"got {self.pattern!r}")
        if self.dataset_bytes % self.req_size:
            raise ValueError("dataset_bytes must be a multiple of req_size")

    @property
    def requests_per_iter(self) -> int:
        return self.dataset_bytes // self.req_size


def iteration_offsets(params: SyntheticParams,
                      rng: np.random.Generator) -> Iterator[np.ndarray]:
    """Yield one array of request offsets per iteration.

    Every iteration touches ``requests_per_iter`` requests ("reads its
    entire data set ... according to the access pattern").
    """
    n = params.requests_per_iter
    for _ in range(params.num_iter):
        if params.pattern == "sequential":
            yield np.arange(n, dtype=np.int64) * params.req_size
        elif params.pattern == "random":
            yield rng.integers(0, n, size=n, dtype=np.int64) \
                * params.req_size
        else:  # hotcold
            n_hot_slots = max(1, int(n * params.hot_fraction))
            is_hot = rng.random(n) < params.hot_prob
            hot = rng.integers(0, n_hot_slots, size=n, dtype=np.int64)
            cold = rng.integers(n_hot_slots, n, size=n, dtype=np.int64)
            yield np.where(is_hot, hot, cold) * params.req_size
