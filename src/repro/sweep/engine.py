"""The sweep driver: fan points across workers, memoize, resume.

:func:`run_sweep` executes a :class:`~repro.sweep.spec.SweepSpec`:

1. every point is content-addressed (:func:`repro.sweep.cache.point_key`
   — identity = experiment + seed + overrides + code fingerprint);
2. with ``resume=True`` and a cache directory, points whose key already
   has an entry are reported as **cached** without running anything —
   an interrupted sweep continues exactly where it left off;
3. remaining points run through :func:`repro.sweep.runner.run_sweep_point`
   either inline (``jobs=1``) or on a ``multiprocessing`` pool
   (``jobs>1``).  Each worker builds its own fresh simulator from the
   point's seed, so results are byte-identical regardless of worker
   count or completion order (asserted in ``tests/sweep/`` and CI);
4. successful results are written to the cache **as they complete**
   (atomic temp+rename), so a crash mid-sweep never loses finished
   points and never leaves a torn entry;
5. a failed point is recorded (first line of the error) and does *not*
   poison the sweep: other points continue, the failure is never
   cached, and a later resume retries only the failures.

Progress goes to the ``progress`` stream as one line per completed
point, with running done/cached/failed counts and an ETA extrapolated
from the mean wall time of completed points.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, IO, Optional

from repro.obs.files import atomic_write
from repro.sweep.cache import ResultCache, code_fingerprint, point_key
from repro.sweep.runner import run_sweep_point
from repro.sweep.spec import SweepPoint, SweepSpec, canonical_text


def _pool_context(name: Optional[str] = None):
    """The multiprocessing context to fan out with.

    ``fork`` is preferred where available (cheap, inherits the loaded
    package), falling back to the platform default elsewhere.
    """
    if name:
        return multiprocessing.get_context(name)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _execute(payload: tuple) -> tuple:
    """Worker body: run one point, never raise (errors become data)."""
    index, experiment, seed, overrides = payload
    point = SweepPoint(experiment, seed=seed, overrides=overrides)
    start = time.perf_counter()
    try:
        result = run_sweep_point(point)
        return index, "ok", result, None, time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - reported per point
        error = f"{type(exc).__name__}: {exc}".splitlines()[0]
        return index, "failed", None, error, time.perf_counter() - start


def _apply(payload: tuple) -> object:
    """Worker body for :func:`parallel_map`: ``fn(**kwargs)``."""
    fn, kwargs = payload
    return fn(**kwargs)


def parallel_map(fn: Callable, kwargs_list: list[dict], jobs: int = 1,
                 mp_context: Optional[str] = None) -> list:
    """Run ``fn(**kwargs)`` for each entry, optionally on a pool.

    Results come back in input order.  ``fn`` must be picklable (a
    module-level function) when ``jobs > 1``.  This is the light-weight
    sibling of :func:`run_sweep` for callers that want parallelism but
    manage their own result shapes and caching — e.g.
    :func:`repro.exp.fig8.run_fig8` routes its panel grid through here.
    """
    payloads = [(fn, kwargs) for kwargs in kwargs_list]
    if jobs <= 1 or len(payloads) <= 1:
        return [_apply(p) for p in payloads]
    ctx = _pool_context(mp_context)
    with ctx.Pool(processes=min(jobs, len(payloads))) as pool:
        return pool.map(_apply, payloads)


@dataclass
class PointRun:
    """Outcome of one point within a sweep."""

    index: int
    point: SweepPoint
    key: str
    status: str  #: "ok" | "cached" | "failed"
    result: Optional[dict] = None
    error: Optional[str] = None
    wall_s: float = 0.0


@dataclass
class SweepResult:
    """Everything one :func:`run_sweep` invocation produced."""

    spec: SweepSpec
    fingerprint: str
    runs: list[PointRun] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ran(self) -> int:
        """Points actually executed this invocation."""
        return sum(1 for r in self.runs if r.status == "ok")

    @property
    def cached(self) -> int:
        """Points satisfied from the result cache."""
        return sum(1 for r in self.runs if r.status == "cached")

    @property
    def failed(self) -> int:
        """Points whose driver raised."""
        return sum(1 for r in self.runs if r.status == "failed")

    @property
    def ok(self) -> bool:
        """True when every point has a result (ran or cached)."""
        return self.failed == 0

    def summary(self) -> str:
        """One-line human summary (the CLI prints and CI greps this)."""
        return (f"sweep {self.spec.name}: {len(self.runs)} points — "
                f"{self.ran} ran, {self.cached} cached, "
                f"{self.failed} failed in {self.wall_s:.1f}s")

    def to_dict(self) -> dict:
        """Plain-data form of the whole sweep (for ``--out``)."""
        return {
            "spec": self.spec.to_dict(),
            "fingerprint": self.fingerprint,
            "summary": {"points": len(self.runs), "ran": self.ran,
                        "cached": self.cached, "failed": self.failed},
            "points": [{
                "index": r.index,
                "point": r.point.canonical(),
                "key": r.key,
                "status": r.status,
                "error": r.error,
                "result": r.result,
            } for r in self.runs],
            "timing": {"wall_s": round(self.wall_s, 3)},
        }

    def write(self, path: str) -> None:
        """Atomically write the sweep record as canonical JSON."""
        with atomic_write(path) as fp:
            fp.write(canonical_text(self.to_dict()))
            fp.write("\n")


def run_sweep(spec: SweepSpec, jobs: int = 1,
              cache_dir: Optional[str] = None, resume: bool = False,
              out: Optional[str] = None,
              progress: Optional[IO[str]] = None,
              mp_context: Optional[str] = None) -> SweepResult:
    """Execute ``spec``; see the module docstring for the contract.

    ``cache_dir=None`` disables memoization entirely.  With a cache
    directory, completed points are always *written*; they are only
    *read back* when ``resume=True`` (so a plain re-run recomputes and
    refreshes entries, while ``--resume`` skips them).
    """
    started = time.perf_counter()
    fingerprint = code_fingerprint()
    cache = ResultCache(cache_dir) if cache_dir else None
    result = SweepResult(spec=spec, fingerprint=fingerprint)
    runs: dict[int, PointRun] = {}
    pending: list[tuple] = []

    for index, point in enumerate(spec.points):
        key = point_key(point, fingerprint)
        if cache is not None and resume:
            record = cache.get(key)
            if record is not None:
                runs[index] = PointRun(index, point, key, "cached",
                                       result=record["result"])
                _report(progress, runs[index], len(runs),
                        len(spec.points), eta_s=None)
                continue
        runs[index] = PointRun(index, point, key, "pending")
        pending.append((index, point.experiment, point.seed,
                        point.overrides))

    ran_walls: list[float] = []

    def finish(index: int, status: str, point_result, error: str,
               wall: float) -> None:
        run = runs[index]
        run.status = status
        run.result = point_result
        run.error = error
        run.wall_s = wall
        if status == "ok":
            ran_walls.append(wall)
            if cache is not None:
                cache.put(run.key, run.point, point_result, fingerprint)
        done = sum(1 for r in runs.values() if r.status != "pending")
        remaining = len(spec.points) - done
        eta = (remaining * (sum(ran_walls) / len(ran_walls))
               if ran_walls and remaining else None)
        _report(progress, run, done, len(spec.points), eta)

    if jobs <= 1 or len(pending) <= 1:
        for payload in pending:
            finish(*_execute(payload))
    else:
        ctx = _pool_context(mp_context)
        with ctx.Pool(processes=min(jobs, len(pending))) as pool:
            for outcome in pool.imap_unordered(_execute, pending):
                finish(*outcome)

    result.runs = [runs[i] for i in range(len(spec.points))]
    result.wall_s = time.perf_counter() - started
    if out:
        result.write(out)
    return result


def _report(stream: Optional[IO[str]], run: PointRun, done: int,
            total: int, eta_s: Optional[float]) -> None:
    """One progress line per completed point."""
    if stream is None:
        return
    if run.status == "cached":
        tail = "cached"
    elif run.status == "failed":
        tail = f"FAILED ({run.error})"
    else:
        tail = f"ran in {run.wall_s:.2f}s"
    eta = f", eta {eta_s:.0f}s" if eta_s else ""
    stream.write(f"[{done}/{total}] {run.point.label()}: {tail}{eta}"
                 + os.linesep)
    stream.flush()
