"""Experiment adapters: one JSON-safe entry point per sweepable driver.

The sweep engine executes points by name through :data:`EXPERIMENTS`,
a registry mapping experiment names to plain functions that accept the
point's overrides (plus ``seed`` when the point carries one) as keyword
arguments and return **JSON-serializable** data.  The adapters wrap the
drivers in :mod:`repro.exp` and :mod:`repro.faults.chaos`, converting
their richer return values (dataclasses, tuple-keyed dicts, simulation
objects) into stable plain data — which is what makes results cacheable
and byte-comparable across ``--jobs`` settings.

Every adapter builds a fresh :class:`~repro.sim.Simulator` seeded from
its arguments, so a point's result is a pure function of
``(experiment, overrides, seed, code version)`` — the contract the
content-addressed cache in :mod:`repro.sweep.cache` assumes.

``selftest`` is a microscopic deterministic pseudo-experiment used by
the unit tests and handy for smoke-testing a sweep setup without
simulating anything; ``fail=True`` raises, exercising failure paths.
"""

from __future__ import annotations

import hashlib
import io
from typing import Callable

from repro.sweep.spec import SweepPoint, jsonify

EXPERIMENTS: dict[str, Callable[..., dict]] = {}


class UnknownExperimentError(ValueError):
    """A sweep point names an experiment with no registered adapter."""


def experiment(name: str) -> Callable:
    """Decorator: register an adapter under ``name``."""
    def register(fn: Callable[..., dict]) -> Callable[..., dict]:
        EXPERIMENTS[name] = fn
        return fn
    return register


def run_sweep_point(point: SweepPoint) -> dict:
    """Execute one point and return its JSON-safe result.

    Raises :class:`UnknownExperimentError` for unregistered experiment
    names; any exception the driver raises propagates (the engine
    records it as a failed point).
    """
    try:
        fn = EXPERIMENTS[point.experiment]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {point.experiment!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}") from None
    kwargs = dict(point.overrides)
    if point.seed is not None:
        kwargs["seed"] = point.seed
    return jsonify(fn(**kwargs))


# -- section 2 (trace studies) ------------------------------------------------

@experiment("fig1")
def _fig1(seed: int = 42, days: float = 4.0) -> dict:
    """Figure 1 cluster-availability summaries (series elided)."""
    from repro.exp.sec2 import run_fig1
    results = run_fig1(seed=seed, days=days)
    return {name: {"summary": res["summary"], "paper": res["paper"]}
            for name, res in results.items()}


@experiment("table1")
def _table1(seed: int = 43, days: float = 2.0,
            hosts_per_class: int = 4) -> dict:
    """Table 1 memory-by-use means/stds per host class."""
    from repro.exp.sec2 import run_table1
    return run_table1(seed=seed, days=days,
                      hosts_per_class=hosts_per_class)


@experiment("fig2")
def _fig2(seed: int = 44, days: float = 4.0) -> dict:
    """Figure 2 per-workstation availability stats (traces elided)."""
    from repro.exp.sec2 import run_fig2
    results = run_fig2(seed=seed, days=days)
    return {mb: {k: v for k, v in res.items() if k != "trace"}
            for mb, res in results.items()}


# -- section 5.1 --------------------------------------------------------------

@experiment("disk")
def _disk() -> dict:
    """The four-point application-level disk bandwidth table."""
    from repro.exp.disk_cal import run_disk_calibration
    return run_disk_calibration()


@experiment("fig7")
def _fig7(scale_lu: float = 1 / 64, scale_dmine: float = 1 / 16) -> dict:
    """Both Figure 7 applications on both transports."""
    from repro.exp.fig7 import run_fig7
    return run_fig7(scale_lu=scale_lu, scale_dmine=scale_dmine)


@experiment("fig7_lu")
def _fig7_lu(transport: str = "udp", scale: float = 1 / 64,
             seed: int = 7) -> dict:
    """One lu bar of Figure 7 (grid-friendly unit)."""
    from repro.exp.fig7 import run_lu
    return run_lu(transport, scale=scale, seed=seed)


@experiment("fig7_dmine")
def _fig7_dmine(transport: str = "udp", scale: float = 1 / 16,
                seed: int = 8, n_runs: int = 2) -> dict:
    """One dmine pair (run 1 + run 2) of Figure 7."""
    from repro.exp.fig7 import run_dmine
    return run_dmine(transport, scale=scale, seed=seed, n_runs=n_runs)


# -- figure 8 -----------------------------------------------------------------

@experiment("fig8_point")
def _fig8_point(pattern: str = "hotcold", req_size: int = 8192,
                dataset_gb: int = 1, transport: str = "udp",
                scale: float = 1 / 64, num_iter: int = 4,
                seed: int = 5) -> dict:
    """One bar of Figure 8: the natural grid unit for size ablations."""
    from repro.exp.fig8 import Fig8Point, run_point
    return run_point(Fig8Point(pattern, req_size, dataset_gb, transport),
                     scale=scale, num_iter=num_iter, seed=seed)


@experiment("fig8")
def _fig8(scale: float = 1 / 64, num_iter: int = 4) -> dict:
    """All four Figure 8 panels in one point."""
    from repro.exp.fig8 import run_fig8
    return run_fig8(scale=scale, num_iter=num_iter)


# -- section 5.3.1 ------------------------------------------------------------

@experiment("nondedicated")
def _nondedicated(seed: int = 9, n_desktops: int = 8,
                  num_iter: int = 4, idle_window_s: float = 20.0) -> dict:
    """Desktop-cluster run: speedup + reclaim-delay statistics."""
    from repro.exp.nondedicated import NonDedicatedParams, run_nondedicated
    results = run_nondedicated(NonDedicatedParams(
        seed=seed, n_desktops=n_desktops, num_iter=num_iter,
        idle_window_s=idle_window_s))
    out = {"speedup": results["speedup"]}
    for mode in ("baseline", "dodo"):
        entry = results[mode]
        out[mode] = {k: v for k, v in entry.items() if k != "result"}
    return out


# -- ablations ----------------------------------------------------------------

@experiment("ablation_allocator")
def _ablation_allocator(pool_mb: int = 64, n_ops: int = 4000,
                        seed: int = 3) -> dict:
    """First-fit vs buddy allocator under region churn."""
    from repro.exp.ablations import run_allocator_ablation
    return run_allocator_ablation(pool_mb=pool_mb, n_ops=n_ops, seed=seed)


@experiment("ablation_refraction")
def _ablation_refraction(scale: float = 1 / 128, seed: int = 4) -> dict:
    """Refraction period on vs off under memory pressure."""
    from repro.exp.ablations import run_refraction_ablation
    return run_refraction_ablation(scale=scale, seed=seed)


@experiment("ablation_policy")
def _ablation_policy(scale: float = 1 / 128, seed: int = 5) -> dict:
    """Replacement policies on a cyclic multi-scan."""
    from repro.exp.ablations import run_policy_ablation
    return run_policy_ablation(scale=scale, seed=seed)


@experiment("ablation_prefetch")
def _ablation_prefetch(scale: float = 1 / 128, seed: int = 7) -> dict:
    """Region prefetching extension on sequential scans."""
    from repro.exp.ablations import run_prefetch_ablation
    return run_prefetch_ablation(scale=scale, seed=seed)


@experiment("ablation_pregrant")
def _ablation_pregrant(size: int = 8192, n: int = 50,
                       transport: str = "udp", seed: int = 6) -> dict:
    """Window pre-grant vs offer/window handshake latency."""
    from repro.exp.ablations import run_pregrant_ablation
    return run_pregrant_ablation(size=size, n=n, transport=transport,
                                 seed=seed)


# -- elastic caching ----------------------------------------------------------

@experiment("cache")
def _cache(policy: str = "none", migration: bool = False,
           adaptive: bool = False, workload: str = "nondedicated",
           seed: int = 9, num_iter: int = 6) -> dict:
    """One elastic-caching ablation cell (docs/CACHING.md).

    ``run_cache`` already returns flat JSON-safe counters, so the
    adapter is a pass-through; the ``cache-ablation`` builtin spec
    grids this over policies × workloads.
    """
    from repro.exp.cache import run_cache
    return run_cache(policy=policy, migration=bool(migration),
                     adaptive=bool(adaptive), workload=workload,
                     seed=int(seed), num_iter=int(num_iter))


# -- scale-out ----------------------------------------------------------------

@experiment("scale")
def _scale(n_hosts: int = 1000, seed: int = 11, pattern: str = "hotcold",
           num_iter: int = 2, transport: str = "unet",
           owners: bool = True) -> dict:
    """One thousand-host-class scaling point (throughput-focused).

    Wall-clock fields vary run to run, so cached results record the
    machine they were measured on; the simulation outcome fields
    (``virtual_s``, ``events``, ``requests``) are deterministic.
    """
    from repro.exp.scale import run_scale
    return run_scale(n_hosts=n_hosts, seed=seed, pattern=pattern,
                     num_iter=num_iter, transport=transport, owners=owners)


# -- chaos --------------------------------------------------------------------

@experiment("chaos")
def _chaos(scenario: str = "fig7", seed: int = 0, audit: str = "raise",
           horizon_s: float = 20.0) -> dict:
    """One nemesis chaos run, reduced to plain data.

    The full event log is summarized as a SHA-256 of its JSONL dump —
    enough to prove byte-identical replay across ``--jobs`` settings
    without storing megabytes per point.
    """
    from repro.faults.chaos import run_chaos
    run = run_chaos(scenario, seed=seed, audit=audit,
                    horizon_s=horizon_s)
    plan = run["plan"]
    by_kind: dict[str, int] = {}
    for ev in plan:
        by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
    buf = io.StringIO()
    run["eventlog"].dump_jsonl(buf)
    auditor = run["auditor"]
    return {
        "scenario": scenario, "seed": run["seed"],
        "scheduled": len(plan), "injected": run["injected"],
        "healed": run["healed"], "degraded": run["degraded"],
        "fault_kinds": by_kind,
        "requests": run["result"].requests,
        "elapsed_s": run["result"].elapsed_s,
        "audit_passes": auditor.passes if auditor else 0,
        "audit_findings": len(auditor.findings) if auditor else 0,
        "eventlog_sha256":
            hashlib.sha256(buf.getvalue().encode()).hexdigest(),
        "eventlog_records": len(run["eventlog"].events),
    }


# -- serving ------------------------------------------------------------------

@experiment("serving")
def _serving(n_shards: int = 1, replication: bool = True, seed: int = 21,
             mgr_service_s: float = 0.002, arrival_rate: float = 800.0,
             duration_s: float = 10.0, n_keys: int = 512,
             n_workers: int = 8, write_fraction: float = 0.1,
             desc_cache: int = 16) -> dict:
    """One serve-bench point: the sharded-directory serving tier.

    ``run_serving`` already returns plain JSON-safe data, so the
    adapter is a pass-through; each point is a fresh simulator, making
    the shard-count series a natural sweep axis.
    """
    from repro.exp.serving import run_serving
    return run_serving(
        n_shards=n_shards, replication=replication, seed=seed,
        mgr_service_s=mgr_service_s, arrival_rate=arrival_rate,
        duration_s=duration_s, n_keys=n_keys, n_workers=n_workers,
        write_fraction=write_fraction, desc_cache=desc_cache)


# -- selftest -----------------------------------------------------------------

@experiment("selftest")
def _selftest(seed: int = 0, x: int = 1, fail: bool = False,
              fail_seeds: tuple = ()) -> dict:
    """Instant deterministic pseudo-experiment for tests and smoke runs."""
    if fail or seed in tuple(fail_seeds):
        raise RuntimeError(f"selftest: injected failure (seed={seed})")
    digest = hashlib.sha256(f"{seed}:{x}".encode()).hexdigest()
    return {"seed": seed, "x": x, "value": seed * 1000 + x,
            "digest": digest[:16]}
