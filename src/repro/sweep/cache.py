"""Content-addressed on-disk cache for sweep-point results.

Each completed point is stored under a key that is the SHA-256 of its
canonical identity: experiment name, seed, overrides (canonical JSON —
dict ordering cannot change the key), a cache schema version, and a
**code fingerprint** hashing every ``.py`` file of the installed
``repro`` package.  Editing any source file therefore invalidates the
whole cache implicitly: old entries are simply never looked up again
(stale files can be garbage-collected with ``prune``).

Entries are single JSON files, one per point, written atomically via
:func:`repro.obs.files.atomic_write` so an interrupted sweep can never
leave a half-written entry that a ``--resume`` would half-parse.  The
file content itself is canonical JSON, which makes cache directories
byte-comparable: a ``--jobs 1`` and a ``--jobs N`` run of the same spec
must produce identical trees (asserted in tests and CI).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro.obs.files import atomic_write
from repro.sweep.spec import SweepPoint, canonical_text

#: bump to invalidate every existing cache entry on a schema change
CACHE_VERSION = 1

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of the ``repro`` package.

    Files are hashed in sorted relative-path order (path and content
    both feed the digest), so the fingerprint is stable across
    machines and file-system iteration orders.  Computed once per
    process and memoized.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro
        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, root)
                digest.update(rel.encode())
                digest.update(b"\0")
                with open(path, "rb") as fp:
                    digest.update(fp.read())
                digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def point_key(point: SweepPoint, fingerprint: Optional[str] = None) -> str:
    """The content address of one sweep point (hex SHA-256)."""
    payload = dict(point.canonical())
    payload["cache_version"] = CACHE_VERSION
    payload["code"] = fingerprint or code_fingerprint()
    return hashlib.sha256(canonical_text(payload).encode()).hexdigest()


class ResultCache:
    """A directory of canonical-JSON result files keyed by content hash."""

    def __init__(self, root: str):
        self.root = root

    def path(self, key: str) -> str:
        """Where ``key``'s entry lives (two-level fan-out, git-style)."""
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[dict]:
        """The cached record for ``key``, or ``None`` on miss.

        A corrupt entry (truncated, invalid JSON — e.g. written by a
        crashed tool that bypassed the atomic writer) counts as a miss
        so a resume recomputes it instead of failing.
        """
        try:
            with open(self.path(key)) as fp:
                record = json.load(fp)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or "result" not in record:
            return None
        return record

    def put(self, key: str, point: SweepPoint, result: dict,
            fingerprint: Optional[str] = None) -> str:
        """Store ``result`` for ``point``; returns the entry's path.

        The record embeds the point identity and fingerprint so entries
        are self-describing (``prune`` and humans can audit them).
        """
        record = {
            "key": key,
            "cache_version": CACHE_VERSION,
            "code": fingerprint or code_fingerprint(),
            "point": point.canonical(),
            "result": result,
        }
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with atomic_write(path) as fp:
            fp.write(canonical_text(record))
            fp.write("\n")
        return path

    def prune(self, keep_fingerprint: Optional[str] = None) -> int:
        """Delete entries whose code fingerprint is not ``keep``.

        Returns the number of files removed.  With the default argument
        the current package fingerprint is kept, i.e. everything a
        present-day sweep could still hit survives.
        """
        keep = keep_fingerprint or code_fingerprint()
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fname in filenames:
                if not fname.endswith(".json"):
                    continue
                path = os.path.join(dirpath, fname)
                try:
                    with open(path) as fp:
                        record = json.load(fp)
                    stale = record.get("code") != keep
                except (OSError, json.JSONDecodeError):
                    stale = True
                if stale:
                    try:
                        os.unlink(path)
                        removed += 1
                    except OSError:
                        pass
        return removed
