"""Sweep specifications: what to run, declared as data.

A :class:`SweepSpec` is an ordered list of :class:`SweepPoint`\\ s, each
naming one experiment (a key of :data:`repro.sweep.runner.EXPERIMENTS`),
a seed, and a dict of keyword overrides for that experiment's driver.
Specs are plain JSON on disk::

    {
      "name": "fig8-seeds",
      "experiment": "fig8_point",
      "overrides": {"scale": 0.00390625, "num_iter": 2},
      "grid": {
        "pattern": ["sequential", "random"],
        "transport": ["udp", "unet"],
        "seed": [5, 6]
      }
    }

``grid`` is expanded as a full cross product (keys in sorted order, so
expansion order — and therefore point numbering — is deterministic);
the special grid key ``seed`` populates :attr:`SweepPoint.seed`, every
other key lands in the point's overrides on top of the spec-level
``overrides``.  An explicit ``points`` list can be given instead of (or
in addition to) a grid; each entry may override ``experiment``, ``seed``
and ``overrides`` individually.

Canonical JSON (:func:`canonical_text`) is the substrate of the result
cache: two points that differ only in dict-key ordering canonicalize to
the same bytes and therefore share one cache entry.  See
docs/SWEEPS.md.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, is_dataclass
from typing import Any, Iterable, Optional


class SpecError(ValueError):
    """A sweep spec that cannot be parsed or validated."""


def jsonify(obj: Any) -> Any:
    """Recursively convert ``obj`` into plain JSON-serializable data.

    Handles the shapes experiment drivers actually return: dataclasses
    (as dicts), tuples (as lists), numpy scalars (via ``.item()``), and
    dict keys that are not strings (tuples join with ``/``, everything
    else goes through ``str``).  Raises :class:`TypeError` for objects
    with no JSON story, so non-serializable results fail loudly at the
    point of conversion rather than deep inside ``json.dumps``.
    """
    if obj is None or type(obj) in (bool, int, float, str):
        return obj
    if isinstance(obj, bool):
        return bool(obj)
    if isinstance(obj, int):
        return int(obj)
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, str):
        return str(obj)
    if is_dataclass(obj) and not isinstance(obj, type):
        return jsonify({f: getattr(obj, f)
                        for f in obj.__dataclass_fields__})
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if isinstance(key, tuple):
                key = "/".join(str(k) for k in key)
            elif not isinstance(key, str):
                key = str(key)
            if key in out:
                raise TypeError(f"duplicate key {key!r} after "
                                "canonicalization")
            out[key] = jsonify(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    if hasattr(obj, "item") and not isinstance(obj, type):  # numpy scalar
        return jsonify(obj.item())
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} "
                    "for a sweep result")


def canonical_text(obj: Any) -> str:
    """Stable JSON text: sorted keys, no whitespace, jsonified values.

    Equal data structures produce byte-identical text regardless of
    insertion order — the property the content-addressed cache and the
    ``--jobs 1`` vs ``--jobs N`` identity guarantee rest on.
    """
    return json.dumps(jsonify(obj), sort_keys=True,
                      separators=(",", ":"))


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work: experiment name + seed + overrides."""

    experiment: str
    seed: Optional[int] = None
    overrides: dict = field(default_factory=dict)

    def canonical(self) -> dict:
        """The point's identity as plain data (feeds the cache key)."""
        return {"experiment": self.experiment, "seed": self.seed,
                "overrides": jsonify(self.overrides)}

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        bits = [self.experiment]
        if self.seed is not None:
            bits.append(f"seed={self.seed}")
        bits += [f"{k}={v}" for k, v in sorted(self.overrides.items())]
        return " ".join(bits)


@dataclass
class SweepSpec:
    """A named, ordered list of sweep points."""

    name: str
    points: list[SweepPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterable[SweepPoint]:
        return iter(self.points)

    def to_dict(self) -> dict:
        """Plain-data form (inverse of :meth:`from_dict`)."""
        return {"name": self.name,
                "points": [p.canonical() for p in self.points]}

    @classmethod
    def from_dict(cls, d: dict) -> "SweepSpec":
        """Build a spec from parsed JSON; see the module docstring for
        the accepted shape.  Raises :class:`SpecError` on bad input."""
        if not isinstance(d, dict):
            raise SpecError("sweep spec must be a JSON object, got "
                            f"{type(d).__name__}")
        unknown = set(d) - {"name", "experiment", "overrides", "grid",
                            "points"}
        if unknown:
            raise SpecError(f"unknown spec keys: {sorted(unknown)}")
        name = d.get("name", "sweep")
        base_exp = d.get("experiment")
        base_over = d.get("overrides", {})
        if not isinstance(base_over, dict):
            raise SpecError("'overrides' must be an object")
        points: list[SweepPoint] = []
        grid = d.get("grid")
        if grid is not None:
            if not isinstance(grid, dict) or not grid:
                raise SpecError("'grid' must be a non-empty object of "
                                "lists")
            if base_exp is None:
                raise SpecError("a grid needs a spec-level 'experiment'")
            for key, values in grid.items():
                if not isinstance(values, list) or not values:
                    raise SpecError(f"grid axis {key!r} must be a "
                                    "non-empty list")
            axes = sorted(grid)
            for combo in itertools.product(*(grid[a] for a in axes)):
                assignment = dict(zip(axes, combo))
                seed = assignment.pop("seed", None)
                points.append(SweepPoint(
                    base_exp, seed=seed,
                    overrides={**base_over, **assignment}))
        for entry in d.get("points", []):
            if not isinstance(entry, dict):
                raise SpecError("'points' entries must be objects")
            exp = entry.get("experiment", base_exp)
            if exp is None:
                raise SpecError("point without an 'experiment' (and no "
                                "spec-level default)")
            points.append(SweepPoint(
                exp, seed=entry.get("seed"),
                overrides={**base_over, **entry.get("overrides", {})}))
        if not points:
            raise SpecError("spec declares no points (need 'grid' "
                            "and/or 'points')")
        return cls(name=name, points=points)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a spec from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def read(cls, path: str) -> "SweepSpec":
        """Load a spec from a JSON file; :class:`SpecError` if the file
        is unreadable or malformed."""
        try:
            with open(path) as fp:
                text = fp.read()
        except OSError as exc:
            raise SpecError(f"cannot read sweep spec {path!r}: "
                            f"{exc.strerror or exc}") from exc
        return cls.from_json(text)


#: Ready-made specs runnable as ``repro sweep <name>``.  ``ci-grid`` is
#: the one CI exercises: 8 cheap Figure-8 points at scale 1/256, enough
#: to prove jobs=1/jobs=N identity and cache-resume behaviour.
BUILTIN_SPECS: dict[str, dict] = {
    "ci-grid": {
        "name": "ci-grid",
        "experiment": "fig8_point",
        "overrides": {"scale": 1 / 256, "num_iter": 2,
                      "req_size": 8192, "dataset_gb": 1},
        "grid": {
            "pattern": ["sequential", "random"],
            "transport": ["udp", "unet"],
            "seed": [5, 6],
        },
    },
    "chaos-seeds": {
        "name": "chaos-seeds",
        "experiment": "chaos",
        "grid": {
            "scenario": ["fig7", "nondedicated"],
            "seed": list(range(10)),
        },
    },
    "fig8-panels": {
        "name": "fig8-panels",
        "experiment": "fig8_point",
        "overrides": {"scale": 1 / 64, "num_iter": 4},
        "grid": {
            "pattern": ["sequential", "hotcold", "random"],
            "transport": ["udp", "unet"],
            "req_size": [8192, 32768],
            "dataset_gb": [1, 2],
        },
    },
    "fig7-seeds": {
        "name": "fig7-seeds",
        "experiment": "fig7_lu",
        "overrides": {"scale": 1 / 256},
        "grid": {"transport": ["udp", "unet"], "seed": [7, 17, 27]},
    },
    "cache-ablation": {
        "name": "cache-ablation",
        "experiment": "cache",
        "overrides": {"num_iter": 6},
        "grid": {
            "policy": ["none", "lru", "lfu", "clock", "cost-aware"],
            "workload": ["nondedicated", "fig7"],
            "seed": [9],
        },
        "points": [
            {"overrides": {"policy": "cost-aware", "migration": True,
                           "workload": "nondedicated"}, "seed": 9},
            {"overrides": {"policy": "lru", "migration": True,
                           "workload": "nondedicated"}, "seed": 9},
            {"overrides": {"policy": "lru", "adaptive": True,
                           "workload": "nondedicated"}, "seed": 9},
        ],
    },
}


def load_spec(ref: str) -> SweepSpec:
    """Resolve a CLI spec reference: a builtin name or a JSON file path."""
    if ref in BUILTIN_SPECS:
        return SweepSpec.from_dict(BUILTIN_SPECS[ref])
    if ref.endswith(".json"):
        return SweepSpec.read(ref)
    raise SpecError(
        f"unknown sweep spec {ref!r}: not a builtin "
        f"({', '.join(sorted(BUILTIN_SPECS))}) and not a .json file")
