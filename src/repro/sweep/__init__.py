"""Parallel experiment sweeps with a content-addressed result cache.

Declare a grid of points (experiment × config overrides × seed) as a
:class:`~repro.sweep.spec.SweepSpec`, then :func:`~repro.sweep.engine.
run_sweep` fans the points across a ``multiprocessing`` pool, memoizes
each completed point under a content hash of its full identity (spec
point + code-version fingerprint), and resumes interrupted sweeps by
skipping cache hits.  ``python -m repro sweep`` is the CLI front end.

Layer map:

* :mod:`repro.sweep.spec` — points, specs, grids, canonical JSON;
* :mod:`repro.sweep.cache` — fingerprinting and the on-disk store;
* :mod:`repro.sweep.runner` — per-experiment JSON-safe adapters;
* :mod:`repro.sweep.engine` — the pool driver, progress, resume.

Full guide: docs/SWEEPS.md.
"""

from repro.sweep.cache import ResultCache, code_fingerprint, point_key
from repro.sweep.engine import (PointRun, SweepResult, parallel_map,
                                run_sweep)
from repro.sweep.runner import (EXPERIMENTS, UnknownExperimentError,
                                run_sweep_point)
from repro.sweep.spec import (BUILTIN_SPECS, SpecError, SweepPoint,
                              SweepSpec, canonical_text, jsonify,
                              load_spec)

__all__ = [
    "BUILTIN_SPECS", "EXPERIMENTS", "PointRun", "ResultCache",
    "SpecError", "SweepPoint", "SweepResult", "SweepSpec",
    "UnknownExperimentError", "canonical_text", "code_fingerprint",
    "jsonify", "load_spec", "parallel_map", "point_key",
    "run_sweep", "run_sweep_point",
]
