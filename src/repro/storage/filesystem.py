"""A Unix-like file system over the disk model and page cache.

Implements what the paper's applications see: ``open``/``pread``/``pwrite``
/``fsync`` with an OS page cache in front of a mechanical disk.  The pieces
that matter for reproducing the evaluation:

* **Sequential readahead** — Linux-style: a read starting where the last
  one ended grows a readahead window (up to 128 KB) that is fetched in one
  disk operation, which is why sequential scans run at media rate and the
  ``sequential`` benchmark shows no Dodo speedup (Section 5.3).
* **File layout** — files are allocated in extents.  ``contiguity=N``
  places extents back to back (a freshly written benchmark file);
  a finite extent size with gaps models aged/fragmented on-disk layout
  (used for the ``dmine`` dataset, see DESIGN.md).
* **Real data (optional)** — with ``store_data=True`` files carry actual
  bytes so Dodo's write-through and read paths can be verified end to end.
* **Inode numbers** — region descriptors in the central manager are keyed
  by ``(inode, offset)`` exactly as in Section 4.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.recorder import Recorder
from repro.sim import Simulator
from repro.storage.disk import Disk
from repro.storage.pagecache import PageCache


class FsError(Exception):
    """File-system level failure (bad fd, bad mode, out of space...)."""


@dataclass(frozen=True)
class FsParams:
    """Tunables of the simulated file system: page size, readahead
    window bounds, and the extent-allocation / disk-aging model."""

    page_size: int = 4096
    #: max readahead window (Linux 2.x: 32 pages = 128 KB)
    readahead_max: int = 128 * 1024
    #: initial window granted on first sequential detection
    readahead_min: int = 16 * 1024
    #: extent size used when allocating file blocks; None = fully contiguous
    extent_bytes: Optional[int] = None
    #: random gap (0..gap) left between consecutive extents, in bytes —
    #: non-zero models mild aging of the disk layout
    extent_gap: int = 0
    #: scatter extents uniformly over the whole disk instead of bump
    #: allocation — models a heavily aged multi-file disk where a large
    #: dataset is interleaved with everything else (used for the dmine
    #: dataset; each extent boundary then costs a long seek)
    scatter: bool = False
    #: memory-copy bandwidth for cache-hit reads/writes, bytes/s
    copy_bandwidth: float = 150e6


@dataclass
class Extent:
    """One contiguous run of file bytes mapped onto the disk."""

    file_off: int
    disk_off: int
    length: int


@dataclass
class File:
    """An on-disk file: inode, name, size, and its extent map."""

    inode: int
    name: str
    size: int = 0
    extents: list[Extent] = field(default_factory=list)
    data: Optional[bytearray] = None
    nlink: int = 1
    #: readahead state: expected next sequential offset, current window,
    #: and how far ahead pages have already been brought in
    ra_next: int = -1
    ra_window: int = 0
    ra_until: int = 0


class FileHandle:
    """An open file descriptor (mode 'r' or 'r+')."""

    def __init__(self, fd: int, file: File, mode: str):
        self.fd = fd
        self.file = file
        self.mode = mode
        self.closed = False

    @property
    def writable(self) -> bool:
        return self.mode == "r+"

    @property
    def inode(self) -> int:
        return self.file.inode


class FileSystem:
    """One mounted file system: a disk, a page cache, and a name table."""

    def __init__(self, sim: Simulator, disk: Disk, cache_bytes: int,
                 params: FsParams | None = None, store_data: bool = False,
                 name: str = "fs"):
        self.sim = sim
        self.disk = disk
        self.params = params or FsParams()
        self.cache = PageCache(cache_bytes, self.params.page_size,
                               name=f"{name}.cache")
        self.store_data = store_data
        self._files: dict[str, File] = {}
        self._handles: dict[int, FileHandle] = {}
        self._next_fd = 3
        self._next_inode = 100
        self._next_disk_off = 0
        self._gap_rng = sim.rng(f"{name}.layout")
        self._scatter_slots: set[int] = set()  # extent slots already used
        self.stats = Recorder(name)
        if sim.telemetry.enabled:
            # the cache has no sim reference; its owner registers it
            sim.telemetry.register(sim, "pagecache", f"{name}.cache",
                                   self.cache)

    # -- namespace ----------------------------------------------------------------
    def create(self, name: str, size: int = 0) -> File:
        """Create a file, preallocating ``size`` bytes of extents."""
        if name in self._files:
            raise FsError(f"file exists: {name}")
        f = File(inode=self._next_inode, name=name)
        self._next_inode += 1
        if self.store_data:
            f.data = bytearray()
        self._files[name] = f
        if size:
            self._extend(f, size)
        return f

    def exists(self, name: str) -> bool:
        return name in self._files

    def unlink(self, name: str) -> None:
        f = self._files.pop(name, None)
        if f is None:
            raise FsError(f"no such file: {name}")
        self.cache.drop(f.inode)

    def open(self, name: str, mode: str = "r") -> FileHandle:
        if mode not in ("r", "r+"):
            raise FsError(f"bad mode {mode!r} (use 'r' or 'r+')")
        f = self._files.get(name)
        if f is None:
            if mode == "r+":
                f = self.create(name)
            else:
                raise FsError(f"no such file: {name}")
        fh = FileHandle(self._next_fd, f, mode)
        self._next_fd += 1
        self._handles[fh.fd] = fh
        return fh

    def handle(self, fd: int) -> Optional[FileHandle]:
        """Look up an open descriptor (None if closed/never opened)."""
        return self._handles.get(fd)

    def close(self, fh: FileHandle) -> None:
        if fh.closed:
            return
        fh.closed = True
        self._handles.pop(fh.fd, None)

    # -- layout --------------------------------------------------------------------
    def _extend(self, f: File, new_size: int) -> None:
        """Allocate extents so the file covers ``new_size`` bytes."""
        allocated = sum(e.length for e in f.extents)
        p = self.params
        disk_cap = self.disk.params.capacity_bytes
        while allocated < new_size:
            want = new_size - allocated
            if p.extent_bytes is not None:
                want = min(want, p.extent_bytes)
            if p.scatter:
                if p.extent_bytes is None:
                    raise FsError("scatter layout requires extent_bytes")
                slot = self._pick_scatter_slot(disk_cap // p.extent_bytes)
                start = slot * p.extent_bytes
            else:
                if p.extent_gap:
                    self._next_disk_off += int(self._gap_rng.integers(
                        0, p.extent_gap + 1))
                start = self._next_disk_off
                self._next_disk_off += want
            if start + want > disk_cap:
                raise FsError("out of disk space")
            f.extents.append(Extent(allocated, start, want))
            allocated += want
        f.size = max(f.size, new_size)
        if f.data is not None and len(f.data) < new_size:
            f.data.extend(b"\x00" * (new_size - len(f.data)))

    def _pick_scatter_slot(self, nslots: int) -> int:
        if len(self._scatter_slots) >= nslots:
            raise FsError("out of disk space")
        while True:
            slot = int(self._gap_rng.integers(0, nslots))
            if slot not in self._scatter_slots:
                self._scatter_slots.add(slot)
                return slot

    def _disk_runs(self, f: File, offset: int, n: int) -> list[tuple[int, int]]:
        """Map a byte range of the file to (disk_off, length) runs."""
        runs = []
        end = offset + n
        for e in f.extents:
            e_end = e.file_off + e.length
            if e_end <= offset or e.file_off >= end:
                continue
            lo = max(offset, e.file_off)
            hi = min(end, e_end)
            runs.append((e.disk_off + (lo - e.file_off), hi - lo))
        return runs

    # -- data path ----------------------------------------------------------------
    def read(self, fh: FileHandle, offset: int, n: int):
        """Process: pread.  Value is ``(nbytes, data_or_None)``; short reads
        at EOF return as many bytes as exist, 0 at/after EOF."""
        return self.sim.process(self._read(fh, offset, n))

    def write(self, fh: FileHandle, offset: int, n: int,
              data: Optional[bytes] = None):
        """Process: pwrite (write-back through the page cache).  Value is
        the byte count written.  Extends the file as needed."""
        return self.sim.process(self._write(fh, offset, n, data))

    def fsync(self, fh: FileHandle):
        """Process: flush all of this file's dirty pages to disk."""
        return self.sim.process(self._fsync(fh))

    def _read(self, fh: FileHandle, offset: int, n: int):
        self._check_open(fh)
        if offset < 0 or n < 0:
            raise FsError(f"bad read range offset={offset} n={n}")
        f = fh.file
        n = max(0, min(n, f.size - offset))
        if n == 0:
            return 0, (b"" if f.data is not None else None)
        p = self.params
        ps = p.page_size

        # Readahead window update (sequential detection).  Readahead is
        # *batched*, as in Linux: the window is refilled in one disk
        # operation each time the reader catches up with it, so sequential
        # scans pay one positioning + one request overhead per window, not
        # per read — that is what makes them run at media rate.
        if offset == f.ra_next:
            f.ra_window = min(max(f.ra_window * 2, p.readahead_min),
                              p.readahead_max)
        else:
            f.ra_window = 0
            f.ra_until = 0
        f.ra_next = offset + n

        fetch_end = offset + n
        if f.ra_window and offset + n >= f.ra_until:
            fetch_end = offset + n + f.ra_window
            f.ra_until = min(fetch_end, f.size)
        fetch_end = min(f.size, fetch_end)
        first_page = offset // ps
        last_page = math.ceil(fetch_end / ps)  # exclusive

        tracer = self.sim.tracer
        span = tracer.begin(self.sim, "fs.read", "fs",
                            {"inode": f.inode, "bytes": n}) \
            if tracer.enabled else None
        try:
            # Collect missing pages; fetch contiguous runs in single I/Os.
            missing = [pg for pg in range(first_page, last_page)
                       if not self.cache.touch((f.inode, pg))]
            if span is not None:
                span.tag("pages", last_page - first_page)
                span.tag("misses", len(missing))
            yield from self._fetch_pages(f, missing)
            self.stats.add("read.ops")
            self.stats.add("read.bytes", n)
            copy = tracer.begin(self.sim, "pagecache.copy", "pagecache",
                                {"bytes": n, "hit": not missing}) \
                if tracer.enabled else None
            yield self.sim.timeout(n / p.copy_bandwidth)
            tracer.end(self.sim, copy)
        finally:
            tracer.end(self.sim, span)
        data = bytes(f.data[offset:offset + n]) if f.data is not None else None
        return n, data

    def _fetch_pages(self, f: File, pages: list[int]):
        """Read the listed (sorted) pages from disk and insert them."""
        ps = self.params.page_size
        writeback: list = []
        i = 0
        while i < len(pages):
            j = i
            while j + 1 < len(pages) and pages[j + 1] == pages[j] + 1:
                j += 1
            start = pages[i] * ps
            length = min((pages[j] + 1) * ps, self._alloc_size(f)) - start
            if length > 0:
                runs = list(self._disk_runs(f, start, length))
                if runs:
                    # One batch per contiguous page run: an uncontended
                    # fetch costs one event per extent instead of a
                    # process per extent, with identical timing.
                    yield self.disk.read_batch(runs)
            writeback.extend(self.cache.insert_many(
                (f.inode, pg) for pg in pages[i:j + 1]))
            i = j + 1
        yield from self._writeback(writeback)

    def _alloc_size(self, f: File) -> int:
        return sum(e.length for e in f.extents)

    def _write(self, fh: FileHandle, offset: int, n: int,
               data: Optional[bytes]):
        self._check_open(fh)
        if not fh.writable:
            raise FsError(f"fd {fh.fd} not open for writing")
        if offset < 0 or n < 0:
            raise FsError(f"bad write range offset={offset} n={n}")
        if data is not None and len(data) != n:
            raise FsError(f"write n={n} but len(data)={len(data)}")
        if n == 0:
            return 0
        f = fh.file
        ps = self.params.page_size
        if offset + n > self._alloc_size(f):
            self._extend(f, offset + n)
        f.size = max(f.size, offset + n)

        first_page = offset // ps
        last_page = math.ceil((offset + n) / ps)
        tracer = self.sim.tracer
        span = tracer.begin(self.sim, "fs.write", "fs",
                            {"inode": f.inode, "bytes": n}) \
            if tracer.enabled else None
        try:
            # Partially-covered edge pages need read-modify-write if absent.
            rmw = []
            for pg in (first_page, last_page - 1):
                pg_start, pg_end = pg * ps, (pg + 1) * ps
                partial = offset > pg_start \
                    or (offset + n) < min(pg_end, f.size)
                if partial and (f.inode, pg) not in self.cache:
                    rmw.append(pg)
            yield from self._fetch_pages(f, sorted(set(rmw)))

            writeback: list = []
            for pg in range(first_page, last_page):
                writeback.extend(self.cache.insert((f.inode, pg), dirty=True))
            if span is not None:
                span.tag("rmw", len(rmw))
                span.tag("writeback", len(writeback))
            yield from self._writeback(writeback)
            if f.data is not None and data is not None:
                f.data[offset:offset + n] = data
            self.stats.add("write.ops")
            self.stats.add("write.bytes", n)
            copy = tracer.begin(self.sim, "pagecache.copy", "pagecache",
                                {"bytes": n, "hit": not rmw}) \
                if tracer.enabled else None
            yield self.sim.timeout(n / self.params.copy_bandwidth)
            tracer.end(self.sim, copy)
        finally:
            tracer.end(self.sim, span)
        return n

    def _writeback(self, keys: list) -> object:
        """Write evicted dirty pages back to disk, coalescing runs."""
        by_inode: dict[int, list[int]] = {}
        for inode, pg in keys:
            by_inode.setdefault(inode, []).append(pg)
        inode_to_file = {f.inode: f for f in self._files.values()}
        for inode, pages in by_inode.items():
            f = inode_to_file.get(inode)
            if f is None:
                continue  # file deleted while pages were in cache
            pages.sort()
            ps = self.params.page_size
            i = 0
            while i < len(pages):
                j = i
                while j + 1 < len(pages) and pages[j + 1] == pages[j] + 1:
                    j += 1
                start = pages[i] * ps
                length = min((pages[j] + 1) * ps, self._alloc_size(f)) - start
                if length > 0:
                    runs = list(self._disk_runs(f, start, length))
                    if runs:
                        yield self.disk.write_batch(runs)
                    self.stats.add("writeback.bytes", length)
                i = j + 1

    def _fsync(self, fh: FileHandle):
        self._check_open(fh)
        f = fh.file
        dirty = self.cache.dirty_pages(f.inode)
        yield from self._writeback(dirty)
        for key in dirty:
            self.cache.clean(key)
        self.stats.add("fsyncs")
        return None

    def _check_open(self, fh: FileHandle) -> None:
        if fh.closed or self._handles.get(fh.fd) is not fh:
            raise FsError(f"fd {getattr(fh, 'fd', '?')} is not open")
