"""Storage substrate: mechanical disk, OS page cache, Unix-like FS."""

from repro.storage.disk import Disk, DiskParams
from repro.storage.filesystem import (File, FileHandle, FileSystem, FsError,
                                      FsParams)
from repro.storage.pagecache import PageCache

__all__ = [
    "Disk",
    "DiskParams",
    "File",
    "FileHandle",
    "FileSystem",
    "FsError",
    "FsParams",
    "PageCache",
]
