"""Mechanical disk model — the Quantum Fireball ST3.2A of the paper.

Per-request service time is seek + rotational latency + media transfer,
with sequential requests (starting where the last one ended) skipping the
positioning costs entirely.  Seek time follows the classic
``min + (avg - min) * sqrt(distance / avg_distance)`` curve, capped at the
maximum.  The single disk arm is a contended resource.

The default parameters are calibrated (see
``tests/storage/test_calibration.py`` and the disk-calibration benchmark)
against the application-level figures reported in Section 5.1:

* sequential 8 KB / 32 KB reads through the file system: **7.75 MB/s**
* random 8 KB reads: **0.57 MB/s**
* random 32 KB reads: **1.56 MB/s**
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.metrics.recorder import Recorder
from repro.sim import Resource, Simulator


@dataclass(frozen=True)
class DiskParams:
    """Geometry and timing of one disk."""

    #: usable capacity in bytes (3.2 GB Quantum Fireball)
    capacity_bytes: int = 3_200_000_000
    #: minimum (track-to-track) seek
    seek_min_s: float = 2.0e-3
    #: average random-seek time for reads / writes (paper: 10 / 11 ms)
    seek_avg_read_s: float = 10.0e-3
    seek_avg_write_s: float = 11.0e-3
    #: maximum stroke seek (paper: 12 / 13 ms)
    seek_max_read_s: float = 12.0e-3
    seek_max_write_s: float = 13.0e-3
    #: spindle speed (5400 RPM)
    rpm: float = 5400.0
    #: sustained media transfer rate, bytes/s
    media_rate: float = 8.0e6
    #: fixed per-request controller/driver overhead
    overhead_s: float = 0.3e-3

    @property
    def rotation_s(self) -> float:
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        return self.rotation_s / 2.0


class Disk:
    """One disk with a single arm; requests are served FIFO.

    Offsets are byte addresses ("LBA * 512" collapsed to plain bytes).
    ``read``/``write`` return a process whose value is the service time of
    that request (excluding queueing).
    """

    def __init__(self, sim: Simulator, name: str = "disk",
                 params: DiskParams | None = None):
        self.sim = sim
        self.name = name
        self.params = params or DiskParams()
        self.arm = Resource(sim, capacity=1)
        self._head: int = 0           # current head byte position
        self._last_end: int = -1      # end of last transfer, for streaming
        #: fault-injection hook: service times are multiplied by this
        #: (1.0 = healthy; the nemesis raises it to model a degraded disk)
        self.slowdown: float = 1.0
        self.stats = Recorder(name)
        if sim.telemetry.enabled:
            sim.telemetry.register(sim, "disk", name, self)

    # -- timing model ---------------------------------------------------------
    def seek_time(self, distance: int, write: bool) -> float:
        """Positioning time for a head movement of ``distance`` bytes."""
        p = self.params
        if distance == 0:
            return 0.0
        avg = p.seek_avg_write_s if write else p.seek_avg_read_s
        cap = p.seek_max_write_s if write else p.seek_max_read_s
        avg_dist = p.capacity_bytes / 3.0  # mean |a-b| for uniform a, b
        t = p.seek_min_s + (avg - p.seek_min_s) * math.sqrt(distance / avg_dist)
        return min(t, cap)

    def service_time(self, offset: int, nbytes: int, write: bool) -> float:
        """Pure service time for one request at the current head position."""
        p = self.params
        transfer = nbytes / p.media_rate
        if offset == self._last_end:
            # Streaming: the head is already there, no rotational miss.
            return (p.overhead_s + transfer) * self.slowdown
        seek = self.seek_time(abs(offset - self._head), write)
        return (p.overhead_s + seek + p.avg_rotational_latency_s
                + transfer) * self.slowdown

    # -- I/O ----------------------------------------------------------------------
    def read(self, offset: int, nbytes: int):
        """Process performing one read; value = service time."""
        return self.sim.process(self._io(offset, nbytes, write=False))

    def write(self, offset: int, nbytes: int):
        """Process performing one write; value = service time."""
        return self.sim.process(self._io(offset, nbytes, write=True))

    def _io(self, offset: int, nbytes: int, write: bool):
        if nbytes <= 0:
            raise ValueError(f"disk I/O of {nbytes} bytes")
        if offset < 0 or offset + nbytes > self.params.capacity_bytes:
            raise ValueError(
                f"I/O [{offset}, {offset + nbytes}) beyond disk capacity "
                f"{self.params.capacity_bytes}")
        kind = "write" if write else "read"
        tracer = self.sim.tracer
        #: span covers arm queueing + service, so trace gaps show contention
        span = tracer.begin(self.sim, f"disk.{kind}", "disk",
                            {"disk": self.name, "bytes": nbytes}) \
            if tracer.enabled else None
        service = 0.0
        sequential = False
        try:
            yield self.arm.acquire()
            try:
                service = self.service_time(offset, nbytes, write)
                sequential = offset == self._last_end
                yield self.sim.timeout(service)
                self._head = offset + nbytes
                self._last_end = offset + nbytes
            finally:
                self.arm.release()
        finally:
            tracer.end(self.sim, span, {"service_s": service,
                                        "sequential": sequential})
        self.stats.add(f"{kind}.ops")
        self.stats.add(f"{kind}.bytes", nbytes)
        if sequential:
            self.stats.add(f"{kind}.sequential")
        self.stats.sample("service_s", service)
        return service
