"""Mechanical disk model — the Quantum Fireball ST3.2A of the paper.

Per-request service time is seek + rotational latency + media transfer,
with sequential requests (starting where the last one ended) skipping the
positioning costs entirely.  Seek time follows the classic
``min + (avg - min) * sqrt(distance / avg_distance)`` curve, capped at the
maximum.  The single disk arm is a contended resource.

The default parameters are calibrated (see
``tests/storage/test_calibration.py`` and the disk-calibration benchmark)
against the application-level figures reported in Section 5.1:

* sequential 8 KB / 32 KB reads through the file system: **7.75 MB/s**
* random 8 KB reads: **0.57 MB/s**
* random 32 KB reads: **1.56 MB/s**
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.metrics.recorder import Recorder
from repro.sim import Event, Resource, Simulator


@dataclass(frozen=True)
class DiskParams:
    """Geometry and timing of one disk."""

    #: usable capacity in bytes (3.2 GB Quantum Fireball)
    capacity_bytes: int = 3_200_000_000
    #: minimum (track-to-track) seek
    seek_min_s: float = 2.0e-3
    #: average random-seek time for reads / writes (paper: 10 / 11 ms)
    seek_avg_read_s: float = 10.0e-3
    seek_avg_write_s: float = 11.0e-3
    #: maximum stroke seek (paper: 12 / 13 ms)
    seek_max_read_s: float = 12.0e-3
    seek_max_write_s: float = 13.0e-3
    #: spindle speed (5400 RPM)
    rpm: float = 5400.0
    #: sustained media transfer rate, bytes/s
    media_rate: float = 8.0e6
    #: fixed per-request controller/driver overhead
    overhead_s: float = 0.3e-3

    @property
    def rotation_s(self) -> float:
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        return self.rotation_s / 2.0


class Disk:
    """One disk with a single arm; requests are served FIFO.

    Offsets are byte addresses ("LBA * 512" collapsed to plain bytes).
    ``read``/``write`` return a process whose value is the service time of
    that request (excluding queueing).
    """

    def __init__(self, sim: Simulator, name: str = "disk",
                 params: DiskParams | None = None):
        self.sim = sim
        self.name = name
        self.params = params or DiskParams()
        self.arm = Resource(sim, capacity=1)
        self._head: int = 0           # current head byte position
        self._last_end: int = -1      # end of last transfer, for streaming
        #: fault-injection hook: service times are multiplied by this
        #: (1.0 = healthy; the nemesis raises it to model a degraded disk)
        self.slowdown: float = 1.0
        #: engage the flow-level fast path for uncontended requests
        #: (timing-identical; False forces every request through the
        #: per-request process path)
        self.fastpath: bool = True
        self.stats = Recorder(name)
        if sim.telemetry.enabled:
            sim.telemetry.register(sim, "disk", name, self)

    # -- timing model ---------------------------------------------------------
    def seek_time(self, distance: int, write: bool) -> float:
        """Positioning time for a head movement of ``distance`` bytes."""
        p = self.params
        if distance == 0:
            return 0.0
        avg = p.seek_avg_write_s if write else p.seek_avg_read_s
        cap = p.seek_max_write_s if write else p.seek_max_read_s
        avg_dist = p.capacity_bytes / 3.0  # mean |a-b| for uniform a, b
        t = p.seek_min_s + (avg - p.seek_min_s) * math.sqrt(distance / avg_dist)
        return min(t, cap)

    def service_time(self, offset: int, nbytes: int, write: bool) -> float:
        """Pure service time for one request at the current head position."""
        p = self.params
        transfer = nbytes / p.media_rate
        if offset == self._last_end:
            # Streaming: the head is already there, no rotational miss.
            return (p.overhead_s + transfer) * self.slowdown
        seek = self.seek_time(abs(offset - self._head), write)
        return (p.overhead_s + seek + p.avg_rotational_latency_s
                + transfer) * self.slowdown

    # -- I/O ----------------------------------------------------------------------
    def read(self, offset: int, nbytes: int):
        """One read; yields the service time (excluding queueing)."""
        return self._access(((offset, nbytes),), write=False)

    def write(self, offset: int, nbytes: int):
        """One write; yields the service time (excluding queueing)."""
        return self._access(((offset, nbytes),), write=True)

    def read_batch(self, runs):
        """One FIFO batch of reads; yields the summed service time.

        ``runs`` is a sequence of ``(offset, nbytes)`` pairs served
        back to back.  Timing-identical to yielding each run's ``read``
        in order, but an uncontended batch costs one plain event per run
        instead of a process (and its bootstrap, acquire and timeout
        events) per run.  A request that queues mid-batch is granted the
        arm between members, exactly as on the per-request path.
        """
        return self._access(tuple(runs), write=False)

    def write_batch(self, runs):
        """One FIFO batch of writes; see :meth:`read_batch`."""
        return self._access(tuple(runs), write=True)

    def _access(self, runs, write: bool):
        """Route a batch to the fast path or the per-request processes.

        The fast path engages only when it is provably timing-identical:
        the arm idle with no queued waiters (so service starts now), the
        tracer off (the process path emits per-request spans) and every
        run already valid (invalid ones must raise through a process,
        as they always have).
        """
        arm = self.arm
        cap = self.params.capacity_bytes
        if (self.fastpath and runs and not arm._in_use and not arm._waiters
                and not self.sim.tracer.enabled
                and all(n > 0 and 0 <= o and o + n <= cap for o, n in runs)):
            return self._fast_access(runs, write)
        return self.sim.process(self._batch_io(runs, write))

    def _batch_io(self, runs, write: bool):
        """Per-request process path for a whole batch; value = total."""
        total = 0.0
        for offset, nbytes in runs:
            total += yield from self._io(offset, nbytes, write)
        return total

    def _fast_access(self, runs, write: bool) -> Event:
        """Closed-form batch service: one event per run boundary.

        Replays the per-request path's exact arithmetic — each run's
        service time is computed *at its start instant* (so a nemesis
        slowdown change mid-batch lands on the same runs) with the head
        state the previous run left behind, and completion bookkeeping
        (head position, stats) happens at the same virtual time the
        process path would perform it.  If another request queues on the
        arm mid-batch, the remaining runs fall back to the per-request
        path so the waiter is granted the arm between members.
        """
        sim = self.sim
        arm = self.arm
        kind = "write" if write else "read"
        arm._in_use += 1
        done = Event(sim)
        state = [0, 0.0]  # [next run index, accumulated service time]
        self.stats.add("fastpath.batches")

        def start_next() -> None:
            offset, nbytes = runs[state[0]]
            service = self.service_time(offset, nbytes, write)
            sequential = offset == self._last_end
            evt = sim.at(sim.now + service)
            evt.callbacks.append(
                lambda _e, o=offset, n=nbytes, s=service, q=sequential:
                finish_one(o, n, s, q))

        def finish_one(offset: int, nbytes: int, service: float,
                       sequential: bool) -> None:
            end = offset + nbytes
            self._head = end
            self._last_end = end
            state[0] += 1
            state[1] += service
            last = state[0] >= len(runs)
            contended = not last and bool(arm._waiters)
            if last or contended:
                arm.release()
            self.stats.add(f"{kind}.ops")
            self.stats.add(f"{kind}.bytes", nbytes)
            if sequential:
                self.stats.add(f"{kind}.sequential")
            self.stats.sample("service_s", service)
            if last:
                done.succeed(state[1])
            elif contended:
                self.stats.add("fastpath.fallbacks")
                sim.process(self._drain(runs, state, write, done))
            else:
                start_next()

        start_next()
        return done

    def _drain(self, runs, state, write: bool, done: Event):
        """Finish a contended batch on the per-request path."""
        while state[0] < len(runs):
            offset, nbytes = runs[state[0]]
            state[1] += yield from self._io(offset, nbytes, write)
            state[0] += 1
        done.succeed(state[1])

    def _io(self, offset: int, nbytes: int, write: bool):
        if nbytes <= 0:
            raise ValueError(f"disk I/O of {nbytes} bytes")
        if offset < 0 or offset + nbytes > self.params.capacity_bytes:
            raise ValueError(
                f"I/O [{offset}, {offset + nbytes}) beyond disk capacity "
                f"{self.params.capacity_bytes}")
        kind = "write" if write else "read"
        tracer = self.sim.tracer
        #: span covers arm queueing + service, so trace gaps show contention
        span = tracer.begin(self.sim, f"disk.{kind}", "disk",
                            {"disk": self.name, "bytes": nbytes}) \
            if tracer.enabled else None
        service = 0.0
        sequential = False
        try:
            yield self.arm.acquire()
            try:
                service = self.service_time(offset, nbytes, write)
                sequential = offset == self._last_end
                yield self.sim.timeout(service)
                self._head = offset + nbytes
                self._last_end = offset + nbytes
            finally:
                self.arm.release()
        finally:
            tracer.end(self.sim, span, {"service_s": service,
                                        "sequential": sequential})
        self.stats.add(f"{kind}.ops")
        self.stats.add(f"{kind}.bytes", nbytes)
        if sequential:
            self.stats.add(f"{kind}.sequential")
        self.stats.sample("service_s", service)
        return service
