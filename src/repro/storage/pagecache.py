"""OS page-cache model: LRU pages with dirty tracking.

This is the Linux buffer/page cache that the *baseline* (no-Dodo) runs
live or die by: it is what makes sequential re-reads cheap and what a
1 GB dataset thrashes straight through on a 128 MB machine.  The
:class:`~repro.storage.filesystem.FileSystem` drives it; this class is
pure bookkeeping (which pages are resident/dirty, what gets evicted) and
never touches the simulated clock itself.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.metrics.recorder import Recorder

PageKey = tuple[int, int]  # (inode, page_number)


class PageCache:
    """A byte-budgeted LRU of fixed-size pages."""

    def __init__(self, capacity_bytes: int, page_size: int = 4096,
                 name: str = "pagecache"):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity {capacity_bytes}")
        self.page_size = page_size
        self.capacity_pages = capacity_bytes // page_size
        self._pages: OrderedDict[PageKey, bool] = OrderedDict()  # key -> dirty
        self.stats = Recorder(name)

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * self.page_size

    def __contains__(self, key: PageKey) -> bool:
        return key in self._pages

    # -- access ------------------------------------------------------------------
    def touch(self, key: PageKey) -> bool:
        """Reference a page; True on hit (moves it to MRU position)."""
        if key in self._pages:
            self._pages.move_to_end(key)
            self.stats.add("hits")
            return True
        self.stats.add("misses")
        return False

    def insert(self, key: PageKey, dirty: bool = False) -> list[PageKey]:
        """Make a page resident; returns evicted *dirty* pages needing
        write-back (clean evictions are simply dropped)."""
        if key in self._pages:
            # keep the dirty bit sticky until an explicit clean()
            self._pages[key] = self._pages[key] or dirty
            self._pages.move_to_end(key)
            return []
        self._pages[key] = dirty
        self.stats.add("insertions")
        writeback = []
        while len(self._pages) > self.capacity_pages:
            old_key, old_dirty = self._pages.popitem(last=False)
            self.stats.add("evictions")
            if old_dirty:
                self.stats.add("evictions.dirty")
                writeback.append(old_key)
        return writeback

    def insert_many(self, keys, dirty: bool = False) -> list[PageKey]:
        """Insert several pages in order; one combined write-back list.

        Exactly equivalent to calling :meth:`insert` on each key in
        sequence (same final LRU order, same evictions in the same
        order), concatenating the write-back lists.
        """
        writeback: list[PageKey] = []
        for key in keys:
            writeback.extend(self.insert(key, dirty=dirty))
        return writeback

    def mark_dirty(self, key: PageKey) -> None:
        if key not in self._pages:
            raise KeyError(f"page {key} not resident")
        self._pages[key] = True

    def clean(self, key: PageKey) -> None:
        """Clear the dirty bit after a successful write-back."""
        if key in self._pages:
            self._pages[key] = False

    def dirty_pages(self, inode: int | None = None) -> list[PageKey]:
        """All dirty pages, optionally restricted to one file."""
        return [k for k, d in self._pages.items()
                if d and (inode is None or k[0] == inode)]

    def drop(self, inode: int) -> int:
        """Discard all pages of a file (e.g. on delete); returns count.

        Dirty pages are discarded too — matching Unix semantics where
        deleting an unsynced file loses buffered data.
        """
        doomed = [k for k in self._pages if k[0] == inode]
        for k in doomed:
            del self._pages[k]
        return len(doomed)

    def resize(self, capacity_bytes: int) -> list[PageKey]:
        """Shrink/grow the budget; returns dirty pages evicted by a shrink."""
        self.capacity_pages = capacity_bytes // self.page_size
        writeback = []
        while len(self._pages) > self.capacity_pages:
            old_key, old_dirty = self._pages.popitem(last=False)
            self.stats.add("evictions")
            if old_dirty:
                writeback.append(old_key)
        return writeback

    def hit_ratio(self) -> float:
        hits = self.stats.count("hits")
        total = hits + self.stats.count("misses")
        return hits / total if total else 0.0

    def summary(self) -> dict:
        """One-shot counters for metrics snapshots and trace tooling."""
        return {
            "resident_pages": len(self._pages),
            "resident_bytes": self.resident_bytes,
            "capacity_pages": self.capacity_pages,
            "hits": self.stats.count("hits"),
            "misses": self.stats.count("misses"),
            "insertions": self.stats.count("insertions"),
            "evictions": self.stats.count("evictions"),
            "dirty_evictions": self.stats.count("evictions.dirty"),
            "hit_ratio": self.hit_ratio(),
        }
