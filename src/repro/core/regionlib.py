"""``libmanage`` — the region-management library (Sections 3.3 and 4.5).

Layered on top of the runtime library, it frees the programmer from
coordinating data movement: it keeps a *local* cache of regions in the
application's address space and transparently migrates regions between
four states —

1. cached locally, 2. cached remotely, 3. cached both, 4. on disk only —

using a pluggable replacement policy (LRU default, MRU, first-in).  When
local space runs out, the **grimReaper** procedure (paper Figure 5) evicts
a victim: dirty data goes to disk, the region is cloned to remote memory
if the cluster has space (allocation failures trigger the runtime's
refraction period), and the local entry is removed either way.

API mirrors Figure 4: ``copen / cread / cwrite / cclose / csync /
csetPolicy``, all with the C-style ``(value, errno)`` returns of the
runtime layer.  Calls are generator process bodies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.errno import EINVAL, EIO, ENOMEM
from repro.core.policies import ReplacementPolicy, make_policy
from repro.core.runtime import DodoRuntime
from repro.metrics.recorder import Recorder
from repro.storage.filesystem import FsError

#: application-memory copy bandwidth for local-cache hits, bytes/s
LOCAL_COPY_BW = 150e6


@dataclass
class CRegion:
    """Directory entry for one managed region."""

    crd: int
    length: int
    backing_fd: int
    backing_offset: int
    #: local copy (bytearray in payload mode, True in metadata mode);
    #: None when not locally cached
    local: object = None
    dirty: bool = False
    #: runtime-library descriptor while remotely cached
    remote_desc: Optional[int] = None
    #: whether we have asked the central manager if a previous run left a
    #: remote copy of this region behind (done once, on first access)
    probed: bool = False
    #: a local load is in flight (prevents concurrent double-loads when
    #: the prefetcher and the application race); waiters block on the
    #: event until the load settles
    loading: bool = False
    load_done: object = None

    @property
    def is_local(self) -> bool:
        return self.local is not None

    @property
    def is_remote(self) -> bool:
        return self.remote_desc is not None

    @property
    def state(self) -> str:
        if self.is_local and self.is_remote:
            return "both"
        if self.is_local:
            return "local"
        if self.is_remote:
            return "remote"
        return "disk"


class RegionCache:
    """One application's managed local region cache."""

    def __init__(self, runtime: DodoRuntime, local_bytes: int,
                 policy: str = "lru", prefetch_regions: int = 0):
        self.runtime = runtime
        self.sim = runtime.sim
        self.ws = runtime.ws
        self.local_bytes = local_bytes
        self.policy: ReplacementPolicy = make_policy(policy)
        #: EXTENSION (not in the paper's implementation; cf. its citation
        #: of Voelker et al.'s cooperative prefetching): on a sequential
        #: region-access pattern, pull the next N regions toward the
        #: application in the background, overlapping their transfer with
        #: the application's compute.  0 disables (the paper's behaviour).
        self.prefetch_regions = prefetch_regions
        self.directory: dict[int, CRegion] = {}
        self._by_backing: dict[tuple[int, int], int] = {}
        self._prev_read_crd: Optional[int] = None
        self._next_crd = 0
        self._local_used = 0
        self.stats = Recorder(f"regionlib.{self.ws.name}")
        if self.sim.telemetry.enabled:
            self.sim.telemetry.register(self.sim, "regionlib", self.ws.name,
                                        self)

    # -- tracing ----------------------------------------------------------------------
    def _span(self, name: str, tags: Optional[dict] = None):
        tracer = self.sim.tracer
        if not tracer.enabled:
            return None
        return tracer.begin(self.sim, name, "regionlib", tags)

    def _end_span(self, span, tags: Optional[dict] = None) -> None:
        self.sim.tracer.end(self.sim, span, tags)

    # -- policy ----------------------------------------------------------------------
    def csetPolicy(self, policy: str) -> int:
        """Switch replacement policy (Figure 4); returns 0 or -1."""
        try:
            new = make_policy(policy)
        except ValueError:
            return -1
        for crd, region in self.directory.items():
            if region.is_local:
                new.on_insert(crd)
        self.policy = new
        return 0

    @property
    def local_free(self) -> int:
        return self.local_bytes - self._local_used

    def state(self, crd: int) -> Optional[str]:
        region = self.directory.get(crd)
        return region.state if region else None

    # -- copen -----------------------------------------------------------------------
    def copen(self, length: int, fd: int, offset: int):
        """Generator: ``(crd, 0)`` or ``(-1, EINVAL)``.

        Creation is cheap: the region starts in the *disk* state (its
        contents are whatever the backing file holds) and is materialized
        locally/remotely on demand.
        """
        fh = self.ws.fs.handle(fd)
        if fh is None or not fh.writable or length < 1 or offset < 0:
            self.stats.add("copen.einval")
            return -1, EINVAL
        crd = self._next_crd
        self._next_crd += 1
        self.directory[crd] = CRegion(
            crd=crd, length=length, backing_fd=fd, backing_offset=offset)
        self._by_backing[(fd, offset)] = crd
        self.stats.add("copen.ok")
        return crd, 0
        yield  # pragma: no cover - makes copen a generator like its peers

    # -- cread -----------------------------------------------------------------------
    def cread(self, crd: int, offset: int, length: int):
        """Generator: ``(nbytes, 0, data)`` or ``(-1, errno, None)``."""
        region = self.directory.get(crd)
        if region is None:
            return -1, EINVAL, None
        if offset < 0 or offset > region.length or length < 0:
            return -1, EINVAL, None
        sequential = self._track_sequence(region)
        span = self._span("cread", {"crd": crd, "bytes": length,
                                    "state": region.state})
        try:
            result = yield from self._cread_inner(region, offset, length)
        finally:
            self._end_span(span)
        if sequential:
            # issue prefetches only after the demand request has been
            # served, so they never queue ahead of it on the disk arm
            self._issue_prefetches(region)
        return result

    def _cread_inner(self, region: CRegion, offset: int, length: int):
        crd = region.crd
        length = min(length, region.length - offset)
        self.policy.on_read(crd)

        if region.loading:
            # a prefetch is already transferring this region: join it
            # rather than issuing a duplicate transfer
            yield region.load_done
            self.stats.add("cread.joined_prefetch")
        if region.is_local:
            self.stats.add("cread.local_hits")
            # capture before yielding: a concurrent eviction (prefetcher
            # pressure) must not invalidate data already being copied out
            data = self._slice(region, offset, length)
            yield self.sim.timeout(length / LOCAL_COPY_BW)
            return length, 0, data

        yield from self._probe_remote(region)
        if region.is_remote:
            n, err, data = yield from self.runtime.mread(
                region.remote_desc, offset, length)
            if err == 0:
                self.stats.add("cread.remote_hits")
                return n, 0, data
            # remote copy lost (host crashed/reclaimed): self-heal to disk
            region.remote_desc = None
            self.stats.add("cread.remote_lost")
            found = yield from self._reprobe_migrated(region)
            if found:
                n, err, data = yield from self.runtime.mread(
                    region.remote_desc, offset, length)
                if err == 0:
                    self.stats.add("cread.remote_hits")
                    self.stats.add("cread.migrated_hits")
                    return n, 0, data
                region.remote_desc = None

        self.stats.add("cread.disk_reads")
        loaded = yield from self._load_local(region)
        if loaded:
            data = self._slice(region, offset, length)
            yield self.sim.timeout(length / LOCAL_COPY_BW)
            return length, 0, data
        # Cache bypass (the local policy did not admit it): serve the
        # requested bytes from disk, and clone the region straight into
        # remote memory — the "cached remotely" state of Section 3.3.
        # This is how a first-in dmine run pushes the whole dataset into
        # the cluster during its first scan while only the first 80 MB
        # stay local.
        fh = self.ws.fs.handle(region.backing_fd)
        if fh is None:
            return -1, EIO, None
        n, data = yield self.ws.fs.read(
            fh, region.backing_offset + offset, length)
        yield from self._clone_from_disk(region)
        return n, 0, data

    # -- cwrite ----------------------------------------------------------------------
    def cwrite(self, crd: int, offset: int, length: int,
               data: Optional[bytes] = None):
        """Generator: ``(nbytes, 0)`` or ``(-1, errno)``.

        Writes land in the local copy (write-back at region granularity:
        dirty data reaches the disk at eviction, ``csync`` or ``cclose``).
        A stale remote copy is dropped so every state stays coherent.
        """
        region = self.directory.get(crd)
        if region is None:
            return -1, EINVAL
        if offset < 0 or offset > region.length or length < 0:
            return -1, EINVAL
        length = min(length, region.length - offset)
        if data is not None and len(data) < length:
            return -1, EINVAL
        self.policy.on_write(crd)

        span = self._span("cwrite", {"crd": crd, "bytes": length,
                                     "state": region.state})
        try:
            if not region.is_local:
                loaded = yield from self._load_local(region)
                if not loaded:
                    # No local space: write through to disk + remote.
                    return (yield from self._write_through(
                        region, offset, length, data))
            yield self.sim.timeout(length / LOCAL_COPY_BW)
            if isinstance(region.local, bytearray) and data is not None:
                region.local[offset:offset + length] = data[:length]
            region.dirty = True
            if region.is_remote:
                # remote copy is now stale; deallocate it (it will be
                # re-cloned with fresh contents at eviction or csync)
                yield from self.runtime.mclose(region.remote_desc)
                region.remote_desc = None
                self.stats.add("cwrite.remote_invalidated")
            self.stats.add("cwrite.ok")
            return length, 0
        finally:
            self._end_span(span)

    def _write_through(self, region: CRegion, offset: int, length: int,
                       data: Optional[bytes]):
        if region.is_remote:
            n, err = yield from self.runtime.mwrite(
                region.remote_desc, offset, length, data)
            if err == 0:
                return n, 0
            region.remote_desc = None  # lost; fall through to plain disk
        fh = self.ws.fs.handle(region.backing_fd)
        if fh is None:
            return -1, EIO
        try:
            n = yield self.ws.fs.write(
                fh, region.backing_offset + offset, length, data)
        except FsError:
            return -1, EIO
        self.stats.add("cwrite.disk_writethrough")
        return n, 0

    # -- csync -----------------------------------------------------------------------
    def csync(self, crd: int):
        """Generator: force a dirty region to remote memory *and* disk;
        blocks until both are durable (Figure 4's caption)."""
        region = self.directory.get(crd)
        if region is None:
            return -1, EINVAL
        if region.is_local and region.dirty:
            ok = yield from self._flush(region, also_remote=True)
            if not ok:
                return -1, EIO
        fh = self.ws.fs.handle(region.backing_fd)
        if fh is None:
            return -1, EIO
        yield self.ws.fs.fsync(fh)
        self.stats.add("csync.ok")
        return 0, 0

    # -- cclose ----------------------------------------------------------------------
    def cclose(self, crd: int):
        """Generator: flush dirty data, free local and remote copies."""
        region = self.directory.get(crd)
        if region is None:
            return -1, EINVAL
        if region.is_local and region.dirty:
            ok = yield from self._flush(region, also_remote=False)
            if not ok:
                return -1, EIO
        if region.is_remote:
            yield from self.runtime.mclose(region.remote_desc)
        if region.is_local:
            self._drop_local(region)
        del self.directory[crd]
        self._by_backing.pop((region.backing_fd, region.backing_offset),
                             None)
        self.policy.on_remove(crd)
        self.stats.add("cclose.ok")
        return 0, 0

    # -- shutdown -----------------------------------------------------------------------
    def detach(self, persist: bool = False):
        """Generator: shut the library down.

        With ``persist=True`` every region is left cached in remote
        memory for a future run (dmine's behaviour — "remote memory
        regions are not deleted at the end of a run"): dirty regions are
        flushed, locally-cached ones are cloned out, and the runtime
        detaches without freeing anything.  With ``persist=False`` the
        runtime detach lets the central manager reclaim everything.
        """
        if persist:
            for region in list(self.directory.values()):
                if region.is_local and region.dirty:
                    yield from self._flush(region, also_remote=True)
                if region.is_local and not region.is_remote:
                    yield from self._clone_remote(region)
                elif not region.is_local and not region.is_remote \
                        and region.probed:
                    yield from self._clone_from_disk(region)
        yield from self.runtime.detach(persist=persist)
        self.stats.add("detach.persist" if persist else "detach")
        return None

    # -- grimReaper (Figure 5) ----------------------------------------------------------
    def grim_reaper(self, needed: int):
        """Generator: make room for ``needed`` local bytes.

        Paper Figure 5: pick a victim by policy; write it to disk if
        dirty; try to clone it into remote memory (the runtime's
        refraction period throttles attempts after an allocation
        failure); remove the local entry either way.  Returns True if the
        space was freed.
        """
        while self.local_free < needed:
            victim_crd = self.policy.select_victim(self.directory)
            if victim_crd is None:
                return False  # policy refuses (first-in) or cache empty
            victim = self.directory.get(victim_crd)
            if victim is None or not victim.is_local:
                self.policy.on_remove(victim_crd)
                continue
            yield from self._evict(victim)
        return True

    def _evict(self, victim: CRegion):
        self.stats.add("evictions")
        span = self._span("reaper.evict", {"crd": victim.crd,
                                           "dirty": victim.dirty})
        cloned = False
        try:
            cloned = yield from self._clone_remote(victim)
            if not cloned and victim.dirty:
                # no remote home: the dirty data must reach the disk before
                # the local copy is dropped
                yield from self._flush(victim, also_remote=False)
            self._drop_local(victim)
            self.policy.on_remove(victim.crd)
        finally:
            if self.sim.eventlog.enabled:
                self.sim.eventlog.debug(
                    self.sim, "regionlib",
                    "region.migrate" if cloned else "region.evict",
                    host=self.ws.name, crd=victim.crd, bytes=victim.length)
            self._end_span(span, {"cloned": cloned})

    def _clone_remote(self, region: CRegion):
        """cloneRemoteRegion: allocate remote space and push the bytes.

        A dirty region is pushed with ``mwrite`` (disk + remote in
        parallel, so the write-back to disk rides along); a clean one uses
        ``mpush`` (remote only — the disk already has the data)."""
        if region.is_remote and not region.dirty:
            return True  # already cloned and still current
        desc, err = yield from self.runtime.mopen(
            region.length, region.backing_fd, region.backing_offset)
        if err != 0:
            self.stats.add("clone.enomem")
            return False
        # Zero-copy: mwrite/mpush snapshot bytes(data[:length]) before
        # their first yield, so handing them a view of the live buffer is
        # safe and skips one full-region copy here.
        data = memoryview(region.local) \
            if isinstance(region.local, bytearray) else None
        if region.dirty:
            n, err = yield from self.runtime.mwrite(
                desc, 0, region.length, data)
        else:
            n, err = yield from self.runtime.mpush(
                desc, 0, region.length, data)
        if err != 0:
            self.stats.add("clone.push_failed")
            return False
        region.remote_desc = desc
        region.dirty = False
        self.stats.add("clone.ok")
        return True

    # -- prefetching (extension) -----------------------------------------------------
    def _track_sequence(self, region: CRegion) -> bool:
        """Update the last-read pointer; True if this access sequentially
        follows the previous one (same backing file, adjacent ranges)."""
        prev, self._prev_read_crd = self._prev_read_crd, region.crd
        if not self.prefetch_regions or prev is None:
            return False
        prev_region = self.directory.get(prev)
        return (prev_region is not None
                and prev_region.backing_fd == region.backing_fd
                and prev_region.backing_offset + prev_region.length
                == region.backing_offset)

    def _issue_prefetches(self, region: CRegion) -> None:
        """Pull the regions after ``region`` toward the application in
        detached background processes."""
        for i in range(1, self.prefetch_regions + 1):
            key = (region.backing_fd,
                   region.backing_offset + i * region.length)
            nxt = self._by_backing.get(key)
            if nxt is None:
                continue
            target = self.directory.get(nxt)
            if target is None or target.is_local or target.loading:
                continue
            self.stats.add("prefetch.issued")
            self.sim.process(self._prefetch_one(target))

    def _prefetch_one(self, region: CRegion):
        loaded = yield from self._load_local(region)
        if loaded:
            self.stats.add("prefetch.loaded")

    # -- internals ----------------------------------------------------------------------
    def _probe_remote(self, region: CRegion):
        """First touch of an uncached region: ask the central manager
        whether an earlier run left a remote copy (checkAlloc).  This is
        what makes dmine's second run find its dataset already cached."""
        if region.probed or region.is_remote or region.is_local:
            return
        region.probed = True
        desc, err = yield from self.runtime.mlookup(
            region.length, region.backing_fd, region.backing_offset)
        if err == 0:
            region.remote_desc = desc
            self.stats.add("probe.remote_found")

    def _reprobe_migrated(self, region: CRegion):
        """A remote read just failed: with elastic caching on, the copy
        may not be gone but *migrated* to another donor (docs/CACHING.md)
        — the hotspot-aware reclaim path repoints the directory entry.
        One extra checkAlloc turns that into a remote refetch instead of
        a disk read; off (the default), remote loss heals to disk as in
        the paper.  Returns True when a live copy was found."""
        if not self.runtime.config.cache.enabled:
            return False
        region.probed = False
        yield from self._probe_remote(region)
        if region.is_remote:
            self.stats.add("probe.migrated_found")
            return True
        return False

    def _slice(self, region: CRegion, offset: int, length: int):
        if isinstance(region.local, bytearray):
            return bytes(region.local[offset:offset + length])
        return None

    def _clone_from_disk(self, region: CRegion):
        """Clone a disk-state region into remote memory (no local copy).

        Used on local-cache admission bypass; the runtime's refraction
        period keeps this cheap once remote memory has filled up.
        """
        if region.is_remote:
            return True
        desc, err = yield from self.runtime.mopen(
            region.length, region.backing_fd, region.backing_offset)
        if err != 0:
            self.stats.add("clone.enomem")
            return False
        data = None
        if self.runtime.config.store_payload:
            fh = self.ws.fs.handle(region.backing_fd)
            if fh is None:
                return False
            _, data = yield self.ws.fs.read(
                fh, region.backing_offset, region.length)
            data = (data or b"").ljust(region.length, b"\x00")
        n, err = yield from self.runtime.mpush(
            desc, 0, region.length, data)
        if err != 0:
            self.stats.add("clone.push_failed")
            return False
        region.remote_desc = desc
        self.stats.add("clone.ok")
        return True

    def _load_local(self, region: CRegion):
        """Bring a region into the local cache from its best source.
        Returns False when the policy/space does not admit it."""
        if region.is_local:
            return True
        if region.loading:
            # another process (the prefetcher) is loading it: wait for
            # that load and use its outcome instead of duplicating I/O
            yield region.load_done
            return region.is_local
        region.loading = True
        region.load_done = self.sim.event()
        try:
            return (yield from self._load_local_inner(region))
        finally:
            region.loading = False
            region.load_done.succeed()

    def _load_local_inner(self, region: CRegion):
        yield from self._probe_remote(region)
        if region.length > self.local_bytes:
            return False
        if self.local_free < region.length:
            made = yield from self.grim_reaper(region.length)
            if not made:
                self.stats.add("admission_bypass")
                return False
        # Reserve the space *before* the transfer so concurrent loads
        # (demand + prefetchers) cannot collectively overcommit the cache.
        self._local_used += region.length
        ok = False
        try:
            data = None
            if region.is_remote:
                n, err, data = yield from self.runtime.mread(
                    region.remote_desc, 0, region.length)
                if err != 0:
                    region.remote_desc = None
                    data = None
                    found = yield from self._reprobe_migrated(region)
                    if found:
                        n, err, data = yield from self.runtime.mread(
                            region.remote_desc, 0, region.length)
                        if err != 0:
                            region.remote_desc = None
                            data = None
            if data is None and not region.is_remote:
                fh = self.ws.fs.handle(region.backing_fd)
                if fh is None:
                    return False
                n, data = yield self.ws.fs.read(
                    fh, region.backing_offset, region.length)
                if self.runtime.config.store_payload:
                    data = (data or b"").ljust(region.length, b"\x00")
            if self.runtime.config.store_payload:
                if data is None:  # remote read in metadata mode
                    data = b"\x00" * region.length
                region.local = bytearray(data[:region.length])
            else:
                region.local = True
            ok = True
        finally:
            if not ok:
                self._local_used -= region.length
        region.dirty = False
        self.policy.on_insert(region.crd)
        self.stats.add("local_loads")
        return True

    def _drop_local(self, region: CRegion) -> None:
        if region.is_local:
            region.local = None
            self._local_used -= region.length

    def _flush(self, region: CRegion, also_remote: bool):
        """Write a dirty local region back to its backing file (and
        optionally refresh/establish the remote copy)."""
        fh = self.ws.fs.handle(region.backing_fd)
        if fh is None:
            return False
        data = bytes(region.local) if isinstance(region.local, bytearray) \
            else None
        if also_remote:
            cloned = yield from self._clone_remote(region)
            if cloned:
                return True
        try:
            yield self.ws.fs.write(
                fh, region.backing_offset, region.length, data)
        except FsError:
            return False
        region.dirty = False
        self.stats.add("flushes")
        return True


class DescriptorCache:
    """A bounded LRU of runtime descriptors keyed by (fd, offset).

    The serving tier (``workloads/serving.py``) touches millions of keys
    but each worker may only pin a handful of descriptors; uncached keys
    cost a directory round-trip (``mlookup``, falling back to ``mopen``)
    — which is exactly the per-request manager load that sharding the
    directory is meant to relieve.  Evicting an entry only forgets the
    *descriptor*; the remote region itself stays where it is (regions in
    the serving tier are opened persistently).
    """

    def __init__(self, runtime: DodoRuntime, capacity: int):
        self.runtime = runtime
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, int], int] = OrderedDict()
        self.stats = Recorder(f"desccache.{runtime.ws.name}")

    def __len__(self) -> int:
        return len(self._entries)

    def invalidate(self, fd: int, offset: int) -> None:
        """Forget a cached descriptor (after a failed read: the region
        moved or its host died)."""
        self._entries.pop((fd, offset), None)

    def open(self, length: int, fd: int, offset: int):
        """Generator: ``(descriptor, 0)`` or ``(-1, errno)``.

        A cache hit is free (no directory traffic); a miss pays an
        ``mlookup`` and, if no region exists yet, an ``mopen``.
        """
        key = (fd, offset)
        desc = self._entries.get(key)
        if desc is not None:
            if self.runtime._entry(desc) is not None:
                self._entries.move_to_end(key)
                self.stats.add("hits")
                return desc, 0
            # descriptor went stale underneath us (host dropped,
            # manager failover): fall through to a fresh lookup
            del self._entries[key]
            self.stats.add("stale")
        self.stats.add("misses")
        desc, err = yield from self.runtime.mlookup(length, fd, offset)
        if err != 0:
            desc, err = yield from self.runtime.mopen(length, fd, offset)
        if err != 0:
            return -1, err
        self._entries[key] = desc
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return desc, 0
