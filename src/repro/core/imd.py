"""The idle memory daemon (imd) — Section 4.2.

Forked by the resource monitor when a workstation is recruited.  It pins a
memory pool sized from the host's recruitable memory (inquiry tools +
``lotsfree`` + the 15% headroom rule), timestamps itself with an epoch
counter, and serves four operations over its control port:

* ``alloc`` / ``free`` — from the central manager; first-fit allocation
  with a periodic coalescing sweep.  Freed space is never returned to the
  OS, only marked reusable, exactly as in the paper.
* ``read`` / ``write`` — from client runtime libraries; region data moves
  over the Section 4.4 bulk blast protocol on per-transfer ephemeral
  sockets.
* ``migrate`` — from the central manager's hotspot-aware reclaim path
  (docs/CACHING.md): blast one hosted region directly to another imd's
  pre-opened receive port, so a busy donor's hot data survives reclaim.

With a :class:`~repro.core.config.CacheConfig` policy active the pool
behaves as a cache: a full pool evicts cold regions in policy order
(never one pinned by an in-flight transfer) instead of rejecting the
allocation, every access feeds the policy (and, when adaptive, a set of
shadow caches whose regret drives online policy switching), and the
inventory reply can carry per-region heat for the manager's migration
ordering.  ``policy="none"`` — the default — leaves all of this code
unreachable and the daemon byte-identical to the paper's behavior.

On reclaim the daemon finishes in-flight transfers, then exits; every
reply piggybacks the current largest free block so the central manager's
idle-workstation directory stays fresh.
"""

from __future__ import annotations

from typing import Optional

from repro.core.allocator import make_allocator
from repro.core.config import CMD_PORT, IMD_PORT, DodoConfig
from repro.core.policy import PolicySelector, make_cache_policy
from repro.core.shard import ShardMap
from repro.cluster.workstation import Workstation
from repro.metrics.recorder import Recorder
from repro.net.bulk import BulkError, recv_bulk, send_bulk
from repro.net.rpc import RpcClient, RpcServer, RpcTimeout
from repro.sim import Simulator


class IdleMemoryDaemon:
    """One recruited host's guest-memory server."""

    def __init__(self, sim: Simulator, ws: Workstation, config: DodoConfig,
                 epoch: int, cmd_host: Optional[str] = None,
                 pool_bytes: Optional[int] = None,
                 allocator_kind: str = "first-fit",
                 control_port: int = IMD_PORT,
                 shard_map: Optional[ShardMap] = None):
        self.sim = sim
        self.ws = ws
        self.config = config
        self.epoch = epoch
        self.cmd_host = cmd_host
        #: sharded-directory mode: register with every shard's primary
        #: and tag each hosted region with the shard that placed it
        self.shard_map = shard_map
        if pool_bytes is None:
            pool_bytes = min(config.max_pool_bytes,
                             ws.recruitable_memory(config.headroom_fraction))
        if pool_bytes <= 0:
            raise ValueError(f"no recruitable memory on {ws.name}")
        self.pool_bytes = pool_bytes
        self.allocator = make_allocator(allocator_kind, pool_bytes)
        #: the guest data lives in the daemon's address space (paper);
        #: a real byte pool in functional mode, None in metadata-only mode
        self.pool: Optional[bytearray] = (
            bytearray(self.allocator.pool_size) if config.store_payload
            else None)
        ws.guest_memory += pool_bytes
        self.stats = Recorder(f"imd.{ws.name}")

        self.endpoint = ws.endpoint(config.transport)
        self._ctrl_sock = self.endpoint.socket(port=control_port)
        self.control_port = control_port
        handlers = {
            "alloc": self._h_alloc,
            "free": self._h_free,
            "read": self._h_read,
            "write": self._h_write,
            "ping": self._h_ping,
            "inventory": self._h_inventory,
        }
        if config.cache.migration:
            handlers["migrate"] = self._h_migrate
        self._server = RpcServer(self._ctrl_sock, handlers,
                                 name=f"imd.{ws.name}", component="imd")
        self._server.start()
        #: logical (requested) size of each hosted region, by pool offset
        self._regions: dict[int, int] = {}
        #: which directory shard placed each region (0 in classic mode)
        self._region_shard: dict[int, int] = {}
        #: per-shard manager incarnation we last registered with
        self._shard_incarnations: dict[int, int] = {}
        self.active_transfers = 0
        self.stopping = False
        self.exited = False
        #: True when the daemon died with its host (power failure) rather
        #: than exiting gracefully — the auditor tolerates directory
        #: entries still pointing at a killed incarnation, because the
        #: manager only discovers the death lazily (RPC timeout)
        self.killed = False
        #: the manager incarnation we last registered with
        self._cmd_incarnation: Optional[int] = None
        #: elastic caching (docs/CACHING.md): eviction policy over hosted
        #: regions, shadow caches for online selection, and transfer pins
        #: that protect in-flight regions from eviction.  All None/empty
        #: with the default ``cache.policy="none"``.
        cache = config.cache
        self.cache_policy = (make_cache_policy(cache.policy)
                             if cache.enabled else None)
        self.cache_selector = None
        self._adapter = None
        if cache.enabled and cache.adaptive:
            self.cache_selector = PolicySelector(
                cache.policy, cache.shadow_policies, pool_bytes,
                min_regret=cache.adapt_min_regret)
            self._adapter = sim.process(self._adapt_loop())
        #: refcount of in-flight transfers per region (eviction shield)
        self._pinned: dict[int, int] = {}
        #: per-allocation generation stamps: eviction can re-allocate a
        #: pool offset within one epoch, so reads/writes carrying a gen
        #: are checked against the offset's current stamp (stale
        #: descriptors must fail, not alias).  Unused (and off the
        #: wire) when the cache subsystem is disabled.
        self._gen = 0
        self._region_gen: dict[int, int] = {}
        self._drained = sim.event()
        self._coalescer = sim.process(self._coalesce_loop())
        self._reregister = sim.process(self._reregister_loop()) \
            if config.imd_reregister_s > 0 else None
        ws.on_crash(self._on_host_crash)
        if sim.telemetry.enabled:
            sim.telemetry.register(sim, "imd", ws.name, self)
        if sim.eventlog.enabled:
            sim.eventlog.info(sim, "imd", "imd.start", host=ws.name,
                              epoch=epoch, pool_bytes=pool_bytes)

    # -- lifecycle -----------------------------------------------------------------
    def register(self):
        """Process: announce pool size and epoch to the central manager."""
        return self.sim.process(self._register())

    def _register(self):
        if self.shard_map is not None:
            ok = True
            for sid in sorted(self.shard_map.shards):
                got = yield from self._register_shard(sid)
                ok = ok and got
            return ok
        if self.cmd_host is None:
            return False
        sock = self.endpoint.socket()
        client = RpcClient(sock)
        try:
            reply = yield from client.call(
                (self.cmd_host, CMD_PORT), "imd_register",
                {"host": self.ws.name, "pool_bytes": self.pool_bytes,
                 "epoch": self.epoch, "port": self.control_port,
                 "largest_free": self.allocator.largest_free()},
                timeout=self.config.rpc_timeout_s,
                retries=self.config.rpc_retries,
                backoff_s=self.config.rpc_backoff_s,
                backoff_jitter=self.config.rpc_backoff_jitter)
        except RpcTimeout:
            self.stats.add("register_failures")
            return False
        finally:
            sock.close()
        inc = reply.get("incarnation") if isinstance(reply, dict) else None
        if inc is not None:
            if self._cmd_incarnation is not None \
                    and inc != self._cmd_incarnation:
                # A different manager answered: its region directory never
                # heard of our regions, so they are unreachable garbage.
                # Drop them — clients rediscover via check_alloc misses
                # and fail over to disk in the meantime.
                self._drop_all_regions()
            self._cmd_incarnation = inc
        return True

    def _register_shard(self, sid: int):
        """Register with one shard's primary, trying the backup when the
        primary is unreachable and chasing ``not_primary`` redirects
        (bounded by ``shard_attempts``).  A changed shard incarnation
        means that shard's directory restarted empty: regions it placed
        here are unreachable garbage, so drop *only those*."""
        info = self.shard_map.shards[sid]
        candidates = [h for h in (info.primary, info.backup) if h]
        for attempt in range(self.config.shard_attempts):
            if self.exited or self.stopping:
                return False
            host = candidates[attempt % len(candidates)]
            sock = self.endpoint.socket()
            client = RpcClient(sock)
            try:
                reply = yield from client.call(
                    (host, CMD_PORT), "imd_register",
                    {"host": self.ws.name, "pool_bytes": self.pool_bytes,
                     "epoch": self.epoch, "port": self.control_port,
                     "largest_free": self.allocator.largest_free()},
                    timeout=self.config.rpc_timeout_s, retries=1,
                    backoff_s=self.config.rpc_backoff_s,
                    backoff_jitter=self.config.rpc_backoff_jitter)
            except RpcTimeout:
                continue
            finally:
                sock.close()
            if reply.get("not_primary"):
                raw = reply.get("shard_map")
                if raw:
                    new = ShardMap.from_wire(raw)
                    if new.version > self.shard_map.version:
                        self.shard_map = new
                        info = new.shards[sid]
                        candidates = [h for h in (info.primary,
                                                  info.backup) if h]
                yield self.sim.timeout(self.config.rpc_timeout_s)
                continue
            if reply.get("ok"):
                inc = reply.get("incarnation")
                if inc is not None:
                    prev = self._shard_incarnations.get(sid)
                    if prev is not None and inc != prev:
                        self._drop_shard_regions(sid)
                    self._shard_incarnations[sid] = inc
                return True
        self.stats.add("register_failures")
        return False

    def _drop_shard_regions(self, sid: int) -> None:
        """Free every region that shard ``sid`` placed (its directory
        restarted empty and can never reference them again)."""
        doomed = [off for off, s in sorted(self._region_shard.items())
                  if s == sid]
        for offset in doomed:
            self.allocator.free(offset)
            del self._regions[offset]
            del self._region_shard[offset]
            self._cache_remove(offset)
        if doomed:
            self.stats.add("regions_dropped", len(doomed))
            if self.sim.eventlog.enabled:
                self.sim.eventlog.warn(
                    self.sim, "imd", "imd.reset", host=self.ws.name,
                    epoch=self.epoch, shard=sid,
                    regions_dropped=len(doomed))

    def _drop_all_regions(self) -> None:
        dropped = len(self._regions)
        for offset in list(self._regions):
            self.allocator.free(offset)
            del self._regions[offset]
            self._region_shard.pop(offset, None)
            self._cache_remove(offset)
        if dropped:
            self.stats.add("regions_dropped", dropped)
        if self.sim.eventlog.enabled:
            self.sim.eventlog.warn(
                self.sim, "imd", "imd.reset", host=self.ws.name,
                epoch=self.epoch, regions_dropped=dropped)

    def _reregister_loop(self):
        """Heartbeat: periodically re-announce to the central manager so a
        restarted manager's empty IWD repopulates (opt-in via
        ``imd_reregister_s``)."""
        from repro.sim import Interrupt
        try:
            while True:
                yield self.sim.timeout(self.config.imd_reregister_s)
                if self.exited:
                    return
                if self.ws.crashed or self.stopping:
                    continue
                yield from self._register()
        except Interrupt:
            return

    def shutdown(self):
        """Process: graceful exit — finish in-flight transfers, release.

        This is the imd's signal handler from Section 4.1: it completes
        ongoing transfers and exits.  The process value is the drain time.
        """
        return self.sim.process(self._shutdown())

    def _shutdown(self):
        if self.exited:
            return 0.0
        start = self.sim.now
        self.stopping = True
        tracer = self.sim.tracer
        span = tracer.begin(self.sim, "imd.drain", "imd",
                            {"host": self.ws.name,
                             "in_flight": self.active_transfers}) \
            if tracer.enabled else None
        if self.active_transfers > 0:
            yield self._drained
        tracer.end(self.sim, span)
        self._server.stop()
        if self._coalescer.is_alive:
            self._coalescer.interrupt("imd-exit")
        if self._reregister is not None and self._reregister.is_alive:
            self._reregister.interrupt("imd-exit")
        if self._adapter is not None and self._adapter.is_alive:
            self._adapter.interrupt("imd-exit")
        self.ws.guest_memory -= self.pool_bytes
        self.pool = None
        self.exited = True
        self.stats.add("shutdowns")
        drain = self.sim.now - start
        self.stats.sample("drain_s", drain)
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(
                self.sim, "imd", "imd.exit", host=self.ws.name,
                epoch=self.epoch, drain_s=round(drain, 6),
                regions_left=len(self._regions))
        return drain

    def _coalesce_loop(self):
        from repro.sim import Interrupt
        try:
            while True:
                yield self.sim.timeout(self.config.coalesce_interval_s)
                self.allocator.coalesce()
        except Interrupt:
            return

    def _on_host_crash(self) -> None:
        """The host power-failed: the daemon process dies with it — no
        drain, no busy notification, in-flight transfers torn down.  The
        pinned pool vanishes with the OS, so guest-memory accounting is
        released immediately rather than lingering until keep-alive
        expiry (the manager still only learns via its next RPC timeout)."""
        if self.exited:
            return
        self.stopping = True
        self.killed = True
        self._server.stop()
        if self._coalescer.is_alive:
            self._coalescer.interrupt("host-crash")
        if self._reregister is not None and self._reregister.is_alive:
            self._reregister.interrupt("host-crash")
        if self._adapter is not None and self._adapter.is_alive:
            self._adapter.interrupt("host-crash")
        self.ws.guest_memory -= self.pool_bytes
        self.pool = None
        self.exited = True
        self.stats.add("hard_kills")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.warn(
                self.sim, "imd", "imd.killed", host=self.ws.name,
                epoch=self.epoch, regions_lost=len(self._regions))

    # -- bookkeeping helpers ----------------------------------------------------------
    def _piggyback(self, reply: dict) -> dict:
        reply["largest_free"] = self.allocator.largest_free()
        return reply

    def _begin_transfer(self) -> None:
        self.active_transfers += 1

    def _end_transfer(self) -> None:
        self.active_transfers -= 1
        if self.active_transfers == 0 and self.stopping \
                and not self._drained.triggered:
            self._drained.succeed()

    # -- elastic caching (docs/CACHING.md) ---------------------------------------------
    def _cache_insert(self, offset: int, size: int) -> None:
        if self.cache_policy is not None:
            self.cache_policy.on_insert(offset, size)
        if self.cache_selector is not None:
            self.cache_selector.access(offset, size)

    def _cache_remove(self, offset: int) -> None:
        self._region_gen.pop(offset, None)
        if self.cache_policy is not None:
            self.cache_policy.on_remove(offset)
        if self.cache_selector is not None:
            self.cache_selector.remove(offset)

    def _note_access(self, offset: int) -> None:
        if self.cache_policy is not None:
            self.cache_policy.on_access(offset)
        if self.cache_selector is not None:
            self.cache_selector.access(offset,
                                       self._regions.get(offset, 0))

    def _pin(self, offset: int) -> None:
        self._pinned[offset] = self._pinned.get(offset, 0) + 1

    def _unpin(self, offset: int) -> None:
        left = self._pinned.get(offset, 0) - 1
        if left <= 0:
            self._pinned.pop(offset, None)
        else:
            self._pinned[offset] = left

    def _evict_for(self, size: int, shard: int) -> list:
        """Evict cold regions, in policy order, until a ``size``-byte
        block can be carved (or no eligible victim remains).  Pinned
        regions and regions another directory shard placed are never
        victims — the replying manager must own every evicted directory
        entry so it can drop them from its own shard.  Returns the
        evicted pool offsets."""
        evicted = []
        while True:
            # first-fit frees lazily; merge so largest_free is honest
            self.allocator.coalesce()
            if self.allocator.largest_free() >= size:
                break
            ineligible = set(self._pinned)
            ineligible.update(off for off, s in self._region_shard.items()
                              if s != shard)
            victim = self.cache_policy.victim(pinned=ineligible)
            if victim is None:
                break
            bytes_out = self._regions.pop(victim)
            self.allocator.free(victim)
            self._region_shard.pop(victim, None)
            self._cache_remove(victim)
            evicted.append(victim)
            self.stats.add("cache.evictions")
            self.stats.add("cache.evicted_bytes", bytes_out)
            if self.sim.eventlog.enabled:
                self.sim.eventlog.debug(
                    self.sim, "imd", "cache.evict", host=self.ws.name,
                    epoch=self.epoch, region_id=victim, bytes=bytes_out)
        return evicted

    def _adapt_loop(self):
        """Online policy selection: at each sample point compare the
        shadow caches' window hit counts and switch the active policy
        when its regret exceeds the configured threshold."""
        from repro.sim import Interrupt
        try:
            while True:
                yield self.sim.timeout(self.config.cache.adapt_interval_s)
                if self.exited or self.stopping:
                    return
                choice = self.cache_selector.recommend()
                if choice is not None:
                    self._switch_policy(choice)
        except Interrupt:
            return

    def _switch_policy(self, name: str) -> None:
        """Swap the active eviction policy, re-registering every hosted
        region so the new policy starts from the current pool contents
        (recency/frequency state does not carry over — documented in
        docs/CACHING.md)."""
        self.cache_policy = make_cache_policy(name)
        for offset in sorted(self._regions):
            self.cache_policy.on_insert(offset, self._regions[offset])
        self.stats.add("cache.switches")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(
                self.sim, "imd", "cache.switch", host=self.ws.name,
                epoch=self.epoch, policy=name)

    # -- RPC handlers -----------------------------------------------------------------
    def _h_ping(self, args: dict, src) -> dict:
        return self._piggyback({"ok": not self.stopping,
                                "epoch": self.epoch})

    def _h_inventory(self, args: dict, src) -> dict:
        """List hosted regions (optionally only those a given shard
        placed) — the promoted primary's anti-entropy scrub uses this to
        find regions its replicated directory never heard of."""
        shard = args.get("shard")
        regions = [[off, size] for off, size in sorted(self._regions.items())
                   if shard is None
                   or self._region_shard.get(off, 0) == shard]
        reply = {"ok": not self.stopping, "epoch": self.epoch,
                 "regions": regions}
        if args.get("heat") and self.cache_policy is not None:
            # separate field so the [[offset, size]] shape of "regions"
            # stays stable for the anti-entropy scrub
            reply["heat"] = [[off, self.cache_policy.heat(off)]
                             for off, _ in regions]
        return self._piggyback(reply)

    def _h_alloc(self, args: dict, src) -> dict:
        if self.stopping:
            return self._piggyback({"ok": False, "reason": "shutting down"})
        size = int(args["size"])
        shard = int(args.get("shard", 0))
        offset = self.allocator.alloc(size)
        evicted: list = []
        if offset is None and self.cache_policy is not None:
            # evict in policy order (the coalesce inside may open space
            # even when nothing is evicted), then retry once
            evicted = self._evict_for(size, shard)
            offset = self.allocator.alloc(size)
        if offset is None:
            self.stats.add("alloc_rejects")
            reply = {"ok": False, "reason": "no space"}
            if evicted:
                reply["evicted"] = evicted
            return self._piggyback(reply)
        self._regions[offset] = size
        self._region_shard[offset] = shard
        self._cache_insert(offset, size)
        self.stats.add("regions_hosted")
        reply = {"ok": True, "region_id": offset, "epoch": self.epoch}
        if self.cache_policy is not None:
            self._gen += 1
            self._region_gen[offset] = self._gen
            reply["gen"] = self._gen
        if evicted:
            reply["evicted"] = evicted
        return self._piggyback(reply)

    def _h_free(self, args: dict, src) -> dict:
        try:
            freed = self.allocator.free(int(args["region_id"]))
        except KeyError:
            return self._piggyback({"ok": False, "reason": "no such region"})
        self._regions.pop(int(args["region_id"]), None)
        self._region_shard.pop(int(args["region_id"]), None)
        self._cache_remove(int(args["region_id"]))
        self.stats.add("regions_freed")
        return self._piggyback({"ok": True, "freed": freed})

    def _region_span(self, args: dict) -> tuple[int, int, int]:
        """Validate (region_id, offset, length) and clamp the length to
        what exists, per the paper's short-read/short-write semantics."""
        region_id = int(args["region_id"])
        size = self._regions.get(region_id)
        if size is None:
            raise KeyError("no such region")
        gen = args.get("gen")
        if gen is not None and int(gen) != self._region_gen.get(region_id):
            # the offset was evicted and re-allocated since this
            # descriptor was minted: fail like a lost region rather
            # than aliasing onto the new tenant's bytes
            raise KeyError("stale generation")
        offset = int(args["offset"])
        length = int(args["length"])
        if offset < 0 or offset > size or length < 0:
            raise ValueError("bad range")
        return region_id, offset, min(length, size - offset)

    def _h_read(self, args: dict, src):
        """Generator handler: blast region bytes back to the client's
        reply port; the RPC reply (bytes pushed) doubles as completion."""
        if self.stopping:
            return {"ok": False, "reason": "shutting down"}
        try:
            region_id, offset, length = self._region_span(args)
        except (KeyError, ValueError) as exc:
            self.stats.add("read_rejects")
            return self._piggyback({"ok": False, "reason": str(exc)})
        self._note_access(region_id)
        data = None
        if self.pool is not None:
            base = region_id + offset
            data = bytes(self.pool[base:base + length])
        self._begin_transfer()
        self._pin(region_id)
        try:
            sock = self.endpoint.socket(
                recvbuf=self.config.data_recvbuf_bytes)
            try:
                yield self.sim.process(send_bulk(
                    sock, (src[0], int(args["reply_port"])), length,
                    data=data, params=self.config.bulk_params(),
                    window=args.get("window")))
            finally:
                sock.close()
        except BulkError:
            self.stats.add("read_aborts")
            return self._piggyback({"ok": False, "reason": "client gone"})
        finally:
            self._unpin(region_id)
            self._end_transfer()
        self.stats.add("bytes_read", length)
        return self._piggyback({"ok": True, "nbytes": length})

    def _h_write(self, args: dict, src) -> dict:
        """Open a per-transfer receive socket and tell the client where to
        blast; a detached process lands the bytes in the pool."""
        if self.stopping:
            return {"ok": False, "reason": "shutting down"}
        try:
            region_id, offset, length = self._region_span(args)
        except (KeyError, ValueError) as exc:
            self.stats.add("write_rejects")
            return self._piggyback({"ok": False, "reason": str(exc)})
        self._note_access(region_id)
        sock = self.endpoint.socket(recvbuf=self.config.data_recvbuf_bytes)
        self._begin_transfer()
        self._pin(region_id)
        self.sim.process(self._write_receiver(
            sock, region_id, offset, length,
            migrate=bool(args.get("migrate"))))
        return self._piggyback({"ok": True, "data_port": sock.port,
                                "window": sock.recvbuf, "nbytes": length})

    def _write_receiver(self, sock, region_id: int, offset: int,
                        length: int, migrate: bool = False):
        tracer = self.sim.tracer
        span = tracer.begin(self.sim, "imd.write_recv", "imd",
                            {"host": self.ws.name, "bytes": length}) \
            if tracer.enabled else None
        try:
            result = yield self.sim.process(recv_bulk(
                sock, first_timeout=2.0, params=self.config.bulk_params(),
                close_socket=True, pregranted=True))
            if result is None:
                self.stats.add("write_aborts")
                sock.close()
                return
            data, total, _ = result
            if self.pool is not None and data is not None:
                base = region_id + offset
                n = min(length, len(data))
                self.pool[base:base + n] = data[:n]
            self.stats.add("bytes_written", total)
            if migrate:
                # landing side of a hot-region migration: counted
                # separately so the auditor can prove byte conservation
                # against the source side's migrate.bytes_out
                self.stats.add("migrate.regions_in")
                self.stats.add("migrate.bytes_in", total)
        finally:
            tracer.end(self.sim, span)
            self._unpin(region_id)
            self._end_transfer()

    def _h_migrate(self, args: dict, src):
        """Generator handler (registered only with ``cache.migration``
        on): blast one hosted region to a destination imd's pre-opened
        write port — the source side of the manager-orchestrated
        hotspot migration (docs/CACHING.md).  ``migrate.bytes_out`` is
        counted before the blast so the auditor's conservation check
        (bytes_in <= bytes_out) holds even mid-transfer."""
        if self.stopping:
            return {"ok": False, "reason": "shutting down"}
        try:
            region_id, offset, length = self._region_span(args)
        except (KeyError, ValueError) as exc:
            self.stats.add("migrate.rejects")
            return self._piggyback({"ok": False, "reason": str(exc)})
        data = None
        if self.pool is not None:
            base = region_id + offset
            data = bytes(self.pool[base:base + length])
        self._begin_transfer()
        self._pin(region_id)
        self.stats.add("migrate.bytes_out", length)
        try:
            sock = self.endpoint.socket(
                recvbuf=self.config.data_recvbuf_bytes)
            try:
                yield self.sim.process(send_bulk(
                    sock, (str(args["dest_host"]), int(args["data_port"])),
                    length, data=data, params=self.config.bulk_params(),
                    window=args.get("window")))
            finally:
                sock.close()
        except BulkError:
            self.stats.add("migrate.aborts")
            return self._piggyback({"ok": False, "reason": "dest gone"})
        finally:
            self._unpin(region_id)
            self._end_transfer()
        self.stats.add("migrate.regions_out")
        return self._piggyback({"ok": True, "nbytes": length})
