"""Pluggable caching policies for the imd region cache (Ditto-style).

Dodo's guest-memory pools are *caches* of file regions: when a pool
fills, the original system simply rejected the allocation, and when a
donor turned busy, reclaim evicted everything.  This module makes both
decisions pluggable, following the elastic/adaptive caching design of
Ditto (see SNIPPETS.md):

* :class:`CachePolicy` — the eviction-order interface.  Policies rank
  the regions an imd hosts; when an allocation does not fit, the daemon
  evicts victims in policy order (never a *pinned* region — one with an
  in-flight transfer) until the request fits or no victim remains.
* Four implementations: :class:`LruCachePolicy` (recency),
  :class:`LfuCachePolicy` (frequency), :class:`ClockCachePolicy`
  (second-chance reference bits) and :class:`CostAwareCachePolicy`
  (GreedyDual-Size-Frequency: refetch-cost-weighted, so small regions —
  whose refetch is dominated by the disk seek — and hot regions are
  kept over large cold streaming ones).
* :class:`ShadowCache` — a metadata-only simulation of one policy over
  the same access stream and capacity, counting the hits that policy
  *would* have had.
* :class:`PolicySelector` — the online adaptation engine: it feeds
  every candidate policy's shadow cache, tracks each one's *regret*
  (best shadow hits minus active-policy shadow hits), and recommends a
  switch when the active policy has fallen behind by a configured
  margin.  The imd runs it at a fixed virtual-time cadence and emits
  ``cache.switch`` event-log records on every change.

Everything here is deterministic: no wall clock, no RNG — victim order
is a pure function of the access history, so identically-seeded runs
evict identically.

Distinct from :mod:`repro.core.policies`, which holds the *client-side*
local-cache replacement policies of paper Figure 5; this module governs
the *donor-side* region pools and the manager's migration decisions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

#: fixed per-refetch cost (the disk seek+rotation share) relative to the
#: per-byte transfer share, in bytes: a refetch of ``size`` bytes costs
#: ``SEEK_COST_BYTES + size`` cost units.  Small regions therefore have
#: the highest cost *density* (cost/byte), matching the disk model where
#: positioning dominates small transfers.
SEEK_COST_BYTES = 256 * 1024


class CachePolicy:
    """Eviction-order interface for one imd's region pool.

    Keys are pool offsets (ints); ``size`` is the region's logical
    length in bytes.  Implementations must be fully deterministic:
    ties break toward the smallest key.

    Lifecycle: :meth:`on_insert` when a region is placed,
    :meth:`on_access` on every read/write touch, :meth:`on_remove` when
    it is freed, evicted or migrated away.  :meth:`victim` returns the
    next region to evict (skipping ``pinned`` keys) or None.
    """

    name = "?"

    def __init__(self) -> None:
        self._sizes: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, key: int) -> bool:
        return key in self._sizes

    def keys(self) -> Iterable[int]:
        return self._sizes.keys()

    def size_of(self, key: int) -> int:
        return self._sizes.get(key, 0)

    def heat(self, key: int) -> int:
        """Access count since insertion (the manager's migration
        ordering signal); 0 for unknown keys."""
        return 0

    def on_insert(self, key: int, size: int) -> None:
        self._sizes[key] = size

    def on_access(self, key: int) -> None:  # noqa: B027 - optional hook
        pass

    def on_remove(self, key: int) -> None:
        self._sizes.pop(key, None)

    def victim(self, pinned: Optional[set] = None) -> Optional[int]:
        raise NotImplementedError


class LruCachePolicy(CachePolicy):
    """Least-recently-used: evict the region touched longest ago."""

    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        self._order: OrderedDict[int, int] = OrderedDict()
        self._heat: dict[int, int] = {}

    def heat(self, key: int) -> int:
        return self._heat.get(key, 0)

    def on_insert(self, key: int, size: int) -> None:
        super().on_insert(key, size)
        self._order[key] = 0
        self._order.move_to_end(key)
        self._heat[key] = 0

    def on_access(self, key: int) -> None:
        if key in self._order:
            self._order.move_to_end(key)
            self._heat[key] = self._heat.get(key, 0) + 1

    def on_remove(self, key: int) -> None:
        super().on_remove(key)
        self._order.pop(key, None)
        self._heat.pop(key, None)

    def victim(self, pinned: Optional[set] = None) -> Optional[int]:
        pinned = pinned or ()
        for key in self._order:
            if key not in pinned:
                return key
        return None


class LfuCachePolicy(CachePolicy):
    """Least-frequently-used: evict the region with the fewest touches
    (ties break LRU-then-smallest-offset, so a scan of cold regions
    drains in access order)."""

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        self._freq: dict[int, int] = {}
        self._tick = 0
        self._last: dict[int, int] = {}

    def heat(self, key: int) -> int:
        return self._freq.get(key, 0)

    def on_insert(self, key: int, size: int) -> None:
        super().on_insert(key, size)
        self._freq[key] = 0
        self._tick += 1
        self._last[key] = self._tick

    def on_access(self, key: int) -> None:
        if key in self._freq:
            self._freq[key] += 1
            self._tick += 1
            self._last[key] = self._tick

    def on_remove(self, key: int) -> None:
        super().on_remove(key)
        self._freq.pop(key, None)
        self._last.pop(key, None)

    def victim(self, pinned: Optional[set] = None) -> Optional[int]:
        pinned = pinned or ()
        best = None
        for key, freq in self._freq.items():
            if key in pinned:
                continue
            rank = (freq, self._last[key], key)
            if best is None or rank < best[0]:
                best = (rank, key)
        return best[1] if best is not None else None


class ClockCachePolicy(CachePolicy):
    """CLOCK (second chance): a circular sweep over the regions; an
    accessed region's reference bit buys it one more lap before it can
    be evicted.  Approximates LRU at O(1) per access."""

    name = "clock"

    def __init__(self) -> None:
        super().__init__()
        #: insertion-ordered ring of (key -> reference bit)
        self._ref: OrderedDict[int, bool] = OrderedDict()
        self._heat: dict[int, int] = {}

    def heat(self, key: int) -> int:
        return self._heat.get(key, 0)

    def on_insert(self, key: int, size: int) -> None:
        super().on_insert(key, size)
        self._ref[key] = False
        self._heat[key] = 0

    def on_access(self, key: int) -> None:
        if key in self._ref:
            self._ref[key] = True
            self._heat[key] = self._heat.get(key, 0) + 1

    def on_remove(self, key: int) -> None:
        super().on_remove(key)
        self._ref.pop(key, None)
        self._heat.pop(key, None)

    def victim(self, pinned: Optional[set] = None) -> Optional[int]:
        pinned = pinned or ()
        eligible = [k for k in self._ref if k not in pinned]
        if not eligible:
            return None
        # Sweep the hand: clear reference bits until an unreferenced,
        # unpinned region comes up.  Two laps suffice — after one lap
        # every eligible bit is clear (the second-chance invariant).
        for _ in range(2 * len(self._ref)):
            key, ref = next(iter(self._ref.items()))
            self._ref.move_to_end(key)  # advance the hand
            if key in pinned:
                continue
            if ref:
                self._ref[key] = False  # second chance spent
                continue
            return key
        return eligible[0]  # pragma: no cover - defensive


class CostAwareCachePolicy(CachePolicy):
    """GreedyDual-Size-Frequency: evict the region with the lowest
    ``clock + frequency * refetch_cost / size``.

    ``refetch_cost`` models what a miss costs: a disk refetch pays a
    positioning charge (:data:`SEEK_COST_BYTES`) plus the bytes.  The
    aging ``clock`` rises to each evicted victim's priority, so regions
    that stop being touched eventually drain no matter how hot they
    once were.  Ties break toward the smallest pool offset.
    """

    name = "cost-aware"

    def __init__(self) -> None:
        super().__init__()
        self._freq: dict[int, int] = {}
        self._prio: dict[int, float] = {}
        self._clock = 0.0

    def heat(self, key: int) -> int:
        return self._freq.get(key, 0)

    def _priority(self, key: int) -> float:
        size = max(1, self._sizes.get(key, 1))
        cost = SEEK_COST_BYTES + size
        return self._clock + (1 + self._freq.get(key, 0)) * cost / size

    def on_insert(self, key: int, size: int) -> None:
        super().on_insert(key, size)
        self._freq[key] = 0
        self._prio[key] = self._priority(key)

    def on_access(self, key: int) -> None:
        if key in self._freq:
            self._freq[key] += 1
            self._prio[key] = self._priority(key)

    def on_remove(self, key: int) -> None:
        super().on_remove(key)
        self._freq.pop(key, None)
        self._prio.pop(key, None)

    def victim(self, pinned: Optional[set] = None) -> Optional[int]:
        pinned = pinned or ()
        best = None
        for key, prio in self._prio.items():
            if key in pinned:
                continue
            rank = (prio, key)
            if best is None or rank < best[0]:
                best = (rank, key)
        if best is None:
            return None
        self._clock = max(self._clock, best[0][0])  # age the cache
        return best[1]


#: registry of donor-side cache policies, by config name
CACHE_POLICIES: dict[str, type] = {
    "lru": LruCachePolicy,
    "lfu": LfuCachePolicy,
    "clock": ClockCachePolicy,
    "cost-aware": CostAwareCachePolicy,
}


def make_cache_policy(name: str) -> CachePolicy:
    """Instantiate a registered policy; ``ValueError`` for unknown names
    (listing the accepted ones, so the CLI error is self-explanatory)."""
    try:
        cls = CACHE_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; choose from "
            f"{sorted(CACHE_POLICIES)}") from None
    return cls()


class ShadowCache:
    """Metadata-only what-if simulation of one policy.

    Fed the same (key, size) access stream as the real pool with the
    same byte capacity, it tracks which regions the policy *would* be
    holding and counts hits/misses — the per-policy signal the online
    selector compares.  Costs nothing but a dict per policy; no bytes
    move.
    """

    def __init__(self, policy_name: str, capacity_bytes: int):
        self.policy = make_cache_policy(policy_name)
        self.capacity = capacity_bytes
        self.used = 0
        self.hits = 0
        self.misses = 0

    @property
    def name(self) -> str:
        return self.policy.name

    def access(self, key: int, size: int) -> bool:
        """Record one access; returns True on a (shadow) hit."""
        if key in self.policy:
            self.hits += 1
            self.policy.on_access(key)
            return True
        self.misses += 1
        if size > self.capacity:
            return False
        while self.used + size > self.capacity:
            victim = self.policy.victim()
            if victim is None:  # pragma: no cover - defensive
                return False
            self.used -= self.policy.size_of(victim)
            self.policy.on_remove(victim)
        self.policy.on_insert(key, size)
        self.used += size
        return False

    def remove(self, key: int) -> None:
        """Mirror a real free/migration (the region left the pool)."""
        if key in self.policy:
            self.used -= self.policy.size_of(key)
            self.policy.on_remove(key)


class PolicySelector:
    """Online policy selection by shadow-cache regret.

    One per imd.  Every access feeds all candidate shadows; at each
    adaptation point (the imd runs :meth:`recommend` on a virtual-time
    cadence aligned with telemetry sampling) the selector compares
    shadow hit counts over the window just ended.  If some candidate
    beat the active policy's shadow by at least ``min_regret`` hits, it
    recommends switching.  Counters then reset, so each window is
    judged on fresh evidence (a policy that was right for phase one
    does not coast through phase two).
    """

    def __init__(self, active: str, candidates: Iterable[str],
                 capacity_bytes: int, min_regret: int = 8):
        names = list(dict.fromkeys(candidates))
        if active not in names:
            names.insert(0, active)
        self.shadows = {name: ShadowCache(name, capacity_bytes)
                        for name in names}
        self.active = active
        self.min_regret = min_regret
        self.switches = 0

    def access(self, key: int, size: int) -> None:
        for shadow in self.shadows.values():
            shadow.access(key, size)

    def remove(self, key: int) -> None:
        for shadow in self.shadows.values():
            shadow.remove(key)

    def window_hits(self) -> dict[str, int]:
        """Current window's shadow hits per policy (stable key order)."""
        return {name: self.shadows[name].hits
                for name in sorted(self.shadows)}

    def regret(self) -> int:
        """How far the active policy trails the best candidate this
        window (>= 0; 0 when the active policy is the best)."""
        best = max(s.hits for s in self.shadows.values())
        return best - self.shadows[self.active].hits

    def recommend(self) -> Optional[str]:
        """End the window: return the policy to switch to, or None to
        stay.  Ties break toward the alphabetically-first name so runs
        are deterministic; counters reset either way."""
        hits = self.window_hits()
        best = max(hits.values())
        choice = None
        if best - hits[self.active] >= self.min_regret:
            choice = min(n for n, h in hits.items() if h == best)
            if choice == self.active:  # pragma: no cover - defensive
                choice = None
        for shadow in self.shadows.values():
            shadow.hits = 0
            shadow.misses = 0
        if choice is not None:
            self.active = choice
            self.switches += 1
        return choice
