"""Consistent-hash sharding of the region directory.

PR 9 splits the central manager's region directory across N shard
managers.  The partitioning is a classic consistent-hash ring with
virtual nodes: each shard id contributes :data:`VNODES` points on a
64-bit ring (from a *stable* SHA-1 based hash — never Python's
process-randomized ``hash()``), and a region key is owned by the shard
whose point is the first at or clockwise-after the key's hash.  Virtual
nodes keep the spread near-uniform, and the ring property guarantees
minimal movement: adding or removing one shard re-owns only the keys
that fall in the arcs it gains or loses.

:class:`ShardMap` is the wire-level routing table — shard id →
(primary host, backup host) plus a version counter bumped on every
promotion — shipped to clients and imds, embedded in ``WRONG_SHARD``
replies so a stale caller can refresh, and serialized as stable JSON
(sorted keys) so two identically-seeded runs produce byte-identical
artifacts.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.descriptors import RegionKey

#: virtual nodes per shard on the ring; 64 keeps the max/min key-spread
#: ratio across 8 shards within ~1.4x (see tests/core/test_shard_properties)
VNODES = 64

#: ring size: points live in [0, 2**64)
RING_BITS = 64


def stable_hash(text: str) -> int:
    """A 64-bit hash that is identical across processes and Python
    versions (SHA-1 prefix; ``hash()`` is seed-randomized per process
    and would break byte-identical replay)."""
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def key_text(key: RegionKey) -> str:
    """Canonical ring-hash text for a region key."""
    return f"{key.inode}:{key.offset}:{key.client or ''}"


class HashRing:
    """A consistent-hash ring over shard ids with virtual nodes."""

    def __init__(self, shard_ids: Sequence[int], vnodes: int = VNODES):
        if not shard_ids:
            raise ValueError("ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids in {list(shard_ids)}")
        self.vnodes = vnodes
        self.shard_ids = tuple(sorted(shard_ids))
        points: list[tuple[int, int]] = []
        for sid in self.shard_ids:
            for v in range(vnodes):
                points.append((stable_hash(f"shard:{sid}:vnode:{v}"), sid))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def owner(self, text: str) -> int:
        """Shard id owning ``text``: first ring point clockwise from its
        hash (wrapping past the top of the ring)."""
        h = stable_hash(text)
        idx = bisect.bisect_right(self._points, h)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def owner_of_key(self, key: RegionKey) -> int:
        """Shard id owning a region key."""
        return self.owner(key_text(key))

    def with_shard(self, sid: int) -> "HashRing":
        """A new ring with ``sid`` added (for movement-bound tests)."""
        return HashRing(self.shard_ids + (sid,), vnodes=self.vnodes)

    def without_shard(self, sid: int) -> "HashRing":
        """A new ring with ``sid`` removed."""
        return HashRing(tuple(s for s in self.shard_ids if s != sid),
                        vnodes=self.vnodes)


@dataclass(frozen=True)
class ShardInfo:
    """One shard's replica set: the primary host and (optionally) the
    backup host the primary ships its mutation log to."""

    shard_id: int
    primary: str
    backup: Optional[str] = None

    def to_wire(self) -> dict:
        d = {"shard_id": self.shard_id, "primary": self.primary}
        if self.backup is not None:
            d["backup"] = self.backup
        return d

    @classmethod
    def from_wire(cls, d: dict) -> "ShardInfo":
        return cls(shard_id=int(d["shard_id"]), primary=d["primary"],
                   backup=d.get("backup"))


class ShardMap:
    """Versioned routing table: shard id -> replica set, plus the ring.

    Immutable in spirit — promotion returns a *new* map via
    :meth:`promoted` with the version bumped, so every copy a client or
    imd holds can be compared by version and replaced wholesale.
    """

    def __init__(self, shards: Sequence[ShardInfo], version: int = 1,
                 vnodes: int = VNODES):
        self.version = version
        self.shards = {s.shard_id: s for s in shards}
        if len(self.shards) != len(shards):
            raise ValueError("duplicate shard ids")
        self.ring = HashRing(sorted(self.shards), vnodes=vnodes)

    @property
    def n_shards(self) -> int:
        """Number of shards in the map."""
        return len(self.shards)

    def owner_of(self, key: RegionKey) -> int:
        """Shard id owning ``key`` per the ring."""
        return self.ring.owner_of_key(key)

    def primary(self, sid: int) -> str:
        """Primary host of shard ``sid``."""
        return self.shards[sid].primary

    def backup(self, sid: int) -> Optional[str]:
        """Backup host of shard ``sid`` (None when unreplicated)."""
        return self.shards[sid].backup

    def promoted(self, sid: int, new_primary: str,
                 new_backup: Optional[str] = None) -> "ShardMap":
        """A successor map (version+1) with shard ``sid`` re-pointed at
        ``new_primary``/``new_backup`` — what a promoted backup
        publishes so routers chase the new primary."""
        shards = [ShardInfo(sid, new_primary, new_backup)
                  if s.shard_id == sid else s
                  for s in sorted(self.shards.values(),
                                  key=lambda s: s.shard_id)]
        return ShardMap(shards, version=self.version + 1,
                        vnodes=self.ring.vnodes)

    def to_wire(self) -> dict:
        """Wire/JSON form (stable ordering by shard id)."""
        return {
            "version": self.version,
            "vnodes": self.ring.vnodes,
            "shards": [self.shards[sid].to_wire()
                       for sid in sorted(self.shards)],
        }

    @classmethod
    def from_wire(cls, d: dict) -> "ShardMap":
        return cls([ShardInfo.from_wire(s) for s in d["shards"]],
                   version=int(d["version"]),
                   vnodes=int(d.get("vnodes", VNODES)))

    def to_json(self) -> str:
        """Stable JSON text (sorted keys; byte-identical per content)."""
        return json.dumps(self.to_wire(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ShardMap":
        return cls.from_wire(json.loads(text))

    def __eq__(self, other) -> bool:
        return (isinstance(other, ShardMap)
                and self.to_wire() == other.to_wire())

    def __repr__(self) -> str:
        reps = ", ".join(
            f"{sid}:{s.primary}" + (f"+{s.backup}" if s.backup else "")
            for sid, s in sorted(self.shards.items()))
        return f"ShardMap(v{self.version}, {reps})"


def default_shard_map(n_shards: int, replication: bool = False,
                      primary_fmt: str = "mgr{:02d}",
                      backup_fmt: str = "bak{:02d}") -> ShardMap:
    """The platform's initial map: shard i on ``mgr0i`` (backup on
    ``bak0i`` when replication is on)."""
    shards = [ShardInfo(i, primary_fmt.format(i),
                        backup_fmt.format(i) if replication else None)
              for i in range(n_shards)]
    return ShardMap(shards)
