"""Region naming and bookkeeping structures (Section 4.3 / 4.4).

* A **region key** identifies a region cluster-wide: the
  ``(inode-of-backing-file, offset-in-file)`` pair of the paper, optionally
  extended with a client id (the paper's planned multi-client extension).
* A **region struct** is what the central manager's region directory (RD)
  stores and returns to clients: hosting machine, offset in that imd's
  memory pool, length, and the epoch-based timestamp used to detect stale
  entries after an imd has been restarted.
* The client-side **region table** entry tracks what the runtime library
  knows about each descriptor it has handed out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_uid_counter = itertools.count(1)


@dataclass(frozen=True)
class RegionKey:
    """Cluster-wide region identity."""

    inode: int
    offset: int
    client: Optional[str] = None  # set only with multi_client_keys

    def __str__(self) -> str:
        base = f"{self.inode}:{self.offset}"
        return f"{self.client}/{base}" if self.client else base


@dataclass(frozen=True)
class RegionStruct:
    """A region directory entry: where the bytes live."""

    host: str
    pool_offset: int
    length: int
    epoch: int

    def to_wire(self) -> dict:
        return {"host": self.host, "pool_offset": self.pool_offset,
                "length": self.length, "epoch": self.epoch}

    @classmethod
    def from_wire(cls, d: dict) -> "RegionStruct":
        return cls(host=d["host"], pool_offset=d["pool_offset"],
                   length=d["length"], epoch=d["epoch"])


@dataclass
class RegionTableEntry:
    """Client-side state for one ``mopen``'ed region (Section 4.4)."""

    descriptor: int
    key: RegionKey
    length: int
    #: backing file handle + starting offset within it
    backing_fd: int
    backing_offset: int
    #: remote placement; None while the region is not remotely cached
    remote: Optional[RegionStruct] = None
    #: unique identifier for the region (paper's region-table field 4)
    uid: int = field(default_factory=lambda: next(_uid_counter))

    @property
    def is_remote(self) -> bool:
        return self.remote is not None
