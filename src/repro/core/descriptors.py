"""Region naming and bookkeeping structures (Section 4.3 / 4.4).

* A **region key** identifies a region cluster-wide: the
  ``(inode-of-backing-file, offset-in-file)`` pair of the paper, optionally
  extended with a client id (the paper's planned multi-client extension).
* A **region struct** is what the central manager's region directory (RD)
  stores and returns to clients: hosting machine, offset in that imd's
  memory pool, length, and the epoch-based timestamp used to detect stale
  entries after an imd has been restarted.
* The client-side **region table** entry tracks what the runtime library
  knows about each descriptor it has handed out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_uid_counter = itertools.count(1)


@dataclass(frozen=True)
class RegionKey:
    """Cluster-wide region identity."""

    inode: int
    offset: int
    client: Optional[str] = None  # set only with multi_client_keys

    def __str__(self) -> str:
        base = f"{self.inode}:{self.offset}"
        return f"{self.client}/{base}" if self.client else base


@dataclass(frozen=True)
class RegionStruct:
    """A region directory entry: where the bytes live."""

    host: str
    pool_offset: int
    length: int
    epoch: int
    #: per-allocation generation token.  Elastic caching lets an imd
    #: evict and re-allocate the same pool offset within one epoch, so
    #: ``(host, pool_offset, epoch)`` alone would let a stale descriptor
    #: silently alias onto a stranger's bytes; the imd stamps each
    #: allocation and rejects mismatched reads/writes.  Zero when the
    #: cache subsystem is off — and then omitted from the wire, keeping
    #: the original protocol byte-identical.
    gen: int = 0

    def to_wire(self) -> dict:
        d = {"host": self.host, "pool_offset": self.pool_offset,
             "length": self.length, "epoch": self.epoch}
        if self.gen:
            d["gen"] = self.gen
        return d

    @classmethod
    def from_wire(cls, d: dict) -> "RegionStruct":
        return cls(host=d["host"], pool_offset=d["pool_offset"],
                   length=d["length"], epoch=d["epoch"],
                   gen=d.get("gen", 0))


@dataclass
class RegionTableEntry:
    """Client-side state for one ``mopen``'ed region (Section 4.4)."""

    descriptor: int
    key: RegionKey
    length: int
    #: backing file handle + starting offset within it
    backing_fd: int
    backing_offset: int
    #: remote placement; None while the region is not remotely cached
    remote: Optional[RegionStruct] = None
    #: unique identifier for the region (paper's region-table field 4)
    uid: int = field(default_factory=lambda: next(_uid_counter))

    @property
    def is_remote(self) -> bool:
        return self.remote is not None
