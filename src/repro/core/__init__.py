"""Dodo proper: the user-level idle-memory harvesting system.

Components (paper Section 4):

* :mod:`repro.core.manager` — central manager daemon (cmd): IWD + RD
* :mod:`repro.core.rmd` — resource monitor daemon: recruit/reclaim
* :mod:`repro.core.imd` — idle memory daemon: the guest-memory server
* :mod:`repro.core.runtime` — libdodo: mopen/mread/mwrite/mclose/msync
* :mod:`repro.core.regionlib` — libmanage: the region-management layer
  (copen/cread/cwrite/cclose/csync/csetPolicy) with LRU/MRU/first-in
  replacement and the grimReaper space reclaimer
* :mod:`repro.core.allocator` — imd pool allocators (first-fit + buddy)
"""

from repro.core.allocator import (BuddyAllocator, FirstFitAllocator,
                                  PoolAllocator, make_allocator)
from repro.core.config import CMD_PORT, IMD_PORT, DodoConfig
from repro.core.descriptors import RegionKey, RegionStruct, RegionTableEntry
from repro.core.errno import EINVAL, EIO, ENOMEM, DodoError, errno_name
from repro.core.imd import IdleMemoryDaemon
from repro.core.manager import CentralManager
from repro.core.policies import POLICIES, make_policy
from repro.core.regionlib import RegionCache
from repro.core.rmd import ResourceMonitor
from repro.core.runtime import DodoRuntime

__all__ = [
    "BuddyAllocator",
    "CMD_PORT",
    "CentralManager",
    "DodoConfig",
    "DodoError",
    "DodoRuntime",
    "EINVAL",
    "EIO",
    "ENOMEM",
    "FirstFitAllocator",
    "IMD_PORT",
    "IdleMemoryDaemon",
    "POLICIES",
    "PoolAllocator",
    "RegionCache",
    "RegionKey",
    "RegionStruct",
    "RegionTableEntry",
    "ResourceMonitor",
    "errno_name",
    "make_allocator",
]
