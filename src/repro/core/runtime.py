"""``libdodo`` — the runtime library linked into applications (Section 3.2/4.4).

Implements the paper's five-call API with its exact error semantics:

* ``mopen(len, fd, offset)`` — allocate (or re-find) a remote region backed
  by ``offset`` within the already-open file ``fd``; returns a descriptor,
  or -1/EINVAL for bad arguments, -1/ENOMEM when no idle memory exists
  (after which the library observes a *refraction period* during which it
  refuses further allocation attempts without contacting the manager).
* ``mread`` / ``mwrite`` — move bytes between the caller and the region
  over the bulk protocol; writes also go **to the backing file in
  parallel** (remote memory is a read-only cache; the disk always has the
  truth).  Short reads/writes clamp at the region end.  A failed access to
  a region's host drops *all* descriptors on that host.
* ``mclose`` — deallocate through the central manager.
* ``msync`` — block until the region's backing-file data is on disk.

All calls are generator *process bodies*: application code runs inside the
simulation and uses ``result = yield from lib.mopen(...)``.  Returns are
``(value, errno)`` pairs — C conventions, no exceptions for expected
failures — plus a data element for ``mread``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import CMD_PORT, DodoConfig
from repro.core.descriptors import RegionKey, RegionStruct, RegionTableEntry
from repro.core.errno import EINVAL, EIO, ENOMEM
from repro.core.shard import ShardMap
from repro.cluster.workstation import Workstation
from repro.metrics.recorder import Recorder
from repro.net.bulk import BulkError, recv_bulk, send_bulk
from repro.net.rpc import RpcClient, RpcRemoteError, RpcServer, RpcTimeout
from repro.sim import AllOf, AnyOf, Simulator
from repro.storage.filesystem import FsError


class DodoRuntime:
    """Per-application client library instance."""

    def __init__(self, sim: Simulator, ws: Workstation, config: DodoConfig,
                 cmd_host: str, shard_map: Optional[ShardMap] = None):
        if ws.fs is None:
            raise ValueError(f"{ws.name} needs a local file system for "
                             "backing files")
        self.sim = sim
        self.ws = ws
        self.config = config
        self.cmd = (cmd_host, CMD_PORT)
        #: sharded-directory mode: route keyed calls by the consistent-
        #: hash ring, chase wrong_shard/not_primary redirects, fail over
        #: between a shard's replicas
        self.shard_map = shard_map
        self.endpoint = ws.endpoint(config.transport)
        self._cmd_sock = self.endpoint.socket()
        self._cmd_rpc = RpcClient(self._cmd_sock)
        #: per-manager-host persistent RPC clients (sharded mode)
        self._shard_socks: dict[str, tuple] = {}
        #: per-shard preferred endpoint (last host that answered)
        self._shard_pref: dict[int, str] = {}
        #: per-shard manager incarnation last observed
        self._shard_incarnations: dict[int, int] = {}
        echo_sock = self.endpoint.socket()
        self.echo_port = echo_sock.port
        self._echo = RpcServer(echo_sock, {"echo": self._h_echo},
                               name=f"lib.{ws.name}.echo")
        self._echo.start()
        #: cluster-unique client identity used for keep-alives and
        #: (optionally) multi-client region keys
        self.client_id = f"{ws.name}#{self.echo_port}"
        self._regions: dict[int, RegionTableEntry] = {}
        self._next_desc = 0
        self._refraction_until = float("-inf")
        self.detached = False
        #: manager incarnation last observed on a reply/echo; a change
        #: means the cmd restarted and its region directory is empty
        self._mgr_incarnation: Optional[int] = None
        self.stats = Recorder(f"lib.{ws.name}")

    # -- helpers --------------------------------------------------------------------
    def _span(self, name: str, tags: Optional[dict] = None):
        """Open a library-layer span (None when tracing is off)."""
        tracer = self.sim.tracer
        if not tracer.enabled:
            return None
        return tracer.begin(self.sim, name, "lib", tags)

    def _end_span(self, span, tags: Optional[dict] = None) -> None:
        self.sim.tracer.end(self.sim, span, tags)

    def _key_for(self, inode: int, offset: int) -> RegionKey:
        client = self.client_id if self.config.multi_client_keys else None
        return RegionKey(inode=inode, offset=offset, client=client)

    def _cmd_call(self, method: str, args: dict,
                  key: Optional[RegionKey] = None):
        if self.shard_map is not None:
            reply = yield from self._sharded_call(method, args, key=key)
            return reply
        args = dict(args)
        args["client"] = self.client_id
        args["echo_port"] = self.echo_port
        reply = yield from self._cmd_rpc.call(
            self.cmd, method, args,
            timeout=self.config.rpc_timeout_s,
            retries=self.config.rpc_retries,
            backoff_s=self.config.rpc_backoff_s,
            backoff_jitter=self.config.rpc_backoff_jitter)
        if isinstance(reply, dict):
            self._note_manager_incarnation(reply.get("mgr_incarnation"))
        return reply

    # -- sharded routing ------------------------------------------------------------
    def _rpc_for(self, host: str) -> RpcClient:
        """Persistent per-manager-host RPC client (sharded mode)."""
        pair = self._shard_socks.get(host)
        if pair is None:
            sock = self.endpoint.socket()
            pair = (sock, RpcClient(sock))
            self._shard_socks[host] = pair
        return pair[1]

    def _shard_candidates(self, sid: int) -> list[str]:
        """The shard's replica hosts, preferred endpoint first."""
        info = self.shard_map.shards[sid]
        cands = [h for h in (info.primary, info.backup) if h]
        pref = self._shard_pref.get(sid)
        if pref in cands and cands[0] != pref:
            cands.remove(pref)
            cands.insert(0, pref)
        return cands

    def _adopt_map(self, raw: Optional[dict]) -> None:
        """Replace our routing table when a reply embeds a newer one."""
        if not raw:
            return
        new = ShardMap.from_wire(raw)
        if new.version > self.shard_map.version:
            self.shard_map = new
            self.stats.add("shard.map_refresh")

    def _sharded_call(self, method: str, args: dict,
                      key: Optional[RegionKey] = None,
                      shard: Optional[int] = None):
        """Route one directory call in sharded mode: pick the owning
        shard by the ring (or use the explicit ``shard``), try its
        replicas — preferred endpoint first — and chase ``wrong_shard``
        (stale map) and ``not_primary`` (failover in progress) redirects
        until an answer or ``shard_attempts`` is exhausted."""
        args = dict(args)
        args["client"] = self.client_id
        args["echo_port"] = self.echo_port
        sid = shard if shard is not None else (
            self.shard_map.owner_of(key) if key is not None else 0)
        for attempt in range(self.config.shard_attempts):
            cands = self._shard_candidates(sid)
            host = cands[attempt % len(cands)]
            try:
                reply = yield from self._rpc_for(host).call(
                    (host, CMD_PORT), method, args,
                    timeout=self.config.rpc_timeout_s, retries=2,
                    backoff_s=self.config.rpc_backoff_s,
                    backoff_jitter=self.config.rpc_backoff_jitter)
            except RpcTimeout:
                self.stats.add("shard.retry")
                self._shard_pref.pop(sid, None)
                continue
            if isinstance(reply, dict):
                if reply.get("not_primary"):
                    self.stats.add("shard.not_primary")
                    self._adopt_map(reply.get("shard_map"))
                    hint = reply.get("primary")
                    if hint and hint != host:
                        self._shard_pref[sid] = hint
                    else:
                        yield self.sim.timeout(self.config.rpc_timeout_s)
                    continue
                if reply.get("wrong_shard"):
                    self.stats.add("shard.wrong_shard")
                    self._adopt_map(reply.get("shard_map"))
                    if shard is None and key is not None:
                        sid = self.shard_map.owner_of(key)
                    continue
                self._shard_pref[sid] = host
                self._note_shard_incarnation(
                    sid, reply.get("mgr_incarnation"))
            return reply
        self.stats.add("shard.unreachable")
        raise RpcTimeout(f"{method}: shard {sid} unreachable after "
                         f"{self.config.shard_attempts} attempts")

    def _note_shard_incarnation(self, sid: int,
                                inc: Optional[int]) -> None:
        """Per-shard incarnation tracking: a bump means that shard's
        directory restarted empty, so drop only the descriptors whose
        keys that shard owns (a promoted backup keeps the incarnation —
        descriptors survive failover)."""
        if inc is None:
            return
        prev = self._shard_incarnations.get(sid)
        if prev is None or inc == prev:
            self._shard_incarnations[sid] = inc
            return
        self._shard_incarnations[sid] = inc
        doomed = [d for d, e in self._regions.items()
                  if self.shard_map.owner_of(e.key) == sid]
        for d in doomed:
            del self._regions[d]
        self.stats.add("manager_restarts")
        if doomed:
            self.stats.add("descriptors_dropped", len(doomed))
        if self.sim.eventlog.enabled:
            self.sim.eventlog.warn(
                self.sim, "lib", "client.reregister", host=self.ws.name,
                client=self.client_id, incarnation=inc, shard=sid,
                descriptors_dropped=len(doomed))

    def _note_manager_incarnation(self, inc: Optional[int]) -> None:
        """Track the manager's restart counter.  On a change, every local
        descriptor references a directory entry the new manager never
        heard of — drop them all (reads fall back to the backing file,
        Section 3.1's failure rule) and start fresh.  Runs synchronously
        so the caller's own reply is processed against clean state."""
        if inc is None:
            return
        if self._mgr_incarnation is None:
            self._mgr_incarnation = inc
            return
        if inc == self._mgr_incarnation:
            return
        self._mgr_incarnation = inc
        dropped = len(self._regions)
        self._regions.clear()
        self.stats.add("manager_restarts")
        if dropped:
            self.stats.add("descriptors_dropped", dropped)
        if self.sim.eventlog.enabled:
            self.sim.eventlog.warn(
                self.sim, "lib", "client.reregister", host=self.ws.name,
                client=self.client_id, incarnation=inc,
                descriptors_dropped=dropped)

    def _h_echo(self, args: dict, src) -> dict:
        """Keep-alive echo handler; piggybacked incarnation detects a
        manager restart even when the library is otherwise idle."""
        if self.shard_map is not None and args.get("shard") is not None:
            self._note_shard_incarnation(int(args["shard"]),
                                         args.get("incarnation"))
        else:
            self._note_manager_incarnation(args.get("incarnation"))
        return {"ok": True}

    def _entry(self, desc: int) -> Optional[RegionTableEntry]:
        return self._regions.get(desc)

    def drop_host(self, host: str) -> int:
        """Drop every descriptor for regions on ``host`` (Section 3.1:
        the library's reaction to any access failure on that node)."""
        doomed = [d for d, e in self._regions.items()
                  if e.remote is not None and e.remote.host == host]
        for d in doomed:
            del self._regions[d]
        if doomed:
            self.stats.add("hosts_dropped")
            self.stats.add("descriptors_dropped", len(doomed))
        return len(doomed)

    @property
    def open_regions(self) -> int:
        return len(self._regions)

    def in_refraction(self) -> bool:
        """True while the library refuses allocation attempts after an
        ENOMEM (Section 3.1's refraction period)."""
        return self.sim.now < self._refraction_until

    # -- API: mopen -----------------------------------------------------------------
    def mopen(self, length: int, fd: int, offset: int):
        """Generator: ``(descriptor, 0)`` or ``(-1, errno)``."""
        fh = self.ws.fs.handle(fd)
        if fh is None or not fh.writable or length < 1 or offset < 0:
            self.stats.add("mopen.einval")
            return -1, EINVAL
        if self.in_refraction():
            self.stats.add("mopen.refraction_skip")
            return -1, ENOMEM
        key = self._key_for(fh.inode, offset)

        span = self._span("mopen", {"len": length, "inode": fh.inode,
                                    "offset": offset})
        try:
            try:
                # An identically-keyed region may already exist (e.g. left
                # by a previous run against the same backing file — the
                # dmine pattern).  checkAlloc both finds and validates it.
                reply = yield from self._cmd_call(
                    "check_alloc",
                    {"key": [key.inode, key.offset, key.client]}, key=key)
                if reply.get("ok") and reply["region"]["length"] < length:
                    reply = {"ok": False}  # too small: allocate replacement
                if not reply.get("ok"):
                    reply = yield from self._cmd_call(
                        "alloc", {"key": [key.inode, key.offset, key.client],
                                  "length": length}, key=key)
            except (RpcTimeout, RpcRemoteError):
                self.stats.add("mopen.cmd_unreachable")
                if span is not None:
                    span.tag("err", "enomem")
                return -1, ENOMEM
            if not reply.get("ok"):
                self._refraction_until = \
                    self.sim.now + self.config.refraction_period_s
                self.stats.add("mopen.enomem")
                if span is not None:
                    span.tag("err", "enomem")
                return -1, ENOMEM
            struct = RegionStruct.from_wire(reply["region"])
            desc = self._next_desc
            self._next_desc += 1
            self._regions[desc] = RegionTableEntry(
                descriptor=desc, key=key, length=length, backing_fd=fd,
                backing_offset=offset, remote=struct)
            self.stats.add("mopen.ok")
            return desc, 0
        finally:
            self._end_span(span)

    def mlookup(self, length: int, fd: int, offset: int):
        """Generator: find an *existing* region for (fd, offset) without
        allocating — a pure checkAlloc (the cmd operation the paper
        exports to the library).  ``(descriptor, 0)`` when a valid region
        of at least ``length`` bytes exists, ``(-1, ENOMEM)`` otherwise.

        This is how a new run discovers regions a previous run left in
        remote memory (dmine's persistence pattern) without ``mopen``'s
        side effect of allocating on a miss.
        """
        fh = self.ws.fs.handle(fd)
        if fh is None or not fh.writable or length < 1 or offset < 0:
            return -1, EINVAL
        key = self._key_for(fh.inode, offset)
        span = self._span("mlookup", {"len": length, "inode": fh.inode,
                                      "offset": offset})
        try:
            try:
                reply = yield from self._cmd_call(
                    "check_alloc",
                    {"key": [key.inode, key.offset, key.client]}, key=key)
            except (RpcTimeout, RpcRemoteError):
                if span is not None:
                    span.tag("err", "enomem")
                return -1, ENOMEM
            if not reply.get("ok") or reply["region"]["length"] < length:
                if span is not None:
                    span.tag("err", "enomem")
                return -1, ENOMEM
            struct = RegionStruct.from_wire(reply["region"])
            desc = self._next_desc
            self._next_desc += 1
            self._regions[desc] = RegionTableEntry(
                descriptor=desc, key=key, length=length, backing_fd=fd,
                backing_offset=offset, remote=struct)
            self.stats.add("mlookup.hit")
            return desc, 0
        finally:
            self._end_span(span)

    # -- API: mread -----------------------------------------------------------------
    def mread(self, desc: int, offset: int, length: int):
        """Generator: ``(nbytes, 0, data)`` or ``(-1, errno, None)``.

        ``data`` is real bytes in payload mode, None otherwise.
        """
        entry = self._entry(desc)
        if entry is None or entry.remote is None:
            self.stats.add("mread.enomem")
            return -1, ENOMEM, None
        if offset < 0 or offset > entry.length or length < 0:
            self.stats.add("mread.einval")
            return -1, EINVAL, None
        length = min(length, entry.length - offset)
        if length == 0:
            return 0, 0, b"" if self.config.store_payload else None
        struct = entry.remote

        span = self._span("mread", {"desc": desc, "bytes": length,
                                    "host": struct.host})
        try:
            reply_sock = self.endpoint.socket(
                recvbuf=self.config.data_recvbuf_bytes)
            receiver = self.sim.process(recv_bulk(
                reply_sock, first_timeout=self._transfer_timeout(length),
                params=self.config.bulk_params(), close_socket=True, pregranted=True))
            # The read request carries our receive-buffer grant, so the imd
            # blasts without a separate negotiation round-trip.  The RPC
            # reply only matters on the failure path (bad region / daemon
            # exiting): the moment the data is complete the read is done, so
            # race the receiver against the RPC instead of waiting for both.
            req = {"region_id": struct.pool_offset, "offset": offset,
                   "length": length, "reply_port": reply_sock.port,
                   "window": reply_sock.recvbuf}
            if struct.gen:
                req["gen"] = struct.gen
            rpc_proc = self.sim.process(self._imd_call_quiet(
                struct, "read", req, data_bytes=length))
            idx, val = yield AnyOf(self.sim, [receiver, rpc_proc])
            rejected = False
            if idx == 0 or receiver.processed:
                result = receiver.value
                failed = result is None
            elif val is None or not val.get("ok"):
                # RPC failed first: tear the receiver down.
                rejected = val is not None
                reply_sock.close()
                yield receiver  # drains to None once the socket closes
                result, failed = None, True
            else:
                # RPC confirmed but the blast is still landing (e.g. a lost
                # chunk being NACKed): wait for the data.
                result = yield receiver
                failed = result is None
            if failed:
                if rejected and self.config.cache.enabled:
                    # a definitive negative reply: the host is alive but
                    # this region is gone (evicted or migrated away) —
                    # invalidate only this descriptor, not the host
                    self._regions.pop(desc, None)
                    self.stats.add("descriptors_dropped")
                else:
                    self.drop_host(struct.host)
                self.stats.add("mread.enomem")
                if span is not None:
                    span.tag("err", "enomem")
                return -1, ENOMEM, None
            data, total, _src = result
            self.stats.add("mread.ok")
            self.stats.add("mread.bytes", total)
            return total, 0, data
        finally:
            self._end_span(span)

    # -- API: mwrite ----------------------------------------------------------------
    def mwrite(self, desc: int, offset: int, length: int,
               data: Optional[bytes] = None):
        """Generator: ``(nbytes, 0)`` or ``(-1, errno)``.

        The write goes to the backing file and to the remote region in
        parallel (Section 3.2); both must complete before return.
        """
        entry = self._entry(desc)
        if entry is None or entry.remote is None:
            self.stats.add("mwrite.enomem")
            return -1, ENOMEM
        if offset < 0 or offset > entry.length or length < 0:
            self.stats.add("mwrite.einval")
            return -1, EINVAL
        if data is not None and len(data) < length:
            return -1, EINVAL
        length = min(length, entry.length - offset)
        if data is not None:
            data = bytes(data[:length])
        if length == 0:
            return 0, 0

        fh = self.ws.fs.handle(entry.backing_fd)
        if fh is None:
            self.stats.add("mwrite.eio")
            return -1, EIO
        span = self._span("mwrite", {"desc": desc, "bytes": length,
                                     "host": entry.remote.host})
        try:
            disk_proc = self.sim.process(self._backing_write(
                fh, entry.backing_offset + offset, length, data))
            remote_proc = self.sim.process(self._remote_write(
                entry.remote, offset, length, data))
            disk_ok, remote_ok = yield AllOf(self.sim,
                                             [disk_proc, remote_proc])
            if not disk_ok:
                # the paper passes through the backing write()'s errno
                self.stats.add("mwrite.eio")
                if span is not None:
                    span.tag("err", "eio")
                return -1, EIO
            if not remote_ok:
                if remote_ok is None and self.config.cache.enabled:
                    # host alive, region evicted/migrated: this
                    # descriptor alone is stale
                    self._regions.pop(desc, None)
                    self.stats.add("descriptors_dropped")
                else:
                    self.drop_host(entry.remote.host)
                self.stats.add("mwrite.enomem")
                if span is not None:
                    span.tag("err", "enomem")
                return -1, ENOMEM
            self.stats.add("mwrite.ok")
            self.stats.add("mwrite.bytes", length)
            return length, 0
        finally:
            self._end_span(span)

    def _backing_write(self, fh, offset: int, length: int,
                       data: Optional[bytes]):
        try:
            yield self.ws.fs.write(fh, offset, length, data)
            return True
        except FsError:
            return False

    def _remote_write(self, struct: RegionStruct, offset: int, length: int,
                      data: Optional[bytes]):
        try:
            req = {"region_id": struct.pool_offset, "offset": offset,
                   "length": length}
            if struct.gen:
                req["gen"] = struct.gen
            reply = yield from self._imd_call(struct, "write", req)
            if not reply.get("ok"):
                return None  # definitive reject: host alive, region gone
            sock = self.endpoint.socket()
            try:
                yield self.sim.process(send_bulk(
                    sock, (struct.host, int(reply["data_port"])), length,
                    data=data, params=self.config.bulk_params(),
                    window=reply.get("window")))
            finally:
                sock.close()
            return True
        except (RpcTimeout, RpcRemoteError, BulkError):
            return False

    def mpush(self, desc: int, offset: int, length: int,
              data: Optional[bytes] = None):
        """Generator: remote-only write — ``(nbytes, 0)`` or ``(-1, errno)``.

        Used by the region-management library's ``cloneRemoteRegion``: when
        migrating a *clean* region to remote memory the backing file is
        already current, so only the network copy is needed.
        """
        entry = self._entry(desc)
        if entry is None or entry.remote is None:
            return -1, ENOMEM
        if offset < 0 or offset > entry.length or length < 0:
            return -1, EINVAL
        length = min(length, entry.length - offset)
        if data is not None:
            data = bytes(data[:length])
        if length == 0:
            return 0, 0
        span = self._span("mpush", {"desc": desc, "bytes": length,
                                    "host": entry.remote.host})
        try:
            ok = yield self.sim.process(self._remote_write(
                entry.remote, offset, length, data))
            if not ok:
                if ok is None and self.config.cache.enabled:
                    self._regions.pop(desc, None)
                    self.stats.add("descriptors_dropped")
                else:
                    self.drop_host(entry.remote.host)
                if span is not None:
                    span.tag("err", "enomem")
                return -1, ENOMEM
            self.stats.add("mpush.bytes", length)
            return length, 0
        finally:
            self._end_span(span)

    # -- API: msync / mclose ---------------------------------------------------------
    def msync(self, desc: int):
        """Generator: block until the region's backing data is on disk."""
        entry = self._entry(desc)
        if entry is None:
            return -1, EINVAL
        fh = self.ws.fs.handle(entry.backing_fd)
        if fh is None:
            return -1, EINVAL
        span = self._span("msync", {"desc": desc})
        try:
            yield self.ws.fs.fsync(fh)
        finally:
            self._end_span(span)
        self.stats.add("msync.ok")
        return 0, 0

    def mclose(self, desc: int):
        """Generator: deallocate the region via the central manager.

        Does not close the backing file descriptor (paper semantics).
        """
        entry = self._entry(desc)
        if entry is None:
            return -1, EINVAL
        key = entry.key
        span = self._span("mclose", {"desc": desc})
        try:
            try:
                reply = yield from self._cmd_call(
                    "free", {"key": [key.inode, key.offset, key.client]},
                    key=key)
            except (RpcTimeout, RpcRemoteError):
                return -1, EINVAL
            # pop, not del: the reply may have carried a new manager
            # incarnation, in which case the table was already cleared
            self._regions.pop(desc, None)
            if not reply.get("ok"):
                self.stats.add("mclose.stale")
                return -1, EINVAL
            self.stats.add("mclose.ok")
            return 0, 0
        finally:
            self._end_span(span)

    # -- lifecycle --------------------------------------------------------------------
    def detach(self, persist: bool = False):
        """Generator: clean library shutdown.  ``persist=True`` leaves
        regions in remote memory for a later run (dmine's usage).
        Idempotent."""
        if self.detached:
            return None
        if self.shard_map is not None:
            # every shard tracks this client independently
            for sid in sorted(self.shard_map.shards):
                try:
                    yield from self._sharded_call(
                        "client_detach", {"persist": persist}, shard=sid)
                except (RpcTimeout, RpcRemoteError):
                    pass
        else:
            try:
                yield from self._cmd_call("client_detach",
                                          {"persist": persist})
            except (RpcTimeout, RpcRemoteError):
                pass
        self.detached = True
        self._regions.clear()
        self._echo.stop()
        self._cmd_sock.close()
        for sock, _rpc in self._shard_socks.values():
            sock.close()
        self._shard_socks.clear()
        return None

    # -- internals ---------------------------------------------------------------------
    def _transfer_timeout(self, length: int) -> float:
        """Patience for a bulk transfer: control timeout plus worst-case
        wire time at a very conservative 1 MB/s."""
        return self.config.rpc_timeout_s * self.config.rpc_retries \
            + length / 1e6 + 1.0

    def _imd_call_quiet(self, struct: RegionStruct, method: str, args: dict,
                        data_bytes: int = 0):
        """Like :meth:`_imd_call` but returns None instead of raising, so
        it can run as a detached/raced process."""
        try:
            reply = yield from self._imd_call(struct, method, args,
                                              data_bytes=data_bytes)
            return reply
        except (RpcTimeout, RpcRemoteError):
            return None

    def _imd_call(self, struct: RegionStruct, method: str, args: dict,
                  data_bytes: int = 0):
        from repro.core.config import IMD_PORT
        sock = self.endpoint.socket()
        rpc = RpcClient(sock)
        try:
            reply = yield from rpc.call(
                (struct.host, IMD_PORT), method, args,
                timeout=self._transfer_timeout(data_bytes),
                retries=self.config.rpc_retries)
            return reply
        finally:
            sock.close()
