"""The central manager daemon (cmd) — Sections 3.1 and 4.3.

Runs on a dedicated machine.  Maintains:

* the **idle-workstation directory (IWD)** — currently idle hosts, each
  with its last known epoch and largest known free block (hints, refreshed
  by piggybacked information on every imd reply and verified before use);
* the **region directory (RD)** — a hash table keyed by
  ``(inode-of-backing-file, offset-in-file)`` mapping to the hosting
  machine, pool offset, length and epoch timestamp.

Exports ``alloc`` / ``checkAlloc`` / ``free`` to runtime libraries and
accepts registrations and busy/idle notifications from the per-host
daemons.  Sends periodic keep-alive echoes to every attached client and
reclaims the regions of clients that stop answering (applications that
died without freeing); clients that *detach cleanly* may leave their
regions behind for a later run (how dmine reuses its dataset across runs,
Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import CMD_PORT, PLACEMENTS, DodoConfig
from repro.core.descriptors import RegionKey, RegionStruct
from repro.core.shard import ShardMap
from repro.cluster.workstation import Workstation
from repro.metrics.recorder import Recorder
from repro.net.rpc import RpcClient, RpcServer, RpcTimeout
from repro.sim import Interrupt, Resource, Simulator


@dataclass
class IwdEntry:
    """One idle host: epoch + free-space hint + control port."""

    host: str
    epoch: int
    largest_free: int
    port: int


@dataclass
class RdEntry:
    """One allocated region and the client that created it (None once the
    creating client detached persistently)."""

    struct: RegionStruct
    owner: Optional[str]


@dataclass
class ClientState:
    """Keep-alive target: the echo endpoint of one runtime library."""

    addr: str
    echo_port: int
    last_echo: float
    missed: int = 0


def _wire_key(key: RegionKey) -> list:
    return [key.inode, key.offset, key.client]


def _unwire_key(raw) -> RegionKey:
    return RegionKey(inode=raw[0], offset=raw[1], client=raw[2])


class CentralManager:
    """The cmd process and its directories.

    PR 9 generalizes the single cmd into a *shard manager*: with
    ``shard_map`` set, this instance owns the slice of the region
    directory that the consistent-hash ring assigns to ``shard_id`` and
    rejects misrouted keys with a ``wrong_shard`` reply carrying the
    current map.  ``role="backup"`` builds a warm standby instead: it
    applies the primary's shipped mutation log, answers every normal
    verb with ``not_primary``, and promotes itself (same incarnation —
    the directory survives) after missing enough liveness probes.  The
    classic single-manager construction (``shard_map=None``) is
    byte-identical to PR 4's behavior.
    """

    def __init__(self, sim: Simulator, ws: Workstation, config: DodoConfig,
                 port: int = CMD_PORT, incarnation: int = 1,
                 shard_id: int = 0, shard_map: Optional[ShardMap] = None,
                 role: str = "primary", peer: Optional[str] = None):
        self.sim = sim
        self.ws = ws
        self.config = config
        #: restart counter: a manager brought back after a crash carries a
        #: higher incarnation, and every client-facing reply and keep-alive
        #: echo is stamped with it so peers can detect the restart and
        #: re-register (directories are in-memory and die with the cmd).
        #: A *promoted backup* keeps the incarnation — the directory
        #: state survived, so peers must NOT discard their descriptors.
        self.incarnation = incarnation
        self.shard_id = shard_id
        self.shard_map = shard_map
        if role not in ("primary", "backup"):
            raise ValueError(f"unknown manager role {role!r}")
        if role == "backup" and shard_map is None:
            raise ValueError("backup managers require a shard map")
        self.role = role
        #: backup host this primary ships its mutation log to (None =
        #: unreplicated); on a backup, the primary it watches is read
        #: from the shard map instead
        self.peer = peer
        self.stopped = False
        #: replication log-shipping state: next sequence number to ship /
        #: expect, unshipped records, and the degraded latch (set when
        #: the backup stops answering; cleared by repl_sync)
        self.repl_seq = 0
        self._repl_pending: list[list] = []
        self.repl_degraded = False
        self.iwd: dict[str, IwdEntry] = {}
        self.rd: dict[RegionKey, RdEntry] = {}
        self.clients: dict[str, ClientState] = {}
        self.stats = Recorder("cmd" if shard_map is None
                              else f"cmd{shard_id}")
        self._rng = sim.rng("cmd.placement" if shard_map is None
                            else f"cmd{shard_id}.placement")
        if config.placement not in PLACEMENTS:  # defense in depth: the
            # config's own __post_init__ already rejects unknown names
            raise ValueError(f"unknown placement {config.placement!r}, "
                             f"expected one of {sorted(PLACEMENTS)}")
        self._rr = 0  # round-robin cursor (placement="round-robin")
        self.endpoint = ws.endpoint(config.transport)
        self.port = port
        self._sock = self.endpoint.socket(port=port)
        self._cpu = Resource(sim, 1) if config.mgr_service_s > 0 else None
        # hotspot-aware reclaim swaps in a *generator* notify_busy (the
        # RpcServer runs generator handlers in their own process); the
        # plain handler stays the default so the paper's event stream is
        # untouched unless migration is configured on
        notify_busy = (self._h_notify_busy_migrate
                       if config.cache.enabled and config.cache.migration
                       else self._h_notify_busy)
        if shard_map is None:
            handlers = {
                "alloc": self._h_alloc,
                "check_alloc": self._h_check_alloc,
                "free": self._h_free,
                "imd_register": self._h_imd_register,
                "notify_busy": notify_busy,
                "client_detach": self._h_client_detach,
                "client_attach": self._h_client_attach,
            }
        else:
            handlers = {
                "alloc": self._sharded(self._h_alloc, keyed=True),
                "check_alloc": self._sharded(self._h_check_alloc,
                                             keyed=True),
                "free": self._sharded(self._h_free, keyed=True),
                "imd_register": self._sharded(self._h_imd_register),
                "notify_busy": self._sharded(notify_busy),
                "client_detach": self._sharded(self._h_client_detach),
                "client_attach": self._sharded(self._h_client_attach),
                "mgr_ping": self._h_mgr_ping,
                "shard_map": self._h_shard_map,
                "repl_apply": self._h_repl_apply,
                "repl_sync": self._h_repl_sync,
            }
        self._server = RpcServer(self._sock, handlers,
                                 name="cmd" if shard_map is None
                                 else f"cmd{shard_id}",
                                 component="manager")
        self._server.start()
        self._keepalive = None
        self._watcher = None
        self._scrubber = None
        if role == "primary":
            self._keepalive = sim.process(self._keepalive_loop())
            if shard_map is not None:
                self._scrubber = sim.process(self._reconcile_loop())
        else:
            self._watcher = sim.process(self._watch_primary())
        if sim.telemetry.enabled:
            name = "cmd" if shard_map is None else f"cmd{shard_id}"
            sim.telemetry.register(sim, "manager", name, self)

    def stop(self) -> None:
        self.stopped = True
        self._server.stop()
        for proc in (self._keepalive, self._watcher, self._scrubber):
            if proc is not None and proc.is_alive:
                proc.interrupt("cmd-stop")

    # -- sharding: routing guards + service time ---------------------------------
    def _sharded(self, inner, keyed: bool = False):
        """Wrap a classic handler for sharded operation: reject calls on
        a backup (``not_primary``) or for keys this shard does not own
        (``wrong_shard``), charge the modeled directory service time,
        run the handler, then synchronously ship any directory mutations
        to the backup before replying."""
        def handler(args: dict, src):
            guard = self._guard(args, keyed)
            if guard is not None:
                return guard
            if self._cpu is not None:
                yield self._cpu.acquire()
                try:
                    yield self.sim.timeout(self.config.mgr_service_s)
                finally:
                    self._cpu.release()
            result = inner(args, src)
            if hasattr(result, "__next__"):
                reply = yield from result
            else:
                reply = result
            yield from self._repl_flush()
            return reply
        return handler

    def _guard(self, args: dict, keyed: bool) -> Optional[dict]:
        """The routing checks every sharded verb runs first; None means
        the call may proceed."""
        if self.role != "primary":
            self.stats.add("shard.not_primary")
            return self._stamp({
                "ok": False, "not_primary": True,
                "primary": self.shard_map.primary(self.shard_id),
                "shard_map": self.shard_map.to_wire()})
        if keyed and self.shard_map.n_shards > 1:
            key = _unwire_key(args["key"])
            owner = self.shard_map.owner_of(key)
            if owner != self.shard_id:
                self.stats.add("shard.wrong_shard")
                return self._stamp({
                    "ok": False, "wrong_shard": True, "owner": owner,
                    "shard_map": self.shard_map.to_wire()})
        return None

    def _h_mgr_ping(self, args: dict, src) -> dict:
        """Liveness probe (backup -> primary heartbeat)."""
        return {"ok": True, "incarnation": self.incarnation,
                "role": self.role}

    def _h_shard_map(self, args: dict, src) -> dict:
        """Hand out the current routing table."""
        return self._stamp({"ok": True,
                            "shard_map": self.shard_map.to_wire()})

    # -- replication: mutation capture ---------------------------------------------
    # Every directory mutation flows through these helpers so the
    # primary can append a log record; with no peer configured they are
    # plain dict operations (the classic path pays nothing).
    def _repl_log(self, record: list) -> None:
        if self.peer is not None and self.role == "primary":
            self._repl_pending.append(record)

    def _rd_set(self, key: RegionKey, entry: RdEntry) -> None:
        self.rd[key] = entry
        self._repl_log(["rd_set", _wire_key(key), entry.struct.to_wire(),
                        entry.owner])

    def _rd_del(self, key: RegionKey) -> Optional[RdEntry]:
        entry = self.rd.pop(key, None)
        if entry is not None:
            self._repl_log(["rd_del", _wire_key(key)])
        return entry

    def _iwd_set(self, entry: IwdEntry) -> None:
        self.iwd[entry.host] = entry
        self._repl_log(["iwd_set", [entry.host, entry.epoch,
                                    entry.largest_free, entry.port]])

    def _iwd_del(self, host: str) -> None:
        if self.iwd.pop(host, None) is not None:
            self._repl_log(["iwd_del", host])

    def _client_set(self, cid: str, state: ClientState) -> None:
        self.clients[cid] = state
        self._repl_log(["client_set", [cid, state.addr, state.echo_port]])

    def _client_del(self, cid: Optional[str]) -> None:
        if self.clients.pop(cid, None) is not None:
            self._repl_log(["client_del", cid])

    # -- replication: log shipping + snapshots --------------------------------------
    def _repl_flush(self):
        """Ship pending log records to the backup, synchronously (the
        reply a client sees is only sent once the backup acked).  A
        backup that stops answering latches ``repl_degraded`` — the
        primary keeps serving unreplicated (availability over
        durability) until a repl_sync re-attaches a backup."""
        if self.peer is None or self.role != "primary":
            self._repl_pending.clear()
            return
        if not self._repl_pending:
            return
        if self.repl_degraded:
            self._repl_pending.clear()
            return
        records = self._repl_pending
        self._repl_pending = []
        seq_from = self.repl_seq
        self.repl_seq += len(records)
        sock = self.endpoint.socket()
        rpc = RpcClient(sock)
        try:
            reply = yield from rpc.call(
                (self.peer, self.port), "repl_apply",
                {"shard_id": self.shard_id, "seq_from": seq_from,
                 "records": records, "incarnation": self.incarnation},
                timeout=self.config.rpc_timeout_s, retries=1,
                backoff_s=self.config.rpc_backoff_s,
                backoff_jitter=self.config.rpc_backoff_jitter)
        except RpcTimeout:
            self.repl_degraded = True
            self.stats.add("repl.degraded")
            if self.sim.eventlog.enabled:
                self.sim.eventlog.warn(self.sim, "manager",
                                       "repl.degraded", host=self.ws.name,
                                       shard=self.shard_id)
            return
        finally:
            sock.close()
        if reply.get("resync"):
            yield from self._push_snapshot()

    def _push_snapshot(self):
        """Bring a gapped backup back in line with a full state image."""
        sock = self.endpoint.socket()
        rpc = RpcClient(sock)
        try:
            yield from rpc.call(
                (self.peer, self.port), "repl_apply",
                {"shard_id": self.shard_id, "snapshot": self._snapshot()},
                timeout=self.config.rpc_timeout_s, retries=1,
                backoff_s=self.config.rpc_backoff_s,
                backoff_jitter=self.config.rpc_backoff_jitter)
            self.stats.add("repl.snapshots")
        except RpcTimeout:
            self.repl_degraded = True
            self.stats.add("repl.degraded")
        finally:
            sock.close()

    def _snapshot(self) -> dict:
        """Full replication image of the directory state (stable order
        so identically-seeded runs ship identical bytes)."""
        def keysort(kv):
            key = kv[0]
            return (key.inode, key.offset, key.client or "")
        return {
            "rd": [[_wire_key(k), e.struct.to_wire(), e.owner]
                   for k, e in sorted(self.rd.items(), key=keysort)],
            "iwd": [[e.host, e.epoch, e.largest_free, e.port]
                    for _, e in sorted(self.iwd.items())],
            "clients": [[cid, st.addr, st.echo_port]
                        for cid, st in sorted(self.clients.items())],
            "seq": self.repl_seq,
            "incarnation": self.incarnation,
            "shard_map": self.shard_map.to_wire(),
        }

    def _install_snapshot(self, snap: dict) -> None:
        self.rd = {
            _unwire_key(raw): RdEntry(struct=RegionStruct.from_wire(sw),
                                      owner=owner)
            for raw, sw, owner in snap["rd"]}
        self.iwd = {
            host: IwdEntry(host=host, epoch=int(epoch),
                           largest_free=int(free), port=int(port))
            for host, epoch, free, port in snap["iwd"]}
        self.clients = {
            cid: ClientState(addr=addr, echo_port=int(port),
                             last_echo=self.sim.now)
            for cid, addr, port in snap["clients"]}
        self.repl_seq = int(snap["seq"])
        self.incarnation = int(snap["incarnation"])
        self.shard_map = ShardMap.from_wire(snap["shard_map"])
        self.stats.add("repl.installed")

    def _apply_record(self, rec: list) -> None:
        kind = rec[0]
        if kind == "rd_set":
            self.rd[_unwire_key(rec[1])] = RdEntry(
                struct=RegionStruct.from_wire(rec[2]), owner=rec[3])
        elif kind == "rd_del":
            self.rd.pop(_unwire_key(rec[1]), None)
        elif kind == "iwd_set":
            host, epoch, free, port = rec[1]
            self.iwd[host] = IwdEntry(host=host, epoch=int(epoch),
                                      largest_free=int(free),
                                      port=int(port))
        elif kind == "iwd_del":
            self.iwd.pop(rec[1], None)
        elif kind == "client_set":
            cid, addr, port = rec[1]
            self.clients[cid] = ClientState(addr=addr, echo_port=int(port),
                                            last_echo=self.sim.now)
        elif kind == "client_del":
            self.clients.pop(rec[1], None)

    def _h_repl_apply(self, args: dict, src) -> dict:
        """Backup side of log shipping: apply records in sequence order;
        a gap (lost batch while the primary thought us dead) asks for a
        full snapshot instead of applying out of order."""
        if self.role != "backup":
            return {"ok": False, "reason": "not a backup"}
        if "snapshot" in args:
            self._install_snapshot(args["snapshot"])
            return {"ok": True}
        if int(args["seq_from"]) != self.repl_seq:
            self.stats.add("repl.gap")
            return {"ok": True, "resync": True}
        for rec in args["records"]:
            self._apply_record(rec)
        self.repl_seq += len(args["records"])
        self.stats.add("repl.applied", len(args["records"]))
        return {"ok": True}

    def _h_repl_sync(self, args: dict, src) -> dict:
        """A (new) backup attaches: adopt it as the replication peer,
        clear the degraded latch, publish it in the shard map, and hand
        back a full snapshot."""
        if self.role != "primary":
            return {"ok": False, "not_primary": True,
                    "primary": self.shard_map.primary(self.shard_id)}
        self.peer = args["host"]
        self.repl_degraded = False
        self._repl_pending.clear()
        self.shard_map = self.shard_map.promoted(
            self.shard_id, self.ws.name, args["host"])
        self.stats.add("repl.syncs")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(self.sim, "manager", "repl.attached",
                                   host=args["host"], shard=self.shard_id)
        return {"ok": True, "snapshot": self._snapshot()}

    def resync(self):
        """Backup-side pull: fetch a full snapshot from the shard's
        current primary (per our possibly-stale map, then its
        ``primary`` hint) and install it.  Used by the nemesis healer
        when it stands up a replacement backup."""
        primary = self.shard_map.primary(self.shard_id)
        for _ in range(self.config.shard_attempts):
            if self.stopped:
                return False
            sock = self.endpoint.socket()
            rpc = RpcClient(sock)
            try:
                reply = yield from rpc.call(
                    (primary, self.port), "repl_sync",
                    {"host": self.ws.name, "shard_id": self.shard_id},
                    timeout=self.config.rpc_timeout_s, retries=1,
                    backoff_s=self.config.rpc_backoff_s,
                    backoff_jitter=self.config.rpc_backoff_jitter)
            except RpcTimeout:
                yield self.sim.timeout(self.config.repl_heartbeat_s)
                continue
            finally:
                sock.close()
            if reply.get("ok"):
                self._install_snapshot(reply["snapshot"])
                return True
            hint = reply.get("primary")
            if hint and hint != primary:
                primary = hint
                continue
            yield self.sim.timeout(self.config.repl_heartbeat_s)
        self.stats.add("repl.sync_failed")
        return False

    # -- replication: failover ------------------------------------------------------
    def _watch_primary(self):
        """Backup heartbeat loop: probe the primary; after enough
        consecutive misses, promote ourselves."""
        cfg = self.config
        misses = 0
        try:
            while True:
                yield self.sim.timeout(cfg.repl_heartbeat_s)
                if self.role != "backup" or self.stopped:
                    return
                primary = self.shard_map.primary(self.shard_id)
                sock = self.endpoint.socket()
                rpc = RpcClient(sock)
                try:
                    yield from rpc.call(
                        (primary, self.port), "mgr_ping",
                        {"shard_id": self.shard_id},
                        timeout=cfg.rpc_timeout_s, retries=1,
                        backoff_s=cfg.rpc_backoff_s,
                        backoff_jitter=cfg.rpc_backoff_jitter)
                    misses = 0
                except RpcTimeout:
                    misses += 1
                    if misses >= cfg.repl_promote_misses:
                        self._promote()
                        return
                finally:
                    sock.close()
        except Interrupt:
            return

    def _promote(self) -> None:
        """Become the shard's primary: same incarnation (the replicated
        directory survived — clients keep their descriptors, imds keep
        their regions), new shard-map version pointing at us, keep-alive
        duty, and an anti-entropy scrub for regions leaked by
        operations in flight at the crash."""
        self.role = "primary"
        self.peer = None
        self.shard_map = self.shard_map.promoted(
            self.shard_id, self.ws.name, None)
        self.stats.add("repl.promotions")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.warn(self.sim, "manager", "mgr.promoted",
                                   host=self.ws.name, shard=self.shard_id,
                                   version=self.shard_map.version)
        self._keepalive = self.sim.process(self._keepalive_loop())
        self._scrubber = self.sim.process(
            self._reconcile_loop(immediate=True))

    def _reconcile_loop(self, immediate: bool = False):
        """Periodic anti-entropy scrub: inventory every known imd for
        regions tagged to this shard and free those the directory does
        not reference (an alloc whose reply was lost, an alloc placed
        but not yet shipped when the old primary died, a free shipped
        but not yet executed, a client retry that double-placed).

        A region must be orphaned across *two consecutive* passes before
        it is freed — a single-pass orphan may simply be an alloc whose
        directory insert is still in flight.  ``immediate=True`` (used
        at promotion) runs a first mark-only pass right away so crash
        leftovers are reaped one interval later rather than two.
        """
        if self.config.scrub_interval_s <= 0:
            return
        suspects: set = set()
        try:
            if immediate:
                suspects = yield from self._scrub_pass(suspects,
                                                       free=False)
            while not self.stopped:
                yield self.sim.timeout(self.config.scrub_interval_s)
                suspects = yield from self._scrub_pass(suspects)
        except Interrupt:
            return

    def _scrub_pass(self, suspects: set, free: bool = True):
        """One inventory sweep; returns the (host, epoch, offset) set of
        orphans seen (and not freed) this pass."""
        seen: set = set()
        freed = 0
        for host in sorted(self.iwd):
            if self.stopped:
                return seen
            iwd = self.iwd.get(host)
            if iwd is None:
                continue
            reply = yield from self._imd_call(
                iwd, "inventory", {"shard": self.shard_id})
            if reply is None or not reply.get("ok"):
                continue
            if int(reply["epoch"]) != iwd.epoch:
                continue
            hosted = sorted(int(off) for off, _ in reply["regions"])
            for off in hosted:
                live = self.iwd.get(host)
                if live is None or live.epoch != iwd.epoch:
                    break
                if any(e.struct.host == host
                       and e.struct.epoch == iwd.epoch
                       and e.struct.pool_offset == off
                       for e in self.rd.values()):
                    continue
                tag = (host, iwd.epoch, off)
                if free and tag in suspects:
                    yield from self._imd_call(
                        iwd, "free", {"region_id": off})
                    freed += 1
                else:
                    seen.add(tag)
        yield from self._repl_flush()
        if freed:
            self.stats.add("scrub.freed", freed)
            if self.sim.eventlog.enabled:
                self.sim.eventlog.info(self.sim, "manager", "scrub.freed",
                                       host=self.ws.name,
                                       shard=self.shard_id, regions=freed)
        return seen

    # -- imd-facing handlers ---------------------------------------------------------
    def _h_imd_register(self, args: dict, src) -> dict:
        entry = IwdEntry(host=args["host"], epoch=int(args["epoch"]),
                         largest_free=int(args["largest_free"]),
                         port=int(args["port"]))
        self._iwd_set(entry)
        self.stats.add("imd_registrations")
        return {"ok": True, "incarnation": self.incarnation}

    def _h_notify_busy(self, args: dict, src) -> dict:
        """A host was reclaimed: drop it from the IWD.  Its RD entries are
        invalidated lazily by the epoch check, as in the paper."""
        host = args["host"]
        self._iwd_del(host)
        self.stats.add("busy_notifications")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(self.sim, "manager", "host.busy",
                                   host=host)
        return {"ok": True}

    def _h_notify_busy_migrate(self, args: dict, src):
        """Generator variant of notify_busy (installed only with
        ``cache.migration`` on): before dropping the busy host from the
        IWD, migrate its hottest directory-referenced regions to other
        donors so clients refetch from remote memory instead of disk
        (docs/CACHING.md).  Migration runs while the source imd is still
        draining — the rmd only shuts it down once this reply lands —
        and the per-reclaim byte/region budget keeps that well inside
        the busy-notification retry window."""
        host = args["host"]
        migrated = yield from self._migrate_from(host)
        self._iwd_del(host)
        self.stats.add("busy_notifications")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(self.sim, "manager", "host.busy",
                                   host=host, migrated=migrated)
        return {"ok": True, "migrated": migrated}

    def _migrate_from(self, host: str):
        """Hotspot-aware reclaim: pull the busy imd's heat-annotated
        inventory, then move its hottest regions (hot first, bounded by
        ``migrate_max_regions`` / ``migrate_max_bytes``) to other idle
        hosts.  Returns the number of regions moved."""
        iwd = self.iwd.get(host)
        if iwd is None:
            return 0
        cache = self.config.cache
        reply = yield from self._imd_call(
            iwd, "inventory", {"shard": self.shard_id, "heat": True})
        if reply is None or not reply.get("ok") \
                or int(reply["epoch"]) != iwd.epoch:
            return 0
        heat = {int(off): int(h) for off, h in reply.get("heat", [])}
        regions = [(int(off), int(size)) for off, size in reply["regions"]]
        regions.sort(key=lambda t: (-heat.get(t[0], 0), t[0]))
        by_offset = {e.struct.pool_offset: key
                     for key, e in self.rd.items()
                     if e.struct.host == host
                     and e.struct.epoch == iwd.epoch}
        moved = 0
        budget = cache.migrate_max_bytes
        for off, size in regions:
            if moved >= cache.migrate_max_regions or budget <= 0:
                break
            if size > budget:
                continue
            key = by_offset.get(off)
            if key is None:
                continue  # not directory-referenced: nothing to save
            ok = yield from self._migrate_one(iwd, key, off, size,
                                              heat.get(off, 0))
            if ok:
                moved += 1
                budget -= size
        return moved

    def _migrate_one(self, src_iwd: "IwdEntry", key: RegionKey,
                     off: int, size: int, heat: int):
        """Move one region: alloc on a destination donor, open its write
        port, have the source blast the bytes straight across, repoint
        the directory entry (with the destination's epoch), then free
        the source copy.  Any failure leaves the old entry intact — the
        region just gets reclaimed the paper's way."""
        self.stats.add("migrate.attempted")
        entry = self.rd.get(key)
        if entry is None:
            self.stats.add("migrate.failed")
            return False
        candidates = [h for h, e in self.iwd.items()
                      if h != src_iwd.host and e.largest_free >= size]
        if not candidates:
            # every other donor looks full, but donors evict: offer the
            # hot region anyway and let the destination displace colder
            # ones (migration implies an active policy)
            candidates = [h for h in self.iwd if h != src_iwd.host]
        while candidates:
            pick = self._pick_candidate(candidates)
            dest = self.iwd.get(pick)
            if dest is None:
                continue
            areply = yield from self._imd_call(
                dest, "alloc", {"size": size, "shard": self.shard_id})
            if areply is None or not areply.get("ok"):
                continue
            dest_off = int(areply["region_id"])
            dest_epoch = int(areply["epoch"])
            dest_gen = int(areply.get("gen", 0))
            self._drop_evicted(pick, dest_epoch, areply.get("evicted"))
            wargs = {"region_id": dest_off, "offset": 0,
                     "length": size, "migrate": True}
            if dest_gen:
                wargs["gen"] = dest_gen
            wreply = yield from self._imd_call(dest, "write", wargs)
            if wreply is None or not wreply.get("ok"):
                yield from self._free_on(pick, dest_off)
                continue
            margs = {"region_id": off, "offset": 0, "length": size,
                     "dest_host": pick, "data_port": wreply["data_port"],
                     "window": wreply.get("window")}
            if entry.struct.gen:
                # reject at the source if the hot region was evicted
                # (and its offset re-used) while we were setting up
                margs["gen"] = entry.struct.gen
            mreply = yield from self._imd_call(src_iwd, "migrate", margs)
            if mreply is None or not mreply.get("ok"):
                yield from self._free_on(pick, dest_off)
                break  # the source is the problem; stop trying dests
            live = self.rd.get(key)
            if live is None:
                # the client freed the region mid-flight: drop the copy
                yield from self._free_on(pick, dest_off)
                break
            struct = RegionStruct(host=pick, pool_offset=dest_off,
                                  length=size, epoch=dest_epoch,
                                  gen=dest_gen)
            self._rd_set(key, RdEntry(struct=struct, owner=live.owner))
            yield from self._free_on(src_iwd.host, off)
            self.stats.add("migrate.ok")
            self.stats.add("migrate.bytes", size)
            if self.sim.eventlog.enabled:
                self.sim.eventlog.info(
                    self.sim, "manager", "cache.migrate",
                    host=src_iwd.host, dest=pick, bytes=size, heat=heat)
            return True
        self.stats.add("migrate.failed")
        return False

    def _free_on(self, host: str, region_id: int):
        """Best-effort free of one region on a (possibly gone) imd."""
        iwd = self.iwd.get(host)
        if iwd is not None:
            yield from self._imd_call(iwd, "free", {"region_id": region_id})

    def _drop_evicted(self, host: str, epoch: int, evicted) -> None:
        """An imd alloc evicted cold regions to make space: drop their
        directory entries (the imd only evicts regions this shard
        placed, so every entry is ours to drop)."""
        if not evicted:
            return
        offs = {int(o) for o in evicted}
        doomed = [k for k, e in self.rd.items()
                  if e.struct.host == host and e.struct.epoch == epoch
                  and e.struct.pool_offset in offs]
        for k in doomed:
            self._rd_del(k)
        if doomed:
            self.stats.add("cache.entries_evicted", len(doomed))
            if self.sim.eventlog.enabled:
                self.sim.eventlog.debug(
                    self.sim, "manager", "cache.evict_drop", host=host,
                    regions=len(doomed))

    # -- client-facing handlers ----------------------------------------------------
    def _stamp(self, reply: dict) -> dict:
        """Stamp a client-facing reply with this manager's incarnation so
        the runtime library can detect a restart (pure metadata — the
        charged wire size does not depend on the payload dict)."""
        reply["mgr_incarnation"] = self.incarnation
        if self.shard_map is not None:
            reply["shard"] = self.shard_id
        return reply

    def _track_client(self, args: dict, src) -> Optional[str]:
        client = args.get("client")
        echo_port = args.get("echo_port")
        if client is None or echo_port is None:
            return client
        state = self.clients.get(client)
        if state is None:
            self._client_set(client, ClientState(
                addr=src[0], echo_port=int(echo_port),
                last_echo=self.sim.now))
        else:
            state.last_echo = self.sim.now
        return client

    def _h_check_alloc(self, args: dict, src) -> dict:
        self._track_client(args, src)
        key = _unwire_key(args["key"])
        entry = self.rd.get(key)
        if entry is None:
            self.stats.add("check.miss")
            return self._stamp({"ok": False})
        iwd = self.iwd.get(entry.struct.host)
        if iwd is None or iwd.epoch != entry.struct.epoch:
            # stale: the hosting imd is gone or has been restarted
            self._rd_del(key)
            self.stats.add("check.stale")
            if self.sim.eventlog.enabled:
                self.sim.eventlog.info(self.sim, "manager", "region.stale",
                                       host=entry.struct.host,
                                       epoch=entry.struct.epoch)
            return self._stamp({"ok": False})
        self.stats.add("check.hit")
        return self._stamp({"ok": True, "region": entry.struct.to_wire()})

    def _pick_candidate(self, candidates: list[str]) -> str:
        """Remove and return the next host to try, per the configured
        placement policy.  "random" draws from the seeded placement
        stream (the paper's behavior, bit-identical to the original
        implementation); "most-free" prefers the largest free-block
        hint; "round-robin" cycles through candidates in IWD order."""
        placement = self.config.placement
        if placement == "most-free":
            idx = max(range(len(candidates)),
                      key=lambda i: (self.iwd[candidates[i]].largest_free
                                     if candidates[i] in self.iwd else -1,
                                     -i))
            return candidates.pop(idx)
        if placement == "round-robin":
            idx = self._rr % len(candidates)
            self._rr += 1
            return candidates.pop(idx)
        return candidates.pop(int(self._rng.integers(0, len(candidates))))

    def _h_alloc(self, args: dict, src):
        """Generator handler: place a new region on an idle host with
        enough space (chosen by :attr:`DodoConfig.placement`), verifying
        hints before trusting them."""
        client = self._track_client(args, src)
        key = _unwire_key(args["key"])
        length = int(args["length"])

        existing = self.rd.get(key)
        if existing is not None:
            iwd = self.iwd.get(existing.struct.host)
            if iwd is not None and iwd.epoch == existing.struct.epoch \
                    and existing.struct.length >= length:
                self.stats.add("alloc.reused")
                existing.owner = client or existing.owner
                self._repl_log(["rd_set", _wire_key(key),
                                existing.struct.to_wire(), existing.owner])
                return self._stamp(
                    {"ok": True, "region": existing.struct.to_wire()})
            self._rd_del(key)  # stale or too small: replace

        candidates = [h for h, e in self.iwd.items()
                      if e.largest_free >= length]
        if not candidates and self.config.cache.enabled:
            # donors run an eviction policy: a host whose free-space
            # hint says "full" can still make room, so consult them all
            # and let each imd answer ENOMEM only when eviction can't
            # open a large-enough hole
            candidates = list(self.iwd)
        while candidates:
            pick = self._pick_candidate(candidates)
            iwd = self.iwd.get(pick)
            if iwd is None:
                continue
            reply = yield from self._imd_call(
                iwd, "alloc", {"size": length, "shard": self.shard_id})
            if reply is None:
                continue  # host vanished; already dropped from IWD
            self._drop_evicted(pick, int(reply.get("epoch", iwd.epoch)),
                               reply.get("evicted"))
            if reply.get("ok"):
                struct = RegionStruct(host=pick,
                                      pool_offset=int(reply["region_id"]),
                                      length=length,
                                      epoch=int(reply["epoch"]),
                                      gen=int(reply.get("gen", 0)))
                self._rd_set(key, RdEntry(struct=struct, owner=client))
                self.stats.add("alloc.placed")
                if self.sim.eventlog.enabled:
                    self.sim.eventlog.info(
                        self.sim, "manager", "region.placed", host=pick,
                        bytes=length, offset=struct.pool_offset)
                return self._stamp(
                    {"ok": True, "region": struct.to_wire()})
            self.stats.add("alloc.host_full")
        self.stats.add("alloc.enomem")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.warn(self.sim, "manager", "region.enomem",
                                   bytes=length)
        return self._stamp({"ok": False, "reason": "no idle memory"})

    def _h_free(self, args: dict, src):
        self._track_client(args, src)
        key = _unwire_key(args["key"])
        entry = self._rd_del(key)
        if entry is None:
            self.stats.add("free.miss")
            return self._stamp({"ok": False, "reason": "no such region"})
        iwd = self.iwd.get(entry.struct.host)
        if iwd is not None and iwd.epoch == entry.struct.epoch:
            yield from self._imd_call(
                iwd, "free", {"region_id": entry.struct.pool_offset})
        self.stats.add("free.ok")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(self.sim, "manager", "region.freed",
                                   host=entry.struct.host,
                                   bytes=entry.struct.length)
        return self._stamp({"ok": True})

    def _h_client_detach(self, args: dict, src):
        """Clean shutdown of a runtime library.  ``persist=True`` leaves
        the client's regions in remote memory for a future run."""
        client = args.get("client")
        persist = bool(args.get("persist", False))
        self._client_del(client)
        freed = 0
        if not persist:
            freed = yield from self._reclaim_client(client)
        else:
            for key, entry in self.rd.items():
                if entry.owner == client:
                    entry.owner = None
                    self._repl_log(["rd_set", _wire_key(key),
                                    entry.struct.to_wire(), None])
            self.stats.add("detach.persist")
        return self._stamp({"ok": True, "freed": freed})

    def _h_client_attach(self, args: dict, src) -> dict:
        """Explicit (re-)attach: lets a client that detected a manager
        restart resume keep-alive tracking without another side effect."""
        self._track_client(args, src)
        self.stats.add("client_attaches")
        return self._stamp({"ok": True})

    # -- shared helpers -----------------------------------------------------------
    def _imd_call(self, iwd: IwdEntry, method: str, args: dict):
        """Call one imd; updates the free-space hint from the piggyback.
        Returns the reply dict or None (host declared dead and removed)."""
        sock = self.endpoint.socket()
        client = RpcClient(sock)
        try:
            reply = yield from client.call(
                (iwd.host, iwd.port), method, args,
                timeout=self.config.rpc_timeout_s,
                retries=self.config.imd_rpc_retries,
                backoff_s=self.config.rpc_backoff_s,
                backoff_jitter=self.config.rpc_backoff_jitter)
        except RpcTimeout:
            self._iwd_del(iwd.host)
            self.stats.add("imd.dead")
            if self.sim.eventlog.enabled:
                self.sim.eventlog.warn(self.sim, "manager", "imd.dead",
                                       host=iwd.host, epoch=iwd.epoch)
            return None
        finally:
            sock.close()
        if "largest_free" in reply:
            live = self.iwd.get(iwd.host)
            if live is not None:
                live.largest_free = int(reply["largest_free"])
        return reply

    def _reclaim_client(self, client: Optional[str]):
        """Free every region owned by ``client`` (keep-alive expiry or
        non-persistent detach)."""
        tracer = self.sim.tracer
        span = tracer.begin(self.sim, "cmd.reclaim", "manager",
                            {"client": client}) if tracer.enabled else None
        doomed = [k for k, e in self.rd.items() if e.owner == client]
        freed = 0
        try:
            for key in doomed:
                entry = self._rd_del(key)
                if entry is None:
                    continue
                iwd = self.iwd.get(entry.struct.host)
                if iwd is not None and iwd.epoch == entry.struct.epoch:
                    yield from self._imd_call(
                        iwd, "free", {"region_id": entry.struct.pool_offset})
                freed += 1
        finally:
            tracer.end(self.sim, span, {"freed": freed})
        if freed:
            self.stats.add("reclaimed_regions", freed)
        return freed

    def _keepalive_loop(self):
        """Echo every attached client; reclaim those that stay silent past
        the threshold (Section 3.1 fault handling)."""
        cfg = self.config
        tracer = self.sim.tracer
        try:
            while True:
                yield self.sim.timeout(cfg.keepalive_interval_s)
                sweep = tracer.begin(
                    self.sim, "cmd.keepalive", "manager",
                    {"clients": len(self.clients)}) \
                    if tracer.enabled and self.clients else None
                for cid in list(self.clients):
                    state = self.clients.get(cid)
                    if state is None:
                        continue
                    sock = self.endpoint.socket()
                    rpc = RpcClient(sock)
                    echo_args = {"client": cid,
                                 "incarnation": self.incarnation}
                    if self.shard_map is not None:
                        echo_args["shard"] = self.shard_id
                    try:
                        yield from rpc.call(
                            (state.addr, state.echo_port), "echo",
                            echo_args,
                            timeout=cfg.rpc_timeout_s, retries=2)
                        state.last_echo = self.sim.now
                        state.missed = 0
                    except RpcTimeout:
                        state.missed += 1
                        silent = self.sim.now - state.last_echo
                        if silent >= cfg.keepalive_threshold_s:
                            self.stats.add("clients_expired")
                            self._client_del(cid)
                            if self.sim.eventlog.enabled:
                                self.sim.eventlog.warn(
                                    self.sim, "manager", "client.expired",
                                    host=state.addr, client=cid)
                            yield self.sim.process(
                                self._drain_reclaim(cid))
                    finally:
                        sock.close()
                if sweep is not None:
                    tracer.end(self.sim, sweep)
        except Interrupt:
            return

    def _drain_reclaim(self, cid: str):
        yield from self._reclaim_client(cid)
        yield from self._repl_flush()
