"""The central manager daemon (cmd) — Sections 3.1 and 4.3.

Runs on a dedicated machine.  Maintains:

* the **idle-workstation directory (IWD)** — currently idle hosts, each
  with its last known epoch and largest known free block (hints, refreshed
  by piggybacked information on every imd reply and verified before use);
* the **region directory (RD)** — a hash table keyed by
  ``(inode-of-backing-file, offset-in-file)`` mapping to the hosting
  machine, pool offset, length and epoch timestamp.

Exports ``alloc`` / ``checkAlloc`` / ``free`` to runtime libraries and
accepts registrations and busy/idle notifications from the per-host
daemons.  Sends periodic keep-alive echoes to every attached client and
reclaims the regions of clients that stop answering (applications that
died without freeing); clients that *detach cleanly* may leave their
regions behind for a later run (how dmine reuses its dataset across runs,
Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import CMD_PORT, DodoConfig
from repro.core.descriptors import RegionKey, RegionStruct
from repro.cluster.workstation import Workstation
from repro.metrics.recorder import Recorder
from repro.net.rpc import RpcClient, RpcServer, RpcTimeout
from repro.sim import Interrupt, Simulator


@dataclass
class IwdEntry:
    """One idle host: epoch + free-space hint + control port."""

    host: str
    epoch: int
    largest_free: int
    port: int


@dataclass
class RdEntry:
    """One allocated region and the client that created it (None once the
    creating client detached persistently)."""

    struct: RegionStruct
    owner: Optional[str]


@dataclass
class ClientState:
    """Keep-alive target: the echo endpoint of one runtime library."""

    addr: str
    echo_port: int
    last_echo: float
    missed: int = 0


#: placement policies accepted by :attr:`DodoConfig.placement`
PLACEMENTS = ("random", "most-free", "round-robin")


def _wire_key(key: RegionKey) -> list:
    return [key.inode, key.offset, key.client]


def _unwire_key(raw) -> RegionKey:
    return RegionKey(inode=raw[0], offset=raw[1], client=raw[2])


class CentralManager:
    """The cmd process and its directories."""

    def __init__(self, sim: Simulator, ws: Workstation, config: DodoConfig,
                 port: int = CMD_PORT, incarnation: int = 1):
        self.sim = sim
        self.ws = ws
        self.config = config
        #: restart counter: a manager brought back after a crash carries a
        #: higher incarnation, and every client-facing reply and keep-alive
        #: echo is stamped with it so peers can detect the restart and
        #: re-register (directories are in-memory and die with the cmd)
        self.incarnation = incarnation
        self.iwd: dict[str, IwdEntry] = {}
        self.rd: dict[RegionKey, RdEntry] = {}
        self.clients: dict[str, ClientState] = {}
        self.stats = Recorder("cmd")
        self._rng = sim.rng("cmd.placement")
        if config.placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {config.placement!r}, "
                             f"expected one of {sorted(PLACEMENTS)}")
        self._rr = 0  # round-robin cursor (placement="round-robin")
        self.endpoint = ws.endpoint(config.transport)
        self._sock = self.endpoint.socket(port=port)
        self._server = RpcServer(self._sock, {
            "alloc": self._h_alloc,
            "check_alloc": self._h_check_alloc,
            "free": self._h_free,
            "imd_register": self._h_imd_register,
            "notify_busy": self._h_notify_busy,
            "client_detach": self._h_client_detach,
            "client_attach": self._h_client_attach,
        }, name="cmd", component="manager")
        self._server.start()
        self._keepalive = sim.process(self._keepalive_loop())
        if sim.telemetry.enabled:
            sim.telemetry.register(sim, "manager", "cmd", self)

    def stop(self) -> None:
        self._server.stop()
        if self._keepalive.is_alive:
            self._keepalive.interrupt("cmd-stop")

    # -- imd-facing handlers ---------------------------------------------------------
    def _h_imd_register(self, args: dict, src) -> dict:
        entry = IwdEntry(host=args["host"], epoch=int(args["epoch"]),
                         largest_free=int(args["largest_free"]),
                         port=int(args["port"]))
        self.iwd[entry.host] = entry
        self.stats.add("imd_registrations")
        return {"ok": True, "incarnation": self.incarnation}

    def _h_notify_busy(self, args: dict, src) -> dict:
        """A host was reclaimed: drop it from the IWD.  Its RD entries are
        invalidated lazily by the epoch check, as in the paper."""
        host = args["host"]
        self.iwd.pop(host, None)
        self.stats.add("busy_notifications")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(self.sim, "manager", "host.busy",
                                   host=host)
        return {"ok": True}

    # -- client-facing handlers ----------------------------------------------------
    def _stamp(self, reply: dict) -> dict:
        """Stamp a client-facing reply with this manager's incarnation so
        the runtime library can detect a restart (pure metadata — the
        charged wire size does not depend on the payload dict)."""
        reply["mgr_incarnation"] = self.incarnation
        return reply

    def _track_client(self, args: dict, src) -> Optional[str]:
        client = args.get("client")
        echo_port = args.get("echo_port")
        if client is None or echo_port is None:
            return client
        state = self.clients.get(client)
        if state is None:
            self.clients[client] = ClientState(
                addr=src[0], echo_port=int(echo_port), last_echo=self.sim.now)
        else:
            state.last_echo = self.sim.now
        return client

    def _h_check_alloc(self, args: dict, src) -> dict:
        self._track_client(args, src)
        key = _unwire_key(args["key"])
        entry = self.rd.get(key)
        if entry is None:
            self.stats.add("check.miss")
            return self._stamp({"ok": False})
        iwd = self.iwd.get(entry.struct.host)
        if iwd is None or iwd.epoch != entry.struct.epoch:
            # stale: the hosting imd is gone or has been restarted
            del self.rd[key]
            self.stats.add("check.stale")
            if self.sim.eventlog.enabled:
                self.sim.eventlog.info(self.sim, "manager", "region.stale",
                                       host=entry.struct.host,
                                       epoch=entry.struct.epoch)
            return self._stamp({"ok": False})
        self.stats.add("check.hit")
        return self._stamp({"ok": True, "region": entry.struct.to_wire()})

    def _pick_candidate(self, candidates: list[str]) -> str:
        """Remove and return the next host to try, per the configured
        placement policy.  "random" draws from the seeded placement
        stream (the paper's behavior, bit-identical to the original
        implementation); "most-free" prefers the largest free-block
        hint; "round-robin" cycles through candidates in IWD order."""
        placement = self.config.placement
        if placement == "most-free":
            idx = max(range(len(candidates)),
                      key=lambda i: (self.iwd[candidates[i]].largest_free
                                     if candidates[i] in self.iwd else -1,
                                     -i))
            return candidates.pop(idx)
        if placement == "round-robin":
            idx = self._rr % len(candidates)
            self._rr += 1
            return candidates.pop(idx)
        return candidates.pop(int(self._rng.integers(0, len(candidates))))

    def _h_alloc(self, args: dict, src):
        """Generator handler: place a new region on an idle host with
        enough space (chosen by :attr:`DodoConfig.placement`), verifying
        hints before trusting them."""
        client = self._track_client(args, src)
        key = _unwire_key(args["key"])
        length = int(args["length"])

        existing = self.rd.get(key)
        if existing is not None:
            iwd = self.iwd.get(existing.struct.host)
            if iwd is not None and iwd.epoch == existing.struct.epoch \
                    and existing.struct.length >= length:
                self.stats.add("alloc.reused")
                existing.owner = client or existing.owner
                return self._stamp(
                    {"ok": True, "region": existing.struct.to_wire()})
            del self.rd[key]  # stale or too small: replace

        candidates = [h for h, e in self.iwd.items()
                      if e.largest_free >= length]
        while candidates:
            pick = self._pick_candidate(candidates)
            iwd = self.iwd.get(pick)
            if iwd is None:
                continue
            reply = yield from self._imd_call(
                iwd, "alloc", {"size": length})
            if reply is None:
                continue  # host vanished; already dropped from IWD
            if reply.get("ok"):
                struct = RegionStruct(host=pick,
                                      pool_offset=int(reply["region_id"]),
                                      length=length,
                                      epoch=int(reply["epoch"]))
                self.rd[key] = RdEntry(struct=struct, owner=client)
                self.stats.add("alloc.placed")
                if self.sim.eventlog.enabled:
                    self.sim.eventlog.info(
                        self.sim, "manager", "region.placed", host=pick,
                        bytes=length, offset=struct.pool_offset)
                return self._stamp(
                    {"ok": True, "region": struct.to_wire()})
            self.stats.add("alloc.host_full")
        self.stats.add("alloc.enomem")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.warn(self.sim, "manager", "region.enomem",
                                   bytes=length)
        return self._stamp({"ok": False, "reason": "no idle memory"})

    def _h_free(self, args: dict, src):
        self._track_client(args, src)
        key = _unwire_key(args["key"])
        entry = self.rd.pop(key, None)
        if entry is None:
            self.stats.add("free.miss")
            return self._stamp({"ok": False, "reason": "no such region"})
        iwd = self.iwd.get(entry.struct.host)
        if iwd is not None and iwd.epoch == entry.struct.epoch:
            yield from self._imd_call(
                iwd, "free", {"region_id": entry.struct.pool_offset})
        self.stats.add("free.ok")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(self.sim, "manager", "region.freed",
                                   host=entry.struct.host,
                                   bytes=entry.struct.length)
        return self._stamp({"ok": True})

    def _h_client_detach(self, args: dict, src):
        """Clean shutdown of a runtime library.  ``persist=True`` leaves
        the client's regions in remote memory for a future run."""
        client = args.get("client")
        persist = bool(args.get("persist", False))
        self.clients.pop(client, None)
        freed = 0
        if not persist:
            freed = yield from self._reclaim_client(client)
        else:
            for entry in self.rd.values():
                if entry.owner == client:
                    entry.owner = None
            self.stats.add("detach.persist")
        return self._stamp({"ok": True, "freed": freed})

    def _h_client_attach(self, args: dict, src) -> dict:
        """Explicit (re-)attach: lets a client that detected a manager
        restart resume keep-alive tracking without another side effect."""
        self._track_client(args, src)
        self.stats.add("client_attaches")
        return self._stamp({"ok": True})

    # -- shared helpers -----------------------------------------------------------
    def _imd_call(self, iwd: IwdEntry, method: str, args: dict):
        """Call one imd; updates the free-space hint from the piggyback.
        Returns the reply dict or None (host declared dead and removed)."""
        sock = self.endpoint.socket()
        client = RpcClient(sock)
        try:
            reply = yield from client.call(
                (iwd.host, iwd.port), method, args,
                timeout=self.config.rpc_timeout_s,
                retries=self.config.imd_rpc_retries,
                backoff_s=self.config.rpc_backoff_s,
                backoff_jitter=self.config.rpc_backoff_jitter)
        except RpcTimeout:
            self.iwd.pop(iwd.host, None)
            self.stats.add("imd.dead")
            if self.sim.eventlog.enabled:
                self.sim.eventlog.warn(self.sim, "manager", "imd.dead",
                                       host=iwd.host, epoch=iwd.epoch)
            return None
        finally:
            sock.close()
        if "largest_free" in reply:
            live = self.iwd.get(iwd.host)
            if live is not None:
                live.largest_free = int(reply["largest_free"])
        return reply

    def _reclaim_client(self, client: Optional[str]):
        """Free every region owned by ``client`` (keep-alive expiry or
        non-persistent detach)."""
        tracer = self.sim.tracer
        span = tracer.begin(self.sim, "cmd.reclaim", "manager",
                            {"client": client}) if tracer.enabled else None
        doomed = [k for k, e in self.rd.items() if e.owner == client]
        freed = 0
        try:
            for key in doomed:
                entry = self.rd.pop(key, None)
                if entry is None:
                    continue
                iwd = self.iwd.get(entry.struct.host)
                if iwd is not None and iwd.epoch == entry.struct.epoch:
                    yield from self._imd_call(
                        iwd, "free", {"region_id": entry.struct.pool_offset})
                freed += 1
        finally:
            tracer.end(self.sim, span, {"freed": freed})
        if freed:
            self.stats.add("reclaimed_regions", freed)
        return freed

    def _keepalive_loop(self):
        """Echo every attached client; reclaim those that stay silent past
        the threshold (Section 3.1 fault handling)."""
        cfg = self.config
        tracer = self.sim.tracer
        try:
            while True:
                yield self.sim.timeout(cfg.keepalive_interval_s)
                sweep = tracer.begin(
                    self.sim, "cmd.keepalive", "manager",
                    {"clients": len(self.clients)}) \
                    if tracer.enabled and self.clients else None
                for cid in list(self.clients):
                    state = self.clients.get(cid)
                    if state is None:
                        continue
                    sock = self.endpoint.socket()
                    rpc = RpcClient(sock)
                    try:
                        yield from rpc.call(
                            (state.addr, state.echo_port), "echo",
                            {"client": cid, "incarnation": self.incarnation},
                            timeout=cfg.rpc_timeout_s, retries=2)
                        state.last_echo = self.sim.now
                        state.missed = 0
                    except RpcTimeout:
                        state.missed += 1
                        silent = self.sim.now - state.last_echo
                        if silent >= cfg.keepalive_threshold_s:
                            self.stats.add("clients_expired")
                            self.clients.pop(cid, None)
                            if self.sim.eventlog.enabled:
                                self.sim.eventlog.warn(
                                    self.sim, "manager", "client.expired",
                                    host=state.addr, client=cid)
                            yield self.sim.process(
                                self._drain_reclaim(cid))
                    finally:
                        sock.close()
                if sweep is not None:
                    tracer.end(self.sim, sweep)
        except Interrupt:
            return

    def _drain_reclaim(self, cid: str):
        yield from self._reclaim_client(cid)
