"""The resource monitor daemon (rmd) — Section 4.1.

Runs on every participating machine, samples console and load once a
second, and drives recruitment:

* a machine becomes **idle** after no keyboard/mouse input *and*
  daemon-excluded load below 0.3 for five minutes or more — then rmd
  notifies the central manager and forks an idle memory daemon;
* the moment the machine becomes **busy** again, rmd notifies the manager
  and signals the imd, which completes in-flight transfers and exits.

On a dedicated (Beowulf) cluster the console test is skipped and the wait
window collapses: a lightly loaded machine is recruited immediately
(Section 3's two target environments).

The *reclaim delay* — how long the owner waits between touching the
machine and the imd being gone — is the headline metric of the paper's
non-dedicated evaluation (Section 5.3.1) and is sampled on every reclaim.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import CMD_PORT, DodoConfig
from repro.core.imd import IdleMemoryDaemon
from repro.cluster.idleness import classify_idleness, instant_quiet
from repro.cluster.workstation import Workstation
from repro.metrics.recorder import Recorder
from repro.net.rpc import RpcClient, RpcTimeout
from repro.sim import Interrupt, Simulator


class ResourceMonitor:
    """One host's rmd process."""

    def __init__(self, sim: Simulator, ws: Workstation, config: DodoConfig,
                 cmd_host: str, allocator_kind: str = "first-fit",
                 preferences=None):
        self.sim = sim
        self.ws = ws
        self.config = config
        self.cmd_host = cmd_host
        self.allocator_kind = allocator_kind
        #: Condor-style owner preference rules (Section 3.1); recruitment
        #: additionally requires every rule to allow it
        self.preferences = preferences
        self.imd: Optional[IdleMemoryDaemon] = None
        #: imd incarnation counter; becomes each imd's epoch so the
        #: central manager can spot regions from dead incarnations
        self.epoch = 0
        self.recruited = False
        self._quiet_s = 0.0
        self.stats = Recorder(f"rmd.{ws.name}")
        self.endpoint = ws.endpoint(config.transport)
        self.proc = sim.process(self._run())
        if sim.telemetry.enabled:
            sim.telemetry.register(sim, "rmd", ws.name, self)

    def stop(self) -> None:
        if self.proc.is_alive:
            self.proc.interrupt("rmd-stop")

    def idle_state(self) -> int:
        """Telemetry gauge: 0 busy, 1 quiet-accumulating, 2 recruited."""
        return classify_idleness(self._quiet_s, self.recruited)

    # -- main loop ------------------------------------------------------------------
    def _run(self):
        policy = self.config.idle_policy
        try:
            while True:
                yield self.sim.timeout(policy.sample_interval_s)
                if self.ws.crashed:
                    continue
                if self.recruited and (self.imd is None or self.imd.exited):
                    # the host crashed and took the imd with it: resync so
                    # a later idle stretch recruits a fresh incarnation
                    self.ws.daemon_load = max(0.0, self.ws.daemon_load - 0.05)
                    self.recruited = False
                    self.imd = None
                    self._quiet_s = 0.0
                    self.stats.add("imd_lost")
                quiet = self._sample_quiet()
                if quiet:
                    self._quiet_s += policy.sample_interval_s
                else:
                    self._quiet_s = 0.0
                if not self.recruited and self._idle_enough() \
                        and self._preferences_allow():
                    yield from self._recruit()
                elif self.recruited and not (quiet
                                             and self._preferences_allow()):
                    yield from self._reclaim()
        except Interrupt:
            if self.imd is not None and not self.imd.exited:
                yield self.imd.shutdown()

    def _sample_quiet(self) -> bool:
        """One sample of the busy/idle predicate.

        The rmd monitors mouse/keyboard access times and ``/proc``-style
        load, subtracting the screen saver's and imd's own usage —
        :meth:`Workstation.load_excluding_daemons` models that exclusion.
        """
        if self.config.dedicated:
            return self.ws.load_excluding_daemons() \
                < self.config.idle_policy.load_threshold
        return instant_quiet(self.ws, self.config.idle_policy)

    def _idle_enough(self) -> bool:
        if self.config.dedicated:
            return self._quiet_s >= self.config.idle_policy.sample_interval_s
        return self._quiet_s >= self.config.idle_policy.window_s

    def _preferences_allow(self) -> bool:
        """Owner preference rules veto both recruitment and continued
        hosting (a machine leaving its allowed window is reclaimed)."""
        if self.preferences is None:
            return True
        allowed = self.preferences.allows(self.ws, self.sim.now)
        if not allowed:
            self.stats.add("preference_vetoes")
        return allowed

    # -- transitions ------------------------------------------------------------------
    def _recruit(self):
        if self.ws.recruitable_memory(self.config.headroom_fraction) <= 0:
            self.stats.add("recruit.no_memory")
            return
        tracer = self.sim.tracer
        span = tracer.begin(self.sim, "rmd.recruit", "rmd",
                            {"host": self.ws.name}) \
            if tracer.enabled else None
        self.epoch += 1
        # imd CPU presence shows up in raw load but is excluded by rmd
        self.ws.daemon_load += 0.05
        self.imd = IdleMemoryDaemon(
            self.sim, self.ws, self.config, epoch=self.epoch,
            cmd_host=self.cmd_host, allocator_kind=self.allocator_kind)
        yield self.imd.register()
        self.recruited = True
        self.stats.add("recruits")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(
                self.sim, "rmd", "node.recruited", host=self.ws.name,
                epoch=self.epoch, pool_bytes=self.imd.pool_bytes)
        tracer.end(self.sim, span, {"epoch": self.epoch})

    def _reclaim(self):
        """Owner is back: notify the manager, signal the imd, time it."""
        start = self.sim.now
        tracer = self.sim.tracer
        span = tracer.begin(self.sim, "rmd.reclaim", "rmd",
                            {"host": self.ws.name}) \
            if tracer.enabled else None
        yield from self._notify_busy()
        if self.imd is not None:
            yield self.imd.shutdown()
            self.imd = None
        self.ws.daemon_load = max(0.0, self.ws.daemon_load - 0.05)
        self.recruited = False
        self._quiet_s = 0.0
        delay = self.sim.now - start
        self.stats.add("reclaims")
        self.stats.sample("reclaim_delay_s", delay)
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(
                self.sim, "rmd", "node.reclaimed", host=self.ws.name,
                epoch=self.epoch, delay_s=round(delay, 6))
        tracer.end(self.sim, span, {"delay_s": delay})

    def _notify_busy(self):
        sock = self.endpoint.socket()
        rpc = RpcClient(sock)
        try:
            yield from rpc.call((self.cmd_host, CMD_PORT), "notify_busy",
                                {"host": self.ws.name},
                                timeout=self.config.rpc_timeout_s,
                                retries=self.config.rpc_retries)
        except RpcTimeout:
            self.stats.add("cmd_unreachable")
        finally:
            sock.close()
