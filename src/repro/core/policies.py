"""Region-replacement policy modules for the region-management library.

Section 3.3/4.5: the library is modularized so a policy is just (a) a pair
of state-management procedures invoked on every ``cread``/``cwrite`` and
(b) a reclamation procedure that picks a victim given the cache directory.
Three policies ship, as in the paper:

* **LRU** (the default) — evict the least recently used region;
* **MRU** — evict the most recently used (useful for cyclic scans larger
  than the cache);
* **first-in** — cache regions in first-access order and *never replace
  them*; motivated by Uysal et al.'s finding that data-intensive
  applications overwhelmingly do sequential/triangle scans, where LRU
  flushes the whole cache every pass and first-in keeps a stable prefix.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class ReplacementPolicy:
    """Base class: tracks nothing, never evicts."""

    name = "none"

    def on_read(self, crd: int) -> None:
        """State-management hook, called on every cread."""

    def on_write(self, crd: int) -> None:
        """State-management hook, called on every cwrite."""

    def on_insert(self, crd: int) -> None:
        """A region became locally cached."""

    def on_remove(self, crd: int) -> None:
        """A region left the local cache (evicted or closed)."""

    def select_victim(self, directory) -> Optional[int]:
        """Reclamation procedure: pick a locally cached region to evict,
        or None if this policy refuses to evict (caller then bypasses the
        cache for the incoming region)."""
        return None


class _RecencyPolicy(ReplacementPolicy):
    """Shared machinery for recency-ordered policies."""

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def _touch(self, crd: int) -> None:
        if crd in self._order:
            self._order.move_to_end(crd)

    on_read = _touch
    on_write = _touch

    def on_insert(self, crd: int) -> None:
        self._order[crd] = None
        self._order.move_to_end(crd)

    def on_remove(self, crd: int) -> None:
        self._order.pop(crd, None)


class LruPolicy(_RecencyPolicy):
    """Evict the least-recently-used cached region first."""

    name = "lru"

    def select_victim(self, directory) -> Optional[int]:
        for crd in self._order:  # oldest first
            return crd
        return None


class MruPolicy(_RecencyPolicy):
    """Evict the most-recently-used region first (good for scans)."""

    name = "mru"

    def select_victim(self, directory) -> Optional[int]:
        for crd in reversed(self._order):  # newest first
            return crd
        return None


class FirstInPolicy(ReplacementPolicy):
    """Cache in first-access order; once cached, never replaced."""

    name = "first-in"

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_insert(self, crd: int) -> None:
        if crd not in self._order:
            self._order[crd] = None

    def on_remove(self, crd: int) -> None:
        self._order.pop(crd, None)

    def select_victim(self, directory) -> Optional[int]:
        return None  # refuse: newcomers bypass the cache instead


POLICIES: dict[str, type[ReplacementPolicy]] = {
    "lru": LruPolicy,
    "mru": MruPolicy,
    "first-in": FirstInPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (a key of POLICIES)."""
    cls = POLICIES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}")
    return cls()
