"""All tunables of the Dodo system in one place.

Defaults follow the paper where it gives numbers (15% headroom, 0.3 load
threshold, five-minute idle window, 100 MB imd pools in the evaluation,
80 MB local region cache) and sensible engineering values elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.idleness import IdlePolicy
from repro.net.bulk import BulkParams

MB = 1024 * 1024

#: well-known service ports
CMD_PORT = 6000
IMD_PORT = 6001
RMD_PORT = 6002

#: placement policies accepted by :attr:`DodoConfig.placement`
PLACEMENTS = ("random", "most-free", "round-robin")


@dataclass(frozen=True)
class ObsConfig:
    """Observability knobs shared by the CLI and experiment runners.

    One value object so a runner can thread "how should this run be
    observed" around without a half-dozen loose parameters; the CLI
    builds one from its ``--telemetry-*`` / ``--events-*`` / ``--audit``
    flags.  Everything is off by default — simulation code pays nothing
    unless a subsystem is explicitly installed.
    """

    #: virtual-time sampling period of the telemetry engine
    telemetry_interval_s: float = 1.0
    #: per-run sample cap (guards drain-forever simulations)
    telemetry_max_samples: int = 200_000
    #: minimum event-log severity recorded ("debug"/"info"/"warn"/"error")
    eventlog_level: str = "info"
    #: invariant-audit mode: "off", "warn" or "raise"
    audit_mode: str = "off"
    #: run the audit at every Nth telemetry sample point
    audit_every: int = 1


@dataclass(frozen=True)
class CacheConfig:
    """The elastic-caching policy block (``DodoConfig.cache``).

    Governs how the imd region pools behave as *caches* rather than
    plain allocators (docs/CACHING.md).  The default ``policy="none"``
    reproduces the original system exactly — no eviction, no shadow
    accounting, no migration, byte-identical event streams — so every
    paper experiment is unaffected unless a run opts in.

    Accepted ``policy`` values: ``"none"`` (off), ``"lru"``, ``"lfu"``,
    ``"clock"`` and ``"cost-aware"`` (GreedyDual-Size-Frequency); see
    :data:`repro.core.policy.CACHE_POLICIES`.
    """

    #: donor-side eviction policy: "none" disables the subsystem
    policy: str = "none"
    #: online policy selection: run shadow caches for every
    #: ``shadow_policies`` candidate and switch the active policy when
    #: its shadow trails the best one by ``adapt_min_regret`` hits over
    #: an ``adapt_interval_s`` window (emits ``cache.switch`` records)
    adaptive: bool = False
    shadow_policies: tuple = ("lru", "lfu", "clock", "cost-aware")
    adapt_interval_s: float = 5.0
    adapt_min_regret: int = 8
    #: hotspot-aware reclaim: when a donor turns busy, the manager first
    #: migrates its hottest regions to other donors over the bulk fast
    #: path (bounded below) instead of letting reclaim evict them
    migration: bool = False
    #: per-reclaim migration budget — keeps the busy-notification RPC
    #: well inside the rmd's retry window, so the owner's reclaim delay
    #: stays bounded even with migration on
    migrate_max_regions: int = 8
    migrate_max_bytes: int = 4 * MB

    def __post_init__(self):
        """Validate policy names early (a typo should fail at config
        construction with a clear message, not deep inside a daemon)."""
        from repro.core.policy import CACHE_POLICIES
        accepted = ("none",) + tuple(sorted(CACHE_POLICIES))
        if self.policy not in accepted:
            raise ValueError(
                f"unknown cache policy {self.policy!r}; choose from "
                f"{sorted(accepted)}")
        for name in self.shadow_policies:
            if name not in CACHE_POLICIES:
                raise ValueError(
                    f"unknown shadow cache policy {name!r}; choose "
                    f"from {sorted(CACHE_POLICIES)}")

    @property
    def enabled(self) -> bool:
        """True when any elastic-caching behavior is switched on."""
        return self.policy != "none"


@dataclass(frozen=True)
class DodoConfig:
    """System-wide configuration shared by daemons and libraries.

    Accepted ``placement`` values: ``"random"``, ``"most-free"``,
    ``"round-robin"``; anything else raises :class:`ValueError` at
    construction.  The ``cache`` block (:class:`CacheConfig`) is
    validated the same way.
    """

    #: transport for all Dodo traffic: "udp" or "unet"
    transport: str = "udp"
    #: carry real bytes through regions (functional mode) or sizes only
    store_payload: bool = True

    # -- central manager -----------------------------------------------------
    #: keep-alive echo interval to client libraries
    keepalive_interval_s: float = 5.0
    #: reclaim a client's regions after this long without an echo
    keepalive_threshold_s: float = 15.0
    #: include the client id in region keys (the paper's planned
    #: multi-client extension, Section 4.3 footnote)
    multi_client_keys: bool = False
    #: region placement over the IWD candidates: "random" (the paper's
    #: behavior — a uniformly random idle host with enough space),
    #: "most-free" (largest free-block hint first) or "round-robin"
    #: (cycle through candidates in IWD order).  The what-if replayer
    #: (repro whatif) exists to compare these.
    placement: str = "random"
    #: elastic-caching policy block: donor-side eviction policy, online
    #: policy selection and hotspot-aware migration (docs/CACHING.md);
    #: the default is completely inert
    cache: CacheConfig = field(default_factory=CacheConfig)

    # -- manager sharding / replication (PR 9) -------------------------------
    #: number of region-directory shards; 1 = the paper's single manager
    shards: int = 1
    #: give each shard a backup manager fed by synchronous log shipping
    replication: bool = False
    #: backup -> primary liveness-probe interval
    repl_heartbeat_s: float = 0.5
    #: consecutive missed probes before the backup promotes itself
    repl_promote_misses: int = 2
    #: modeled CPU cost of one directory operation on a shard manager
    #: (0 = free, the paper's behavior; serve-bench sets it so the
    #: directory is an honest bottleneck that sharding relieves)
    mgr_service_s: float = 0.0
    #: routing attempts a client makes across a shard's replicas before
    #: giving up (bounds retry storms during failover)
    shard_attempts: int = 8
    #: sharded primaries run a periodic anti-entropy scrub at this
    #: interval, freeing imd regions no directory entry references
    #: (two-pass: a region must stay orphaned across consecutive passes
    #: before it is reaped); <= 0 disables
    scrub_interval_s: float = 5.0

    # -- runtime library ----------------------------------------------------------
    #: refraction period: no allocation attempts for this long after a
    #: failed allocation (Section 3.1)
    refraction_period_s: float = 2.0
    #: RPC timeout/retries for control operations
    rpc_timeout_s: float = 0.25
    rpc_retries: int = 6
    #: manager->imd probing is less patient: a dead host must not eat the
    #: whole client window before the manager tries the next candidate
    imd_rpc_retries: int = 2
    #: exponential backoff base between RPC retries (0 = fixed-interval
    #: retries, the paper's behavior; chaos runs enable it so retry storms
    #: do not hammer restarting daemons)
    rpc_backoff_s: float = 0.0
    #: jitter fraction stretching each backoff (drawn from the seeded
    #: ``rpc.backoff`` stream; only used when ``rpc_backoff_s`` > 0)
    rpc_backoff_jitter: float = 0.25

    # -- idle memory daemon ---------------------------------------------------------
    #: cap on the pool an imd will pin on one host (the evaluation used
    #: fixed 100 MB pools on 128 MB nodes)
    max_pool_bytes: int = 100 * MB
    #: reserve this fraction of installed memory for near-future file
    #: cache use when sizing the pool (Section 3.1)
    headroom_fraction: float = 0.15
    #: period of the fragmentation-coalescing sweep (Section 4.2)
    coalesce_interval_s: float = 30.0
    #: receive buffer (and thus bulk window) for data transfers
    data_recvbuf_bytes: int = 256 * 1024
    #: imd re-registration heartbeat: > 0 makes each imd periodically
    #: re-announce itself to the central manager, which repopulates the
    #: IWD after a manager restart (detected via the incarnation counter
    #: in the reply).  0 disables it — registration happens once, the
    #: paper's behavior on a manager that never restarts.
    imd_reregister_s: float = 0.0

    # -- resource monitor ---------------------------------------------------------
    idle_policy: IdlePolicy = field(default_factory=IdlePolicy)
    #: dedicated (Beowulf) clusters recruit on load alone, ignoring the
    #: console and the five-minute wait (Section 3)
    dedicated: bool = False

    # -- bulk transfer ---------------------------------------------------------------
    bulk: BulkParams = field(default_factory=BulkParams)
    #: master switch for the flow-level bulk fast path (see
    #: docs/PERFORMANCE.md); simulated timing is identical either way,
    #: only the number of simulator events spent computing it changes
    bulk_fastpath: bool = True

    def __post_init__(self):
        """Reject unknown placement names at construction time — the
        CLI turns this into a one-line ``repro: ...`` error (exit 2)."""
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; choose from "
                f"{sorted(PLACEMENTS)}")

    def bulk_params(self) -> BulkParams:
        """Effective bulk parameters: ``bulk`` with the system-wide
        ``bulk_fastpath`` switch applied."""
        if self.bulk.fastpath == self.bulk_fastpath:
            return self.bulk
        return replace(self.bulk, fastpath=self.bulk_fastpath)
