"""Memory-pool allocators for the idle memory daemon (Section 4.2).

The imd allocates one big pool at startup and serves arbitrary-sized
region allocations out of it.  The paper uses **first-fit with a periodic
coalescing pass** and notes that a **buddy** scheme is the fallback plan
if fragmentation ever becomes a problem; both are implemented here (the
ablation benchmark compares them), behind one interface.

Offsets are plain ints into the pool; the daemon maps them to its storage.
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

from repro.metrics.recorder import Recorder


class PoolAllocator:
    """Interface shared by both allocation schemes."""

    def __init__(self, pool_size: int, name: str = "alloc"):
        if pool_size <= 0:
            raise ValueError(f"pool size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.stats = Recorder(name)

    def alloc(self, size: int) -> Optional[int]:
        raise NotImplementedError

    def free(self, offset: int) -> int:
        raise NotImplementedError

    def coalesce(self) -> None:
        """Defragmentation pass; a no-op for schemes that merge eagerly."""

    @property
    def used_bytes(self) -> int:
        raise NotImplementedError

    @property
    def free_bytes(self) -> int:
        return self.pool_size - self.used_bytes

    def largest_free(self) -> int:
        raise NotImplementedError

    def fragmentation(self) -> float:
        """1 - largest_free/free_bytes: 0 when free space is one block."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free() / free

    def allocated_size(self, offset: int) -> Optional[int]:
        """Size of the live allocation starting at ``offset``, or None."""
        raise NotImplementedError

    def check(self) -> list[str]:
        """Self-audit: return a list of internal-consistency problems
        (empty when the allocator's books balance).  Used by the
        invariant auditor (:mod:`repro.obs.audit`)."""
        raise NotImplementedError


class FirstFitAllocator(PoolAllocator):
    """First fit over an address-ordered free list, lazy coalescing.

    ``free()`` returns blocks to the list without merging; the periodic
    :meth:`coalesce` pass merges adjacent blocks, exactly as described in
    Section 4.2.
    """

    def __init__(self, pool_size: int, name: str = "firstfit"):
        super().__init__(pool_size, name)
        self._free: list[tuple[int, int]] = [(0, pool_size)]  # (offset, size)
        self._allocated: dict[int, int] = {}

    def alloc(self, size: int) -> Optional[int]:
        if size <= 0:
            raise ValueError(f"allocation of {size} bytes")
        for i, (off, blk) in enumerate(self._free):
            if blk >= size:
                if blk == size:
                    self._free.pop(i)
                else:
                    self._free[i] = (off + size, blk - size)
                self._allocated[off] = size
                self.stats.add("allocs")
                return off
        self.stats.add("alloc_failures")
        return None

    def free(self, offset: int) -> int:
        size = self._allocated.pop(offset, None)
        if size is None:
            raise KeyError(f"free of unallocated offset {offset}")
        insort(self._free, (offset, size))
        self.stats.add("frees")
        return size

    def coalesce(self) -> None:
        if len(self._free) < 2:
            return
        merged = [self._free[0]]
        for off, size in self._free[1:]:
            last_off, last_size = merged[-1]
            if last_off + last_size == off:
                merged[-1] = (last_off, last_size + size)
            else:
                merged.append((off, size))
        if len(merged) != len(self._free):
            self.stats.add("coalesce_merges", len(self._free) - len(merged))
        self._free = merged

    @property
    def used_bytes(self) -> int:
        return sum(self._allocated.values())

    def largest_free(self) -> int:
        return max((s for _, s in self._free), default=0)

    def allocated_size(self, offset: int) -> Optional[int]:
        return self._allocated.get(offset)

    def check(self) -> list[str]:
        problems = []
        spans = sorted([(o, s, "free") for o, s in self._free]
                       + [(o, s, "used") for o, s in self._allocated.items()])
        if list(self._free) != sorted(self._free):
            problems.append("free list is not address-ordered")
        cursor = 0
        for off, size, state in spans:
            if size <= 0:
                problems.append(f"{state} block at {off} has size {size}")
            if off < cursor:
                problems.append(f"{state} block at {off} overlaps the "
                                f"previous block ending at {cursor}")
            cursor = max(cursor, off + size)
        if cursor > self.pool_size:
            problems.append(f"blocks extend to {cursor}, past the "
                            f"{self.pool_size}-byte pool")
        total = sum(s for _, s, _ in spans)
        if total != self.pool_size:
            problems.append(f"free + allocated bytes sum to {total}, "
                            f"expected the full {self.pool_size}-byte pool")
        return problems


class BuddyAllocator(PoolAllocator):
    """Binary buddy allocator (the paper's Section 4.2 fallback plan).

    Sizes round up to powers of two (internal fragmentation) in exchange
    for eager, cheap merging (no external fragmentation growth).
    """

    MIN_BLOCK = 4096

    def __init__(self, pool_size: int, name: str = "buddy"):
        super().__init__(pool_size, name)
        if pool_size & (pool_size - 1):
            raise ValueError(f"buddy pool size must be a power of two, "
                             f"got {pool_size}")
        self._free_by_order: dict[int, set[int]] = {}
        self._max_order = pool_size.bit_length() - 1
        self._min_order = self.MIN_BLOCK.bit_length() - 1
        self._free_by_order[self._max_order] = {0}
        self._allocated: dict[int, int] = {}  # offset -> order

    def _order_for(self, size: int) -> int:
        order = max(self._min_order, (size - 1).bit_length())
        return order

    def alloc(self, size: int) -> Optional[int]:
        if size <= 0:
            raise ValueError(f"allocation of {size} bytes")
        if size > self.pool_size:
            self.stats.add("alloc_failures")
            return None
        want = self._order_for(size)
        order = want
        while order <= self._max_order and not self._free_by_order.get(order):
            order += 1
        if order > self._max_order:
            self.stats.add("alloc_failures")
            return None
        off = self._free_by_order[order].pop()
        while order > want:  # split down
            order -= 1
            buddy = off + (1 << order)
            self._free_by_order.setdefault(order, set()).add(buddy)
        self._allocated[off] = want
        self.stats.add("allocs")
        return off

    def free(self, offset: int) -> int:
        order = self._allocated.pop(offset, None)
        if order is None:
            raise KeyError(f"free of unallocated offset {offset}")
        size = 1 << order
        while order < self._max_order:
            buddy = offset ^ (1 << order)
            peers = self._free_by_order.get(order)
            if peers and buddy in peers:
                peers.remove(buddy)
                offset = min(offset, buddy)
                order += 1
            else:
                break
        self._free_by_order.setdefault(order, set()).add(offset)
        self.stats.add("frees")
        return size

    @property
    def used_bytes(self) -> int:
        return sum(1 << o for o in self._allocated.values())

    def largest_free(self) -> int:
        orders = [o for o, s in self._free_by_order.items() if s]
        return (1 << max(orders)) if orders else 0

    def allocated_size(self, offset: int) -> Optional[int]:
        order = self._allocated.get(offset)
        return None if order is None else (1 << order)

    def check(self) -> list[str]:
        problems = []
        spans = []
        for order, offsets in self._free_by_order.items():
            for off in offsets:
                spans.append((off, 1 << order, "free"))
                if off % (1 << order):
                    problems.append(f"free block at {off} is not aligned "
                                    f"to its order-{order} size")
        for off, order in self._allocated.items():
            spans.append((off, 1 << order, "used"))
            if off % (1 << order):
                problems.append(f"used block at {off} is not aligned "
                                f"to its order-{order} size")
        cursor = 0
        for off, size, state in sorted(spans):
            if off < cursor:
                problems.append(f"{state} block at {off} overlaps the "
                                f"previous block ending at {cursor}")
            cursor = max(cursor, off + size)
        if cursor > self.pool_size:
            problems.append(f"blocks extend to {cursor}, past the "
                            f"{self.pool_size}-byte pool")
        total = sum(s for _, s, _ in spans)
        if total != self.pool_size:
            problems.append(f"free + allocated bytes sum to {total}, "
                            f"expected the full {self.pool_size}-byte pool")
        return problems


def make_allocator(kind: str, pool_size: int) -> PoolAllocator:
    """Factory: ``kind`` is 'first-fit' or 'buddy'."""
    if kind == "first-fit":
        return FirstFitAllocator(pool_size)
    if kind == "buddy":
        # round the pool down to a power of two
        p = 1 << (pool_size.bit_length() - 1)
        return BuddyAllocator(p)
    raise ValueError(f"unknown allocator kind {kind!r}")
