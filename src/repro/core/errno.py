"""The errno-style error model of the Dodo API (Section 3.2).

The paper's C API signals failure by returning -1 and setting ``errno`` to
``ENOMEM`` (region not active / out of remote memory) or ``EINVAL`` (bad
descriptor or arguments), or passes through the backing ``write()``'s
errno.  We reproduce those exact codes; the Python-facing wrappers return
``(-1, errno)`` pairs rather than raising, so application code ports
one-to-one from the paper's interface.
"""

from __future__ import annotations

#: out of memory / region no longer active
ENOMEM = 12
#: invalid descriptor or arguments
EINVAL = 22
#: I/O error on the backing file (stand-in for a pass-through write errno)
EIO = 5

_NAMES = {ENOMEM: "ENOMEM", EINVAL: "EINVAL", EIO: "EIO"}


def errno_name(code: int) -> str:
    """Symbolic name for an errno value (for messages and tests)."""
    return _NAMES.get(code, f"errno({code})")


class DodoError(Exception):
    """Internal exception carrying an errno; the public API converts it
    to the C-style (-1, errno) convention."""

    def __init__(self, errno: int, message: str = ""):
        super().__init__(f"{errno_name(errno)}: {message}" if message
                         else errno_name(errno))
        self.errno = errno
