"""Shared test scaffolding: tiny platforms and networks, importable.

These helpers used to live (duplicated) in ``tests/core/conftest.py``
and ``tests/net/conftest.py``.  They are part of the package so tests,
benchmarks, and the chaos harness (:mod:`repro.faults.chaos`) can all
build the same scaled-down clusters without reaching into test
packages:

* :func:`make_platform` — a 3-host functional Dodo platform;
* :func:`run` — drive one generator process to completion;
* :func:`make_backing_file` — create + open a backing file on the app
  node;
* :class:`TinyNet` / :func:`make_net` — a bare named-host network with
  both transports, no cluster layer on top.

Everything here is deterministic given the caller's ``Simulator`` seed;
no helper draws randomness of its own.
"""

from __future__ import annotations

from repro.exp.platform import MB, Platform, PlatformParams
from repro.net import NIC, Network, TransportEndpoint, transport_params

__all__ = ["MB", "TinyNet", "make_backing_file", "make_net",
           "make_platform", "run"]


def make_platform(sim, *, transport="udp", n_hosts=3, pool_mb=2,
                  local_cache_kb=256, store_payload=True, loss=0.0,
                  dodo=True, allocator="first-fit", config=None,
                  faults=None, nemesis_auditor=None):
    """A tiny functional platform: ``n_hosts`` memory hosts x 2 MB pools.

    ``faults`` (a :class:`~repro.faults.plan.FaultPlan`) attaches a
    nemesis; ``config`` overrides the derived :class:`DodoConfig` (the
    chaos harness passes one with the fault-tolerance knobs on).
    """
    params = PlatformParams(
        transport=transport, store_payload=store_payload,
        n_memory_hosts=n_hosts, imd_pool_bytes=pool_mb * MB,
        local_cache_bytes=local_cache_kb * 1024,
        app_fs_cache_dodo=1 * MB, app_fs_cache_baseline=4 * MB,
        disk_capacity_bytes=256 * MB, frame_loss_prob=loss,
        allocator_kind=allocator)
    return Platform(sim, params, dodo=dodo, config=config, faults=faults,
                    nemesis_auditor=nemesis_auditor)


def run(sim, gen):
    """Run a generator as a process to completion and return its value."""
    p = sim.process(gen)
    return sim.run(until=p)


def make_backing_file(platform, name="data", size=1 * MB):
    """Create + open a backing file on the app node; returns its fd."""
    fs = platform.app.fs
    if not fs.exists(name):
        fs.create(name, size=size)
    return fs.open(name, "r+").fd


class TinyNet:
    """A bare network of named hosts with both transports on each."""

    def __init__(self, sim, hosts, loss=0.0):
        self.sim = sim
        self.network = Network(sim)
        self.nics = {}
        self.udp = {}
        self.unet = {}
        for name in hosts:
            nic = NIC(sim, name)
            self.network.attach(nic)
            self.nics[name] = nic
            self.udp[name] = TransportEndpoint(
                sim, nic, self.network, transport_params("udp", loss))
            self.unet[name] = TransportEndpoint(
                sim, nic, self.network, transport_params("unet", loss))


def make_net(sim, hosts=("alpha", "beta"), loss=0.0):
    """Build a small TinyNet fixture with both transports per host."""
    return TinyNet(sim, list(hosts), loss=loss)
