"""Synthetic memory-usage traces reproducing the Section 2 study.

The paper's design was motivated by multi-week traces of two Solaris
clusters (clusterA: 29 hosts at UCSB, clusterB: 23 hosts at GMU) captured
with top/lsof/memtool.  We do not have those traces; this module generates
statistically matched synthetic ones:

* per-host memory components (kernel / file-cache / process) follow AR(1)
  processes whose stationary mean and standard deviation come straight
  from the paper's Table 1, plus short-lived process-memory spikes that
  produce the availability "dips" of Figure 2;
* owner console activity and load follow a two-state Markov model with a
  diurnal cycle, plus occasional background compute jobs (the clusters ran
  batch jobs), which feed the idle-host analysis of Figure 1.

Available memory is derived exactly as in the paper:
``total - kernel - filecache - process`` (the Table 1 rows sum this way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.idleness import IdlePolicy, idle_mask

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class HostClassStats:
    """Table 1 row: mean (std) of each component, in KB."""

    total_kb: int
    kernel_mean: float
    kernel_std: float
    filecache_mean: float
    filecache_std: float
    process_mean: float
    process_std: float

    @property
    def available_mean(self) -> float:
        return self.total_kb - self.kernel_mean - self.filecache_mean \
            - self.process_mean


#: Table 1 of the paper, keyed by installed memory in MB.
TABLE1: dict[int, HostClassStats] = {
    32: HostClassStats(32 * 1024, 10310, 1133, 2402, 2257, 3746, 2686),
    64: HostClassStats(64 * 1024, 16347, 2081, 4093, 3776, 10017, 6982),
    128: HostClassStats(128 * 1024, 25512, 3257, 8216, 10271, 12583, 12621),
    256: HostClassStats(256 * 1024, 50109, 8625, 7384, 7821, 17606, 23335),
}

#: Host mixes chosen so aggregate installed/available memory matches the
#: cluster totals reported with Figure 1 (clusterA: 3549/2747 MB
#: all/idle-hosts available; clusterB: 852/742 MB).
CLUSTER_A_MIX: dict[int, int] = {256: 14, 128: 11, 64: 3, 32: 1}
CLUSTER_B_MIX: dict[int, int] = {128: 3, 64: 16, 32: 4}


@dataclass(frozen=True)
class TraceParams:
    """Knobs of the synthetic generator."""

    duration_s: float = 4 * 86400.0
    dt_s: float = 60.0
    #: AR(1) persistence per step for the memory components
    phi: float = 0.985
    #: long-run fraction of daytime steps with the owner at the console
    busy_frac_day: float = 0.35
    busy_frac_night: float = 0.04
    #: mean interactive session length
    session_mean_s: float = 30 * 60.0
    #: probability an away period carries a background compute job
    background_job_prob: float = 0.12
    background_job_mean_s: float = 45 * 60.0
    #: process-memory spike rate (per host per day) and duration
    spike_rate_per_day: float = 3.0
    spike_mean_s: float = 8 * 60.0
    #: spike size as a fraction of installed memory
    spike_frac: float = 0.45
    day_start_h: float = 8.0
    day_end_h: float = 20.0
    #: owners come in far less on Saturdays/Sundays (days 5 and 6 of the
    #: trace week) — visible as the weekly dips in the paper's Figure 1
    weekend_busy_factor: float = 0.3


@dataclass
class HostTrace:
    """Sampled time series for one host; memory in KB."""

    name: str
    total_kb: int
    dt_s: float
    kernel: np.ndarray
    filecache: np.ndarray
    process: np.ndarray
    console_active: np.ndarray  # bool
    load: np.ndarray
    idle: np.ndarray = field(init=False)  # bool, paper predicate

    def __post_init__(self) -> None:
        self.idle = idle_mask(self.console_active, self.load, self.dt_s)

    @property
    def times(self) -> np.ndarray:
        return np.arange(len(self.kernel)) * self.dt_s

    @property
    def available(self) -> np.ndarray:
        used = self.kernel + self.filecache + self.process
        return np.maximum(0, self.total_kb - used)


def _ar1(rng: np.random.Generator, n: int, mean: float, std: float,
         phi: float) -> np.ndarray:
    """Stationary AR(1) with the requested mean/std, clipped at >= 0."""
    eps = rng.standard_normal(n) * std * np.sqrt(max(1e-12, 1 - phi * phi))
    x = np.empty(n)
    x[0] = mean + rng.standard_normal() * std
    for i in range(1, n):
        x[i] = mean + phi * (x[i - 1] - mean) + eps[i]
    return np.maximum(0.0, x)


def _markov_state(rng: np.random.Generator, n: int, p_on: np.ndarray,
                  mean_on_s: float, dt_s: float) -> np.ndarray:
    """Two-state on/off chain: stationary on-probability ``p_on[t]``,
    mean on-duration ``mean_on_s``."""
    p_exit = min(1.0, dt_s / mean_on_s)
    # For stationary fraction f: p_enter = f * p_exit / (1 - f)
    with np.errstate(divide="ignore", invalid="ignore"):
        p_enter = np.clip(p_on * p_exit / np.maximum(1e-9, 1 - p_on), 0, 1)
    u = rng.random(n)
    state = np.zeros(n, dtype=bool)
    on = False
    for i in range(n):
        on = (u[i] >= p_exit) if on else (u[i] < p_enter[i])
        state[i] = on
    return state


def generate_host_trace(rng: np.random.Generator, name: str,
                        stats: HostClassStats,
                        params: TraceParams | None = None) -> HostTrace:
    """One host's synthetic multi-day trace."""
    p = params or TraceParams()
    n = int(p.duration_s / p.dt_s)
    t = np.arange(n) * p.dt_s
    hour = (t / 3600.0) % 24.0
    is_day = (hour >= p.day_start_h) & (hour < p.day_end_h)
    busy_target = np.where(is_day, p.busy_frac_day, p.busy_frac_night)
    weekday = (t // 86400.0).astype(int) % 7
    busy_target = np.where(weekday >= 5,
                           busy_target * p.weekend_busy_factor, busy_target)

    busy = _markov_state(rng, n, busy_target, p.session_mean_s, p.dt_s)
    background = _markov_state(
        rng, n, np.full(n, p.background_job_prob),
        p.background_job_mean_s, p.dt_s)

    load = (0.03 + 0.05 * rng.random(n)
            + busy * (0.5 + 0.5 * rng.random(n))
            + background * 1.0)
    console_active = busy.copy()

    kernel = _ar1(rng, n, stats.kernel_mean, stats.kernel_std, p.phi)
    filecache = _ar1(rng, n, stats.filecache_mean, stats.filecache_std, p.phi)
    process = _ar1(rng, n, stats.process_mean, stats.process_std, p.phi)

    # Short-lived large allocations: the Figure 2 "dips".
    n_spikes = rng.poisson(p.spike_rate_per_day * p.duration_s / 86400.0)
    spikes = np.zeros(n)
    for _ in range(n_spikes):
        start = int(rng.integers(0, n))
        length = max(1, int(rng.exponential(p.spike_mean_s) / p.dt_s))
        size = p.spike_frac * stats.total_kb * (0.5 + rng.random())
        spikes[start:start + length] += size
    process = process + spikes

    # Physical cap: components cannot exceed installed memory.  Overflow is
    # taken out of the file cache first (the OS sheds cache under
    # pressure), then process memory is clipped.
    headroom = 0.99 * stats.total_kb
    overflow = np.maximum(0.0, kernel + filecache + process - headroom)
    shed = np.minimum(filecache, overflow)
    filecache = filecache - shed
    overflow = overflow - shed
    process = np.maximum(0.0, process - overflow)

    return HostTrace(name=name, total_kb=stats.total_kb, dt_s=p.dt_s,
                     kernel=kernel, filecache=filecache, process=process,
                     console_active=console_active, load=load)


def generate_cluster(rng: np.random.Generator, mix: dict[int, int],
                     params: TraceParams | None = None,
                     name: str = "cluster") -> list[HostTrace]:
    """Traces for a whole cluster given its {installed MB: host count} mix."""
    traces = []
    i = 0
    for mb in sorted(mix, reverse=True):
        stats = TABLE1[mb]
        for _ in range(mix[mb]):
            traces.append(generate_host_trace(
                rng, f"{name}-{mb}mb-{i}", stats, params))
            i += 1
    return traces


# -- analysis (what Figures 1/2 and Table 1 plot) ---------------------------------

def available_series_mb(traces: list[HostTrace]) -> dict[str, np.ndarray]:
    """Aggregate availability over time: the Figure 1 series.

    Returns ``times_s``, ``all_hosts_mb`` (sum of available memory over
    every host) and ``idle_hosts_mb`` (only hosts passing the idleness
    predicate at that instant).
    """
    if not traces:
        raise ValueError("no traces")
    avail = np.stack([tr.available for tr in traces])  # hosts x time, KB
    idle = np.stack([tr.idle for tr in traces])
    return {
        "times_s": traces[0].times,
        "all_hosts_mb": avail.sum(axis=0) / 1024.0,
        "idle_hosts_mb": (avail * idle).sum(axis=0) / 1024.0,
    }


def cluster_summary(traces: list[HostTrace]) -> dict[str, float]:
    """Headline Figure-1 numbers for one cluster."""
    series = available_series_mb(traces)
    installed_mb = sum(tr.total_kb for tr in traces) / 1024.0
    return {
        "installed_mb": installed_mb,
        "avg_available_all_mb": float(series["all_hosts_mb"].mean()),
        "avg_available_idle_mb": float(series["idle_hosts_mb"].mean()),
        "frac_available_all": float(series["all_hosts_mb"].mean())
        / installed_mb,
        "frac_available_idle": float(series["idle_hosts_mb"].mean())
        / installed_mb,
        "frac_hosts_idle": float(np.stack(
            [tr.idle for tr in traces]).mean()),
    }


def table1_from_traces(traces: list[HostTrace]) -> dict[int, dict[str, tuple]]:
    """Recompute Table 1 (mean, std per component) from generated traces."""
    by_class: dict[int, list[HostTrace]] = {}
    for tr in traces:
        by_class.setdefault(tr.total_kb // 1024, []).append(tr)
    out = {}
    for mb, trs in sorted(by_class.items()):
        rows = {}
        for comp in ("kernel", "filecache", "process", "available"):
            vals = np.concatenate([getattr(tr, comp) for tr in trs])
            rows[comp] = (float(vals.mean()), float(vals.std()))
        out[mb] = rows
    return out
