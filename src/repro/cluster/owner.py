"""Stochastic workstation-owner behaviour.

Drives the signals Dodo's resource monitor watches: keyboard/mouse events,
owner-attributable load, and process-memory growth during interactive
sessions.  The owner alternates *active* sessions (typing every few
seconds, load up, process memory up) with *away* periods (console silent,
load near zero except for occasional background compute jobs — the paper's
clusters ran batch jobs too, which keep a console-idle host from being
recruited because of the load test).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.workstation import MB, Workstation
from repro.sim import Interrupt, Simulator


@dataclass(frozen=True)
class OwnerParams:
    """Session-process parameters (times in seconds)."""

    #: mean length of an interactive session
    active_mean_s: float = 20 * 60.0
    #: mean length of an away period
    away_mean_s: float = 60 * 60.0
    #: keystroke/mouse burst interval while active
    console_interval_s: float = 5.0
    #: owner load while interactively working
    active_load: float = 0.8
    #: baseline load while away
    idle_load: float = 0.05
    #: probability that an away period runs a background compute job
    background_job_prob: float = 0.15
    #: load of a background job (over the idle threshold of 0.3)
    background_load: float = 1.0
    #: extra process memory pinned during an active session
    active_process_mem: int = 24 * MB


class Owner:
    """A process animating one workstation's owner."""

    def __init__(self, sim: Simulator, ws: Workstation,
                 params: OwnerParams | None = None,
                 start_active: bool = False, batched: bool = True):
        """``batched=True`` (the default) runs each active session as one
        simulator event plus a lazily evaluated console script — bit-
        identical signals and RNG draws to the per-keystroke stepping
        loop (``batched=False``), at a fraction of the event count."""
        self.sim = sim
        self.ws = ws
        self.params = params or OwnerParams()
        self.rng = sim.rng(f"owner.{ws.name}")
        self._start_active = start_active
        self.batched = batched
        self.active = False
        self.proc = sim.process(self._run())

    def stop(self) -> None:
        if self.proc.is_alive:
            self.proc.interrupt("owner-stop")

    def _run(self):
        p = self.params
        active = self._start_active
        try:
            while True:
                if active:
                    yield from self._active_session(
                        float(self.rng.exponential(p.active_mean_s)))
                else:
                    yield from self._away_period(
                        float(self.rng.exponential(p.away_mean_s)))
                active = not active
        except Interrupt:
            self._leave()

    def _active_session(self, duration: float):
        p = self.params
        self.active = True
        self.ws.owner_load = p.active_load
        self.ws.mem.process += p.active_process_mem
        self.ws.stats.add("owner.sessions")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.debug(self.sim, "owner", "owner.active",
                                    host=self.ws.name,
                                    duration_s=round(duration, 3))
        end = self.sim.now + duration
        if not self.batched:
            while self.sim.now < end:
                self.ws.touch_console()
                step = min(p.console_interval_s, end - self.sim.now)
                if step <= 0:
                    break
                yield self.sim.timeout(step)
            self._leave()
            return
        # Batched: the whole keystroke schedule becomes one lazily
        # evaluated console script and the session one absolute-time
        # event at the exact instant the stepping loop would exit.
        exit_time = self.ws.begin_console_script(
            self.sim.now, end, p.console_interval_s)
        try:
            yield self.sim.at(exit_time)
        finally:
            self.ws.end_console_script()
        self._leave()

    def _leave(self) -> None:
        p = self.params
        if self.active:
            self.ws.mem.process = max(
                0, self.ws.mem.process - p.active_process_mem)
        self.active = False
        self.ws.owner_load = p.idle_load

    def _away_period(self, duration: float):
        p = self.params
        if self.sim.eventlog.enabled:
            self.sim.eventlog.debug(self.sim, "owner", "owner.away",
                                    host=self.ws.name,
                                    duration_s=round(duration, 3))
        if self.rng.random() < p.background_job_prob:
            self.ws.owner_load = p.background_load
            self.ws.stats.add("owner.background_jobs")
        else:
            self.ws.owner_load = p.idle_load
        yield self.sim.timeout(duration)
        self.ws.owner_load = p.idle_load
