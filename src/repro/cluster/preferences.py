"""Owner preference rules — Condor-style recruitment control (Section 3.1).

"User preferences are used to give the owner of the workstation complete
control over when her machine is recruited by Dodo.  We borrowed the user
preference rules used by Condor."  Condor's START expression is a
conjunction of owner-supplied predicates over machine state; we provide
the same shape: a :class:`PreferenceRules` is a list of named rules, all
of which must allow recruitment.  The resource monitor consults the rules
before forking an idle memory daemon, in addition to the built-in
idleness test.

Built-in rule constructors cover the classic Condor policies: time-of-day
windows, minimum free memory, extended console-idle requirements, a
do-not-disturb switch, and arbitrary custom predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.workstation import MB, Workstation

#: a rule: (workstation, current time) -> recruitment allowed?
RuleFn = Callable[[Workstation, float], bool]


@dataclass(frozen=True)
class Rule:
    """One named predicate; recruitment requires every rule to pass."""

    name: str
    allows: RuleFn

    def __call__(self, ws: Workstation, now: float) -> bool:
        return bool(self.allows(ws, now))


@dataclass
class PreferenceRules:
    """An owner's recruitment policy: the conjunction of its rules."""

    rules: list[Rule] = field(default_factory=list)

    def add(self, rule: Rule) -> "PreferenceRules":
        self.rules.append(rule)
        return self

    def allows(self, ws: Workstation, now: float) -> bool:
        return all(rule(ws, now) for rule in self.rules)

    def blocking_rule(self, ws: Workstation, now: float):
        """The first rule refusing recruitment, or None."""
        for rule in self.rules:
            if not rule(ws, now):
                return rule
        return None


# -- built-in rule constructors -------------------------------------------------

def never() -> Rule:
    """Do-not-disturb: this machine is never recruited."""
    return Rule("never", lambda ws, now: False)


def time_window(start_hour: float, end_hour: float,
                day_seconds: float = 86400.0) -> Rule:
    """Allow recruitment only between two local hours (e.g. 19 -> 7 allows
    overnight harvesting; windows may wrap midnight)."""
    if not (0 <= start_hour < 24 and 0 <= end_hour < 24):
        raise ValueError("hours must be in [0, 24)")

    def allows(ws: Workstation, now: float) -> bool:
        hour = (now % day_seconds) / 3600.0
        if start_hour <= end_hour:
            return start_hour <= hour < end_hour
        return hour >= start_hour or hour < end_hour

    return Rule(f"time_window[{start_hour}-{end_hour})", allows)


def min_available_memory(bytes_: int) -> Rule:
    """Only recruit while at least this much memory is available."""
    return Rule(f"min_available[{bytes_ // MB}MB]",
                lambda ws, now: ws.available_memory() >= bytes_)


def console_idle_at_least(seconds: float) -> Rule:
    """Demand a longer console-idle period than the default five minutes."""
    return Rule(f"console_idle[{seconds:.0f}s]",
                lambda ws, now: ws.console_idle_seconds() >= seconds)


def max_load(threshold: float) -> Rule:
    """A stricter owner-load ceiling than the built-in 0.3."""
    return Rule(f"max_load[{threshold}]",
                lambda ws, now: ws.load_excluding_daemons() <= threshold)


def custom(name: str, fn: RuleFn) -> Rule:
    """Escape hatch for arbitrary owner-supplied predicates."""
    return Rule(name, fn)
