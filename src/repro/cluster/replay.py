"""Trace-driven workstation behaviour — the paper's Section 5.3.1 method.

"While we have not yet deployed Dodo in such a production environment, we
have evaluated its performance in such environments via trace-driven
simulation."  The traces in question are the Section-2 memory/activity
traces; this module replays a :class:`~repro.cluster.memtrace.HostTrace`
onto a live :class:`~repro.cluster.workstation.Workstation`, driving the
exact signals the resource monitor samples — console access times, load,
and the memory components that determine how much an idle memory daemon
may pin.
"""

from __future__ import annotations

from repro.cluster.memtrace import HostTrace
from repro.cluster.workstation import KB_TO_BYTES, Workstation
from repro.sim import Interrupt, Simulator


class TraceReplayer:
    """A process feeding one host's trace into its workstation state."""

    def __init__(self, sim: Simulator, ws: Workstation, trace: HostTrace,
                 speedup: float = 1.0, loop: bool = False):
        """``speedup`` compresses trace time (a 60 s sample becomes
        ``60/speedup`` simulated seconds) so multi-day traces can drive
        minutes-long experiments; ``loop`` wraps around at the end."""
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.sim = sim
        self.ws = ws
        self.trace = trace
        self.speedup = speedup
        self.loop = loop
        self.samples_applied = 0
        self.proc = sim.process(self._run())

    def stop(self) -> None:
        if self.proc.is_alive:
            self.proc.interrupt("replay-stop")

    def _apply(self, i: int) -> None:
        tr = self.trace
        ws = self.ws
        ws.owner_load = float(tr.load[i])
        if tr.console_active[i]:
            ws.touch_console()
        ws.mem.kernel = int(tr.kernel[i]) * KB_TO_BYTES
        ws.mem.process = int(tr.process[i]) * KB_TO_BYTES
        if ws.fs is None:
            ws.mem.filecache = int(tr.filecache[i]) * KB_TO_BYTES
        self.samples_applied += 1

    def _run(self):
        step = self.trace.dt_s / self.speedup
        try:
            while True:
                for i in range(len(self.trace.load)):
                    self._apply(i)
                    yield self.sim.timeout(step)
                if not self.loop:
                    return
        except Interrupt:
            return
