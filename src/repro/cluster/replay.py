"""Trace-driven workstation behaviour — the paper's Section 5.3.1 method.

"While we have not yet deployed Dodo in such a production environment, we
have evaluated its performance in such environments via trace-driven
simulation."  The traces in question are the Section-2 memory/activity
traces; this module replays a :class:`~repro.cluster.memtrace.HostTrace`
onto a live :class:`~repro.cluster.workstation.Workstation`, driving the
exact signals the resource monitor samples — console access times, load,
and the memory components that determine how much an idle memory daemon
may pin.

Replay is *lazy* by default: instead of one simulator event per trace
sample (a 4-day trace at 60 s steps is 5760 events per host — ruinous at
a thousand hosts), pending samples are applied on first observation
through the workstation's signal accessors, with a single wake-up per
full trace pass to settle the tail.  Sample instants replicate the
eager stepping loop's float accumulation bit for bit, so both modes are
observationally identical (``tests/cluster/test_replay_lazy.py``).
"""

from __future__ import annotations

from repro.cluster.memtrace import HostTrace
from repro.cluster.workstation import KB_TO_BYTES, Workstation
from repro.sim import Interrupt, Simulator


class TraceReplayer:
    """A feed applying one host's trace onto its workstation state."""

    def __init__(self, sim: Simulator, ws: Workstation, trace: HostTrace,
                 speedup: float = 1.0, loop: bool = False,
                 lazy: bool = True):
        """``speedup`` compresses trace time (a 60 s sample becomes
        ``60/speedup`` simulated seconds) so multi-day traces can drive
        minutes-long experiments; ``loop`` wraps around at the end;
        ``lazy=False`` forces the one-event-per-sample stepping loop."""
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.sim = sim
        self.ws = ws
        self.trace = trace
        self.speedup = speedup
        self.loop = loop
        self.lazy = lazy
        self._step = trace.dt_s / speedup
        self._applied = 0
        #: lazy cursor: index and instant of the next sample to apply
        self._next_i = 0
        self._next_t = sim.now
        self._live = lazy
        if lazy:
            ws._trace_feed = self
        self.proc = sim.process(self._run())

    @property
    def samples_applied(self) -> int:
        """Samples whose instant has passed (synced on read)."""
        if self._live:
            self.sync(self.sim.now)
        return self._applied

    def stop(self) -> None:
        if self.proc.is_alive:
            self.proc.interrupt("replay-stop")

    def sync(self, now: float) -> None:
        """Apply every pending sample whose instant is <= ``now``.

        Called from the workstation's signal accessors (via
        :meth:`Workstation.refresh`); amortized O(1) per observation
        since the cursor only moves forward.
        """
        if not self._live:
            return
        n = len(self.trace.load)
        while self._next_t <= now:
            if self._next_i >= n:
                if not self.loop:
                    break
                self._next_i = 0
            self._apply(self._next_i, self._next_t)
            self._next_i += 1
            self._next_t += self._step

    def _apply(self, i: int, at_time: float) -> None:
        # Writes go to the private fields: the public accessors trigger
        # refresh() -> sync() -> here, so using them would recurse.
        tr = self.trace
        ws = self.ws
        ws._owner_load = float(tr.load[i])
        if tr.console_active[i] and at_time > ws._console_last:
            ws._console_last = at_time
        ws._mem.kernel = int(tr.kernel[i]) * KB_TO_BYTES
        ws._mem.process = int(tr.process[i]) * KB_TO_BYTES
        if ws.fs is None:
            ws._mem.filecache = int(tr.filecache[i]) * KB_TO_BYTES
        self._applied += 1

    def _detach(self) -> None:
        self._live = False
        if self.ws._trace_feed is self:
            self.ws._trace_feed = None

    def _run(self):
        step = self._step
        n = len(self.trace.load)
        try:
            if not self.lazy:
                while True:
                    for i in range(n):
                        self._apply(i, self.sim.now)
                        yield self.sim.timeout(step)
                    if not self.loop:
                        return
            while True:
                # One wake-up per full pass: settle any unobserved tail
                # samples at the exact instant the eager loop would have
                # finished the pass (same float accumulation).
                t = self.sim.now
                for _ in range(n):
                    t += step
                yield self.sim.at(t)
                self.sync(self.sim.now)
                if not self.loop:
                    return
        except Interrupt:
            if self.lazy:
                self.sync(self.sim.now)
            return
        finally:
            self._detach()
