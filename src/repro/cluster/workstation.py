"""A workstation: CPU-less host model with memory accounting, NIC, disk.

Each machine in the simulated cluster carries exactly the state Dodo's
daemons observe: installed memory broken into kernel / file-cache /
process / free components, a console-activity timestamp, a load average,
a NIC with UDP and U-Net endpoints, and (optionally) a local disk with a
file system.

Memory accounting follows Section 2 of the paper: *available* memory is
what is left after the kernel, the live file cache and process memory;
*recruitable* memory additionally reserves a 15% headroom of total memory
for near-future file-cache growth (the figure the paper derived from its
usage study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.recorder import Recorder
from repro.net.network import Network
from repro.net.nic import NIC
from repro.net.usocket import TransportEndpoint
from repro.net.params import transport_params
from repro.sim import Simulator
from repro.storage.disk import Disk, DiskParams
from repro.storage.filesystem import FileSystem, FsParams

MB = 1024 * 1024
KB_TO_BYTES = 1024


@dataclass
class MemoryState:
    """Byte-denominated memory components of one host."""

    total: int
    kernel: int
    process: int
    filecache: int = 0

    def available(self) -> int:
        """total - kernel - filecache - process, floored at zero."""
        return max(0, self.total - self.kernel - self.filecache - self.process)


class Workstation:
    """One cluster node.  See module docstring."""

    def __init__(self, sim: Simulator, name: str, network: Network,
                 total_mem_bytes: int = 128 * MB,
                 kernel_mem_bytes: Optional[int] = None,
                 process_mem_bytes: int = 8 * MB,
                 disk_params: Optional[DiskParams] = None,
                 fs_cache_bytes: Optional[int] = None,
                 fs_params: Optional[FsParams] = None,
                 store_data: bool = False,
                 frame_loss_prob: float = 0.0):
        self.sim = sim
        self.name = name
        self.nic = NIC(sim, name)
        network.attach(self.nic)
        self.udp = TransportEndpoint(
            sim, self.nic, network, transport_params("udp", frame_loss_prob))
        self.unet = TransportEndpoint(
            sim, self.nic, network, transport_params("unet", frame_loss_prob))

        if kernel_mem_bytes is None:
            # roughly the paper's Table 1: ~20% of installed memory
            kernel_mem_bytes = total_mem_bytes // 5
        self._mem = MemoryState(total=total_mem_bytes,
                                kernel=kernel_mem_bytes,
                                process=process_mem_bytes)

        self.disk: Optional[Disk] = None
        self.fs: Optional[FileSystem] = None
        if disk_params is not None or fs_cache_bytes is not None:
            self.disk = Disk(sim, f"{name}.disk", disk_params)
            cache = fs_cache_bytes if fs_cache_bytes is not None else 16 * MB
            self.fs = FileSystem(sim, self.disk, cache_bytes=cache,
                                 params=fs_params, store_data=store_data,
                                 name=f"{name}.fs")

        #: virtual time of the last *materialized* keyboard/mouse event;
        #: starts "long ago" (see :attr:`console_last_activity`)
        self._console_last: float = float("-inf")
        #: instantaneous load average as `w` would report it (owner jobs)
        self._owner_load: float = 0.0
        #: active console script ``[cursor, end, interval]`` — an owner
        #: session's keystroke schedule, evaluated lazily instead of one
        #: simulator event per keystroke burst (see
        #: :meth:`begin_console_script`)
        self._console_script: Optional[list] = None
        #: lazy trace feed (a :class:`~repro.cluster.replay.TraceReplayer`)
        #: whose pending samples are applied on first observation
        self._trace_feed = None
        #: load contributed by the screen saver and Dodo's own daemons —
        #: the resource monitor subtracts this before judging idleness
        self.daemon_load: float = 0.0
        #: guest memory currently pinned by an idle memory daemon
        self.guest_memory: int = 0
        self.crashed = False
        #: callbacks invoked synchronously by :meth:`crash` — daemons
        #: whose process dies with the host (the imd) register here so a
        #: power failure kills them instantly instead of leaving zombie
        #: state behind (stale pools, pinned guest memory)
        self._crash_listeners: list = []
        self.stats = Recorder(f"ws.{name}")
        if sim.telemetry.enabled:
            sim.telemetry.register(sim, "workstation", name, self)

    # -- lazy signal plumbing ---------------------------------------------------
    def refresh(self) -> None:
        """Apply any pending lazy trace samples up to the current time.

        Every observable signal accessor calls this, so readers always
        see the state an eagerly stepped replay would have produced —
        without one simulator event per trace sample.
        """
        feed = self._trace_feed
        if feed is not None:
            feed.sync(self.sim.now)

    @property
    def mem(self) -> MemoryState:
        """Memory components, synced with any lazy trace feed."""
        self.refresh()
        return self._mem

    # -- console / load signals ------------------------------------------------
    def touch_console(self) -> None:
        """Record keyboard/mouse activity at the current time."""
        self._console_last = self.sim.now

    def begin_console_script(self, start: float, end: float,
                             interval: float) -> float:
        """Declare keystroke bursts at ``start``, then every ``interval``
        until ``end`` — evaluated lazily on observation instead of one
        simulator event each.  The touch instants replicate the float
        accumulation of the stepping loop this replaces
        (``t += min(interval, end - t)``) bit for bit; returns the
        instant that loop would exit.
        """
        t = start
        if t < end:
            self._console_script = [t, end, interval]
            while t < end:
                t += min(interval, end - t)
        return t

    def end_console_script(self) -> None:
        """Close the active console script, materializing the last touch
        at or before the current time into the activity timestamp."""
        script = self._console_script
        self._console_script = None
        if script is not None:
            t = self._advance_script(script, self.sim.now)
            if t > self._console_last:
                self._console_last = t

    def _advance_script(self, script: list, now: float) -> float:
        """Move the script cursor to the last touch instant <= now."""
        t, end, interval = script
        while True:
            nxt = t + min(interval, end - t)
            if nxt <= now and nxt < end:
                t = nxt
            else:
                break
        script[0] = t
        return t

    @property
    def console_last_activity(self) -> float:
        """Virtual time of the last keyboard/mouse event, script-aware."""
        self.refresh()
        last = self._console_last
        script = self._console_script
        if script is not None:
            t = self._advance_script(script, self.sim.now)
            if t > last:
                last = t
        return last

    @console_last_activity.setter
    def console_last_activity(self, when: float) -> None:
        self._console_last = when

    def console_idle_seconds(self) -> float:
        return self.sim.now - self.console_last_activity

    @property
    def owner_load(self) -> float:
        """Owner-attributable load, synced with any lazy trace feed."""
        self.refresh()
        return self._owner_load

    @owner_load.setter
    def owner_load(self, value: float) -> None:
        self._owner_load = value

    @property
    def load(self) -> float:
        """Total load including daemons (what a naive `w` would show)."""
        return self.owner_load + self.daemon_load

    def load_excluding_daemons(self) -> float:
        """Owner-attributable load: the paper's rmd subtracts the screen
        saver's and imd's processor usage before the 0.3 test."""
        return self.owner_load

    # -- memory signals ----------------------------------------------------------
    @property
    def filecache_bytes(self) -> int:
        """Live file-cache footprint: tracked by the local FS if present."""
        if self.fs is not None:
            return self.fs.cache.resident_bytes
        return self.mem.filecache

    def available_memory(self) -> int:
        return max(0, self.mem.total - self.mem.kernel - self.mem.process
                   - self.filecache_bytes - self.guest_memory)

    def recruitable_memory(self, headroom_fraction: float = 0.15) -> int:
        """How much an imd may pin: available minus the 15% headroom the
        paper reserves for files likely to be opened soon (Section 3.1)."""
        headroom = int(self.mem.total * headroom_fraction)
        return max(0, self.available_memory() - headroom)

    # -- failure injection ----------------------------------------------------------
    def on_crash(self, fn) -> None:
        """Register a callback to run when this host power-fails."""
        self._crash_listeners.append(fn)

    def crash(self) -> None:
        """Power-fail the host: drops all network traffic immediately and
        kills every process registered via :meth:`on_crash`."""
        self.crashed = True
        self.nic.down = True
        self.stats.add("crashes")
        if self.sim.eventlog.enabled:
            self.sim.eventlog.warn(self.sim, "workstation", "host.crash",
                                   host=self.name)
        for fn in list(self._crash_listeners):
            fn()

    def recover(self) -> None:
        self.crashed = False
        self.nic.down = False
        if self.sim.eventlog.enabled:
            self.sim.eventlog.info(self.sim, "workstation", "host.recover",
                                   host=self.name)

    def endpoint(self, transport: str) -> TransportEndpoint:
        if transport == "udp":
            return self.udp
        if transport == "unet":
            return self.unet
        raise ValueError(f"unknown transport {transport!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workstation {self.name} {self.mem.total // MB}MB>"
