"""The idleness predicate used throughout the paper.

A workstation is idle when there has been **no keyboard or mouse activity
and the (daemon-excluded) load has stayed below 0.3 for five minutes or
more**.  The online form is evaluated incrementally by the resource
monitor, which samples once a second (Section 4.1); the array form is used
by the Section-2 trace analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.workstation import Workstation


@dataclass(frozen=True)
class IdlePolicy:
    """Thresholds of the recruitment rule."""

    #: console + load must be quiet for this long
    window_s: float = 300.0
    #: `w`-reported load threshold
    load_threshold: float = 0.3
    #: rmd sampling period
    sample_interval_s: float = 1.0


#: numeric idleness codes recorded by the telemetry `idle_state` gauge
IDLE_STATE_BUSY = 0
IDLE_STATE_QUIET = 1     # quiet, accumulating toward the window
IDLE_STATE_RECRUITED = 2

#: code -> operator-facing name (dashboards, insights, API documents)
IDLE_STATE_NAMES = {
    IDLE_STATE_BUSY: "busy",
    IDLE_STATE_QUIET: "quiet",
    IDLE_STATE_RECRUITED: "recruited",
}


def state_name(code: float) -> str:
    """Operator-facing name of a telemetry ``idle_state`` sample (the
    gauge stores floats); unknown codes render as ``state-<n>`` rather
    than raising, so a dashboard never dies on a weird sample."""
    return IDLE_STATE_NAMES.get(int(code), f"state-{int(code)}")


def classify_idleness(quiet_s: float, recruited: bool) -> int:
    """Map a monitor's incremental state to the telemetry code above."""
    if recruited:
        return IDLE_STATE_RECRUITED
    return IDLE_STATE_QUIET if quiet_s > 0 else IDLE_STATE_BUSY


def instant_quiet(ws: Workstation, policy: IdlePolicy) -> bool:
    """One sample of the predicate: console untouched this instant and
    owner load below threshold.  The five-minute persistence requirement
    is tracked by the caller (:class:`~repro.core.rmd.ResourceMonitor`)."""
    return (ws.console_idle_seconds() >= policy.sample_interval_s
            and ws.load_excluding_daemons() < policy.load_threshold)


def is_idle_now(ws: Workstation, policy: IdlePolicy | None = None) -> bool:
    """Stateless check usable by tests: console idle for the full window
    and instantaneous load below threshold."""
    policy = policy or IdlePolicy()
    return (ws.console_idle_seconds() >= policy.window_s
            and ws.load_excluding_daemons() < policy.load_threshold)


def idle_mask(console_active: np.ndarray, load: np.ndarray, dt_s: float,
              policy: IdlePolicy | None = None) -> np.ndarray:
    """Vectorized predicate over a sampled trace.

    ``console_active[t]`` is True if there was input during sample ``t``;
    ``load[t]`` is the load average.  A host is idle at ``t`` if every
    sample in the trailing five-minute window had no input and load below
    threshold.
    """
    policy = policy or IdlePolicy()
    if console_active.shape != load.shape:
        raise ValueError("console_active and load must have the same shape")
    quiet = (~console_active) & (load < policy.load_threshold)
    w = max(1, int(round(policy.window_s / dt_s)))
    if w == 1:
        return quiet
    # idle[t] = all(quiet[t-w+1 .. t]); rolling AND via cumulative sums
    q = quiet.astype(np.int64)
    c = np.concatenate([[0], np.cumsum(q)])
    sums = c[w:] - c[:-w]  # sums[i] = count of quiet samples in window
    out = np.zeros_like(quiet)
    out[w - 1:] = sums == w
    return out
