"""Cluster assembly: wire N workstations to one switch.

This is the generic builder; the paper's concrete 16-node Beowulf
evaluation platform (one application node with a disk, one central-manager
node, twelve memory hosts) is configured on top of it in
:mod:`repro.exp.platform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.workstation import MB, Workstation
from repro.net.network import Network
from repro.net.params import LinkParams
from repro.sim import Simulator
from repro.storage.disk import DiskParams
from repro.storage.filesystem import FsParams


@dataclass
class HostSpec:
    """Per-host configuration inside a :class:`ClusterConfig`."""

    name: str
    total_mem_bytes: int = 128 * MB
    has_disk: bool = False
    fs_cache_bytes: Optional[int] = None
    fs_params: Optional[FsParams] = None
    disk_params: Optional[DiskParams] = None
    process_mem_bytes: int = 8 * MB


@dataclass
class ClusterConfig:
    """What to build: hosts plus shared fabric parameters."""

    hosts: list[HostSpec] = field(default_factory=list)
    link: LinkParams = field(default_factory=LinkParams)
    frame_loss_prob: float = 0.0
    #: carry real payload bytes through disks and memory regions
    store_data: bool = False
    #: engage the flow-level datagram fast path (timing-identical; False
    #: forces every datagram through the packet-by-packet simulation)
    dgram_fastpath: bool = True

    @classmethod
    def uniform(cls, n: int, prefix: str = "ws", **host_kwargs) -> "ClusterConfig":
        """N identical hosts named ``ws00..``."""
        width = max(2, len(str(n - 1)))
        return cls(hosts=[HostSpec(name=f"{prefix}{i:0{width}d}",
                                   **host_kwargs) for i in range(n)])


class Cluster:
    """A built cluster: one network plus its workstations."""

    def __init__(self, sim: Simulator, config: ClusterConfig):
        self.sim = sim
        self.config = config
        self.network = Network(sim, config.link)
        self.network.dgram_fastpath = config.dgram_fastpath
        self.workstations: dict[str, Workstation] = {}
        for spec in config.hosts:
            if spec.name in self.workstations:
                raise ValueError(f"duplicate host name {spec.name!r}")
            ws = Workstation(
                sim, spec.name, self.network,
                total_mem_bytes=spec.total_mem_bytes,
                process_mem_bytes=spec.process_mem_bytes,
                disk_params=(spec.disk_params or DiskParams())
                if spec.has_disk else None,
                fs_cache_bytes=spec.fs_cache_bytes if spec.has_disk else None,
                fs_params=spec.fs_params,
                store_data=config.store_data,
                frame_loss_prob=config.frame_loss_prob)
            self.workstations[spec.name] = ws

    def __getitem__(self, name: str) -> Workstation:
        return self.workstations[name]

    def __iter__(self):
        return iter(self.workstations.values())

    def __len__(self) -> int:
        return len(self.workstations)

    @property
    def names(self) -> list[str]:
        return list(self.workstations)
