"""Workstation-cluster substrate: hosts, owners, idleness, memory traces."""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.idleness import IdlePolicy, idle_mask, instant_quiet, is_idle_now
from repro.cluster.memtrace import (CLUSTER_A_MIX, CLUSTER_B_MIX, TABLE1,
                                    HostClassStats, HostTrace, TraceParams,
                                    available_series_mb, cluster_summary,
                                    generate_cluster, generate_host_trace,
                                    table1_from_traces)
from repro.cluster.owner import Owner, OwnerParams
from repro.cluster.preferences import (PreferenceRules, Rule,
                                       console_idle_at_least, custom,
                                       max_load, min_available_memory,
                                       never, time_window)
from repro.cluster.replay import TraceReplayer
from repro.cluster.workstation import MB, MemoryState, Workstation

__all__ = [
    "CLUSTER_A_MIX",
    "CLUSTER_B_MIX",
    "Cluster",
    "ClusterConfig",
    "HostClassStats",
    "HostTrace",
    "IdlePolicy",
    "MB",
    "MemoryState",
    "Owner",
    "OwnerParams",
    "PreferenceRules",
    "Rule",
    "TABLE1",
    "TraceParams",
    "TraceReplayer",
    "Workstation",
    "console_idle_at_least",
    "custom",
    "max_load",
    "min_available_memory",
    "never",
    "time_window",
    "available_series_mb",
    "cluster_summary",
    "generate_cluster",
    "generate_host_trace",
    "idle_mask",
    "instant_quiet",
    "is_idle_now",
    "table1_from_traces",
]
